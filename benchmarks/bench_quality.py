"""Quality benchmarks (Theorem 3 study): full algorithms, measured ratios.

Each benchmark runs a complete approximation algorithm (estimator + dual
binary search + construction + validation) on a planted-optimum instance, so
the reported ``extra_info['ratio']`` is a true approximation ratio, and
asserts the paper's guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import schedule_moldable
from repro.workloads.generators import planted_partition_instance, random_mixed_instance

EPS = 0.2


@pytest.mark.parametrize(
    "algorithm,guarantee",
    [
        ("two_approx", 2.0),
        ("mrt", 1.5 + EPS),
        ("compressible", 1.5 + EPS),
        ("bounded", 1.5 + EPS),
        ("bounded_linear", 1.5 + EPS),
    ],
)
def test_quality_on_planted_optimum(benchmark, algorithm, guarantee):
    instance = planted_partition_instance(24, seed=5)
    opt = instance.known_optimum
    assert opt is not None
    result = benchmark(lambda: schedule_moldable(instance.jobs, instance.m, EPS, algorithm=algorithm))
    ratio = result.makespan / opt
    assert ratio <= guarantee * (1 + 1e-6)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["ratio"] = ratio


@pytest.mark.parametrize("algorithm", ["two_approx", "mrt", "compressible", "bounded", "bounded_linear"])
def test_quality_on_random_mixed(benchmark, algorithm):
    instance = random_mixed_instance(120, 128, seed=9)
    result = benchmark(lambda: schedule_moldable(instance.jobs, instance.m, EPS, algorithm=algorithm))
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["ratio_vs_lower_bound"] = result.certified_ratio
    assert result.certified_ratio <= 2.0 + 1e-6  # all algorithms are at worst 2-approximate here
