#!/usr/bin/env python
"""Scalar-vs-vectorized perf regression suite (CLI entry point).

Times every algorithm driver under ``backend="scalar"`` and
``backend="vectorized"`` on the Table-1 instance families and writes
``BENCH_perf.json``; see :mod:`repro.perf.bench` for the harness.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py            # full suite
    PYTHONPATH=src python benchmarks/bench_perf_suite.py --smoke \\
        --check benchmarks/BENCH_perf_baseline.json                 # CI gate

The ``--check`` gate fails when a per-algorithm *speedup* (a
hardware-portable metric, unlike raw seconds) regresses by more than the
``--regression-factor`` (default 2x) against the checked-in baseline, or when
the two backends disagree on any makespan.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
