"""Shared fixtures for the benchmark harness.

Every benchmark maps to an entry of the per-experiment index in DESIGN.md /
EXPERIMENTS.md.  The benchmarks use modest instance sizes so that the whole
suite completes in a few minutes; the experiment drivers in
``repro.experiments`` run the same code on larger sweeps.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import ludwig_tiwari_estimator
from repro.workloads.generators import random_mixed_instance


@pytest.fixture(scope="session")
def base_instance():
    """The workload used by most dual-step benchmarks (n=200, m=1024 < 16n)."""
    instance = random_mixed_instance(200, 1024, seed=7)
    omega = ludwig_tiwari_estimator(instance.jobs, instance.m).omega
    return instance, omega


@pytest.fixture(scope="session")
def small_instance():
    instance = random_mixed_instance(60, 64, seed=3)
    omega = ludwig_tiwari_estimator(instance.jobs, instance.m).omega
    return instance, omega
