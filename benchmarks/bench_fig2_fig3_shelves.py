"""Figures 2 & 3 reproduction benchmarks: shelf constructions.

Figure 2 is the (possibly infeasible) two-shelf picture, Figure 3 the feasible
three-shelf schedule obtained by the transformation rules.  The benchmarks
time both constructions (with the exact MRT knapsack selecting shelf 1) and
assert the figures' structural claims.
"""

from __future__ import annotations

import pytest

from repro.core.allotment import gamma
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.shelves import (
    ThreeShelfDiagnostics,
    build_three_shelf_schedule,
    build_two_shelf_schedule,
    partition_small_big,
    shelf_profit,
)
from repro.core.validation import assert_valid_schedule
from repro.knapsack.dp import solve_knapsack
from repro.knapsack.items import KnapsackItem
from repro.workloads.generators import random_mixed_instance


def _select_shelf1(jobs, m, d):
    _, big = partition_small_big(jobs, d)
    shelf1, knapsack_jobs, capacity = [], [], m
    for job in big:
        g = gamma(job, d, m)
        if g is None:
            return None
        if gamma(job, d / 2.0, m) is None:
            shelf1.append(job)
            capacity -= g
        else:
            knapsack_jobs.append(job)
    items = [
        KnapsackItem(key=i, size=gamma(job, d, m), profit=shelf_profit(job, d, m), payload=job)
        for i, job in enumerate(knapsack_jobs)
    ]
    _, chosen = solve_knapsack(items, capacity)
    shelf1.extend(item.payload for item in chosen)
    return shelf1


@pytest.mark.parametrize("n,m", [(60, 32), (150, 96)])
def test_fig2_two_shelf_construction(benchmark, n, m):
    instance = random_mixed_instance(n, m, seed=n)
    omega = ludwig_tiwari_estimator(instance.jobs, m).omega
    d = 1.1 * omega
    shelf1 = _select_shelf1(instance.jobs, m, d)
    assert shelf1 is not None
    two = benchmark(lambda: build_two_shelf_schedule(instance.jobs, m, d, shelf1))
    assert two is not None
    # shelf S1 fits by construction; S2 may or may not (that is Figure 2's point)
    assert two.shelf1_processors <= m
    benchmark.extra_info["s2_processors"] = two.shelf2_processors
    benchmark.extra_info["two_shelf_feasible"] = two.is_feasible


@pytest.mark.parametrize("n,m", [(60, 32), (150, 96)])
def test_fig3_three_shelf_construction(benchmark, n, m):
    instance = random_mixed_instance(n, m, seed=n)
    omega = ludwig_tiwari_estimator(instance.jobs, m).omega
    d = 1.2 * omega
    shelf1 = _select_shelf1(instance.jobs, m, d)
    assert shelf1 is not None
    diag = ThreeShelfDiagnostics(d=d, m=m)

    def build():
        return build_three_shelf_schedule(instance.jobs, m, d, shelf1, diagnostics=diag)

    schedule = benchmark(build)
    if schedule is None:
        pytest.skip("target d was correctly rejected for this instance")
    assert_valid_schedule(schedule, instance.jobs, max_makespan=1.5 * d)
    benchmark.extra_info["s0_processors"] = diag.shelf0_processors
    benchmark.extra_info["moved_from_shelf2"] = diag.moved_from_shelf2


@pytest.mark.parametrize("transform", ["heap", "bucket"])
def test_fig3_transform_variants(benchmark, transform):
    """Section 4.3.3 ablation: heap-based vs bucketed transformation rules."""
    instance = random_mixed_instance(200, 128, seed=5)
    omega = ludwig_tiwari_estimator(instance.jobs, 128).omega
    d = 1.2 * omega
    shelf1 = _select_shelf1(instance.jobs, 128, d)
    assert shelf1 is not None
    schedule = benchmark(
        lambda: build_three_shelf_schedule(instance.jobs, 128, d, shelf1, transform=transform)
    )
    if schedule is not None:
        assert schedule.makespan <= 1.5 * d * (1 + 1e-9)
