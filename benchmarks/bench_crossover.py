"""Crossover benchmarks: the O(nm) MRT baseline vs the polylog-in-m algorithms.

The motivation of the paper's compact-encoding algorithms: once ``m`` grows,
any algorithm that is polynomial in ``m`` (the dense-DP MRT knapsack) loses to
the polylogarithmic ones.  These benchmarks time one dual step of each at
several machine counts; the pytest-benchmark report shows the crossover.
"""

from __future__ import annotations

import pytest

from repro.core.bounded_algorithm import bounded_dual
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.compressible_algorithm import compressible_dual
from repro.core.mrt import mrt_dual
from repro.workloads.generators import random_mixed_instance

EPS = 0.2
N = 100


def _workload(m):
    instance = random_mixed_instance(N, m, seed=17)
    omega = ludwig_tiwari_estimator(instance.jobs, m).omega
    return instance.jobs, 1.1 * omega


@pytest.mark.parametrize("m", [256, 1024, 4096, 16384])
def test_crossover_mrt_dense_knapsack(benchmark, m):
    jobs, d = _workload(m)
    schedule = benchmark(lambda: mrt_dual(jobs, m, d, knapsack="dense"))
    assert schedule is not None
    benchmark.extra_info["m"] = m


@pytest.mark.parametrize("m", [256, 1024, 4096, 16384])
def test_crossover_algorithm1_compressible(benchmark, m):
    jobs, d = _workload(m)
    schedule = benchmark(lambda: compressible_dual(jobs, m, d, EPS))
    assert schedule is not None
    benchmark.extra_info["m"] = m


@pytest.mark.parametrize("m", [256, 1024, 4096, 16384])
def test_crossover_algorithm3_bounded_linear(benchmark, m):
    jobs, d = _workload(m)
    schedule = benchmark(lambda: bounded_dual(jobs, m, d, EPS, transform="bucket"))
    assert schedule is not None
    benchmark.extra_info["m"] = m
