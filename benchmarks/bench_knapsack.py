"""Knapsack substrate benchmarks.

Compares the exact engines (dense table vs dominance list), the one-pass
multi-capacity solver and Algorithm 2 (knapsack with compressible items) on
scheduling-shaped item sets.  Algorithm 2's runtime must stay essentially flat
as the capacity grows — that is the whole point of Section 4.2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.knapsack.compressible import solve_compressible_knapsack
from repro.knapsack.dp import solve_knapsack, solve_knapsack_dense
from repro.knapsack.items import KnapsackItem
from repro.knapsack.multi import solve_knapsack_multi

RHO = 0.1


def _items(n, capacity, seed=0, wide_fraction=0.4):
    rng = np.random.default_rng(seed)
    threshold = int(1.0 / RHO)
    items = []
    compressible = set()
    for i in range(n):
        if rng.uniform() < wide_fraction:
            size = int(rng.integers(threshold, max(threshold + 1, capacity // 4)))
            compressible.add(i)
        else:
            size = int(rng.integers(1, threshold))
        items.append(KnapsackItem(key=i, size=size, profit=float(rng.uniform(1, 100))))
    return items, compressible


@pytest.mark.parametrize("capacity", [512, 2048, 8192])
def test_exact_dense_table(benchmark, capacity):
    items, _ = _items(80, capacity, seed=1)
    profit, chosen = benchmark(lambda: solve_knapsack_dense(items, capacity))
    assert profit >= 0
    benchmark.extra_info["capacity"] = capacity


@pytest.mark.parametrize("capacity", [512, 2048, 8192])
def test_exact_dominance_list(benchmark, capacity):
    items, _ = _items(80, capacity, seed=1)
    profit, chosen = benchmark(lambda: solve_knapsack(items, capacity))
    assert profit >= 0
    benchmark.extra_info["capacity"] = capacity


@pytest.mark.parametrize("capacity", [512, 2048, 8192])
def test_algorithm2_compressible(benchmark, capacity):
    items, compressible = _items(80, capacity, seed=1)
    solution = benchmark(lambda: solve_compressible_knapsack(items, compressible, float(capacity), RHO))
    assert solution.compressed_size() <= capacity * (1 + 1e-9)
    benchmark.extra_info["capacity"] = capacity


def test_multi_capacity_one_pass(benchmark):
    items, _ = _items(100, 4096, seed=2)
    capacities = [float(c) for c in (64, 256, 1024, 4096)]
    results = benchmark(lambda: solve_knapsack_multi(items, capacities))
    assert len(results) == len(capacities)
