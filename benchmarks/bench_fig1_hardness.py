"""Figure 1 reproduction benchmark: the 4-Partition reduction pipeline.

Times the full pipeline — generate a planted yes-instance, reduce it to a
monotone moldable scheduling instance, solve the 4-Partition instance, build
the Figure 1 schedule and map it back — and asserts the structural invariants
of the figure (4 jobs per machine, every machine loaded exactly ``n*B``).
"""

from __future__ import annotations

import pytest

from repro.core.validation import assert_valid_schedule
from repro.hardness.four_partition import random_yes_instance, solve_four_partition, verify_four_partition_solution
from repro.hardness.reduction import partition_from_schedule, reduce_to_scheduling, schedule_from_partition


def _pipeline(groups: int, seed: int):
    instance = random_yes_instance(groups, seed=seed)
    reduced = reduce_to_scheduling(instance)
    solution = solve_four_partition(instance)
    assert solution is not None
    schedule = schedule_from_partition(reduced, solution)
    back = partition_from_schedule(reduced, schedule)
    return instance, reduced, schedule, back


@pytest.mark.parametrize("groups", [3, 5, 7])
def test_fig1_reduction_pipeline(benchmark, groups):
    instance, reduced, schedule, back = benchmark(lambda: _pipeline(groups, seed=groups))
    assert_valid_schedule(schedule, reduced.jobs, max_makespan=reduced.target_makespan)
    assert verify_four_partition_solution(instance, back)
    per_machine = {}
    for entry in schedule.entries:
        per_machine.setdefault(entry.spans[0][0], 0)
        per_machine[entry.spans[0][0]] += 1
    assert all(count == 4 for count in per_machine.values())
    benchmark.extra_info["groups"] = groups
    benchmark.extra_info["target_makespan"] = reduced.target_makespan


def test_fig1_reduction_only(benchmark):
    """The reduction itself (no NP-hard solving) is linear and fast."""
    instance = random_yes_instance(50, seed=1)
    reduced = benchmark(lambda: reduce_to_scheduling(instance))
    assert len(reduced.jobs) == 200
