"""Theorem 2 benchmarks: the FPTAS for large machine counts.

Times the complete FPTAS (estimator + dual binary search) for machine counts
up to 10^9 and asserts the `(1+eps)` quality against the certified lower
bound.  The running time should be essentially flat in ``m`` (it only enters
through ``log m`` binary searches).
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_lower_bound
from repro.core.fptas import fptas_dual, fptas_schedule
from repro.workloads.generators import random_amdahl_instance

EPS = 0.1


@pytest.mark.parametrize("m", [1 << 16, 1 << 24, 10 ** 9])
def test_fptas_full_algorithm(benchmark, m):
    instance = random_amdahl_instance(32, m, seed=13)
    result = benchmark(lambda: fptas_schedule(instance.jobs, m, EPS))
    lb = makespan_lower_bound(instance.jobs, m)
    # OPT >= lb, so (1+eps)-optimality implies this (with a tiny slack for lb < OPT)
    assert result.schedule.makespan <= (1 + EPS) * lb * 1.05
    benchmark.extra_info["m"] = m
    benchmark.extra_info["ratio_vs_lb"] = result.schedule.makespan / lb


@pytest.mark.parametrize("n", [16, 64, 256])
def test_fptas_scaling_in_n(benchmark, n):
    m = 10 ** 9
    instance = random_amdahl_instance(n, m, seed=17)
    result = benchmark(lambda: fptas_schedule(instance.jobs, m, EPS))
    assert result.schedule.makespan > 0
    benchmark.extra_info["n"] = n


def test_fptas_single_dual_step(benchmark):
    """One dual step in isolation: O(n log m) oracle calls."""
    m = 10 ** 9
    instance = random_amdahl_instance(64, m, seed=19)
    lb = makespan_lower_bound(instance.jobs, m)
    schedule = benchmark(lambda: fptas_dual(instance.jobs, m, 1.2 * lb, EPS))
    assert schedule is not None
