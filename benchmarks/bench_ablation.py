"""Ablation benchmarks for the design choices called out in DESIGN.md.

* accuracy sweep: how the dual-step runtime of Algorithm 3 depends on ``eps``
  (the paper predicts a ``1/eps^2``-ish growth of the knapsack size);
* compression threshold: Algorithm 1 with all items treated as incompressible
  (i.e. plain multi-capacity knapsack) versus with compression enabled;
* transformation data structure: heap (Section 4.3) vs buckets (Section 4.3.3);
* knapsack engine inside MRT: dense table vs dominance list.
"""

from __future__ import annotations

import pytest

from repro.core.bounded_algorithm import bounded_dual
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.compressible_algorithm import compressible_dual
from repro.core.mrt import mrt_dual
from repro.workloads.generators import random_mixed_instance


@pytest.fixture(scope="module")
def workload():
    instance = random_mixed_instance(250, 512, seed=23)
    omega = ludwig_tiwari_estimator(instance.jobs, instance.m).omega
    return instance, 1.15 * omega


@pytest.mark.parametrize("eps", [0.05, 0.1, 0.2, 0.4])
def test_ablation_accuracy_sweep(benchmark, workload, eps):
    instance, d = workload
    schedule = benchmark(lambda: bounded_dual(instance.jobs, instance.m, d, eps, transform="heap"))
    benchmark.extra_info["eps"] = eps
    if schedule is not None:
        benchmark.extra_info["num_item_types"] = schedule.metadata.get("num_item_types")


@pytest.mark.parametrize("transform", ["heap", "bucket"])
def test_ablation_transform_data_structure(benchmark, workload, transform):
    instance, d = workload
    benchmark(lambda: bounded_dual(instance.jobs, instance.m, d, 0.2, transform=transform))
    benchmark.extra_info["transform"] = transform


@pytest.mark.parametrize("knapsack", ["dense", "pairs"])
def test_ablation_mrt_knapsack_engine(benchmark, workload, knapsack):
    instance, d = workload
    schedule = benchmark(lambda: mrt_dual(instance.jobs, instance.m, d, knapsack=knapsack))
    benchmark.extra_info["knapsack"] = knapsack
    if schedule is not None:
        assert schedule.makespan <= 1.5 * d * (1 + 1e-9)


def test_ablation_algorithm1_vs_algorithm3(benchmark, workload):
    """Head-to-head of the two accelerated dual steps on the same target."""
    instance, d = workload
    benchmark(lambda: compressible_dual(instance.jobs, instance.m, d, 0.2))
