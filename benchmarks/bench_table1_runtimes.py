"""Table 1 reproduction benchmarks.

The paper's Table 1 compares the running times of the three `(3/2+eps)`-dual
algorithms.  Each benchmark below times **one dual step** of one algorithm on
the same workload; the parametrised variants sweep ``n`` (at fixed ``m``) and
``m`` (at fixed ``n``) so that the scaling shape can be read off the
pytest-benchmark report:

* Section 4.2.5 grows super-linearly in ``n`` (it carries an ``n^2 log`` term);
* Section 4.3 and 4.3.3 grow (near-)linearly in ``n``;
* all three grow only polylogarithmically in ``m``.
"""

from __future__ import annotations

import pytest

from repro.core.bounded_algorithm import bounded_dual
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.compressible_algorithm import compressible_dual
from repro.workloads.generators import random_mixed_instance

EPS = 0.2
D_FACTOR = 1.1


def _workload(n, m, seed=7):
    instance = random_mixed_instance(n, m, seed=seed)
    omega = ludwig_tiwari_estimator(instance.jobs, m).omega
    return instance.jobs, m, D_FACTOR * omega


# --------------------------------------------------------------------- base
def bench_check(schedule):
    assert schedule is not None


class TestTable1BaseCase:
    """One dual step of each algorithm on the shared base workload."""

    def test_section_4_2_5_compressible(self, benchmark, base_instance):
        instance, omega = base_instance
        d = D_FACTOR * omega
        schedule = benchmark(lambda: compressible_dual(instance.jobs, instance.m, d, EPS))
        bench_check(schedule)

    def test_section_4_3_bounded_heap(self, benchmark, base_instance):
        instance, omega = base_instance
        d = D_FACTOR * omega
        schedule = benchmark(lambda: bounded_dual(instance.jobs, instance.m, d, EPS, transform="heap"))
        bench_check(schedule)

    def test_section_4_3_3_bounded_bucket(self, benchmark, base_instance):
        instance, omega = base_instance
        d = D_FACTOR * omega
        schedule = benchmark(lambda: bounded_dual(instance.jobs, instance.m, d, EPS, transform="bucket"))
        bench_check(schedule)


# ---------------------------------------------------------------- n scaling
@pytest.mark.parametrize("n", [100, 200, 400])
class TestTable1ScalingInN:
    M = 1024  # kept below 16*n so the knapsack machinery is exercised

    def test_section_4_2_5_compressible(self, benchmark, n):
        jobs, m, d = _workload(n, self.M)
        benchmark.extra_info["n"] = n
        bench_check(benchmark(lambda: compressible_dual(jobs, m, d, EPS)))

    def test_section_4_3_3_bounded_bucket(self, benchmark, n):
        jobs, m, d = _workload(n, self.M)
        benchmark.extra_info["n"] = n
        bench_check(benchmark(lambda: bounded_dual(jobs, m, d, EPS, transform="bucket")))


# ---------------------------------------------------------------- m scaling
@pytest.mark.parametrize("m", [512, 2048, 4096])
class TestTable1ScalingInM:
    N = 400

    def test_section_4_2_5_compressible(self, benchmark, m):
        jobs, _, d = _workload(self.N, m)
        benchmark.extra_info["m"] = m
        bench_check(benchmark(lambda: compressible_dual(jobs, m, d, EPS)))

    def test_section_4_3_3_bounded_bucket(self, benchmark, m):
        jobs, _, d = _workload(self.N, m)
        benchmark.extra_info["m"] = m
        bench_check(benchmark(lambda: bounded_dual(jobs, m, d, EPS, transform="bucket")))


# -------------------------------------------------------------- eps scaling
@pytest.mark.parametrize("eps", [0.1, 0.2, 0.4])
class TestTable1ScalingInEps:
    def test_section_4_3_bounded_heap(self, benchmark, base_instance, eps):
        instance, omega = base_instance
        d = D_FACTOR * omega
        benchmark.extra_info["eps"] = eps
        bench_check(benchmark(lambda: bounded_dual(instance.jobs, instance.m, d, eps, transform="heap")))
