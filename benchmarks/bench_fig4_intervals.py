"""Figure 4 reproduction benchmark: adaptive normalisation structure.

Builds the geometric capacity grid and the adaptive interval structure used by
Algorithm 2 for several capacities, times the construction plus a batch of
normalisations, and asserts the Eq. (16) / Lemma 14 cardinality bounds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.knapsack.compressible import AdaptiveNormalizer, geom


@pytest.mark.parametrize("capacity", [10_000.0, 10_000_000.0, 1e9])
def test_fig4_interval_structure(benchmark, capacity):
    rho = 0.1
    alpha_min = 10.0
    n_bar = 200
    values = np.random.default_rng(1).uniform(alpha_min, capacity, size=2000)

    def build_and_normalize():
        grid = geom(alpha_min / (1.0 - rho), capacity, 1.0 / (1.0 - rho))
        normalizer = AdaptiveNormalizer(grid, alpha_min, rho, n_bar)
        total = 0.0
        for v in values:
            total += normalizer.normalize(float(v))
        return grid, normalizer, total

    grid, normalizer, _ = benchmark(build_and_normalize)

    # Lemma 14: the geometric grid has O(log(C)/rho) entries
    assert len(grid) <= 2.0 * math.log(capacity / alpha_min) / (1.0 / (1.0 - rho) - 1.0) + 2
    # Eq. (16): every capacity interval has O(n_bar) cells
    assert all(c <= (1 - rho) * n_bar + 2 for c in normalizer.subinterval_counts())
    benchmark.extra_info["grid_size"] = len(grid)
    benchmark.extra_info["max_cells"] = max(normalizer.subinterval_counts())
