#!/usr/bin/env python3
"""A day in the life of a cluster: online arrivals vs offline planning.

Scenario: jobs arrive at a 96-processor cluster over a simulated day.  The
operator can either

* dispatch them **online** as they arrive (FCFS list scheduling with the
  processor counts suggested by the Ludwig–Tiwari estimator), or
* collect the batch and plan it **offline** with the paper's `(3/2+ε)`
  algorithm (Section 4.3) or the FPTAS-backed auto selection.

The example runs all three, compares them with `repro.analysis`, and persists
the workload and the best schedule with `repro.io` so the plan can be shipped
to a resource manager.

Run with::

    python examples/online_cluster_day.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import compare_schedules
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.scheduler import schedule_moldable
from repro.io import load_schedule, save_instance, save_schedule
from repro.simulator.list_sim import OnlineListScheduler
from repro.workloads.generators import random_mixed_instance


def main() -> None:
    m = 96
    instance = random_mixed_instance(120, m, seed=7)
    rng = np.random.default_rng(7)
    # arrivals spread over an 8-hour shift (in the same abstract time unit)
    releases = np.sort(rng.uniform(0.0, 480.0, size=instance.n))

    # ---------------------------------------------------------------- online
    estimate = ludwig_tiwari_estimator(instance.jobs, m)
    online = OnlineListScheduler(m)
    for job, release in zip(instance.jobs, releases):
        online.submit(job, estimate.allotment[job], release=float(release))
    online_schedule = online.run()

    # --------------------------------------------------------------- offline
    offline_bounded = schedule_moldable(instance.jobs, m, eps=0.1, algorithm="bounded").schedule
    offline_auto = schedule_moldable(instance.jobs, m, eps=0.1, algorithm="auto").schedule

    # ------------------------------------------------------------ comparison
    rows = compare_schedules(
        {
            "online FCFS (with releases)": online_schedule,
            "offline bounded (3/2+eps)": offline_bounded,
            "offline auto": offline_auto,
        },
        instance.jobs,
        m,
    )
    print(f"{'strategy':<30} {'makespan':>10} {'vs best':>8} {'vs LB':>7} {'util':>6} {'work infl.':>11}")
    print("-" * 78)
    for row in rows:
        print(
            f"{row.label:<30} {row.makespan:>10.1f} {row.ratio_vs_best:>8.3f} "
            f"{row.ratio_vs_lower_bound:>7.3f} {row.utilization:>6.2f} {row.work_inflation:>11.3f}"
        )
    print(
        "\n(The online schedule respects release times, so its makespan is not directly"
        "\n comparable to the offline plans; the table shows the price of dispatching"
        "\n immediately versus planning the whole batch.)"
    )

    # --------------------------------------------------------- persist plans
    with tempfile.TemporaryDirectory() as tmp:
        instance_path = Path(tmp) / "workload.json"
        plan_path = Path(tmp) / "plan.json"
        save_instance(instance_path, instance.jobs, m, metadata={"scenario": "online_cluster_day"})
        best = rows[0]
        best_schedule = {
            "online FCFS (with releases)": online_schedule,
            "offline bounded (3/2+eps)": offline_bounded,
            "offline auto": offline_auto,
        }[best.label]
        save_schedule(plan_path, best_schedule)
        reloaded = load_schedule(plan_path, instance.jobs)
        print(f"\nsaved workload to   {instance_path.name} ({instance_path.stat().st_size} bytes)")
        print(f"saved best plan to  {plan_path.name} ({plan_path.stat().st_size} bytes)")
        print(f"reloaded plan makespan matches: {abs(reloaded.makespan - best_schedule.makespan) < 1e-9}")


if __name__ == "__main__":
    main()
