#!/usr/bin/env python3
"""A day in the life of a cluster: online arrivals with incremental re-planning.

Scenario: jobs arrive at a 96-processor cluster over a simulated day.  The
operator dispatches them with :class:`repro.online.OnlineScheduler`: every
arrival epoch commits the work that already finished, lets running jobs drain,
and re-plans everything still pending with the paper's moldable-job algorithms
— re-using the previous epoch's γ-bisection bracket as a warm start.

The example

* runs the same arrival stream under all three epoch policies
  (``immediate``, ``quantum``, ``count``),
* re-runs the quantum policy cold (``warm_start=False``) to show the warm
  start changes *nothing* about the schedule while probing far fewer γ values,
* compares every stitched schedule against the clairvoyant offline plan with
  a **release-aware** lower bound (`repro.analysis.compare_schedules`), and
* persists the workload *including release times* with `repro.io`
  (format version 2) and round-trips it.

Run with::

    python examples/online_cluster_day.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import compare_schedules
from repro.io import load_instance, save_instance
from repro.online import OnlineScheduler
from repro.workloads.generators import random_arrivals_instance


def main() -> None:
    m = 96
    instance = random_arrivals_instance(120, m, seed=7, base="mixed")
    span = instance.spec.params["span"]
    print(
        f"workload: {instance.n} jobs arriving over [0, {span:.1f}] "
        f"on a {m}-processor cluster\n"
    )

    # ------------------------------------------------------- epoch policies
    runs = {}
    for label, kwargs in (
        ("immediate", {"policy": "immediate"}),
        ("quantum", {"policy": "quantum", "quantum": span / 8}),
        ("count(12)", {"policy": "count", "batch_size": 12}),
    ):
        runs[label] = OnlineScheduler(
            m, eps=0.1, algorithm="two_approx", **kwargs
        ).run(instance.arrivals)

    # warm start is a pure accelerator: the cold run must stitch the exact
    # same schedule, just with more gamma probes per re-plan
    cold = OnlineScheduler(
        m, eps=0.1, algorithm="two_approx", policy="quantum", quantum=span / 8,
        warm_start=False,
    ).run(instance.arrivals)
    warm = runs["quantum"]
    identical = [
        (e.job.name, e.start, tuple(e.spans)) for e in warm.schedule.entries
    ] == [(e.job.name, e.start, tuple(e.spans)) for e in cold.schedule.entries]
    print("warm vs cold re-planning (quantum policy):")
    print(f"  schedules bit-identical: {identical}")
    print(
        f"  gamma probes: {warm.report.gamma_probes} warm vs "
        f"{cold.report.gamma_probes} cold "
        f"({cold.report.gamma_probes / max(warm.report.gamma_probes, 1):.1f}x reduction)\n"
    )

    # ------------------------------------------------------------ comparison
    schedules = {f"online {label}": r.schedule for label, r in runs.items()}
    schedules["clairvoyant offline"] = warm.offline.schedule
    rows = compare_schedules(
        schedules, instance.jobs, m, releases=instance.releases
    )
    print(f"{'strategy':<24} {'makespan':>10} {'vs best':>8} {'vs LB':>7} {'util':>6}")
    print("-" * 60)
    for row in rows:
        print(
            f"{row.label:<24} {row.makespan:>10.1f} {row.ratio_vs_best:>8.3f} "
            f"{row.ratio_vs_lower_bound:>7.3f} {row.utilization:>6.2f}"
        )
    print(
        "\n(The clairvoyant plan ignores releases — it is the regret baseline,"
        "\n not a feasible dispatch.  The online rows all respect releases and"
        "\n are measured against the release-aware lower bound.)\n"
    )

    print("regret report (quantum policy):")
    for line in warm.report.summary_lines():
        print(f"  {line}")

    # --------------------------------------------------------- persist plans
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.json"
        save_instance(
            path,
            instance.jobs,
            m,
            metadata={"scenario": "online_cluster_day"},
            releases=instance.releases,
        )
        _, m2, _, releases2 = load_instance(path, with_releases=True)
        print(
            f"\nsaved workload with releases to {path.name} "
            f"({path.stat().st_size} bytes)"
        )
        print(
            "release round-trip exact: "
            f"{m2 == m and releases2 == instance.releases}"
        )


if __name__ == "__main__":
    main()
