#!/usr/bin/env python3
"""Theorem 1 demo: the 4-Partition reduction and the Figure 1 schedule.

The example generates a planted yes-instance and a no-instance of 4-Partition,
applies the paper's reduction, and shows that

* the yes-instance maps to a scheduling instance that can be scheduled with
  makespan exactly ``n*B`` (and the schedule looks exactly like Figure 1:
  every machine runs four single-processor jobs back to back),
* the schedule maps back to a valid 4-partition,
* the no-instance cannot be scheduled within the same target (verified both by
  the exact 4-Partition solver and by the approximation algorithms' certified
  lower bounds).

Run with::

    python examples/hardness_reduction_demo.py
"""

from __future__ import annotations

from repro.core.bounds import trivial_lower_bound
from repro.core.validation import assert_valid_schedule
from repro.hardness.four_partition import (
    random_no_instance,
    random_yes_instance,
    solve_four_partition,
    verify_four_partition_solution,
)
from repro.hardness.reduction import partition_from_schedule, reduce_to_scheduling, schedule_from_partition
from repro.simulator.gantt import render_gantt


def main() -> None:
    groups = 5

    # ------------------------------------------------------------- yes case
    yes = random_yes_instance(groups, seed=42)
    reduced = reduce_to_scheduling(yes)
    print(f"yes-instance: {len(yes.numbers)} numbers, B = {yes.bound}, m = n = {groups}")
    print(f"target makespan d = n*B = {reduced.target_makespan:.0f}")

    solution = solve_four_partition(yes)
    assert solution is not None, "planted yes-instance must be solvable"
    schedule = schedule_from_partition(reduced, solution)
    assert_valid_schedule(schedule, reduced.jobs, max_makespan=reduced.target_makespan)
    print(f"built the Figure 1 schedule: makespan = {schedule.makespan:.0f} (= d)")

    back = partition_from_schedule(reduced, schedule)
    assert verify_four_partition_solution(yes, back)
    print("mapping the schedule back yields a valid 4-partition  ✔\n")

    print(render_gantt(schedule, max_rows=25))
    print()

    # -------------------------------------------------------------- no case
    no = random_no_instance(groups, seed=43)
    reduced_no = reduce_to_scheduling(no)
    print(f"no-instance: exact solver says solvable = {solve_four_partition(no) is not None}")
    lb = trivial_lower_bound(reduced_no.jobs, reduced_no.m)
    print(
        f"scheduling lower bound of the reduced instance: {lb:.0f} "
        f"> target {reduced_no.target_makespan:.0f}"
        if lb > reduced_no.target_makespan
        else f"scheduling lower bound {lb:.0f} (target {reduced_no.target_makespan:.0f})"
    )
    print("=> no schedule with makespan n*B exists, matching the 4-Partition answer.")


if __name__ == "__main__":
    main()
