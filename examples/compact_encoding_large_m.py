#!/usr/bin/env python3
"""Compact input encodings: scheduling on a machine with 10^9 processors.

The central point of the paper: when processing times are given by an oracle
(compact encoding) rather than an explicit table of length ``m``, the machine
count can be astronomically large, and only algorithms whose running time is
polynomial in ``log m`` remain usable.  This example

* defines jobs through analytic oracles (no table of 10^9 entries anywhere),
* schedules them with the FPTAS (Theorem 2) and the 2-approximation,
* shows that the number of oracle calls grows with ``log m``, not ``m``.

Run with::

    python examples/compact_encoding_large_m.py
"""

from __future__ import annotations

import time

from repro import OracleJob, fptas_schedule, makespan_lower_bound, two_approximation
from repro.core.job import MoldableJob


class CountingJob(OracleJob):
    """An oracle job that counts how often its oracle is evaluated."""

    __slots__ = ("calls",)

    def __init__(self, name: str, func) -> None:
        super().__init__(name, func)
        self.calls = 0

    def _time(self, k: int) -> float:
        self.calls += 1
        return self.func(k)


def build_jobs(n: int) -> list[MoldableJob]:
    jobs: list[MoldableJob] = []
    for i in range(n):
        serial = 0.5 + 0.05 * i          # seconds of inherently sequential work
        parallel = 500.0 + 20.0 * i      # seconds of perfectly parallel work
        startup = 1e-6 * (i % 7 + 1)     # per-processor startup cost

        def oracle(k, serial=serial, parallel=parallel, startup=startup):
            return serial + parallel / k + startup * (k ** 0.5)

        jobs.append(CountingJob(f"sim-{i:02d}", oracle))
    return jobs


def main() -> None:
    n = 48
    m = 10 ** 9
    eps = 0.1
    jobs = build_jobs(n)

    print(f"{n} oracle-encoded jobs on m = {m:,} processors (eps = {eps})\n")

    start = time.perf_counter()
    result = fptas_schedule(jobs, m, eps)
    fptas_time = time.perf_counter() - start
    lb = makespan_lower_bound(jobs, m)
    total_calls = sum(job.calls for job in jobs)  # type: ignore[attr-defined]

    print("FPTAS (Theorem 2)")
    print(f"  makespan            : {result.schedule.makespan:.4f}")
    print(f"  lower bound         : {lb:.4f}")
    print(f"  ratio vs lower bound: {result.schedule.makespan / lb:.4f}  (guarantee {1 + eps})")
    print(f"  wall-clock time     : {fptas_time:.3f} s")
    print(f"  oracle calls        : {total_calls:,}  "
          f"(~{total_calls / n:.0f} per job — logarithmic in m, m itself is {m:,})")

    for job in jobs:
        job.calls = 0  # type: ignore[attr-defined]
    start = time.perf_counter()
    two = two_approximation(jobs, m)
    two_time = time.perf_counter() - start
    total_calls = sum(job.calls for job in jobs)  # type: ignore[attr-defined]

    print("\n2-approximation (Ludwig–Tiwari estimator + list scheduling)")
    print(f"  makespan            : {two.makespan:.4f}")
    print(f"  ratio vs lower bound: {two.makespan / lb:.4f}  (guarantee 2)")
    print(f"  wall-clock time     : {two_time:.3f} s")
    print(f"  oracle calls        : {total_calls:,}")


if __name__ == "__main__":
    main()
