#!/usr/bin/env python3
"""A bad day on the cluster: machine failures, job kills, and recovery.

Scenario: a 64-processor cluster runs an offline `(3/2+eps)` plan for a
50-job batch.  Mid-run, machines start failing — some permanently, some
with a repair crew on the way — and an operator kills a couple of jobs.
The example:

1. builds a seeded :class:`~repro.resilience.FaultPlan` (the same
   declarative format the fuzz harness uses, JSON-serialisable so a real
   outage can be replayed),
2. replays the fault-free plan against it with
   :func:`~repro.resilience.execute_with_faults` to see what the outage
   alone would cost (which runs finish, which are cut, how much work burns),
3. recovers with :func:`~repro.resilience.recover_with_faults`: every fault
   epoch re-plans the survivors on the surviving machines (γ-oracle caches
   warm-started across epochs), and the stitched schedule is validated and
   replayed through the discrete-event simulator.

Run with::

    python examples/cluster_with_failures.py
"""

from __future__ import annotations

from repro.core.scheduler import schedule_moldable
from repro.core.validation import validate_schedule
from repro.resilience import (
    execute_with_faults,
    random_fault_plan,
    recover_with_faults,
)
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import random_mixed_instance


def main() -> None:
    m = 64
    instance = random_mixed_instance(50, m, seed=13)
    baseline = schedule_moldable(instance.jobs, m, eps=0.1, algorithm="bounded").schedule
    print(f"fault-free plan: {instance.n} jobs on {m} machines, "
          f"makespan {baseline.makespan:.1f}")

    # ------------------------------------------------------------ fault plan
    plan = random_fault_plan(
        [job.name for job in instance.jobs],
        m,
        seed=41,
        failures=4,
        kills=2,
        horizon=baseline.makespan,
        transient_fraction=0.5,
    )
    print(f"\nfault plan ({len(plan)} events):")
    for failure in plan.failures:
        kind = "permanent" if failure.permanent else f"until t={failure.down_until:.1f}"
        print(f"  t={failure.time:6.1f}  machines [{failure.first}, "
              f"{failure.first + failure.count}) fail ({kind})")
    for kill in plan.kills:
        print(f"  t={kill.time:6.1f}  kill job {kill.job!r}")

    # --------------------------------------- what the outage alone would cost
    execution = execute_with_faults(baseline, plan)
    print(f"\nwithout recovery: {len(execution.completed)} runs finish, "
          f"{len(execution.lost)} are cut "
          f"({execution.work_lost:.1f} work units burned), "
          f"{len(execution.unfinished_jobs)} jobs never complete")

    # ---------------------------------------------------------------- recover
    # two_approx re-plans through the dual approximation, so the per-epoch
    # γ-oracles (primed from the previous epoch's caches) actually show up
    # in the probe accounting below
    result = recover_with_faults(instance.jobs, m, plan, eps=0.1, algorithm="two_approx")
    print("\nrecovery:")
    for line in result.report.summary_lines():
        print(f"  {line}")

    # ------------------------------------------------- independent re-checks
    verdict = validate_schedule(result.schedule, result.survivors)
    trace = simulate_schedule(result.schedule, backend="scalar")
    print(f"\nstitched schedule validates on survivors: {verdict.ok}")
    print(f"simulator replay matches: {trace.makespan == result.schedule.makespan}")
    replay = type(plan).from_json(plan.to_json())
    print(f"fault plan JSON roundtrip: {replay == plan}")


if __name__ == "__main__":
    main()
