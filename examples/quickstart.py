#!/usr/bin/env python3
"""Quickstart: schedule a batch of moldable jobs on a large machine.

This example builds a small workload of Amdahl's-law jobs, schedules it with
the library's automatic algorithm selection (the FPTAS of Theorem 2 here,
because the machine count is huge compared to the number of jobs), validates
the result, and prints a textual Gantt chart.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AmdahlJob, assert_valid_schedule, schedule_moldable
from repro.simulator.engine import simulate_schedule
from repro.simulator.gantt import render_gantt


def main() -> None:
    # --- 1. describe the workload -----------------------------------------
    # 24 parallel jobs; each has a sequential fraction, so adding processors
    # helps less and less (the jobs are monotone moldable jobs).
    jobs = [
        AmdahlJob(f"task-{i:02d}", t1=20.0 + 3.0 * i, serial_fraction=0.02 + 0.01 * (i % 5))
        for i in range(24)
    ]

    # --- 2. schedule --------------------------------------------------------
    # A large cluster: 2^20 processors.  "auto" picks the FPTAS (Theorem 2)
    # because m >= 8n/eps; the result is within (1+eps) of the optimum.
    m = 1 << 20
    result = schedule_moldable(jobs, m=m, eps=0.1, algorithm="auto")

    print(f"algorithm          : {result.algorithm}")
    print(f"makespan           : {result.makespan:.3f}")
    print(f"certified lower bnd: {result.lower_bound:.3f}")
    print(f"certified ratio    : {result.certified_ratio:.3f}  (guarantee {result.guarantee})")

    # --- 3. verify ----------------------------------------------------------
    assert_valid_schedule(result.schedule, jobs)
    trace = simulate_schedule(result.schedule)
    print(f"peak busy machines : {trace.peak_busy} / {m}")
    print(f"avg utilisation    : {trace.average_utilization(m) * 100:.1f} %")

    # --- 4. inspect ---------------------------------------------------------
    print()
    print(render_gantt(result.schedule, max_rows=24))


if __name__ == "__main__":
    main()
