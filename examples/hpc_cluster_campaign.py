#!/usr/bin/env python3
"""Scheduling a mixed HPC campaign and comparing all algorithms.

Scenario: a departmental cluster (m = 256 processors) must run a campaign of
180 jobs of three kinds — Amdahl-limited data analyses, power-law-scaling
simulations and communication-bound solvers.  The example

* builds the workload from the library's generators,
* runs every scheduling algorithm of the paper on it,
* reports makespans, certified ratios and wall-clock scheduling times,
* executes the best schedule on the discrete-event simulator and prints its
  utilisation profile.

Run with::

    python examples/hpc_cluster_campaign.py
"""

from __future__ import annotations

import time

from repro import makespan_lower_bound, schedule_moldable
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import random_mixed_instance

ALGORITHMS = ("two_approx", "mrt", "compressible", "bounded", "bounded_linear")


def main() -> None:
    m = 256
    instance = random_mixed_instance(180, m, seed=2024)
    lower = makespan_lower_bound(instance.jobs, m)
    print(f"campaign: {instance.n} jobs on {m} processors")
    print(f"certified makespan lower bound: {lower:.2f}\n")

    print(f"{'algorithm':<16} {'makespan':>10} {'ratio vs LB':>12} {'sched time [s]':>15}")
    print("-" * 58)
    results = {}
    for algorithm in ALGORITHMS:
        start = time.perf_counter()
        result = schedule_moldable(instance.jobs, m, eps=0.1, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        results[algorithm] = result
        print(f"{algorithm:<16} {result.makespan:>10.2f} {result.certified_ratio:>12.3f} {elapsed:>15.3f}")

    best_name, best = min(results.items(), key=lambda kv: kv[1].makespan)
    print(f"\nbest schedule: {best_name} (makespan {best.makespan:.2f})")

    trace = simulate_schedule(best.schedule)
    print(f"peak busy processors : {trace.peak_busy} / {m}")
    print(f"average utilisation  : {trace.average_utilization(m) * 100:.1f} %")
    print(f"start events executed: {trace.events}")

    # a coarse utilisation timeline (10 buckets)
    horizon = trace.makespan
    buckets = 10
    print("\nutilisation timeline:")
    profile = trace.utilization_profile
    for b in range(buckets):
        t0, t1 = horizon * b / buckets, horizon * (b + 1) / buckets
        busy_samples = [busy for t, busy in profile if t0 <= t < t1]
        level = (sum(busy_samples) / len(busy_samples) / m) if busy_samples else None
        bar = "#" * int(40 * level) if level is not None else "(no change points)"
        label = f"{level * 100:5.1f}%" if level is not None else "      "
        print(f"  [{t0:8.1f}, {t1:8.1f})  {label} {bar}")


if __name__ == "__main__":
    main()
