#!/usr/bin/env python3
"""Scheduling a mixed HPC campaign and comparing all algorithms.

Scenario: a departmental cluster (m = 256 processors) must run a campaign of
180 jobs of three kinds — Amdahl-limited data analyses, power-law-scaling
simulations and communication-bound solvers.  The example

* builds the workload from the library's generators,
* runs every scheduling algorithm of the paper on it **as a fleet**: one
  :class:`repro.serve.FleetInstance` per algorithm, packed through
  fault-isolated worker processes by :func:`repro.serve.schedule_many`
  (a crash or hang in one solver can no longer take down the comparison),
* reports makespans, certified ratios and wall-clock scheduling times,
* executes the best schedule on the discrete-event simulator and prints its
  utilisation profile.

Run with::

    python examples/hpc_cluster_campaign.py
"""

from __future__ import annotations

import multiprocessing

from repro import makespan_lower_bound
from repro.serve import FleetInstance, ServePolicy, schedule_many
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import random_mixed_instance

ALGORITHMS = ("two_approx", "mrt", "compressible", "bounded", "bounded_linear")


def _mp_context() -> str:
    try:  # fork is markedly faster to start; spawn is the portable fallback
        multiprocessing.get_context("fork")
        return "fork"
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return "spawn"


def main() -> None:
    m = 256
    instance = random_mixed_instance(180, m, seed=2024)
    lower = makespan_lower_bound(instance.jobs, m)
    print(f"campaign: {instance.n} jobs on {m} processors")
    print(f"certified makespan lower bound: {lower:.2f}\n")

    # One fleet instance per algorithm over the *same* workload: the fleet
    # solves them in parallel worker processes and always returns a complete
    # report — a solver failure would surface as a quarantined outcome with
    # its traceback, not as an exception here.
    fleet = [
        FleetInstance(name=algorithm, jobs=instance.jobs, m=m, eps=0.1, algorithm=algorithm)
        for algorithm in ALGORITHMS
    ]
    report = schedule_many(
        fleet,
        policy=ServePolicy(timeout=120.0, max_retries=1),
        mp_context=_mp_context(),
    )

    print(f"{'algorithm':<16} {'makespan':>10} {'ratio vs LB':>12} {'sched time [s]':>15}")
    print("-" * 58)
    solved = {}
    for algorithm in ALGORITHMS:
        outcome = report.outcome(algorithm)
        if not outcome.solved:
            print(f"{algorithm:<16} {'QUARANTINED':>10}  ({outcome.error})")
            continue
        solved[algorithm] = outcome
        elapsed = outcome.attempts[-1].seconds
        print(
            f"{algorithm:<16} {outcome.makespan:>10.2f} "
            f"{outcome.certified_ratio:>12.3f} {elapsed:>15.3f}"
        )
    print(
        f"\nfleet: {len(report.solved)} solved, {len(report.degraded)} degraded, "
        f"{len(report.quarantined)} quarantined in {report.wall_seconds:.2f}s"
    )

    best_name, best = min(solved.items(), key=lambda kv: kv[1].makespan)
    print(f"best schedule: {best_name} (makespan {best.makespan:.2f})")

    # outcomes carry the schedule as data; re-attach it to the job objects
    # (re-validating placements) before handing it to the simulator
    schedule = best.schedule(instance.jobs, validate=True)
    trace = simulate_schedule(schedule)
    print(f"peak busy processors : {trace.peak_busy} / {m}")
    print(f"average utilisation  : {trace.average_utilization(m) * 100:.1f} %")
    print(f"start events executed: {trace.events}")

    # a coarse utilisation timeline (10 buckets)
    horizon = trace.makespan
    buckets = 10
    print("\nutilisation timeline:")
    profile = trace.utilization_profile
    for b in range(buckets):
        t0, t1 = horizon * b / buckets, horizon * (b + 1) / buckets
        busy_samples = [busy for t, busy in profile if t0 <= t < t1]
        level = (sum(busy_samples) / len(busy_samples) / m) if busy_samples else None
        bar = "#" * int(40 * level) if level is not None else "(no change points)"
        label = f"{level * 100:5.1f}%" if level is not None else "      "
        print(f"  [{t0:8.1f}, {t1:8.1f})  {label} {bar}")


if __name__ == "__main__":
    main()
