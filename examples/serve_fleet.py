#!/usr/bin/env python3
"""Fleet serving under injected chaos, with journal resume.

Walkthrough of :mod:`repro.serve`, the fault-isolated batch scheduler:

1. a fleet of 12 independent mixed-workload instances is packed through
   worker subprocesses with seeded kill/hang/raise **chaos injection** — the
   report still comes back complete, with every instance accounted for in
   exactly one of solved / degraded / quarantined;
2. each outcome's attempt trail is printed (which failures hit, which
   degradation-ladder rung finally answered);
3. the same fleet is re-run against the outcome **journal** the first run
   appended to: every decided instance is resumed from disk without being
   solved again — that is the crash-recovery path (a parent killed mid-fleet
   resumes where it left off).

Run with::

    python examples/serve_fleet.py
"""

from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path

from repro.serve import ChaosPolicy, FleetInstance, ServePolicy, schedule_many
from repro.workloads.generators import random_mixed_instance

FLEET = 12
N, M = 24, 48
SEED = 23


def _mp_context() -> str:
    try:  # fork is markedly faster to start; spawn is the portable fallback
        multiprocessing.get_context("fork")
        return "fork"
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return "spawn"


def build_fleet() -> list:
    return [
        FleetInstance(
            name=f"batch-{i:02d}",
            jobs=random_mixed_instance(N, M, seed=SEED + i).jobs,
            m=M,
            algorithm="two_approx",
        )
        for i in range(FLEET)
    ]


def main() -> None:
    instances = build_fleet()
    # ~20% of attempts are sabotaged: a third each of SIGKILL mid-solve,
    # hang-past-deadline and injected exception.  The seed makes the chaos —
    # and therefore every status below — reproducible.
    chaos = ChaosPolicy(seed=SEED, kill_prob=0.07, hang_prob=0.07, raise_prob=0.07)
    policy = ServePolicy(timeout=10.0, max_retries=3, backoff_base=0.01, seed=SEED)

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "fleet-journal.jsonl"

        print(f"fleet of {FLEET} instances ({N} jobs on {M} machines each), 20% chaos")
        report = schedule_many(
            instances,
            policy=policy,
            chaos=chaos,
            max_workers=4,
            mp_context=_mp_context(),
            journal=journal,
        )
        print(
            f"first run : {len(report.solved)} solved, {len(report.degraded)} degraded, "
            f"{len(report.quarantined)} quarantined in {report.wall_seconds:.2f}s "
            f"(complete={report.complete})"
        )

        print("\nattempt trails (failure kinds, then the rung that answered):")
        for outcome in report.outcomes:
            trail = " -> ".join(
                f"{a.outcome}@{a.step_label}" for a in outcome.attempts
            )
            tag = outcome.status + (" (ladder rung %d)" % outcome.ladder_step if outcome.degraded else "")
            print(f"  {outcome.instance}: {tag:<28} {trail}")

        # Crash-recovery path: a second run over the same fleet and journal.
        # Every instance whose outcome is already journalled (fingerprint
        # match) is resumed from disk — nothing is solved twice.
        lines_before = journal.read_text().count("\n")
        resumed_report = schedule_many(
            instances,
            policy=policy,
            chaos=chaos,
            max_workers=4,
            mp_context=_mp_context(),
            journal=journal,
        )
        lines_after = journal.read_text().count("\n")
        print(
            f"\nresume run: {len(resumed_report.resumed)} of {FLEET} resumed from the "
            f"journal in {resumed_report.wall_seconds:.2f}s "
            f"(journal grew by {lines_after - lines_before} lines)"
        )
        same = all(
            report.outcome(o.instance).status == o.status
            and report.outcome(o.instance).makespan == o.makespan
            for o in resumed_report.outcomes
        )
        print(f"resumed outcomes identical to first run: {same}")


if __name__ == "__main__":
    main()
