#!/usr/bin/env python3
"""Scaling study: who wins as the machine count grows?

Reproduces, at example scale, the crossover behaviour motivating the paper:
the original MRT algorithm pays O(n*m) per dual step (its knapsack capacity is
m), while the paper's algorithms pay only polylog(m).  The example sweeps m,
times one dual step of each algorithm, and prints the crossover table.

Run with::

    python examples/algorithm_scaling_study.py
"""

from __future__ import annotations

import time

from repro.core.bounded_algorithm import bounded_dual
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.compressible_algorithm import compressible_dual
from repro.core.mrt import mrt_dual
from repro.workloads.generators import random_mixed_instance


def time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main() -> None:
    n = 120
    eps = 0.2
    print(f"one (3/2+eps)-dual step, n = {n}, eps = {eps}\n")
    header = f"{'m':>8} {'MRT O(nm) [s]':>15} {'Alg.1 (4.2.5) [s]':>18} {'Alg.3 (4.3.3) [s]':>18} {'speedup':>9}"
    print(header)
    print("-" * len(header))

    for exponent in range(6, 15, 2):
        m = 1 << exponent
        instance = random_mixed_instance(n, m, seed=11)
        omega = ludwig_tiwari_estimator(instance.jobs, m).omega
        d = 1.1 * omega

        t_mrt = time_once(lambda: mrt_dual(instance.jobs, m, d, knapsack="dense"))
        t_alg1 = time_once(lambda: compressible_dual(instance.jobs, m, d, eps))
        t_alg3 = time_once(lambda: bounded_dual(instance.jobs, m, d, eps, transform="bucket"))
        speedup = t_mrt / min(t_alg1, t_alg3)
        print(f"{m:>8} {t_mrt:>15.4f} {t_alg1:>18.4f} {t_alg3:>18.4f} {speedup:>8.1f}x")

    print(
        "\nThe MRT column grows roughly linearly with m, the other two stay flat;"
        "\nfor m >= 16 n they switch to the FPTAS dual step and become even faster."
    )


if __name__ == "__main__":
    main()
