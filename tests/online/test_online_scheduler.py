"""OnlineScheduler: epoch policies, release safety, warm starts, regret."""

import math

import pytest

from repro.core.bounds import makespan_lower_bound, release_aware_lower_bound
from repro.core.job import TabulatedJob
from repro.core.validation import validate_schedule
from repro.online import Arrival, OnlineScheduler, EPOCH_POLICIES
from repro.workloads.generators import random_arrivals_instance, random_mixed_instance


def constant_job(name: str, duration: float) -> TabulatedJob:
    return TabulatedJob(name, [duration])


def entry_tuples(schedule):
    return [(e.job.name, e.start, tuple(e.spans)) for e in schedule.entries]


@pytest.fixture(scope="module")
def arrivals_instance():
    return random_arrivals_instance(24, 32, seed=11)


class TestConstruction:
    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="unknown epoch policy"):
            OnlineScheduler(4, policy="nope")

    def test_quantum_policy_needs_quantum(self):
        with pytest.raises(ValueError, match="quantum"):
            OnlineScheduler(4, policy="quantum")
        with pytest.raises(ValueError, match="quantum"):
            OnlineScheduler(4, policy="immediate", quantum=2.0)

    def test_count_policy_needs_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            OnlineScheduler(4, policy="count")
        with pytest.raises(ValueError, match="batch_size"):
            OnlineScheduler(4, policy="immediate", batch_size=3)

    def test_rejects_negative_release(self):
        with pytest.raises(ValueError, match="finite and >= 0"):
            Arrival(constant_job("a", 1.0), -1.0)

    def test_rejects_duplicate_job_object(self):
        job = constant_job("a", 1.0)
        with pytest.raises(ValueError, match="submitted twice"):
            OnlineScheduler(4).run([(job, 0.0), (job, 1.0)])


class TestEpochPolicies:
    def test_immediate_one_epoch_per_distinct_release(self):
        jobs = [constant_job(f"j{i}", 2.0) for i in range(4)]
        releases = [0.0, 0.0, 1.5, 3.0]
        result = OnlineScheduler(8, policy="immediate").run(list(zip(jobs, releases)))
        assert [e.time for e in result.report.epochs] == [0.0, 1.5, 3.0]
        assert [e.arrivals for e in result.report.epochs] == [2, 1, 1]

    def test_quantum_defers_to_the_next_tick(self):
        jobs = [constant_job(f"j{i}", 2.0) for i in range(4)]
        releases = [0.0, 0.4, 1.1, 1.9]
        result = OnlineScheduler(8, policy="quantum", quantum=1.0).run(list(zip(jobs, releases)))
        # 0.0 stays at tick 0; 0.4 -> 1.0; 1.1 and 1.9 -> 2.0
        assert [e.time for e in result.report.epochs] == [0.0, 1.0, 2.0]
        assert [e.arrivals for e in result.report.epochs] == [1, 1, 2]
        # deferred dispatch still respects releases (starts >= release)
        starts = {e.job.name: e.start for e in result.schedule.entries}
        for job, release in zip(jobs, releases):
            assert starts[job.name] >= release - 1e-9

    def test_count_batches_fire_at_the_last_release(self):
        jobs = [constant_job(f"j{i}", 2.0) for i in range(5)]
        releases = [0.0, 1.0, 2.0, 3.0, 4.0]
        result = OnlineScheduler(8, policy="count", batch_size=2).run(list(zip(jobs, releases)))
        assert [e.time for e in result.report.epochs] == [1.0, 3.0, 4.0]
        assert [e.arrivals for e in result.report.epochs] == [2, 2, 1]

    def test_unsorted_submission_order_is_normalised(self):
        jobs = [constant_job(f"j{i}", 2.0) for i in range(3)]
        releases = [4.0, 0.0, 2.0]
        result = OnlineScheduler(8).run(list(zip(jobs, releases)))
        assert [a.release for a in result.arrivals] == [0.0, 2.0, 4.0]

    def test_policies_are_exported(self):
        assert EPOCH_POLICIES == ("immediate", "quantum", "count")


class TestScheduleQuality:
    def test_validator_clean_and_release_respecting(self, arrivals_instance):
        inst = arrivals_instance
        result = OnlineScheduler(inst.m, eps=0.25).run(inst.arrivals)
        assert validate_schedule(result.schedule, inst.jobs).ok
        release_of = dict(zip((j.name for j in inst.jobs), inst.releases))
        for entry in result.schedule.entries:
            assert entry.start >= release_of[entry.job.name] - 1e-9

    def test_makespan_at_least_the_release_aware_lower_bound(self, arrivals_instance):
        inst = arrivals_instance
        result = OnlineScheduler(inst.m, eps=0.25).run(inst.arrivals)
        assert result.report.lower_bound <= result.makespan + 1e-9
        assert result.report.ratio_vs_lower_bound >= 1.0 - 1e-12

    def test_all_releases_zero_matches_offline_plan(self):
        inst = random_mixed_instance(12, 16, seed=3)
        result = OnlineScheduler(16, eps=0.25, algorithm="bounded").run(
            [(j, 0.0) for j in inst.jobs]
        )
        # one epoch at t=0, nothing to regret beyond the solve itself
        assert len(result.report.epochs) == 1
        assert result.makespan == result.report.offline_makespan
        assert result.report.regret == 0.0

    def test_empty_stream(self):
        result = OnlineScheduler(8).run([])
        assert result.makespan == 0.0
        assert result.report.epochs == []
        assert result.report.regret == 0.0

    def test_single_machine_serialises_behind_releases(self):
        a, b = constant_job("a", 5.0), constant_job("b", 5.0)
        result = OnlineScheduler(1).run([(a, 0.0), (b, 5.0)])
        starts = {e.job.name: e.start for e in result.schedule.entries}
        assert starts == {"a": 0.0, "b": 5.0}
        assert result.makespan == 10.0


class TestWarmStart:
    @pytest.mark.parametrize("policy,kwargs", [
        ("immediate", {}),
        ("quantum", {"quantum": 25.0}),
        ("count", {"batch_size": 5}),
    ])
    def test_warm_and_cold_are_bit_identical(self, arrivals_instance, policy, kwargs):
        inst = arrivals_instance
        warm = OnlineScheduler(
            inst.m, eps=0.25, algorithm="two_approx", policy=policy, **kwargs
        ).run(inst.arrivals)
        cold = OnlineScheduler(
            inst.m, eps=0.25, algorithm="two_approx", policy=policy,
            warm_start=False, **kwargs,
        ).run(inst.arrivals)
        assert warm.makespan == cold.makespan
        assert entry_tuples(warm.schedule) == entry_tuples(cold.schedule)
        # the whole point: warm re-plans probe strictly less
        assert warm.report.gamma_probes < cold.report.gamma_probes

    def test_scalar_backend_matches_vectorized(self, arrivals_instance):
        inst = arrivals_instance
        vec = OnlineScheduler(inst.m, eps=0.25, algorithm="two_approx").run(inst.arrivals)
        scal = OnlineScheduler(
            inst.m, eps=0.25, algorithm="two_approx", backend="scalar"
        ).run(inst.arrivals)
        assert entry_tuples(vec.schedule) == entry_tuples(scal.schedule)
        assert scal.report.gamma_probes is None


class TestRegretReport:
    def test_summary_lines_mention_everything(self, arrivals_instance):
        inst = arrivals_instance
        result = OnlineScheduler(inst.m, eps=0.25).run(inst.arrivals)
        text = "\n".join(result.report.summary_lines())
        assert "online makespan" in text
        assert "clairvoyant makespan" in text
        assert "release-aware LB" in text
        assert "re-plans" in text
        assert "gamma probes" in text

    def test_lower_bound_is_the_release_aware_one(self, arrivals_instance):
        inst = arrivals_instance
        result = OnlineScheduler(inst.m, eps=0.25).run(inst.arrivals)
        expected = release_aware_lower_bound(
            inst.jobs, inst.releases, inst.m,
            base=makespan_lower_bound(inst.jobs, inst.m),
        )
        assert result.report.lower_bound == expected
        # releases push the bound strictly above the offline one here
        assert expected > makespan_lower_bound(inst.jobs, inst.m) or math.isclose(
            expected, makespan_lower_bound(inst.jobs, inst.m)
        )

    def test_epoch_records_are_consistent(self, arrivals_instance):
        inst = arrivals_instance
        result = OnlineScheduler(inst.m, eps=0.25, policy="count", batch_size=6).run(
            inst.arrivals
        )
        assert sum(e.arrivals for e in result.report.epochs) == inst.n
        times = [e.time for e in result.report.epochs]
        assert times == sorted(times)
        for epoch in result.report.epochs:
            assert epoch.barrier >= epoch.time
