"""Tests for the columnar ``Schedule`` storage and the shared event sweep.

Covers the storage contract of the refactor (flat columns as the source of
truth, entry objects as lazy cached views, builder installation with zero
per-entry conversion) and pins the three peak-busy consumers — the
validator, the simulator and ``Schedule.peak_processor_usage`` — to the
*same* shared sweep result on near-tie event orderings.
"""

import pickle

import numpy as np
import pytest

from repro.core.job import TabulatedJob
from repro.core.schedule import MAX_COLUMNAR_M, Schedule, ScheduleColumns
from repro.core.validation import validate_schedule
from repro.perf.schedule_builder import ArraySchedule
from repro.simulator.engine import simulate_schedule


def make_job(name="j", times=(10.0, 6.0, 4.0, 3.0)):
    return TabulatedJob(name, list(times))


class TestColumnarStorage:
    def test_columns_view_is_cached(self):
        schedule = Schedule(m=4)
        schedule.add(make_job("a"), 0.0, [(0, 2)])
        assert schedule.columns() is schedule.columns()

    def test_add_invalidates_columns(self):
        schedule = Schedule(m=4)
        schedule.add(make_job("a"), 0.0, [(0, 2)])
        before = schedule.columns()
        schedule.add(make_job("b"), 1.0, [(2, 1)])
        after = schedule.columns()
        assert before.n == 1
        assert after.n == 2
        assert after.start.tolist() == [0.0, 1.0]
        # the old view is an immutable snapshot, untouched by the append
        assert before.start.tolist() == [0.0]

    def test_columns_layout(self):
        jobs = [make_job("t0", (8.0, 5.0)), make_job("t1", (4.0,))]
        schedule = Schedule(m=6)
        schedule.add(jobs[0], 0.0, [(0, 2)])
        schedule.add(jobs[1], 5.0, [(2, 1), (4, 2)], duration_override=9.0)
        cols = schedule.columns()
        assert cols.n == 2
        assert cols.start.tolist() == [0.0, 5.0]
        assert cols.duration.tolist() == [5.0, 9.0]
        assert cols.end.tolist() == [5.0, 14.0]
        assert cols.processors.tolist() == [2, 3]
        assert cols.has_override.tolist() == [False, True]
        assert cols.span_owner.tolist() == [0, 1, 1]
        assert cols.span_first.tolist() == [0, 2, 4]
        assert cols.span_end.tolist() == [2, 3, 6]

    def test_builder_installs_columns_without_entry_objects(self):
        """ArraySchedule.build must not materialise a single ScheduledJob."""
        builder = ArraySchedule(8)
        for i in range(5):
            builder.append(make_job(f"j{i}"), float(i), [(i, 1)])
        schedule = builder.build()
        assert all(view is None for view in schedule._views)
        # column reads keep the views unmaterialised
        schedule.columns()
        assert schedule.makespan > 0
        assert schedule.peak_processor_usage() >= 1
        assert all(view is None for view in schedule._views)
        # subscripting materialises exactly the touched row, and caches it
        entry = schedule.entries[2]
        assert entry.start == 2.0
        assert entry.spans == ((2, 1),)
        assert schedule.entries[2] is entry
        assert sum(view is not None for view in schedule._views) == 1

    def test_validation_and_simulation_stay_lazy(self):
        """The vectorized validator/simulator never touch entry objects on a
        clean columnar schedule."""
        jobs = [make_job(f"j{i}") for i in range(6)]
        builder = ArraySchedule(12)
        for i, job in enumerate(jobs):
            builder.append(job, 0.0, [(2 * i, 2)])
        schedule = builder.build()
        report = validate_schedule(schedule, jobs)
        assert report.ok
        simulate_schedule(schedule)
        assert all(view is None for view in schedule._views)

    def test_entries_sequence_protocol(self):
        schedule = Schedule(m=4)
        a = schedule.add(make_job("a"), 0.0, [(0, 1)])
        b = schedule.add(make_job("b"), 1.0, [(1, 1)])
        entries = schedule.entries
        assert len(entries) == 2
        assert entries[0] is a
        assert entries[-1] is b
        assert entries[:1] == [a]
        assert entries[::-1] == [b, a]
        assert list(iter(entries)) == [a, b]
        assert a in entries
        with pytest.raises(IndexError):
            entries[2]

    def test_schedule_equality_across_assembly_modes(self):
        jobs = [make_job("a"), make_job("b")]
        sequential = Schedule(m=4)
        sequential.add(jobs[0], 0.0, [(0, 2)])
        sequential.add(jobs[1], 2.0, [(2, 1)])
        builder = ArraySchedule(4)
        builder.append(jobs[0], 0.0, [(0, 2)])
        builder.append(jobs[1], 2.0, [(2, 1)])
        assert builder.build() == sequential

    def test_mixing_builder_and_incremental_adds(self):
        builder = ArraySchedule(8)
        builder.append(make_job("a"), 0.0, [(0, 2)])
        schedule = builder.build()
        schedule.add(make_job("b"), 6.0, [(0, 4)])
        cols = schedule.columns()
        assert cols.n == 2
        assert cols.processors.tolist() == [2, 4]
        assert schedule.makespan == pytest.approx(6.0 + 3.0)
        assert [e.job.name for e in schedule.entries] == ["a", "b"]

    def test_astronomical_span_counts_consolidate_exactly(self):
        """Span counts beyond int64 consolidate into exact object-dtype
        columns (they used to abort consolidation and divert every consumer
        to the per-entry scalar paths); the column values, the sweeps and
        the scalar aggregate properties all stay exact Python-int."""
        wide = 1 << 70
        job = TabulatedJob("wide", [100.0])
        schedule = Schedule(m=4 * wide)
        schedule.add(job, 0.0, [(0, wide)])
        schedule.add(job, 0.0, [(2 * wide, wide)])
        cols = schedule.try_columns()
        assert cols is not None
        assert cols.processors.dtype == object
        assert cols.processors.tolist() == [wide, wide]
        assert cols.span_first.tolist() == [0, 2 * wide]
        assert cols.fits_int64_sweep()  # object cumsum is exact
        assert cols.peak_busy() == 2 * wide
        assert schedule.makespan == pytest.approx(100.0)
        assert schedule.total_work == 2 * wide * 100.0
        assert schedule.peak_processor_usage() == 2 * wide
        assert schedule.m > MAX_COLUMNAR_M
        assert len(schedule.entries[:]) == 2

    def test_schedule_pickles(self):
        schedule = Schedule(m=4, metadata={"algorithm": "test"})
        schedule.add(make_job("a"), 0.0, [(0, 2)])
        schedule.columns()
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone.m == schedule.m
        assert clone.metadata == schedule.metadata
        assert clone.makespan == schedule.makespan
        # jobs compare by identity, so compare the placements structurally
        for a, b in zip(clone.entries, schedule.entries):
            assert (a.job.name, a.start, a.spans, a.duration_override) == (
                b.job.name,
                b.start,
                b.spans,
                b.duration_override,
            )

    def test_duration_column_resolves_lazily(self):
        """Consumers that never read durations (certificate extraction,
        serialisation) must not trigger per-job oracle calls."""
        from repro.core.certificates import extract_certificate
        from repro.io import schedule_to_dict

        calls = []

        class CountingJob(TabulatedJob):
            def processing_time(self, k):
                calls.append(k)
                return super().processing_time(k)

        jobs = [CountingJob(f"j{i}", [6.0, 5.0, 4.0]) for i in range(5)]
        schedule = Schedule(m=8)
        for i, job in enumerate(jobs):
            schedule.add(job, float(i), [(i, 1)])
        calls.clear()
        extract_certificate(schedule, jobs)
        schedule_to_dict(schedule)
        assert calls == []
        # touching the duration column resolves exactly once
        schedule.columns().duration
        assert len(calls) == 5
        calls.clear()
        schedule.columns().end
        assert calls == []

    def test_schedule_columns_compat_constructor(self):
        schedule = Schedule(m=4)
        schedule.add(make_job("a"), 0.0, [(0, 2)])
        cols = ScheduleColumns(schedule)
        assert cols.n == 1
        assert cols.processors.tolist() == [2]


class TestSharedSweepPinning:
    """The validator, the simulator and ``peak_processor_usage`` share one
    event sweep; near-tie event orderings must give one answer everywhere."""

    def _all_peaks(self, schedule, jobs):
        peaks = {
            "schedule": schedule.peak_processor_usage(),
            "validator_columnar": validate_schedule(schedule, jobs).peak_processors,
            "validator_scalar": validate_schedule(
                schedule, jobs, backend="scalar"
            ).peak_processors,
            "simulator_auto": simulate_schedule(schedule).peak_busy,
            "simulator_scalar": simulate_schedule(schedule, backend="scalar").peak_busy,
        }
        return peaks

    def test_touching_intervals_do_not_double_count(self):
        """b starts exactly when a ends on the same machines."""
        a = TabulatedJob("a", [5.0, 5.0, 5.0])
        b = TabulatedJob("b", [5.0, 5.0, 5.0])
        schedule = Schedule(m=3)
        schedule.add(a, 0.0, [(0, 3)])
        schedule.add(b, 5.0, [(0, 3)])
        peaks = self._all_peaks(schedule, [a, b])
        assert set(peaks.values()) == {3}, peaks

    def test_simultaneous_starts_with_mixed_widths(self):
        jobs = [TabulatedJob(f"j{i}", [4.0] * 8) for i in range(3)]
        schedule = Schedule(m=8)
        schedule.add(jobs[0], 0.0, [(0, 1)])
        schedule.add(jobs[1], 0.0, [(1, 5)])
        schedule.add(jobs[2], 0.0, [(6, 2)])
        peaks = self._all_peaks(schedule, jobs)
        assert set(peaks.values()) == {8}, peaks

    def test_release_and_acquire_interleave_at_one_instant(self):
        """At t=4 a wide job ends while two narrow ones start: the busy count
        must dip before it rises (ends sort before starts)."""
        wide = TabulatedJob("wide", [4.0] * 6)
        n1 = TabulatedJob("n1", [3.0] * 6)
        n2 = TabulatedJob("n2", [3.0] * 6)
        schedule = Schedule(m=6)
        schedule.add(wide, 0.0, [(0, 6)])
        schedule.add(n1, 4.0, [(0, 2)])
        schedule.add(n2, 4.0, [(2, 2)])
        peaks = self._all_peaks(schedule, [wide, n1, n2])
        assert set(peaks.values()) == {6}, peaks

    def test_chain_of_back_to_back_placements(self):
        """A long chain of touching placements on one machine group stays at
        the width of the group, for every consumer."""
        jobs = [TabulatedJob(f"c{i}", [1.0, 1.0]) for i in range(10)]
        schedule = Schedule(m=2)
        for i, job in enumerate(jobs):
            schedule.add(job, float(i), [(0, 2)])
        peaks = self._all_peaks(schedule, jobs)
        assert set(peaks.values()) == {2}, peaks

    def test_event_sweep_helper_matches_consumers(self):
        jobs = [TabulatedJob(f"j{i}", [2.0] * 4) for i in range(4)]
        schedule = Schedule(m=4)
        for i, job in enumerate(jobs):
            schedule.add(job, float(i % 2), [(i, 1)])
        cols = schedule.columns()
        assert cols.peak_busy() == schedule.peak_processor_usage()
        times, busy = cols.busy_profile()
        trace = simulate_schedule(schedule)
        assert trace.utilization_profile == list(zip(times.tolist(), busy.tolist()))
