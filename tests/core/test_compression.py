"""Tests for the compression lemmas (Lemma 4 and Lemma 16)."""

import math

import pytest

from repro.core.compression import (
    compressed_count,
    compression_time_bound,
    is_compressible,
    params_for_delta,
    verify_compression_lemma,
)
from repro.core.job import AmdahlJob, PowerLawJob, TabulatedJob


class TestCompressedCount:
    def test_basic(self):
        assert compressed_count(100, 0.1) == 90
        assert compressed_count(10, 0.25) == 7

    def test_never_below_one(self):
        assert compressed_count(1, 0.25) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compressed_count(0, 0.1)
        with pytest.raises(ValueError):
            compressed_count(10, 0.0)
        with pytest.raises(ValueError):
            compressed_count(10, 0.9)


class TestIsCompressible:
    def test_threshold(self):
        assert is_compressible(10, 0.1)
        assert not is_compressible(9, 0.1)
        assert is_compressible(4, 0.25)


class TestLemma4:
    """t_j(floor(b(1-rho))) <= (1+4 rho) t_j(b) for monotone jobs."""

    @pytest.mark.parametrize("rho", [0.05, 0.1, 0.2, 0.25])
    @pytest.mark.parametrize(
        "job",
        [
            AmdahlJob("a", 100.0, 0.05),
            AmdahlJob("a2", 250.0, 0.3),
            PowerLawJob("p", 80.0, 0.9),
            PowerLawJob("p2", 80.0, 0.4),
        ],
    )
    def test_analytic_jobs(self, job, rho):
        for b in (math.ceil(1 / rho), 2 * math.ceil(1 / rho), 64, 321):
            if not is_compressible(b, rho):
                continue
            assert verify_compression_lemma(job, b, rho)

    def test_worst_case_sequential_job(self):
        """A job that does not speed up at all still satisfies the lemma
        trivially (its time never changes)."""
        job = TabulatedJob("seq", [7.0])
        assert verify_compression_lemma(job, 10, 0.1)

    def test_requires_compressible_count(self):
        job = AmdahlJob("a", 10.0, 0.1)
        with pytest.raises(ValueError):
            verify_compression_lemma(job, 3, 0.1)

    def test_bound_value(self):
        assert compression_time_bound(10.0, 0.1) == pytest.approx(14.0)


class TestLemma16Params:
    @pytest.mark.parametrize("delta", [0.05, 0.1, 0.25, 0.5, 1.0])
    def test_identity(self, delta):
        params = params_for_delta(delta)
        # (1 + 4 rho)^2 = 1 + delta by construction
        assert (1.0 + 4.0 * params.rho) ** 2 == pytest.approx(1.0 + delta)

    @pytest.mark.parametrize("delta", [0.05, 0.1, 0.25, 0.5, 1.0])
    def test_rho_is_theta_delta(self, delta):
        params = params_for_delta(delta)
        assert delta / 12.0 <= params.rho <= delta / 4.0

    @pytest.mark.parametrize("delta", [0.05, 0.1, 0.25, 0.5, 1.0])
    def test_b_is_theta_one_over_delta(self, delta):
        params = params_for_delta(delta)
        assert params.b == pytest.approx(1.0 / params.double_factor)
        assert 1.0 / (2.0 * delta) <= params.b <= 12.0 / (1.75 * delta)

    def test_double_compression_processor_reduction(self):
        """Compressing with factor 2rho - rho^2 reduces counts by (1-rho)^2."""
        params = params_for_delta(0.2)
        b = 1000
        reduced = math.floor(b * (1.0 - params.double_factor))
        assert reduced == math.floor(b * (1.0 - params.rho) ** 2)

    def test_time_increase_below_delta(self):
        """Lemma 16: the processing-time increase factor is < 1 + delta."""
        for delta in (0.1, 0.3, 0.7, 1.0):
            params = params_for_delta(delta)
            increase = 1.0 + 4.0 * params.double_factor
            assert increase < 1.0 + delta + 1e-12

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            params_for_delta(0.0)
        with pytest.raises(ValueError):
            params_for_delta(1.5)
