"""Tests for Algorithm 1 (Section 4.2.5): compressible-knapsack scheduling."""

import pytest

from repro.core.bounds import ludwig_tiwari_estimator, makespan_lower_bound, serial_upper_bound
from repro.core.compressible_algorithm import compressible_dual, compressible_schedule
from repro.core.exact_small import exact_makespan
from repro.core.validation import assert_valid_schedule
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import (
    planted_partition_instance,
    random_amdahl_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
)


class TestCompressibleDual:
    def test_accepts_serial_upper_bound(self):
        instance = random_mixed_instance(20, 16, seed=0)
        d = serial_upper_bound(instance.jobs)
        eps = 0.2
        schedule = compressible_dual(instance.jobs, 16, d, eps)
        assert schedule is not None
        # makespan <= (3/2)(1 + 4 * eps/6) d = (3/2 + eps) d
        assert schedule.makespan <= (1.5 + eps) * d * (1 + 1e-9)
        assert_valid_schedule(schedule, instance.jobs)

    def test_never_rejects_above_exact_optimum(self):
        eps = 0.3
        for seed in range(4):
            instance = random_monotone_tabulated_instance(4, 4, seed=seed)
            opt = exact_makespan(instance.jobs, 4)
            for factor in (1.0, 1.2, 1.6):
                schedule = compressible_dual(instance.jobs, 4, opt * factor, eps)
                assert schedule is not None, f"rejected d = {factor} * OPT (seed {seed})"
                assert schedule.makespan <= (1.5 + eps) * opt * factor * (1 + 1e-9)

    def test_rejects_impossible_target(self):
        instance = random_mixed_instance(20, 4, seed=1)
        lb = makespan_lower_bound(instance.jobs, 4)
        assert compressible_dual(instance.jobs, 4, lb * 0.3, 0.2) is None

    def test_rejects_nonpositive_target(self):
        instance = random_mixed_instance(5, 4, seed=2)
        assert compressible_dual(instance.jobs, 4, 0.0, 0.2) is None

    def test_large_m_dispatch_uses_fptas_dual(self):
        """For m >= 16n the dual delegates to the FPTAS step (Section 4.2.5)."""
        instance = random_amdahl_instance(10, 1000, seed=3)
        omega = ludwig_tiwari_estimator(instance.jobs, 1000).omega
        schedule = compressible_dual(instance.jobs, 1000, 1.2 * omega, 0.2)
        assert schedule is not None
        assert "large_m" in schedule.metadata["algorithm"]
        assert schedule.makespan <= 1.5 * 1.2 * omega * (1 + 1e-9)

    def test_empty_instance(self):
        schedule = compressible_dual([], 4, 1.0, 0.2)
        assert schedule is not None
        assert schedule.makespan == 0.0

    def test_schedules_validated_by_simulator(self):
        for seed in range(3):
            instance = random_mixed_instance(40, 48, seed=seed + 7)
            omega = ludwig_tiwari_estimator(instance.jobs, 48).omega
            schedule = compressible_dual(instance.jobs, 48, 1.3 * omega, 0.25)
            if schedule is not None:
                simulate_schedule(schedule)


class TestCompressibleSchedule:
    def test_guarantee_vs_exact_optimum(self):
        eps = 0.25
        for seed in range(3):
            instance = random_monotone_tabulated_instance(5, 4, seed=seed + 3)
            opt = exact_makespan(instance.jobs, 4)
            result = compressible_schedule(instance.jobs, 4, eps)
            assert result.makespan <= (1.5 + eps) * opt * (1 + 1e-6)

    def test_guarantee_vs_planted_optimum(self):
        eps = 0.2
        instance = planted_partition_instance(10, seed=8)
        result = compressible_schedule(instance.jobs, instance.m, eps)
        assert instance.known_optimum is not None
        assert result.makespan <= (1.5 + eps) * instance.known_optimum * (1 + 1e-6)

    def test_schedules_are_valid(self):
        instance = random_mixed_instance(30, 20, seed=12)
        result = compressible_schedule(instance.jobs, 20, 0.15)
        assert_valid_schedule(result.schedule, instance.jobs)

    def test_metadata_and_guarantee_record(self):
        instance = random_mixed_instance(10, 8, seed=13)
        result = compressible_schedule(instance.jobs, 8, 0.3)
        assert result.schedule.metadata["algorithm"] == "compressible"
        assert result.schedule.metadata["guarantee"] == pytest.approx(1.8)

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            compressible_schedule([], 4, -0.1)
        with pytest.raises(ValueError):
            compressible_schedule([], 4, 2.0)

    def test_empty_instance(self):
        result = compressible_schedule([], 8, 0.2)
        assert result.makespan == 0.0
