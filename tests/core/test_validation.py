"""Tests for schedule validation and job monotony checks."""

import pytest

from repro.core.job import RigidJob, TabulatedJob
from repro.core.schedule import Schedule
from repro.core.validation import (
    ValidationError,
    assert_valid_schedule,
    check_monotone_job,
    is_monotone_work,
    is_nonincreasing_time,
    validate_schedule,
)


def make_job(name="j", times=(10.0, 6.0, 4.0)):
    return TabulatedJob(name, list(times))


class TestValidateSchedule:
    def test_valid_schedule_passes(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=3)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 0.0, [(2, 1)])
        report = validate_schedule(schedule, [a, b])
        assert report.ok
        assert report.violations == []

    def test_machine_conflict_detected(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=3)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 1.0, [(1, 1)])  # overlaps machine 1 while a still runs
        report = validate_schedule(schedule, [a, b])
        assert not report.ok
        assert any("conflict" in v for v in report.violations)

    def test_sequential_use_of_same_machine_ok(self):
        a, b = make_job("a", (5.0,)), make_job("b", (5.0,))
        schedule = Schedule(m=1)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 5.0, [(0, 1)])
        assert validate_schedule(schedule, [a, b]).ok

    def test_missing_job_detected(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        report = validate_schedule(schedule, [a, b])
        assert not report.ok
        assert any("missing" in v for v in report.violations)

    def test_duplicate_job_detected(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(a, 20.0, [(0, 1)])
        report = validate_schedule(schedule, [a])
        assert not report.ok
        assert any("scheduled 2 times" in v for v in report.violations)

    def test_foreign_job_detected(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 0.0, [(1, 1)])
        report = validate_schedule(schedule, [a])
        assert not report.ok
        assert any("not part of the instance" in v for v in report.violations)

    def test_span_out_of_range_detected(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(1, 2)])  # machines 1,2 but m=2 -> machine 2 invalid
        report = validate_schedule(schedule, [a])
        assert not report.ok
        assert any("exceeds machine count" in v for v in report.violations)

    def test_understated_duration_detected(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)], duration_override=1.0)  # true time is 10
        report = validate_schedule(schedule, [a])
        assert not report.ok
        assert any("understates" in v for v in report.violations)

    def test_overstated_duration_allowed(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)], duration_override=50.0)
        assert validate_schedule(schedule, [a]).ok

    def test_makespan_bound(self):
        a = make_job("a")
        schedule = Schedule(m=1)
        schedule.add(a, 0.0, [(0, 1)])
        assert validate_schedule(schedule, [a], max_makespan=10.0).ok
        assert not validate_schedule(schedule, [a], max_makespan=9.0).ok

    def test_assert_valid_raises(self):
        a = make_job("a")
        schedule = Schedule(m=1)
        with pytest.raises(ValidationError):
            assert_valid_schedule(schedule, [a])

    def test_report_metrics(self):
        a = make_job("a")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 3)])
        report = validate_schedule(schedule, [a])
        assert report.makespan == pytest.approx(4.0)
        assert report.peak_processors == 3

    def test_conflict_on_huge_machine_counts(self):
        """Conflict detection works span-wise, not per machine."""
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=10 ** 9)
        schedule.add(a, 0.0, [(0, 10 ** 8)])
        schedule.add(b, 1.0, [(10 ** 7, 10 ** 8)])
        report = validate_schedule(schedule, [a, b])
        assert not report.ok

    def test_disjoint_spans_no_conflict(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=10 ** 9)
        schedule.add(a, 0.0, [(0, 10 ** 8)])
        schedule.add(b, 0.0, [(2 * 10 ** 8, 10 ** 8)])
        assert validate_schedule(schedule, [a, b]).ok


class TestMonotonyChecks:
    def test_monotone_job_passes(self):
        job = TabulatedJob("good", [10.0, 6.0, 4.5, 4.0])
        assert is_nonincreasing_time(job, 4)
        assert is_monotone_work(job, 4)
        check_monotone_job(job, 4)

    def test_increasing_time_detected(self):
        job = TabulatedJob("bad", [10.0, 11.0])
        assert not is_nonincreasing_time(job, 2)
        with pytest.raises(ValueError):
            check_monotone_job(job, 2)

    def test_decreasing_work_detected(self):
        # t(2) = 4 -> work 8 < work(1) = 10: super-linear speedup, not monotone
        job = TabulatedJob("bad", [10.0, 4.0])
        assert is_nonincreasing_time(job, 2)
        assert not is_monotone_work(job, 2)
        with pytest.raises(ValueError):
            check_monotone_job(job, 2)

    def test_rigid_job_not_monotone(self):
        job = RigidJob("r", duration=3.0, size=3)
        assert not is_monotone_work(job, 6)


class TestColumnarValidationParity:
    """The columnar fast path must produce reports identical to the scalar
    reference — including violation messages, which always come from the
    scalar sweep."""

    def _both(self, schedule, jobs, **kwargs):
        fast = validate_schedule(schedule, jobs, **kwargs)
        slow = validate_schedule(schedule, jobs, backend="scalar", **kwargs)
        assert fast.ok == slow.ok
        assert fast.violations == slow.violations
        assert fast.makespan == slow.makespan
        assert fast.peak_processors == slow.peak_processors
        return fast

    def test_parity_on_valid_schedule(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=3)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 0.0, [(2, 1)])
        assert self._both(schedule, [a, b]).ok

    def test_parity_on_conflict(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=3)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 1.0, [(1, 1)])
        assert not self._both(schedule, [a, b]).ok

    def test_parity_on_bounds_and_makespan(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(1, 2)])
        report = self._both(schedule, [a], max_makespan=1.0)
        assert any("exceeds machine count" in v for v in report.violations)
        assert any("exceeds bound" in v for v in report.violations)

    def test_parity_with_oracle_durations(self):
        from repro.perf.oracle import BatchedOracle

        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 0.0, [(2, 2)], duration_override=11.0)
        oracle = BatchedOracle([a, b], 4)
        fast = validate_schedule(schedule, [a, b], oracle=oracle)
        slow = validate_schedule(schedule, [a, b], backend="scalar")
        assert fast.ok == slow.ok
        assert fast.makespan == slow.makespan
        assert fast.peak_processors == slow.peak_processors

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            validate_schedule(Schedule(m=1), backend="quantum")
