"""Tests for NP-membership certificates (Theorem 1, membership half)."""

import math

import pytest

from repro.core.certificates import Certificate, extract_certificate, replay_certificate, verify_certificate
from repro.core.exact_small import exact_schedule
from repro.core.job import TabulatedJob
from repro.core.scheduler import schedule_moldable
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_mixed_instance, random_monotone_tabulated_instance


class TestCertificateBasics:
    def test_encoded_bits_formula(self):
        cert = Certificate(allotment=(1, 2, 3, 4), order=(0, 1, 2, 3))
        n, m = 4, 16
        assert cert.encoded_bits(m) == n * (math.ceil(math.log2(m)) + math.ceil(math.log2(n)))

    def test_encoded_bits_empty(self):
        assert Certificate(allotment=(), order=()).encoded_bits(8) == 0

    def test_replay_validates_inputs(self):
        jobs = [TabulatedJob("a", [1.0]), TabulatedJob("b", [1.0])]
        with pytest.raises(ValueError):
            replay_certificate(jobs, 2, Certificate(allotment=(1,), order=(0,)))
        with pytest.raises(ValueError):
            replay_certificate(jobs, 2, Certificate(allotment=(1, 1), order=(0, 0)))


class TestRoundTrip:
    def test_extract_and_replay_list_schedule(self):
        """Certificates extracted from list-generated schedules replay to the
        same (or better) makespan — the core of the NP-membership argument."""
        instance = random_mixed_instance(25, 16, seed=1)
        result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="two_approx")
        cert = extract_certificate(result.schedule, instance.jobs)
        accepted, replayed = verify_certificate(instance.jobs, 16, result.makespan, cert)
        assert accepted
        assert_valid_schedule(replayed, instance.jobs)
        assert replayed.makespan <= result.makespan * (1 + 1e-9)

    def test_certificate_for_exact_optimum(self):
        """An optimal schedule's certificate certifies d = OPT... or better:
        the replay is itself a feasible schedule, so it can never beat OPT."""
        instance = random_monotone_tabulated_instance(4, 3, seed=2)
        optimal = exact_schedule(instance.jobs, 3)
        cert = extract_certificate(optimal, instance.jobs)
        accepted, replayed = verify_certificate(instance.jobs, 3, optimal.makespan, cert)
        assert_valid_schedule(replayed, instance.jobs)
        assert replayed.makespan >= optimal.makespan * (1 - 1e-9)

    def test_rejects_too_small_d(self):
        instance = random_mixed_instance(10, 8, seed=3)
        result = schedule_moldable(instance.jobs, 8, 0.25, algorithm="two_approx")
        cert = extract_certificate(result.schedule, instance.jobs)
        accepted, _ = verify_certificate(instance.jobs, 8, result.makespan * 0.01, cert)
        assert not accepted

    def test_extract_rejects_foreign_jobs(self):
        instance = random_mixed_instance(5, 4, seed=4)
        other = random_mixed_instance(5, 4, seed=5)
        result = schedule_moldable(instance.jobs, 4, 0.3, algorithm="two_approx")
        with pytest.raises(ValueError):
            extract_certificate(result.schedule, other.jobs)

    def test_certificate_is_polynomial_sized(self):
        instance = random_mixed_instance(40, 1 << 20, seed=6)
        result = schedule_moldable(instance.jobs, instance.m, 0.2, algorithm="two_approx")
        cert = extract_certificate(result.schedule, instance.jobs)
        # n (log m + log n) bits: tiny compared to m
        assert cert.encoded_bits(instance.m) <= 40 * (20 + 6)
