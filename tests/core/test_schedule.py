"""Tests for Schedule / ScheduledJob with machine spans."""

import pytest

from repro.core.job import TabulatedJob
from repro.core.schedule import Schedule, ScheduledJob


def make_job(name="j", times=(10.0, 6.0, 4.0, 3.0)):
    return TabulatedJob(name, list(times))


class TestScheduledJob:
    def test_processors_and_duration(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((0, 2),))
        assert entry.processors == 2
        assert entry.duration == pytest.approx(6.0)
        assert entry.end == pytest.approx(6.0)
        assert entry.work == pytest.approx(12.0)

    def test_multi_span(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=1.0, spans=((0, 1), (5, 2)))
        assert entry.processors == 3
        assert entry.duration == pytest.approx(4.0)
        assert list(entry.machines()) == [0, 5, 6]

    def test_span_merging(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((0, 2), (2, 2)))
        assert entry.spans == ((0, 4),)
        assert entry.processors == 4

    def test_adjacent_spans_merge_in_any_order(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((2, 2), (0, 2), (4, 1)))
        assert entry.spans == ((0, 5),)

    def test_adjacent_chain_merges_across_gap(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((0, 1), (1, 1), (5, 2)))
        assert entry.spans == ((0, 2), (5, 2))

    def test_overlapping_spans_rejected(self):
        """Overlapping spans double-book a machine and must not be merged."""
        job = make_job()
        with pytest.raises(ValueError, match="double-book"):
            ScheduledJob(job=job, start=0.0, spans=((0, 3), (2, 2)))

    def test_contained_span_rejected(self):
        job = make_job()
        with pytest.raises(ValueError, match="double-book"):
            ScheduledJob(job=job, start=0.0, spans=((0, 5), (1, 2)))

    def test_duplicate_span_rejected(self):
        job = make_job()
        with pytest.raises(ValueError, match="double-book"):
            ScheduledJob(job=job, start=0.0, spans=((3, 2), (3, 2)))

    def test_overlap_with_merged_run_rejected(self):
        """A span overlapping the result of an earlier adjacency merge."""
        job = make_job()
        with pytest.raises(ValueError, match="double-book"):
            ScheduledJob(job=job, start=0.0, spans=((0, 2), (2, 2), (3, 1)))

    def test_duration_override(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((0, 1),), duration_override=12.0)
        assert entry.duration == pytest.approx(12.0)

    def test_uses_machine(self):
        job = make_job()
        entry = ScheduledJob(job=job, start=0.0, spans=((3, 2),))
        assert entry.uses_machine(3)
        assert entry.uses_machine(4)
        assert not entry.uses_machine(5)

    def test_invalid_spans(self):
        job = make_job()
        with pytest.raises(ValueError):
            ScheduledJob(job=job, start=0.0, spans=((0, 0),))
        with pytest.raises(ValueError):
            ScheduledJob(job=job, start=0.0, spans=((-1, 2),))
        with pytest.raises(ValueError):
            ScheduledJob(job=job, start=0.0, spans=())

    def test_negative_start(self):
        job = make_job()
        with pytest.raises(ValueError):
            ScheduledJob(job=job, start=-1.0, spans=((0, 1),))


class TestSchedule:
    def test_makespan(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 10.0, [(1, 2)])
        assert schedule.makespan == pytest.approx(16.0)

    def test_empty_schedule(self):
        schedule = Schedule(m=3)
        assert schedule.makespan == 0.0
        assert schedule.total_work == 0.0
        assert schedule.peak_processor_usage() == 0
        assert len(schedule) == 0

    def test_peak_processor_usage(self):
        a, b, c = make_job("a"), make_job("b"), make_job("c")
        schedule = Schedule(m=10)
        schedule.add(a, 0.0, [(0, 3)])    # [0, 4)
        schedule.add(b, 0.0, [(3, 4)])    # [0, 3)
        schedule.add(c, 5.0, [(0, 2)])    # [5, 11)
        assert schedule.peak_processor_usage() == 7

    def test_peak_with_touching_intervals(self):
        """A job starting exactly when another ends should not double-count."""
        a, b = make_job("a", (5.0,)), make_job("b", (5.0,))
        schedule = Schedule(m=1)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 5.0, [(0, 1)])
        assert schedule.peak_processor_usage() == 1

    def test_average_utilization(self):
        a = make_job("a", (10.0,))
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        assert schedule.average_utilization() == pytest.approx(0.5)

    def test_entry_for(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        assert schedule.entry_for(a).job is a
        with pytest.raises(KeyError):
            schedule.entry_for(b)

    def test_jobs_and_iteration(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 0.0, [(1, 1)])
        assert schedule.jobs() == [a, b]
        assert len(list(schedule)) == 2

    def test_sorted_by_start(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=2)
        schedule.add(a, 5.0, [(0, 1)])
        schedule.add(b, 1.0, [(1, 1)])
        assert [e.job for e in schedule.sorted_by_start()] == [b, a]

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            Schedule(m=0)

    def test_huge_machine_counts_supported(self):
        """Spans keep schedules cheap even with 10^9 machines."""
        job = make_job("wide", (1000.0, *[1000.0 / k for k in range(2, 10)]))
        schedule = Schedule(m=10 ** 9)
        entry = schedule.add(job, 0.0, [(0, 10 ** 8)])
        assert entry.processors == 10 ** 8
        assert schedule.peak_processor_usage() == 10 ** 8
