"""Tests for the 2-approximation baseline."""

import pytest

from repro.core.exact_small import exact_makespan
from repro.core.job import AmdahlJob, TabulatedJob
from repro.core.two_approx import two_approximation
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import (
    planted_partition_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
)


class TestTwoApproximation:
    def test_empty_instance(self):
        result = two_approximation([], 8)
        assert result.makespan == 0.0

    def test_single_job(self):
        job = AmdahlJob("a", 100.0, 0.2)
        result = two_approximation([job], 32)
        # a single job should simply run on its best processor count
        assert result.makespan <= job.processing_time(1)
        assert result.makespan >= job.processing_time(32) * (1 - 1e-9)

    def test_schedules_are_valid(self):
        for seed in range(4):
            instance = random_mixed_instance(30, 24, seed=seed)
            result = two_approximation(instance.jobs, 24)
            assert_valid_schedule(result.schedule, instance.jobs)

    def test_ratio_against_estimator(self):
        """makespan <= ratio * omega (the estimator's certified interval)."""
        for seed in range(4):
            instance = random_mixed_instance(40, 32, seed=seed + 10)
            result = two_approximation(instance.jobs, 32)
            assert result.makespan <= result.estimate.ratio * result.estimate.omega * (1 + 1e-9)

    def test_ratio_against_exact_optimum(self):
        for seed in range(4):
            instance = random_monotone_tabulated_instance(5, 4, seed=seed)
            opt = exact_makespan(instance.jobs, 4)
            result = two_approximation(instance.jobs, 4)
            assert result.makespan <= 2.0 * opt * (1 + 1e-6)

    def test_ratio_against_planted_optimum(self):
        instance = planted_partition_instance(12, seed=1)
        result = two_approximation(instance.jobs, instance.m)
        assert instance.known_optimum is not None
        assert result.makespan <= 2.0 * instance.known_optimum * (1 + 1e-6)

    def test_certified_ratio_property(self):
        instance = random_mixed_instance(20, 16, seed=2)
        result = two_approximation(instance.jobs, 16)
        assert result.certified_ratio >= 1.0 - 1e-9
        assert result.certified_ratio <= result.estimate.ratio * (1 + 1e-6)

    def test_sequential_jobs_on_one_machine(self):
        jobs = [TabulatedJob(f"j{i}", [5.0]) for i in range(6)]
        result = two_approximation(jobs, 1)
        assert result.makespan == pytest.approx(30.0)

    def test_large_m(self):
        jobs = [AmdahlJob(f"a{i}", 50.0, 0.05) for i in range(10)]
        result = two_approximation(jobs, 10 ** 8)
        assert_valid_schedule(result.schedule, jobs)
        # with effectively unlimited machines every job runs near its fastest
        assert result.makespan <= 2.0 * max(j.processing_time(10 ** 8) for j in jobs) * 2
