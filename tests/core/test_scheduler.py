"""Tests for the top-level schedule_moldable facade."""

import pytest

from repro.core.scheduler import ALGORITHMS, schedule_moldable
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_amdahl_instance, random_mixed_instance, random_monotone_tabulated_instance


class TestFacade:
    def test_empty_instance(self):
        result = schedule_moldable([], 8)
        assert result.makespan == 0.0
        assert result.guarantee is None

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            schedule_moldable([], 0)

    def test_unknown_algorithm(self):
        instance = random_mixed_instance(5, 4, seed=0)
        with pytest.raises(ValueError):
            schedule_moldable(instance.jobs, 4, algorithm="quantum")

    @pytest.mark.parametrize("algorithm", ["two_approx", "mrt", "compressible", "bounded", "bounded_linear"])
    def test_all_algorithms_produce_valid_schedules(self, algorithm, small_mixed_instance):
        instance = small_mixed_instance
        result = schedule_moldable(instance.jobs, instance.m, 0.25, algorithm=algorithm)
        assert_valid_schedule(result.schedule, instance.jobs)
        assert result.algorithm == algorithm
        assert result.lower_bound > 0
        assert result.makespan >= result.lower_bound * (1 - 1e-9)

    def test_auto_prefers_fptas_for_large_m(self):
        instance = random_amdahl_instance(10, 10 ** 6, seed=1)
        result = schedule_moldable(instance.jobs, instance.m, 0.1, algorithm="auto")
        assert result.algorithm == "fptas"
        assert result.guarantee == pytest.approx(1.1)

    def test_auto_prefers_bounded_for_small_m(self):
        instance = random_mixed_instance(30, 16, seed=2)
        result = schedule_moldable(instance.jobs, instance.m, 0.2, algorithm="auto")
        assert result.algorithm == "bounded"
        assert result.guarantee == pytest.approx(1.7)

    def test_fptas_requires_threshold(self):
        instance = random_mixed_instance(30, 16, seed=3)
        with pytest.raises(ValueError):
            schedule_moldable(instance.jobs, 16, 0.1, algorithm="fptas")

    def test_exact_algorithm(self):
        instance = random_monotone_tabulated_instance(4, 4, seed=4)
        result = schedule_moldable(instance.jobs, 4, algorithm="exact")
        assert result.guarantee == 1.0
        assert_valid_schedule(result.schedule, instance.jobs)

    def test_exact_rejects_large_instances(self):
        instance = random_mixed_instance(30, 16, seed=5)
        with pytest.raises(ValueError):
            schedule_moldable(instance.jobs, 16, algorithm="exact")

    def test_ptas_algorithm(self):
        instance = random_amdahl_instance(8, 10 ** 5, seed=6)
        result = schedule_moldable(instance.jobs, instance.m, 0.2, algorithm="ptas")
        assert_valid_schedule(result.schedule, instance.jobs)

    def test_certified_ratio_consistency(self):
        instance = random_mixed_instance(25, 32, seed=7)
        result = schedule_moldable(instance.jobs, 32, 0.2, algorithm="bounded")
        assert result.certified_ratio == pytest.approx(result.makespan / result.lower_bound)

    def test_algorithm_list_is_stable(self):
        assert "auto" in ALGORITHMS
        assert set(ALGORITHMS) >= {"two_approx", "mrt", "compressible", "bounded", "fptas", "ptas", "exact"}

    def test_guarantees_hold_against_lower_bound_times_slack(self):
        """All algorithms stay within guarantee * (OPT/LB slack) on random instances."""
        instance = random_mixed_instance(40, 48, seed=8)
        for algorithm in ("two_approx", "mrt", "compressible", "bounded", "bounded_linear"):
            result = schedule_moldable(instance.jobs, 48, 0.2, algorithm=algorithm)
            assert result.guarantee is not None
            # the lower bound may be below OPT, so allow a generous 30% slack
            assert result.makespan <= result.guarantee * result.lower_bound * 1.3
