"""Unit tests of the capacity policy (``repro.core.capacity``).

Every wide-limb operation is pinned against a Python-int (arbitrary
precision) reference on values straddling the three tier boundaries —
``2**53`` (exact-float), ``2**62`` (int64 columns) and ``2**93`` (wide
limbs) — plus randomized sweeps seeded per magnitude band.
"""

import random

import numpy as np
import pytest

from repro.core.capacity import (
    INT64_OPS,
    LIMB_BITS,
    MAX_COLUMNAR_M,
    MAX_EXACT_FLOAT_M,
    MAX_WIDE_TOTAL,
    OBJECT_OPS,
    WIDE_OPS,
    capacity_ops,
    capacity_tier,
    float_exact,
    index_array,
    total_fits_int64,
)

BOUNDARY_VALUES = [
    1,
    MAX_EXACT_FLOAT_M - 1,
    MAX_EXACT_FLOAT_M,
    MAX_EXACT_FLOAT_M + 1,
    MAX_COLUMNAR_M - 1,
    MAX_COLUMNAR_M,
    MAX_COLUMNAR_M + 1,
    1 << 80,
    MAX_WIDE_TOTAL - 1,
]


def _random_values(rng, n, bound):
    return [rng.randrange(1, bound) for _ in range(n)]


class TestTierSelection:
    def test_int64_boundary_is_the_historical_guard(self):
        m = 1 << 40
        assert capacity_tier(m, MAX_COLUMNAR_M - m) == "int64"
        assert capacity_tier(m, MAX_COLUMNAR_M - m + 1) == "wide"

    def test_m_alone_pushes_past_int64(self):
        assert capacity_tier(MAX_COLUMNAR_M) == "int64"
        assert capacity_tier(MAX_COLUMNAR_M + 1) == "wide"

    def test_wide_boundary(self):
        m = 1 << 80
        assert capacity_tier(m, MAX_WIDE_TOTAL - m) == "wide"
        assert capacity_tier(m, MAX_WIDE_TOTAL - m + 1) == "object"
        assert capacity_tier(MAX_WIDE_TOTAL + 1) == "object"

    def test_ops_objects_match_tiers(self):
        assert capacity_ops(64) is INT64_OPS
        assert capacity_ops(1 << 70) is WIDE_OPS
        assert capacity_ops(1 << 100) is OBJECT_OPS


class TestFloatBoundary:
    def test_float_exact_cuts_at_2_53(self):
        assert float_exact(MAX_EXACT_FLOAT_M)
        assert not float_exact(MAX_EXACT_FLOAT_M + 1)

    def test_total_fits_int64_is_exact_in_the_float_gap(self):
        # 2**62 + 2 rounds to exactly 2**62 in float64: the historical float
        # guard called this total safe, the exact check must not.
        procs = np.array([MAX_COLUMNAR_M, 2], dtype=np.int64)
        assert float(np.sum(procs.astype(np.float64))) <= float(MAX_COLUMNAR_M)
        assert not total_fits_int64(procs)

    def test_total_fits_int64_accepts_the_exact_cap(self):
        procs = np.array([MAX_COLUMNAR_M - 7, 7], dtype=np.int64)
        assert total_fits_int64(procs)

    def test_total_fits_int64_object_dtype(self):
        procs = np.array([1 << 80, 1], dtype=object)
        assert not total_fits_int64(procs)
        assert total_fits_int64(np.array([1 << 50, 1 << 50], dtype=object))


class TestIndexArray:
    def test_small_values_stay_int64(self):
        arr = index_array([1, 2, 3])
        assert arr.dtype == np.int64

    def test_huge_values_fall_back_to_object(self):
        arr = index_array([1, 1 << 80])
        assert arr.dtype == object
        assert arr.tolist() == [1, 1 << 80]

    def test_empty(self):
        assert index_array([]).dtype == np.int64


@pytest.mark.parametrize("ops", [WIDE_OPS, OBJECT_OPS], ids=["wide", "object"])
class TestOpsAgainstPythonReference:
    """The wide and object tiers must reproduce exact Python-int arithmetic."""

    def test_roundtrip(self, ops):
        vals = BOUNDARY_VALUES
        assert ops.tolist(ops.asarray(vals)) == vals

    def test_cumsum(self, ops):
        rng = random.Random(7)
        # stay within the tier contract: the 200-element total must not
        # exceed MAX_WIDE_TOTAL (200 * 2**85 < 2**93)
        for bound in (MAX_EXACT_FLOAT_M + 3, MAX_COLUMNAR_M + 3, 1 << 85):
            vals = _random_values(rng, 200, bound)
            expect = []
            acc = 0
            for v in vals:
                acc += v
                expect.append(acc)
            assert ops.tolist(ops.cumsum(ops.asarray(vals))) == expect

    def test_min_value_with_and_without_mask(self, ops):
        rng = random.Random(11)
        vals = _random_values(rng, 64, 1 << 90)
        a = ops.asarray(vals)
        assert ops.min_value(a) == min(vals)
        mask = np.array([i % 3 == 0 for i in range(64)])
        assert ops.min_value(a, mask) == min(v for i, v in enumerate(vals) if i % 3 == 0)

    def test_min_value_ties_across_high_limbs(self, ops):
        base = 5 << LIMB_BITS
        vals = [base + 9, base + 3, (6 << LIMB_BITS) + 1]
        assert ops.min_value(ops.asarray(vals)) == base + 3

    def test_le_mask(self, ops):
        rng = random.Random(13)
        vals = _random_values(rng, 100, 1 << 90)
        bound = rng.randrange(1, 1 << 90)
        got = ops.le_mask(ops.asarray(vals), bound)
        assert got.tolist() == [v <= bound for v in vals]

    def test_count_le_matches_bisect(self, ops):
        rng = random.Random(17)
        vals = sorted(_random_values(rng, 150, 1 << 90))
        for bound in (vals[0] - 1, vals[0], vals[75], vals[-1], vals[-1] + 1):
            expect = sum(1 for v in vals if v <= bound)
            assert ops.count_le(ops.asarray(vals), bound) == expect

    def test_item_and_negative_index(self, ops):
        vals = [1 << 80, (1 << 80) + 5, 3]
        a = ops.asarray(vals)
        assert ops.item(a, 0) == vals[0]
        assert ops.item(a, -1) == 3

    def test_merge_bounds_is_sorted_unique_union(self, ops):
        rng = random.Random(19)
        a = sorted(_random_values(rng, 60, 1 << 90))
        b = sorted(a[:20] + _random_values(rng, 40, 1 << 90))
        got = ops.tolist(ops.merge_bounds(ops.asarray(a), ops.asarray(b)))
        assert got == sorted(set(a) | set(b))

    def test_cut_positions_is_searchsorted_right(self, ops):
        import bisect

        rng = random.Random(23)
        a = sorted(_random_values(rng, 80, 1 << 90))
        b = sorted(a[::7] + _random_values(rng, 30, 1 << 90))
        got = ops.cut_positions(ops.asarray(a), ops.asarray(b))
        expect = [bisect.bisect_right(a, v) for v in b]
        assert list(map(int, got)) == expect

    def test_add_sub_with_carries(self, ops):
        rng = random.Random(29)
        xs = _random_values(rng, 120, 1 << 90)
        ys = [rng.randrange(0, x + 1) for x in xs]
        ax, ay = ops.asarray(xs), ops.asarray(ys)
        assert ops.tolist(ops.add(ax, ay)) == [x + y for x, y in zip(xs, ys)]
        assert ops.tolist(ops.sub(ax, ay)) == [x - y for x, y in zip(xs, ys)]

    def test_prepend_zero_head_take(self, ops):
        vals = [1 << 85, 7, 1 << 62]
        a = ops.asarray(vals)
        assert ops.tolist(ops.prepend_zero(a)) == [0] + vals
        assert ops.tolist(ops.head(a, 2)) == vals[:2]
        idx = np.array([2, 0], dtype=np.int64)
        assert ops.tolist(ops.take(a, idx)) == [vals[2], vals[0]]

    def test_huge_python_int_slice_bound(self, ops):
        a = ops.asarray([1, 2, 3])
        assert ops.tolist(ops.head(a, 1 << 80)) == [1, 2, 3]

    def test_empty_vectors(self, ops):
        a = ops.asarray([])
        assert len(a) == 0
        assert ops.tolist(a) == []
        assert ops.tolist(ops.cumsum(a)) == []
        assert ops.tolist(ops.merge_bounds(a, ops.asarray([5]))) == [5]


class TestInt64OpsParity:
    """The int64 tier must behave identically to the other tiers on shared
    inputs (it is the fast path the schedulers ran on all along)."""

    def test_same_answers_as_object_ops(self):
        rng = random.Random(31)
        vals = [rng.randrange(1, 1 << 40) for _ in range(100)]
        a64 = INT64_OPS.asarray(vals)
        aob = OBJECT_OPS.asarray(vals)
        awd = WIDE_OPS.asarray(vals)
        assert INT64_OPS.tolist(INT64_OPS.cumsum(a64)) == OBJECT_OPS.tolist(
            OBJECT_OPS.cumsum(aob)
        )
        assert INT64_OPS.tolist(INT64_OPS.cumsum(a64)) == WIDE_OPS.tolist(
            WIDE_OPS.cumsum(awd)
        )
        bound = vals[50]
        assert INT64_OPS.min_value(a64) == WIDE_OPS.min_value(awd)
        assert (
            INT64_OPS.le_mask(a64, bound).tolist()
            == WIDE_OPS.le_mask(awd, bound).tolist()
        )
