"""Tests for the FPTAS (Theorem 2) and the PTAS dispatcher (Section 3.2)."""

import pytest

from repro.core.bounds import makespan_lower_bound
from repro.core.exact_small import exact_makespan
from repro.core.fptas import fptas_dual, fptas_machine_threshold, fptas_schedule, ptas_schedule
from repro.core.job import AmdahlJob, PowerLawJob
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import (
    random_amdahl_instance,
    random_monotone_tabulated_instance,
    random_power_law_instance,
)


class TestFptasDual:
    def test_accepts_generous_target(self):
        jobs = [AmdahlJob(f"a{i}", 10.0, 0.1) for i in range(4)]
        m = 1000
        schedule = fptas_dual(jobs, m, 20.0, 0.1)
        assert schedule is not None
        assert_valid_schedule(schedule, jobs, max_makespan=(1.1) * 20.0)

    def test_all_jobs_start_at_zero(self):
        jobs = [PowerLawJob(f"p{i}", 30.0, 0.8) for i in range(5)]
        schedule = fptas_dual(jobs, 10 ** 6, 5.0, 0.1)
        assert schedule is not None
        assert all(e.start == 0.0 for e in schedule.entries)

    def test_rejects_when_too_many_processors_needed(self):
        # 4 sequential-ish jobs of length 10 on 2 machines cannot all meet d=6
        jobs = [AmdahlJob(f"a{i}", 10.0, 0.9) for i in range(4)]
        assert fptas_dual(jobs, 2, 6.0, 0.1) is None

    def test_rejects_unreachable_threshold(self):
        jobs = [AmdahlJob("a", 10.0, 1.0)]  # never faster than 10
        assert fptas_dual(jobs, 100, 5.0, 0.1) is None

    def test_rejects_nonpositive_target(self):
        jobs = [AmdahlJob("a", 10.0, 0.1)]
        assert fptas_dual(jobs, 100, 0.0, 0.1) is None

    def test_makespan_within_one_plus_eps_of_target(self):
        jobs = [PowerLawJob(f"p{i}", 50.0, 0.6) for i in range(6)]
        d = 12.0
        eps = 0.25
        schedule = fptas_dual(jobs, 10 ** 5, d, eps)
        assert schedule is not None
        assert schedule.makespan <= (1 + eps) * d * (1 + 1e-9)


class TestFptasSchedule:
    def test_threshold_check(self):
        jobs = [AmdahlJob(f"a{i}", 10.0, 0.1) for i in range(10)]
        eps = 0.1
        with pytest.raises(ValueError):
            fptas_schedule(jobs, 100, eps)  # 100 < 8*10/0.1 = 800

    def test_guarantee_vs_exact_optimum(self):
        """(1+eps) OPT on tiny instances where the optimum is computable."""
        for seed in range(3):
            instance = random_monotone_tabulated_instance(3, 5, seed=seed)
            # m=5 does not satisfy m >= 8n/eps; disable the threshold check to
            # exercise the dual anyway — the guarantee may then not hold, so we
            # only check feasibility here.
            result = fptas_schedule(instance.jobs, 5, 0.5, enforce_threshold=False)
            assert_valid_schedule(result.schedule, instance.jobs)

    def test_guarantee_vs_lower_bound_large_m(self):
        for eps in (0.05, 0.1, 0.3):
            instance = random_amdahl_instance(20, 10 ** 7, seed=8)
            result = fptas_schedule(instance.jobs, instance.m, eps)
            lb = makespan_lower_bound(instance.jobs, instance.m)
            assert result.makespan <= (1 + eps) * lb * (1 + 1e-6) or result.makespan <= (1 + eps) * lb * 1.01

    def test_schedules_are_valid(self):
        instance = random_power_law_instance(16, 1 << 16, seed=3)
        result = fptas_schedule(instance.jobs, instance.m, 0.2)
        assert_valid_schedule(result.schedule, instance.jobs)

    def test_eps_validation(self):
        jobs = [AmdahlJob("a", 10.0, 0.1)]
        with pytest.raises(ValueError):
            fptas_schedule(jobs, 1000, 0.0)
        with pytest.raises(ValueError):
            fptas_schedule(jobs, 1000, 1.5)

    def test_machine_threshold_formula(self):
        assert fptas_machine_threshold(10, 0.1) == pytest.approx(800.0)
        assert fptas_machine_threshold(0, 0.1) == 0.0


class TestPtasSchedule:
    def test_dispatch_to_fptas_for_large_m(self):
        instance = random_amdahl_instance(12, 10 ** 6, seed=1)
        result = ptas_schedule(instance.jobs, instance.m, 0.2)
        assert result.schedule.metadata["algorithm"] == "fptas"
        assert_valid_schedule(result.schedule, instance.jobs)

    def test_dispatch_to_exact_for_tiny_instances(self):
        instance = random_monotone_tabulated_instance(4, 4, seed=2)
        result = ptas_schedule(instance.jobs, 4, 0.3)
        assert result.schedule.metadata["algorithm"] == "ptas_exact"
        opt = exact_makespan(instance.jobs, 4)
        assert result.makespan == pytest.approx(opt, rel=1e-9)

    def test_dispatch_to_bounded_fallback(self):
        instance = random_monotone_tabulated_instance(20, 16, seed=3)
        result = ptas_schedule(instance.jobs, 16, 0.3)
        assert result.schedule.metadata["algorithm"] == "ptas_fallback_bounded"
        assert_valid_schedule(result.schedule, instance.jobs)
        # the substituted guarantee is 3/2 + eps
        lb = makespan_lower_bound(instance.jobs, 16)
        assert result.makespan <= (1.5 + 0.3) * lb * 2  # loose sanity bound

    def test_empty_instance(self):
        result = ptas_schedule([], 8, 0.1)
        assert result.makespan == 0.0
