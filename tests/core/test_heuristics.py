"""Tests for the practical heuristic baselines."""

import pytest

from repro.core.bounds import serial_upper_bound, trivial_lower_bound
from repro.core.heuristics import lpt_moldable, max_parallelism_baseline, sequential_baseline
from repro.core.job import AmdahlJob
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_mixed_instance


class TestSequentialBaseline:
    def test_feasible_and_single_processor(self):
        instance = random_mixed_instance(20, 8, seed=1)
        schedule = sequential_baseline(instance.jobs, 8)
        assert_valid_schedule(schedule, instance.jobs)
        assert all(e.processors == 1 for e in schedule.entries)

    def test_never_exceeds_serial_upper_bound(self):
        instance = random_mixed_instance(15, 4, seed=2)
        schedule = sequential_baseline(instance.jobs, 4)
        assert schedule.makespan <= serial_upper_bound(instance.jobs) * (1 + 1e-9)

    def test_empty(self):
        assert sequential_baseline([], 4).makespan == 0.0


class TestMaxParallelismBaseline:
    def test_feasible(self):
        instance = random_mixed_instance(20, 32, seed=3)
        schedule = max_parallelism_baseline(instance.jobs, 32)
        assert_valid_schedule(schedule, instance.jobs)

    def test_efficiency_threshold_respected(self):
        instance = random_mixed_instance(15, 64, seed=4)
        threshold = 0.6
        schedule = max_parallelism_baseline(instance.jobs, 64, efficiency_threshold=threshold)
        for entry in schedule.entries:
            assert entry.job.efficiency(entry.processors) >= threshold - 1e-9

    def test_threshold_one_means_perfectly_efficient_counts(self):
        # an Amdahl job with serial fraction > 0 is only 100% efficient on one processor
        job = AmdahlJob("a", 10.0, 0.2)
        schedule = max_parallelism_baseline([job], 16, efficiency_threshold=1.0)
        assert schedule.entry_for(job).processors == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            max_parallelism_baseline([], 4, efficiency_threshold=0.0)


class TestLptMoldable:
    def test_feasible(self):
        instance = random_mixed_instance(25, 16, seed=5)
        schedule = lpt_moldable(instance.jobs, 16)
        assert_valid_schedule(schedule, instance.jobs)

    def test_respects_custom_target_when_possible(self):
        instance = random_mixed_instance(10, 32, seed=6)
        target = serial_upper_bound(instance.jobs)
        schedule = lpt_moldable(instance.jobs, 32, target=target)
        for entry in schedule.entries:
            assert entry.duration <= target * (1 + 1e-9)

    def test_not_worse_than_four_times_lower_bound(self):
        """Crude sanity: the heuristic is never catastrophically bad on the
        standard workloads (factor-4 of the certified lower bound)."""
        for seed in range(3):
            instance = random_mixed_instance(30, 24, seed=seed + 7)
            schedule = lpt_moldable(instance.jobs, 24)
            assert schedule.makespan <= 4.0 * trivial_lower_bound(instance.jobs, 24)

    def test_empty(self):
        assert lpt_moldable([], 4).makespan == 0.0
