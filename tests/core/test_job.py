"""Tests for the moldable job models."""

import math

import pytest

from repro.core.job import (
    AmdahlJob,
    CommunicationJob,
    MoldableJob,
    OracleJob,
    PowerLawJob,
    RigidJob,
    TabulatedJob,
    max_sequential_time,
    total_minimal_work,
)
from repro.core.validation import is_monotone_work, is_nonincreasing_time


class TestTabulatedJob:
    def test_lookup(self):
        job = TabulatedJob("t", [10.0, 6.0, 5.0])
        assert job.processing_time(1) == 10.0
        assert job.processing_time(2) == 6.0
        assert job.processing_time(3) == 5.0

    def test_clamp_beyond_table(self):
        job = TabulatedJob("t", [10.0, 6.0])
        assert job.processing_time(5) == 6.0
        assert job.processing_time(1000) == 6.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TabulatedJob("t", [])

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ValueError):
            TabulatedJob("t", [1.0, 0.0])

    def test_work_and_speedup(self):
        job = TabulatedJob("t", [12.0, 7.0, 6.0])
        assert job.work(2) == pytest.approx(14.0)
        assert job.speedup(3) == pytest.approx(2.0)
        assert job.efficiency(3) == pytest.approx(2.0 / 3.0)


class TestOracleJob:
    def test_callable_is_used(self):
        job = OracleJob("o", lambda k: 100.0 / k)
        assert job.processing_time(4) == pytest.approx(25.0)

    def test_memoisation(self):
        calls = []

        def oracle(k):
            calls.append(k)
            return 10.0 / k

        job = OracleJob("o", oracle)
        job.processing_time(3)
        job.processing_time(3)
        assert calls == [3]

    def test_invalid_oracle_value(self):
        job = OracleJob("bad", lambda k: -1.0)
        with pytest.raises(ValueError):
            job.processing_time(1)

    def test_nan_oracle_value(self):
        job = OracleJob("nan", lambda k: float("nan"))
        with pytest.raises(ValueError):
            job.processing_time(2)


class TestProcessorCountValidation:
    def test_zero_processors_rejected(self):
        job = AmdahlJob("a", 10.0, 0.1)
        with pytest.raises(ValueError):
            job.processing_time(0)

    def test_negative_processors_rejected(self):
        job = AmdahlJob("a", 10.0, 0.1)
        with pytest.raises(ValueError):
            job.processing_time(-2)

    def test_fractional_processors_rejected(self):
        job = AmdahlJob("a", 10.0, 0.1)
        with pytest.raises(ValueError):
            job.processing_time(1.5)


class TestAmdahlJob:
    def test_serial_fraction_one_means_no_speedup(self):
        job = AmdahlJob("a", 10.0, 1.0)
        assert job.processing_time(64) == pytest.approx(10.0)

    def test_serial_fraction_zero_means_linear_speedup(self):
        job = AmdahlJob("a", 10.0, 0.0)
        assert job.processing_time(10) == pytest.approx(1.0)

    def test_monotone(self):
        job = AmdahlJob("a", 100.0, 0.07)
        assert is_nonincreasing_time(job, 256)
        assert is_monotone_work(job, 256)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AmdahlJob("a", -1.0, 0.1)
        with pytest.raises(ValueError):
            AmdahlJob("a", 1.0, 1.5)


class TestPowerLawJob:
    def test_alpha_one_is_linear(self):
        job = PowerLawJob("p", 64.0, 1.0)
        assert job.processing_time(8) == pytest.approx(8.0)

    def test_alpha_zero_is_sequential(self):
        job = PowerLawJob("p", 64.0, 0.0)
        assert job.processing_time(8) == pytest.approx(64.0)

    def test_monotone(self):
        job = PowerLawJob("p", 50.0, 0.6)
        assert is_nonincreasing_time(job, 200)
        assert is_monotone_work(job, 200)

    def test_work_grows_as_power(self):
        job = PowerLawJob("p", 10.0, 0.5)
        assert job.work(4) == pytest.approx(10.0 * 4 ** 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PowerLawJob("p", 1.0, 2.0)


class TestCommunicationJob:
    def test_monotone_despite_overhead(self):
        job = CommunicationJob("c", t1=100.0, overhead=0.5)
        assert is_nonincreasing_time(job, 128)
        assert is_monotone_work(job, 128)

    def test_saturation(self):
        job = CommunicationJob("c", t1=100.0, overhead=1.0)
        k_star = job.k_star
        assert k_star is not None
        # beyond saturation the processing time stays constant
        assert job.processing_time(k_star) == pytest.approx(job.processing_time(k_star + 10))

    def test_zero_overhead_is_linear(self):
        job = CommunicationJob("c", t1=100.0, overhead=0.0)
        assert job.processing_time(10) == pytest.approx(10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CommunicationJob("c", t1=0.0, overhead=0.1)
        with pytest.raises(ValueError):
            CommunicationJob("c", t1=1.0, overhead=-0.1)


class TestRigidJob:
    def test_penalty_below_size(self):
        job = RigidJob("r", duration=5.0, size=4)
        assert job.processing_time(3) > 1000 * job.processing_time(4)

    def test_constant_at_or_above_size(self):
        job = RigidJob("r", duration=5.0, size=4)
        assert job.processing_time(4) == pytest.approx(5.0)
        assert job.processing_time(9) == pytest.approx(5.0)

    def test_not_monotone_work(self):
        job = RigidJob("r", duration=5.0, size=4)
        assert not is_monotone_work(job, 8)


class TestAggregates:
    def test_total_minimal_work(self):
        jobs = [TabulatedJob("a", [3.0]), TabulatedJob("b", [4.0])]
        assert total_minimal_work(jobs) == pytest.approx(7.0)

    def test_max_sequential_time(self):
        jobs = [AmdahlJob("a", 10.0, 0.5), AmdahlJob("b", 30.0, 0.5)]
        assert max_sequential_time(jobs, 4) == pytest.approx(30.0 * (0.5 + 0.5 / 4))

    def test_empty(self):
        assert total_minimal_work([]) == 0.0
        assert max_sequential_time([], 4) == 0.0


class TestJobIdentity:
    def test_jobs_hash_by_identity(self):
        a = TabulatedJob("same", [1.0])
        b = TabulatedJob("same", [1.0])
        assert a != b
        assert len({a, b}) == 2

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            MoldableJob("abstract")  # type: ignore[abstract]
