"""Tests for the dual-approximation binary-search driver."""

import math

import pytest

from repro.core.dual import dual_binary_search
from repro.core.job import AmdahlJob, TabulatedJob
from repro.core.schedule import Schedule
from repro.workloads.generators import random_mixed_instance


def make_threshold_dual(jobs, m, threshold, factor=1.5):
    """A toy dual algorithm: accepts d >= threshold with makespan factor*d."""

    calls = []

    def dual(d):
        calls.append(d)
        if d < threshold:
            return None
        schedule = Schedule(m=m)
        start = 0.0
        for job in jobs:
            schedule.add(job, 0.0, [(0, 1)], duration_override=factor * d)
            break
        return schedule

    return dual, calls


class TestDualBinarySearch:
    def test_empty_jobs(self):
        result = dual_binary_search([], 4, lambda d: Schedule(m=4), tolerance=0.1)
        assert result.makespan == 0.0

    def test_converges_to_threshold(self):
        jobs = [TabulatedJob("a", [10.0])]
        m = 2
        threshold = 7.0
        dual, calls = make_threshold_dual(jobs, m, threshold)
        result = dual_binary_search(jobs, m, dual, tolerance=0.01, lower=1.0, upper=20.0)
        # the accepted d converges to within (1+tolerance) of the threshold
        assert threshold <= result.accepted_d <= threshold * 1.02
        assert result.dual_calls == len(calls)

    def test_tolerance_controls_accuracy(self):
        jobs = [TabulatedJob("a", [10.0])]
        dual, _ = make_threshold_dual(jobs, 2, 5.0)
        coarse = dual_binary_search(jobs, 2, dual, tolerance=0.5, lower=1.0, upper=20.0)
        fine = dual_binary_search(jobs, 2, dual, tolerance=0.01, lower=1.0, upper=20.0)
        assert fine.accepted_d <= coarse.accepted_d + 1e-9
        assert fine.iterations >= coarse.iterations

    def test_widens_bracket_when_upper_rejected(self):
        jobs = [TabulatedJob("a", [10.0])]
        dual, _ = make_threshold_dual(jobs, 2, 50.0)
        result = dual_binary_search(jobs, 2, dual, tolerance=0.05, lower=1.0, upper=2.0)
        assert result.accepted_d >= 50.0

    def test_raises_when_never_accepting(self):
        jobs = [TabulatedJob("a", [10.0])]
        with pytest.raises(RuntimeError):
            dual_binary_search(jobs, 2, lambda d: None, tolerance=0.1, lower=1.0, upper=2.0)

    def test_invalid_tolerance(self):
        jobs = [TabulatedJob("a", [10.0])]
        with pytest.raises(ValueError):
            dual_binary_search(jobs, 2, lambda d: None, tolerance=0.0)

    def test_default_bracket_from_estimator(self):
        instance = random_mixed_instance(15, 8, seed=4)

        def dual(d):
            # trivial dual: serial schedule if d is at least the serial time
            total = sum(j.processing_time(1) for j in instance.jobs)
            if d < total:
                return None
            schedule = Schedule(m=8)
            t = 0.0
            for job in instance.jobs:
                schedule.add(job, t, [(0, 1)])
                t += job.processing_time(1)
            return schedule

        result = dual_binary_search(instance.jobs, 8, dual, tolerance=0.05)
        total = sum(j.processing_time(1) for j in instance.jobs)
        assert result.makespan == pytest.approx(total)

    def test_iteration_count_logarithmic(self):
        """The number of dual calls grows like log(1/tolerance), not linearly."""
        jobs = [AmdahlJob("a", 100.0, 0.1)]
        dual, calls = make_threshold_dual(jobs, 4, 9.0)
        dual_binary_search(jobs, 4, dual, tolerance=1e-4, lower=1.0, upper=16.0)
        assert len(calls) <= 10 + math.ceil(math.log2(math.log(16.0) / math.log(1 + 1e-4)))
