"""Tests for Garey–Graham list scheduling with fixed allotments."""

import pytest

from repro.core.allotment import Allotment, canonical_allotment
from repro.core.job import TabulatedJob
from repro.core.list_scheduling import list_schedule, list_schedule_bound
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_mixed_instance


def make_rigid(name, duration, size, m):
    """A job that takes `duration` on any processor count (size fixed via allotment)."""
    return TabulatedJob(name, [duration] * m)


class TestListSchedule:
    def test_single_job_uses_requested_processors(self):
        m = 4
        job = make_rigid("a", 5.0, 2, m)
        allot = Allotment({job: 2})
        schedule = list_schedule([job], allot, m)
        entry = schedule.entry_for(job)
        assert entry.processors == 2
        assert entry.start == 0.0

    def test_sequentialises_when_not_enough_machines(self):
        m = 2
        a = make_rigid("a", 5.0, 2, m)
        b = make_rigid("b", 3.0, 2, m)
        allot = Allotment({a: 2, b: 2})
        schedule = list_schedule([a, b], allot, m)
        assert schedule.entry_for(b).start == pytest.approx(5.0)
        assert schedule.makespan == pytest.approx(8.0)

    def test_parallel_when_machines_available(self):
        m = 4
        a = make_rigid("a", 5.0, 2, m)
        b = make_rigid("b", 3.0, 2, m)
        allot = Allotment({a: 2, b: 2})
        schedule = list_schedule([a, b], allot, m)
        assert schedule.entry_for(b).start == 0.0
        assert schedule.makespan == pytest.approx(5.0)

    def test_order_matters(self):
        m = 2
        a = make_rigid("a", 10.0, 1, m)
        b = make_rigid("b", 1.0, 2, m)
        allot = Allotment({a: 1, b: 2})
        forward = list_schedule([a, b], allot, m, order=[a, b])
        backward = list_schedule([a, b], allot, m, order=[b, a])
        assert forward.makespan == pytest.approx(11.0)
        assert backward.makespan == pytest.approx(11.0)
        assert forward.entry_for(b).start == pytest.approx(10.0)
        assert backward.entry_for(b).start == pytest.approx(0.0)

    def test_garey_graham_bound(self):
        """makespan <= 2 * max(W/m, T_max) on random instances."""
        for seed in range(5):
            instance = random_mixed_instance(30, 16, seed=seed)
            allot = canonical_allotment(instance.jobs, 1e9, 16)
            assert allot is not None
            schedule = list_schedule(instance.jobs, allot, 16)
            assert_valid_schedule(schedule, instance.jobs)
            assert schedule.makespan <= list_schedule_bound(allot, 16) * (1 + 1e-9)

    def test_schedules_are_feasible(self):
        instance = random_mixed_instance(40, 8, seed=9)
        allot = canonical_allotment(instance.jobs, 1e9, 8)
        schedule = list_schedule(instance.jobs, allot, 8)
        assert_valid_schedule(schedule, instance.jobs)

    def test_missing_allotment_rejected(self):
        m = 2
        a = make_rigid("a", 1.0, 1, m)
        b = make_rigid("b", 1.0, 1, m)
        with pytest.raises(ValueError):
            list_schedule([a, b], Allotment({a: 1}), m)

    def test_oversized_allotment_rejected(self):
        m = 2
        a = make_rigid("a", 1.0, 1, m)
        with pytest.raises(ValueError):
            list_schedule([a], Allotment({a: 3}), m)

    def test_order_must_be_permutation(self):
        m = 2
        a = make_rigid("a", 1.0, 1, m)
        b = make_rigid("b", 1.0, 1, m)
        with pytest.raises(ValueError):
            list_schedule([a, b], Allotment({a: 1, b: 1}), m, order=[a])

    def test_invalid_m(self):
        a = make_rigid("a", 1.0, 1, 1)
        with pytest.raises(ValueError):
            list_schedule([a], Allotment({a: 1}), 0)

    def test_empty_jobs(self):
        schedule = list_schedule([], Allotment({}), 4)
        assert schedule.makespan == 0.0


class TestColumnarListScheduling:
    """list_schedule(columnar=True) must be bit-identical to the scalar loop."""

    def test_columnar_matches_scalar_on_random_instances(self):
        from repro.workloads.generators import random_bimodal_instance, random_mixed_instance

        for generator, seed in [
            (random_mixed_instance, 1),
            (random_mixed_instance, 9),
            (random_bimodal_instance, 4),
        ]:
            instance = generator(80, 96, seed=seed)
            allotment = Allotment({job: (i % 7) + 1 for i, job in enumerate(instance.jobs)})
            scalar = list_schedule(instance.jobs, allotment, 96)
            columnar = list_schedule(instance.jobs, allotment, 96, columnar=True)
            assert len(scalar.entries) == len(columnar.entries)
            for a, b in zip(scalar.entries, columnar.entries):
                assert a.job is b.job and a.start == b.start and a.spans == b.spans
            assert scalar.makespan == columnar.makespan

    def test_columnar_validates_allotment_like_scalar(self):
        job = TabulatedJob("j", [5.0, 3.0])
        with pytest.raises(ValueError):
            list_schedule([job], Allotment({}), 4, columnar=True)

    def test_columnar_empty(self):
        schedule = list_schedule([], Allotment({}), 4, columnar=True)
        assert len(schedule) == 0
