"""Event-epoch grouping semantics of the batched event-queue list scheduler.

The scalar heap loop groups completions within :func:`epoch_tolerance` of
the earliest pending completion into one wake-up — ``max(1e-15 absolute,
two ulp relative)``, so grouping keeps working at magnitudes where float64
resolution has outgrown the historical absolute ``1e-15`` — and the
event-queue backends must reproduce that grouping *exactly*: near-tie
floats just past the window (at every magnitude) must NOT merge epochs,
ties inside it MUST, and the tolerance window is anchored at the earliest
completion only (no chaining), following the PR-3 near-tie sweep
conventions of pinning both sides of every tolerance boundary.

All pins assert *both* the epoch instrumentation and bit-identity of the
resulting schedule against the heap reference, so a grouping regression
cannot hide behind a still-identical schedule or vice versa.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allotment import Allotment
from repro.core.job import TabulatedJob
from repro.core.list_scheduling import (
    EPOCH_REL_TOLERANCE,
    EPOCH_TOLERANCE,
    LIST_BACKENDS,
    epoch_tolerance,
    list_schedule,
)
from repro.core.schedule import MAX_COLUMNAR_M
from repro.core.validation import validate_schedule

ULP16 = np.nextafter(16.0, 32.0) - 16.0  # 3.55e-15 > EPOCH_TOLERANCE
ULP1 = np.nextafter(1.0, 2.0) - 1.0  # 2.22e-16 < EPOCH_TOLERANCE
M20 = 2.0 ** 20  # a magnitude where one ulp dwarfs the old absolute 1e-15
ULP20 = np.nextafter(M20, 2 * M20) - M20  # 2^-32 ~ 2.33e-10


def _jobs_with_durations(durations, need=1):
    """One TabulatedJob per duration, constant table at its allotted need."""
    jobs = [
        TabulatedJob(f"j{i}", [float(d)] * need) for i, d in enumerate(durations)
    ]
    allot = Allotment({job: need for job in jobs})
    return jobs, allot


def _assert_identical(a, b, ctx=""):
    assert a.m == b.m and len(a) == len(b), ctx
    assert [j.name for j in a.jobs()] == [j.name for j in b.jobs()], ctx
    if len(a) == 0:
        return
    ca, cb = a.columns(), b.columns()
    for f in ("start", "processors", "duration", "span_owner", "span_first", "span_end"):
        assert np.array_equal(getattr(ca, f), getattr(cb, f)), (ctx, f)


def _run(jobs, allot, m, backend="event_queue", **kw):
    stats = {}
    schedule = list_schedule(jobs, allot, m, backend=backend, stats=stats, **kw)
    return schedule, stats


class TestEpochGroupingPins:
    def test_identical_times_merge_into_one_epoch(self):
        jobs, allot = _jobs_with_durations([16.0, 16.0, 16.0, 16.0])
        schedule, stats = _run(jobs, allot, 4)
        assert stats["epochs"] == 1
        assert stats["events"] == 4
        assert stats["max_epoch_completions"] == 4
        _assert_identical(list_schedule(jobs, allot, 4, backend="heap"), schedule)

    def test_three_ulp_apart_at_16_does_not_merge(self):
        """At magnitude 16 the relative window is exactly two ulp
        (16 * 2^-51 = 2 * 2^-48): a three-ulp separation sits outside it, so
        the two completions are distinct epochs, exactly as the heap pops
        them."""
        assert ULP16 > EPOCH_TOLERANCE  # the absolute floor alone would split even 1 ulp
        assert 3 * ULP16 > epoch_tolerance(16.0)
        jobs, allot = _jobs_with_durations([16.0, 16.0 + 3 * ULP16])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 2
        assert stats["max_epoch_completions"] == 1
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_two_ulp_apart_at_16_merges(self):
        """Both sides of the relative boundary at magnitude 16: two ulp is
        *exactly* the window (16 * EPOCH_REL_TOLERANCE == 2 ulp, and the
        grouping comparison is inclusive), so the completions share one
        epoch — under the old absolute-only 1e-15 tolerance they were
        (wrongly) split, degrading grouping to exact-ties-only past
        magnitude ~1."""
        assert 2 * ULP16 == epoch_tolerance(16.0) > EPOCH_TOLERANCE
        jobs, allot = _jobs_with_durations([16.0, 16.0 + 2 * ULP16])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        assert stats["max_epoch_completions"] == 2
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_relative_window_scales_to_large_magnitudes(self):
        """At magnitude 2^20 the window is 2^20 * 2^-51 = still exactly two
        ulp (the relative tolerance is scale-free at power-of-two anchors):
        a two-ulp separation merges, three ulp does not — pinned on both
        sides (the absolute 1e-15 floor is five orders of magnitude below
        one ulp here, so only the relative term can group anything)."""
        assert ULP20 > 100.0 * EPOCH_TOLERANCE
        assert 2 * ULP20 == epoch_tolerance(M20)
        jobs, allot = _jobs_with_durations([M20, M20 + 2 * ULP20])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        assert stats["max_epoch_completions"] == 2
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

        jobs, allot = _jobs_with_durations([M20, M20 + 3 * ULP20])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 2
        assert stats["max_epoch_completions"] == 1
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_relative_window_is_capped_at_magnitude_2_60(self):
        """Above 2^60 the relative term stops growing: the window anchors at
        2^60 * 2^-51 = 512.  Without the cap the window at magnitude 2^62
        would be 2048 — *four* ulp there (ulp = 1024), fusing floats that are
        two representable values apart into one epoch.  Pinned on both sides:
        one ulp (1024) at 2^62 stays split, exact ties still merge."""
        from repro.core.list_scheduling import EPOCH_REL_MAGNITUDE_CAP

        m62 = 2.0 ** 62
        ulp62 = float(np.spacing(m62))
        assert ulp62 == 1024.0
        assert epoch_tolerance(m62) == EPOCH_REL_MAGNITUDE_CAP * EPOCH_REL_TOLERANCE == 512.0
        assert epoch_tolerance(m62) < ulp62  # the uncapped window (2048) was not

        jobs, allot = _jobs_with_durations([m62, m62 + ulp62])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 2
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

        jobs, allot = _jobs_with_durations([m62, m62])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_two_ulp_still_merges_at_the_cap_anchor(self):
        """At the 2^60 anchor itself the window is exactly two ulp (2^60 *
        2^-51 = 2 * 2^9 = 512 with ulp 256): two ulp merges, three does not —
        the historical two-ulp semantics hold right up to the cap."""
        m60 = 2.0 ** 60
        ulp60 = float(np.spacing(m60))
        assert epoch_tolerance(m60) == 2 * ulp60

        jobs, allot = _jobs_with_durations([m60, m60 + 2 * ulp60])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

        jobs, allot = _jobs_with_durations([m60, m60 + 3 * ulp60])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 2
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_absolute_floor_governs_below_magnitude_two(self):
        """Below EPOCH_TOLERANCE / EPOCH_REL_TOLERANCE (~2.25) the absolute
        1e-15 floor is the window — the historical semantics are unchanged
        there (see the magnitude-1 pins): four ulp of 1.0 (8.9e-16) still
        merges although it exceeds the relative term."""
        assert epoch_tolerance(1.0) == EPOCH_TOLERANCE > 1.0 * EPOCH_REL_TOLERANCE
        assert 4 * ULP1 > 1.0 * EPOCH_REL_TOLERANCE
        jobs, allot = _jobs_with_durations([1.0, 1.0 + 4 * ULP1])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_one_ulp_apart_below_tolerance_merges(self):
        """At magnitude 1 one ulp (2.2e-16) sits inside the tolerance: the
        scalar loop pops both completions in one wake-up, so must the
        event queue."""
        assert ULP1 < EPOCH_TOLERANCE
        jobs, allot = _jobs_with_durations([1.0, 1.0 + ULP1])
        schedule, stats = _run(jobs, allot, 2)
        assert stats["epochs"] == 1
        assert stats["max_epoch_completions"] == 2
        _assert_identical(list_schedule(jobs, allot, 2, backend="heap"), schedule)

    def test_tolerance_window_is_anchored_not_chained(self):
        """Three completions at 1.0, 1.0+4u, 1.0+8u: the window is anchored
        at the earliest end (1.0 + 1e-15), so the third event stays out even
        though it is within tolerance of the second — the scalar loop fixes
        ``now`` once per wake-up and so does the epoch partition."""
        e1, e2, e3 = 1.0, 1.0 + 4 * ULP1, 1.0 + 8 * ULP1
        assert e2 - e1 <= EPOCH_TOLERANCE < e3 - e1
        assert e3 - e2 <= EPOCH_TOLERANCE
        jobs, allot = _jobs_with_durations([e1, e2, e3])
        schedule, stats = _run(jobs, allot, 3)
        assert stats["epochs"] == 2
        assert stats["max_epoch_completions"] == 2
        _assert_identical(list_schedule(jobs, allot, 3, backend="heap"), schedule)

    def test_epoch_wakeup_starts_all_fitting_jobs_at_once(self):
        """A merged epoch's released machines admit the whole next wave in
        one admission scan (same schedule as the heap, one epoch fewer than
        the no-tie case would need)."""
        # wave 1: four unit jobs finishing together; wave 2: four more
        jobs, allot = _jobs_with_durations([2.0] * 4 + [4.0] * 4)
        schedule, stats = _run(jobs, allot, 4)
        # epoch at t=2 (wave 1 done, wave 2 starts), epoch at t=6
        assert stats["epochs"] == 2
        assert stats["max_epoch_completions"] == 4
        heap = list_schedule(jobs, allot, 4, backend="heap")
        _assert_identical(heap, schedule)
        assert schedule.makespan == 6.0


class TestMultiSpanLeftovers:
    def test_leftover_fragments_reassemble_across_spans(self):
        """A wide job started in a simultaneous-completion epoch from
        scattered (non-adjacent) leftover fragments gets the same multi-span
        placement as the heap loop."""
        x = TabulatedJob("x", [10.0])
        y = TabulatedJob("y", [2.0])
        z = TabulatedJob("z", [10.0])
        w = TabulatedJob("w", [2.0])
        v = TabulatedJob("v", [6.0, 6.0])
        jobs = [x, y, z, w, v]
        allot = Allotment({x: 1, y: 1, z: 1, w: 1, v: 2})
        schedule, stats = _run(jobs, allot, 4)
        heap = list_schedule(jobs, allot, 4, backend="heap")
        _assert_identical(heap, schedule)
        # y and w complete in one epoch; v reuses their non-adjacent machines
        assert stats["max_epoch_completions"] == 2
        entry = schedule.entry_for(v)
        assert entry.spans == ((1, 1), (3, 1))
        assert validate_schedule(schedule, jobs).ok

    def test_large_epoch_batch_path_matches_heap(self):
        """More admitted jobs than the small-epoch threshold forces the
        vectorized cumsum span partition; a prime machine count leaves a
        ragged tail so span splits land mid-span."""
        jobs, allot = _jobs_with_durations([8.0] * 120 + [2.0] * 120)
        schedule, stats = _run(jobs, allot, 97)
        heap = list_schedule(jobs, allot, 97, backend="heap")
        _assert_identical(heap, schedule)
        assert stats["max_epoch_completions"] >= 90


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        jobs, allot = _jobs_with_durations([1.0])
        with pytest.raises(ValueError, match="unknown list scheduling backend"):
            list_schedule(jobs, allot, 1, backend="quantum")

    def test_backends_registry(self):
        assert LIST_BACKENDS == (
            "heap",
            "wakeup",
            "event_queue",
            "event_queue_indexed",
        )

    def test_columnar_flag_still_selects_wakeup(self):
        jobs, allot = _jobs_with_durations([2.0, 1.0], need=1)
        _assert_identical(
            list_schedule(jobs, allot, 2, columnar=True),
            list_schedule(jobs, allot, 2, backend="wakeup"),
        )

    @pytest.mark.parametrize("backend", ["wakeup", "event_queue", "event_queue_indexed"])
    def test_astronomical_m_runs_natively(self, backend):
        """Machine counts beyond the int64 span range used to divert to the
        scalar heap; the wide-limb capacity tier now keeps every columnar
        backend vectorized, bit-identical to the heap reference."""
        m = MAX_COLUMNAR_M * 4
        jobs = [TabulatedJob("big", [3.0, 3.0]), TabulatedJob("small", [5.0])]
        allot = Allotment({jobs[0]: m - 1, jobs[1]: 1})
        stats = {}
        schedule = list_schedule(jobs, allot, m, backend=backend, stats=stats)
        assert schedule.makespan == 5.0
        if backend != "wakeup":
            assert "epochs" in stats  # the event queue ran, no heap fallback
        assert stats["capacity_tier"] == "wide"
        _assert_identical(list_schedule(jobs, allot, m, backend="heap"), schedule)

    @pytest.mark.parametrize("backend", ["event_queue", "event_queue_indexed"])
    def test_huge_total_need_runs_natively(self, backend):
        """Needs whose prefix sums overflow int64 (regression: 40 jobs of
        2^61 processors on m = 2^62 crashed the batched admission path) now
        promote to the wide tier instead of diverting to the heap."""
        m = MAX_COLUMNAR_M
        need = 1 << 61
        jobs = [TabulatedJob(f"h{i}", [10.0]) for i in range(40)]
        allot = Allotment({j: need for j in jobs})
        stats = {}
        schedule = list_schedule(jobs, allot, m, backend=backend, stats=stats)
        assert schedule.makespan == 200.0
        assert "epochs" in stats  # the event queue ran, no heap fallback
        assert stats["capacity_tier"] == "wide"
        _assert_identical(list_schedule(jobs, allot, m, backend="heap"), schedule)

    @pytest.mark.parametrize("backend", ["wakeup", "event_queue", "event_queue_indexed"])
    def test_unified_guard_at_the_exact_int64_boundary(self, backend):
        """All three columnar backends share one tier cut: total_need equal
        to ``MAX_COLUMNAR_M - m`` stays on int64 columns, one processor more
        promotes to the wide tier — and both sides match the heap exactly.

        Before the capacity module only the two event-queue backends guarded
        the boundary (list_scheduling.py's old line-177 guard); the wakeup
        backend's candidate arrays could silently overflow."""
        m = 1 << 61
        budget = MAX_COLUMNAR_M - m  # the historical event-queue guard value
        for extra, tier in ((0, "int64"), (1, "wide")):
            jobs = [TabulatedJob("a", [4.0]), TabulatedJob("b", [6.0])]
            # two needs <= m whose total sits exactly on / one past the cut
            allot = Allotment({jobs[0]: budget // 2, jobs[1]: budget // 2 + extra})
            stats = {}
            schedule = list_schedule(jobs, allot, m, backend=backend, stats=stats)
            assert stats["capacity_tier"] == tier, (extra, tier)
            _assert_identical(
                list_schedule(jobs, allot, m, backend="heap"), schedule
            )

    @pytest.mark.parametrize("backend", ["wakeup", "event_queue", "event_queue_indexed"])
    def test_object_tier_beyond_wide_range(self, backend):
        """Past the 2^93 wide-limb budget the object-dtype escape hatch keeps
        the columnar structure (exact Python-int arithmetic per element)."""
        m = 1 << 96
        jobs = [TabulatedJob("big", [3.0, 3.0]), TabulatedJob("small", [5.0])]
        allot = Allotment({jobs[0]: m - 1, jobs[1]: 1})
        stats = {}
        schedule = list_schedule(jobs, allot, m, backend=backend, stats=stats)
        assert stats["capacity_tier"] == "object"
        _assert_identical(list_schedule(jobs, allot, m, backend="heap"), schedule)

    def test_stats_contract(self):
        jobs, allot = _jobs_with_durations([1.0, 2.0, 3.0])
        _, stats = _run(jobs, allot, 2)
        assert stats["backend"] == "event_queue"
        assert stats["events"] == 3
        assert stats["epochs"] >= 1
        assert 1 <= stats["max_epoch_completions"] <= 3
        # the scanning backend examines every job slot per admission query
        assert stats["candidate_scans"] >= 1
        assert stats["candidates_visited"] == stats["candidate_scans"] * len(jobs)

    def test_stats_contract_indexed(self):
        jobs, allot = _jobs_with_durations([1.0, 2.0, 3.0])
        _, stats = _run(jobs, allot, 2, backend="event_queue_indexed")
        assert stats["backend"] == "event_queue_indexed"
        assert stats["events"] == 3
        assert stats["epochs"] >= 1
        assert stats["candidate_scans"] >= 1
        assert stats["candidates_visited"] >= 1


@st.composite
def _tie_heavy_case(draw):
    # m and n ranges deliberately straddle the _SMALL_EPOCH threshold (32):
    # epochs with > 32 candidates AND > 32 idle machines take the batched
    # admission/span/merge paths, smaller ones the lean scalar paths — the
    # strategy must cross the boundary in both directions
    m = draw(st.sampled_from([1, 2, 3, 7, 9, 40, 48]))
    n = draw(st.integers(min_value=1, max_value=90))
    # quantized duration grid plus near-tie values straddling the tolerance
    grid = [0.5, 1.0, 1.0 + ULP1, 2.0, 16.0, 16.0 + ULP16, 3.0]
    durations = [draw(st.sampled_from(grid)) for _ in range(n)]
    needs = [draw(st.integers(min_value=1, max_value=m)) for _ in range(n)]
    return m, durations, needs


class TestEpochGroupingProperties:
    @given(_tie_heavy_case())
    @settings(max_examples=120, deadline=None)
    def test_all_backends_bit_identical_on_tie_heavy_instances(self, case):
        m, durations, needs = case
        jobs = [
            TabulatedJob(f"j{i}", [float(d)] * k)
            for i, (d, k) in enumerate(zip(durations, needs))
        ]
        allot = Allotment({job: k for job, k in zip(jobs, needs)})
        heap = list_schedule(jobs, allot, m, backend="heap")
        wakeup = list_schedule(jobs, allot, m, backend="wakeup")
        stats = {}
        event = list_schedule(jobs, allot, m, backend="event_queue", stats=stats)
        indexed_stats = {}
        indexed = list_schedule(
            jobs, allot, m, backend="event_queue_indexed", stats=indexed_stats
        )
        _assert_identical(heap, wakeup, (m, durations, needs))
        _assert_identical(heap, event, (m, durations, needs))
        _assert_identical(heap, indexed, (m, durations, needs))
        # every completion is seen exactly once, and epochs are bounded by
        # the number of *distinct* end values (an epoch consumes at least
        # one distinct completion instant, possibly several within the
        # tolerance window)
        assert stats["events"] == len(jobs)
        distinct_ends = len({float(e) for e in heap.columns().end.tolist()})
        assert 1 <= stats["epochs"] <= distinct_ends
        # the admission decisions being identical, the *epoch structure* of
        # the indexed run must coincide with the scanning run exactly
        for key in ("epochs", "events", "max_epoch_completions"):
            assert indexed_stats[key] == stats[key], (m, durations, needs, key)


@st.composite
def _chain_case(draw):
    """Adversarial single-completion chains: distinct durations (no two
    completions ever share an epoch window), n far above m, and small needs
    so nearly every epoch admits exactly one successor from a deep waiting
    queue — the regime where the scanning backend pays O(n) per epoch."""
    m = draw(st.sampled_from([1, 2, 3, 5, 8]))
    n = draw(st.integers(min_value=1, max_value=70))
    # strictly increasing integer-spaced durations: separations are >= 1,
    # astronomically beyond every tolerance window at these magnitudes
    base = draw(st.integers(min_value=1, max_value=50))
    durations = [float(base + 3 * i) for i in range(n)]
    perm = draw(st.permutations(range(n)))
    durations = [durations[i] for i in perm]
    needs = [draw(st.integers(min_value=1, max_value=m)) for _ in range(n)]
    return m, durations, needs


class TestCandidateIndexProperties:
    @given(_chain_case())
    @settings(max_examples=120, deadline=None)
    def test_index_matches_scan_on_single_completion_chains(self, case):
        """Index-vs-scan identical admission order (hence bit-identical
        schedules) on no-tie chains; the index must also agree epoch for
        epoch with the scanning backend's instrumentation."""
        m, durations, needs = case
        jobs = [
            TabulatedJob(f"c{i}", [float(d)] * k)
            for i, (d, k) in enumerate(zip(durations, needs))
        ]
        allot = Allotment({job: k for job, k in zip(jobs, needs)})
        heap = list_schedule(jobs, allot, m, backend="heap")
        scan_stats = {}
        scan = list_schedule(jobs, allot, m, backend="event_queue", stats=scan_stats)
        index_stats = {}
        indexed = list_schedule(
            jobs, allot, m, backend="event_queue_indexed", stats=index_stats
        )
        _assert_identical(heap, scan, (m, durations, needs))
        _assert_identical(heap, indexed, (m, durations, needs))
        for key in ("epochs", "events", "max_epoch_completions"):
            assert index_stats[key] == scan_stats[key], (m, durations, needs, key)

    @given(
        st.integers(min_value=1, max_value=60),
        st.sampled_from([1, 2, 3, 8, 24, 48]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_index_matches_scan_on_quantized_family(self, n, m, seed):
        """Index-vs-scan identical admission order on the tie-heavy
        ``quantized`` generator itself (exact duration ties → mass
        simultaneous-completion epochs → mass admissions exercising the
        batched gather/remove paths of the index)."""
        from repro.workloads.generators import random_quantized_instance

        instance = random_quantized_instance(n, m, seed=seed)
        rng = np.random.default_rng(seed)
        needs = [int(k) for k in rng.integers(1, m + 1, size=n)]
        allot = Allotment({job: k for job, k in zip(instance.jobs, needs)})
        heap = list_schedule(instance.jobs, allot, m, backend="heap")
        scan_stats = {}
        scan = list_schedule(
            instance.jobs, allot, m, backend="event_queue", stats=scan_stats
        )
        index_stats = {}
        indexed = list_schedule(
            instance.jobs, allot, m, backend="event_queue_indexed", stats=index_stats
        )
        _assert_identical(heap, scan, (n, m, seed))
        _assert_identical(heap, indexed, (n, m, seed))
        assert index_stats["epochs"] == scan_stats["epochs"], (n, m, seed)

    def test_index_visits_collapse_on_deep_queues(self):
        """The counters must *demonstrate* the index: on a deterministic
        1-wide chain (every epoch admits one of many unit-need waiters) the
        scanning backend examines every job slot per epoch while the index
        touches each waiting job once overall."""
        n = 200
        jobs, allot = _jobs_with_durations([float(3 + i) for i in range(n)])
        _, scan_stats = _run(jobs, allot, 1)
        _, index_stats = _run(jobs, allot, 1, backend="event_queue_indexed")
        assert scan_stats["candidates_visited"] == scan_stats["candidate_scans"] * n
        assert scan_stats["candidates_visited"] > 10 * index_stats["candidates_visited"]
        # every admission gathers exactly the one admissible candidate
        assert index_stats["candidates_visited"] == n
