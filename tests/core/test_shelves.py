"""Tests for the two-/three-shelf constructions (Section 4.1)."""

import pytest

from repro.core.allotment import gamma
from repro.core.bounds import ludwig_tiwari_estimator, serial_upper_bound
from repro.core.job import AmdahlJob, TabulatedJob
from repro.core.shelves import (
    ThreeShelfDiagnostics,
    build_three_shelf_schedule,
    build_two_shelf_schedule,
    partition_small_big,
    shelf_profit,
    small_jobs_work,
)
from repro.core.validation import assert_valid_schedule, validate_schedule
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import random_mixed_instance


class TestPartition:
    def test_small_vs_big(self):
        d = 10.0
        small = TabulatedJob("small", [4.0])
        boundary = TabulatedJob("boundary", [5.0])
        big = TabulatedJob("big", [9.0])
        s, b = partition_small_big([small, boundary, big], d)
        assert small in s and boundary in s
        assert big in b

    def test_small_jobs_work(self):
        jobs = [TabulatedJob("a", [2.0]), TabulatedJob("b", [3.0])]
        assert small_jobs_work(jobs) == pytest.approx(5.0)

    def test_empty(self):
        assert partition_small_big([], 5.0) == ([], [])


class TestShelfProfit:
    def test_profit_is_saved_work(self):
        # t: 10, 6, 4, 3 on 1..4 processors
        job = TabulatedJob("j", [10.0, 6.0, 4.0, 3.0])
        d = 10.0
        m = 4
        # gamma(d)=1 (work 10), gamma(d/2)=3 (work 12): profit 2
        assert shelf_profit(job, d, m) == pytest.approx(2.0)

    def test_profit_nonnegative_for_monotone_jobs(self):
        for seed in range(3):
            instance = random_mixed_instance(20, 16, seed=seed)
            d = serial_upper_bound(instance.jobs) / 4
            for job in instance.jobs:
                if job.processing_time(1) > d / 2 and gamma(job, d / 2, 16) is not None:
                    assert shelf_profit(job, d, 16) >= 0.0

    def test_raises_when_threshold_unreachable(self):
        job = AmdahlJob("a", 100.0, 1.0)
        with pytest.raises(ValueError):
            shelf_profit(job, 10.0, 64)


class TestTwoShelfSchedule:
    def test_structure(self):
        m = 4
        d = 10.0
        a = TabulatedJob("a", [9.0, 5.0, 4.0, 3.0])   # big
        b = TabulatedJob("b", [8.0, 4.5, 3.0, 2.5])   # big
        c = TabulatedJob("c", [4.0])                   # small
        two = build_two_shelf_schedule([a, b, c], m, d, shelf1_jobs=[a])
        assert two is not None
        assert a in two.shelf1 and b in two.shelf2
        assert two.shelf1[a] == gamma(a, d, m)
        assert two.shelf2[b] == gamma(b, d / 2, m)
        assert two.small == [c]
        assert two.work_bound() == pytest.approx(m * d - 4.0)

    def test_can_exceed_m_in_shelf2(self):
        """Figure 2: the two-shelf picture may be infeasible (S2 wider than m)."""
        m = 4
        d = 10.0
        # four big jobs that each need 2 processors to meet d/2
        jobs = [TabulatedJob(f"j{i}", [9.0, 4.9, 3.4, 2.6]) for i in range(4)]
        two = build_two_shelf_schedule(jobs, m, d, shelf1_jobs=[])
        assert two is not None
        assert two.shelf2_processors == 8 > m
        assert not two.is_feasible

    def test_none_when_job_cannot_meet_height(self):
        m = 2
        d = 10.0
        job = TabulatedJob("stubborn", [20.0, 18.0])
        assert build_two_shelf_schedule([job], m, d, shelf1_jobs=[job]) is None


class TestThreeShelfConstruction:
    def _build(self, n, m, seed, d_factor=1.2, transform="heap"):
        instance = random_mixed_instance(n, m, seed=seed)
        omega = ludwig_tiwari_estimator(instance.jobs, m).omega
        d = d_factor * omega
        # shelf-1 selection: every big job that fits (greedy by profit density)
        _, big = partition_small_big(instance.jobs, d)
        shelf1 = []
        used = 0
        for job in sorted(big, key=lambda j: -j.processing_time(1)):
            g = gamma(job, d, m)
            if g is not None and used + g <= m:
                shelf1.append(job)
                used += g
        diag = ThreeShelfDiagnostics(d=d, m=m)
        schedule = build_three_shelf_schedule(
            instance.jobs, m, d, shelf1, transform=transform, diagnostics=diag
        )
        return instance, d, schedule, diag

    @pytest.mark.parametrize("transform", ["heap", "bucket"])
    def test_feasible_and_within_bound(self, transform):
        for seed in range(4):
            instance, d, schedule, _ = self._build(30, 16, seed, transform=transform)
            if schedule is None:
                continue  # the greedy selection may violate the work bound; that's a valid rejection
            assert_valid_schedule(schedule, instance.jobs, max_makespan=1.5 * d)
            simulate_schedule(schedule)

    def test_generous_target_always_builds(self):
        """With d equal to the serial upper bound everything fits trivially."""
        instance = random_mixed_instance(15, 8, seed=3)
        d = serial_upper_bound(instance.jobs)
        schedule = build_three_shelf_schedule(instance.jobs, 8, d, shelf1_jobs=[])
        assert schedule is not None
        assert_valid_schedule(schedule, instance.jobs, max_makespan=1.5 * d)

    def test_rejects_overfull_shelf1(self):
        m = 2
        d = 10.0
        jobs = [TabulatedJob(f"j{i}", [9.0, 6.0]) for i in range(4)]
        # all four in shelf 1 -> needs 4 > m processors
        schedule = build_three_shelf_schedule(jobs, m, d, shelf1_jobs=jobs)
        assert schedule is None

    def test_rejects_when_work_bound_violated(self):
        m = 2
        d = 10.0
        # three jobs, each 9 time units sequential and poorly parallelisable:
        # total minimal work 27 > m*d = 20, so d is correctly rejected
        jobs = [TabulatedJob(f"j{i}", [9.0, 8.0]) for i in range(3)]
        diag = ThreeShelfDiagnostics(d=d, m=m)
        schedule = build_three_shelf_schedule(jobs, m, d, shelf1_jobs=[jobs[0]], diagnostics=diag)
        assert schedule is None
        assert diag.rejected_reason is not None

    def test_small_jobs_fill_gaps(self):
        m = 4
        d = 10.0
        big = [TabulatedJob(f"big{i}", [9.0, 5.0, 3.5, 3.0]) for i in range(2)]
        small = [TabulatedJob(f"small{i}", [2.0]) for i in range(6)]
        jobs = big + small
        schedule = build_three_shelf_schedule(jobs, m, d, shelf1_jobs=big)
        assert schedule is not None
        report = validate_schedule(schedule, jobs, max_makespan=1.5 * d)
        assert report.ok, report.violations

    def test_diagnostics_populated(self):
        _, _, schedule, diag = self._build(40, 32, seed=7)
        if schedule is not None:
            assert diag.shelf0_processors + diag.shelf1_processors <= 32
            assert diag.small_jobs >= 0
            assert diag.shelf0_jobs + diag.shelf1_jobs + diag.shelf2_jobs >= 0

    def test_invalid_transform(self):
        with pytest.raises(ValueError):
            build_three_shelf_schedule([], 2, 1.0, [], transform="nope")

    def test_rule_i_moves_short_wide_jobs_to_s0(self):
        """A shelf-1 job with time <= 3d/4 and >1 processors gives one up."""
        m = 4
        d = 10.0
        # t(2) = 7 <= 7.5 = 3d/4, so rule (i) applies with gamma(d)=... t(1)=12>10 so gamma(d)=2
        wide = TabulatedJob("wide", [12.0, 7.0, 6.0, 5.5])
        schedule = build_three_shelf_schedule([wide], m, d, shelf1_jobs=[wide])
        assert schedule is not None
        entry = schedule.entry_for(wide)
        # moved to S0 with gamma(d) - 1 = 1 processor
        assert entry.processors == 1
        assert entry.duration <= 1.5 * d + 1e-9

    def test_rule_ii_pairs_single_processor_jobs(self):
        m = 4
        d = 10.0
        # both jobs: t(1) = 7 (> d/2 so big, <= 3d/4 so category 2, gamma(d)=1)
        a = TabulatedJob("a", [7.0, 6.9, 6.8, 6.7])
        b = TabulatedJob("b", [7.0, 6.9, 6.8, 6.7])
        schedule = build_three_shelf_schedule([a, b], m, d, shelf1_jobs=[a, b])
        assert schedule is not None
        ea, eb = schedule.entry_for(a), schedule.entry_for(b)
        # paired on the same machine, one after the other
        assert ea.spans == eb.spans
        assert {ea.start, eb.start} == {0.0, 7.0}
        assert_valid_schedule(schedule, [a, b], max_makespan=1.5 * d)
