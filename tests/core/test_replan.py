"""Unit tests for the shared incremental-replan core (repro.core.replan).

The barrier / partition / stitch edge cases the two clients (fault recovery,
online arrivals) depend on: empty pending sets, all-continuing epochs, an
epoch at time 0, and arrivals tied exactly with a completion.
"""

import pytest

from repro.core.job import TabulatedJob
from repro.core.replan import (
    EPOCH_EPS,
    PlacedEntry,
    ReplanError,
    ReplanState,
    availability_prefix,
    remap_spans,
    segment_algorithm,
)
from repro.core.fptas import fptas_machine_threshold
from repro.core.validation import validate_schedule


def constant_job(name: str, duration: float) -> TabulatedJob:
    """A job taking ``duration`` on any processor count."""
    return TabulatedJob(name, [duration])


def placed(job, start, duration, spans=((0, 1),)):
    return PlacedEntry(
        job=job, start=start, spans=[tuple(s) for s in spans], duration=duration,
        duration_override=None,
    )


class TestCommitEpoch:
    def test_partition_with_exact_ties(self):
        a, b, c, d = (constant_job(x, 10.0) for x in "abcd")
        state = ReplanState(m=4)
        state.add_jobs([a, b, c, d])
        state.current = [
            placed(a, 0.0, 5.0, [(0, 1)]),   # ends exactly at tau -> finished
            placed(b, 0.0, 10.0, [(1, 1)]),  # straddles tau -> running
            placed(c, 5.0, 10.0, [(2, 1)]),  # starts exactly at tau -> queued
            placed(d, 7.0, 10.0, [(3, 1)]),  # starts after tau -> queued
        ]
        part = state.commit_epoch(5.0)
        assert [p.job.name for p in part.finished] == ["a"]
        assert [p.job.name for p in part.running] == ["b"]
        assert sorted(p.job.name for p in part.queued) == ["c", "d"]
        # finished jobs leave the pending pool; everyone else stays
        assert id(a) not in state.pending
        assert all(id(j) in state.pending for j in (b, c, d))
        assert [p.job.name for p in state.committed] == ["a"]

    def test_epoch_at_time_zero_with_nothing_placed(self):
        a = constant_job("a", 4.0)
        state = ReplanState(m=2)
        state.add_jobs([a])
        part = state.commit_epoch(0.0)
        assert part.finished == [] and part.running == [] and part.queued == []
        outcome = state.replan_pending(0.0, [], [(0, 2)])
        assert outcome.barrier == 0.0
        assert outcome.replanned == 1
        assert state.current[0].start == 0.0

    def test_empty_pending_set_is_a_no_op_replan(self):
        state = ReplanState(m=4)
        outcome = state.replan_pending(3.0, [], [(0, 4)])
        assert outcome.replanned == 0
        assert outcome.barrier == 3.0
        assert outcome.algorithm is None
        assert state.replan_latencies == []
        assert state.current == []

    def test_all_continuing_epoch_skips_the_solve(self):
        a, b = constant_job("a", 10.0), constant_job("b", 10.0)
        state = ReplanState(m=2)
        state.add_jobs([a, b])
        state.current = [placed(a, 0.0, 10.0, [(0, 1)]), placed(b, 0.0, 10.0, [(1, 1)])]
        part = state.commit_epoch(5.0)
        assert len(part.running) == 2
        outcome = state.replan_pending(5.0, part.running, [(0, 2)])
        # every pending job is draining: nothing to re-plan, barrier stays tau
        assert outcome.replanned == 0
        assert outcome.barrier == 5.0
        assert state.replan_latencies == []
        assert [p.job.name for p in state.current] == ["a", "b"]

    def test_barrier_is_latest_continuing_end(self):
        a, b, c = (constant_job(x, 6.0) for x in "abc")
        state = ReplanState(m=2)
        state.add_jobs([a, b, c])
        state.current = [placed(a, 0.0, 6.0, [(0, 1)]), placed(b, 2.0, 6.0, [(1, 1)])]
        part = state.commit_epoch(3.0)
        outcome = state.replan_pending(3.0, part.running, [(0, 2)])
        assert outcome.barrier == 8.0  # b ends at 2 + 6
        new = [p for p in state.current if p.job is c]
        assert new and new[0].start >= 8.0


class TestFinishAndStitch:
    def test_finish_commits_in_flight_and_stitches_clean(self):
        a, b = constant_job("a", 5.0), constant_job("b", 3.0)
        state = ReplanState(m=2)
        state.add_jobs([a, b])
        state.replan_pending(0.0, [], [(0, 2)])
        state.finish()
        schedule = state.stitch(metadata={"algorithm": "test"})
        assert validate_schedule(schedule, [a, b]).ok
        assert schedule.metadata["algorithm"] == "test"

    def test_finish_raises_on_unplanned_jobs(self):
        state = ReplanState(m=2)
        state.add_jobs([constant_job("orphan", 1.0)])
        with pytest.raises(ReplanError, match="orphan"):
            state.finish()

    def test_no_machines_raises_the_client_error_class(self):
        class ClientError(RuntimeError):
            pass

        state = ReplanState(m=2, error=ClientError)
        state.add_jobs([constant_job("a", 1.0)])
        with pytest.raises(ClientError, match="no machines available at epoch 4.0"):
            state.replan_pending(4.0, [], [])


class TestArrivalCompletionTie:
    def test_arrival_tied_exactly_with_a_completion(self):
        """A new job arriving at the exact instant an old one completes:
        the completion must commit (end <= tau + eps) before the arrival is
        planned, so the machine is free and no overlap is stitched."""
        a = constant_job("a", 5.0)
        b = constant_job("b", 5.0)
        state = ReplanState(m=1)
        state.add_jobs([a])
        state.replan_pending(0.0, [], [(0, 1)])
        assert state.current[0].end == 5.0

        state.add_jobs([b])  # arrives exactly at a's completion
        part = state.commit_epoch(5.0)
        assert [p.job.name for p in part.finished] == ["a"]
        assert part.running == []
        outcome = state.replan_pending(5.0, part.running, [(0, 1)])
        assert outcome.barrier == 5.0
        state.finish()
        schedule = state.stitch()
        assert validate_schedule(schedule, [a, b]).ok
        starts = {e.job.name: e.start for e in schedule.entries}
        assert starts == {"a": 0.0, "b": 5.0}

    def test_tie_within_epsilon_still_commits(self):
        a = constant_job("a", 5.0)
        state = ReplanState(m=1)
        state.add_jobs([a])
        state.replan_pending(0.0, [], [(0, 1)])
        part = state.commit_epoch(5.0 - EPOCH_EPS / 2)
        assert [p.job.name for p in part.finished] == ["a"]


class TestRemapSpans:
    def test_identity_on_full_availability(self):
        available = [(0, 8)]
        prefix = availability_prefix(available)
        assert prefix == [0, 8]
        assert remap_spans([(2, 3)], available, prefix) == [(2, 3)]

    def test_split_across_a_hole(self):
        # machines 2..4 are down: abstract positions 0..5 map to 0,1,5,6,7
        available = [(0, 2), (5, 9)]
        prefix = availability_prefix(available)
        assert remap_spans([(0, 4)], available, prefix) == [(0, 2), (5, 2)]
        assert remap_spans([(2, 2)], available, prefix) == [(5, 2)]

    def test_adjacent_pieces_merge(self):
        available = [(0, 4), (4, 8)]
        prefix = availability_prefix(available)
        assert remap_spans([(2, 4)], available, prefix) == [(2, 4)]

    def test_overflow_raises(self):
        available = [(0, 2)]
        prefix = availability_prefix(available)
        with pytest.raises(ReplanError, match="exceeds the available machines"):
            remap_spans([(1, 4)], available, prefix)


class TestSegmentAlgorithm:
    def test_auto_passes_through(self):
        assert segment_algorithm("auto", 50, 1, 0.1) == "auto"

    def test_fptas_falls_back_below_threshold(self):
        n, eps = 10, 0.25
        threshold = fptas_machine_threshold(n, eps)
        assert segment_algorithm("fptas", n, threshold, eps) == "fptas"
        assert segment_algorithm("fptas", n, threshold - 1, eps) == "bounded"

    def test_exact_falls_back_outside_regime(self):
        assert segment_algorithm("exact", 7, 8, 0.1) == "exact"
        assert segment_algorithm("exact", 8, 8, 0.1) == "bounded"
        assert segment_algorithm("exact", 7, 9, 0.1) == "bounded"

    def test_two_approx_untouched(self):
        assert segment_algorithm("two_approx", 100, 1, 0.1) == "two_approx"
