"""Tests for the exact branch-and-bound solver for tiny instances."""

import pytest

from repro.core.bounds import trivial_lower_bound
from repro.core.exact_small import exact_makespan, exact_schedule, exact_solver_applicable
from repro.core.job import TabulatedJob
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_monotone_tabulated_instance


class TestApplicability:
    def test_limits(self):
        assert exact_solver_applicable(5, 4)
        assert not exact_solver_applicable(20, 4)
        assert not exact_solver_applicable(4, 100)
        assert not exact_solver_applicable(0, 4)

    def test_too_large_raises(self):
        jobs = [TabulatedJob(f"j{i}", [1.0]) for i in range(12)]
        with pytest.raises(ValueError):
            exact_schedule(jobs, 4)


class TestExactOptimum:
    def test_empty(self):
        schedule = exact_schedule([], 4)
        assert schedule.makespan == 0.0

    def test_single_job_uses_all_machines(self):
        job = TabulatedJob("j", [10.0, 6.0, 4.0])
        assert exact_makespan([job], 3) == pytest.approx(4.0)

    def test_two_sequential_jobs_two_machines(self):
        jobs = [TabulatedJob("a", [5.0]), TabulatedJob("b", [7.0])]
        assert exact_makespan(jobs, 2) == pytest.approx(7.0)

    def test_two_sequential_jobs_one_machine(self):
        jobs = [TabulatedJob("a", [5.0]), TabulatedJob("b", [7.0])]
        assert exact_makespan(jobs, 1) == pytest.approx(12.0)

    def test_known_tradeoff_instance(self):
        """Two moldable jobs on 2 machines: run both sequentially in parallel
        (makespan 8) rather than both wide one after the other (6+6=12)."""
        a = TabulatedJob("a", [8.0, 6.0])
        b = TabulatedJob("b", [8.0, 6.0])
        assert exact_makespan([a, b], 2) == pytest.approx(8.0)

    def test_wide_job_preferred_when_beneficial(self):
        """A single dominant job should be parallelised."""
        a = TabulatedJob("a", [12.0, 6.5, 4.5])
        b = TabulatedJob("b", [2.0])
        c = TabulatedJob("c", [2.0])
        # best: a on all 3 machines (4.5), then b and c in parallel (2) -> 6.5
        # alternative: a on 2 (6.5) with b,c stacked on third (4) -> 6.5
        assert exact_makespan([a, b, c], 3) == pytest.approx(6.5)

    def test_perfect_packing_found(self):
        """Four unit jobs on two machines pack perfectly."""
        jobs = [TabulatedJob(f"j{i}", [1.0]) for i in range(4)]
        assert exact_makespan(jobs, 2) == pytest.approx(2.0)

    def test_schedule_is_valid_and_matches_reported_makespan(self):
        for seed in range(4):
            instance = random_monotone_tabulated_instance(5, 3, seed=seed)
            schedule = exact_schedule(instance.jobs, 3)
            assert_valid_schedule(schedule, instance.jobs)

    def test_never_below_lower_bound(self):
        for seed in range(4):
            instance = random_monotone_tabulated_instance(4, 4, seed=seed + 10)
            opt = exact_makespan(instance.jobs, 4)
            assert opt >= trivial_lower_bound(instance.jobs, 4) * (1 - 1e-9)

    def test_monotone_in_machine_count(self):
        """More machines never increase the optimal makespan."""
        for seed in range(3):
            instance = random_monotone_tabulated_instance(4, 4, seed=seed + 20)
            opt2 = exact_makespan(instance.jobs, 2)
            opt4 = exact_makespan(instance.jobs, 4)
            assert opt4 <= opt2 * (1 + 1e-9)

    def test_force_flag(self):
        jobs = [TabulatedJob(f"j{i}", [1.0]) for i in range(3)]
        # m=9 exceeds the default limit but force allows it
        schedule = exact_schedule(jobs, 9, force=True)
        assert schedule.makespan == pytest.approx(1.0)
