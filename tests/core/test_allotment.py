"""Tests for gamma (canonical processor counts) and Allotment."""

import pytest

from repro.core.allotment import Allotment, canonical_allotment, gamma
from repro.core.job import AmdahlJob, OracleJob, PowerLawJob, TabulatedJob


class TestGamma:
    def test_exact_table(self):
        job = TabulatedJob("t", [10.0, 6.0, 4.0, 3.0])
        assert gamma(job, 10.0, 4) == 1
        assert gamma(job, 6.0, 4) == 2
        assert gamma(job, 5.0, 4) == 3
        assert gamma(job, 3.5, 4) is None or gamma(job, 3.5, 4) == 4
        assert gamma(job, 3.0, 4) == 4

    def test_unreachable_threshold(self):
        job = TabulatedJob("t", [10.0, 6.0])
        assert gamma(job, 1.0, 2) is None

    def test_threshold_zero_or_negative(self):
        job = TabulatedJob("t", [10.0])
        assert gamma(job, 0.0, 4) is None
        assert gamma(job, -5.0, 4) is None

    def test_minimality(self):
        """gamma returns the *least* processor count meeting the threshold."""
        job = PowerLawJob("p", 100.0, 0.7)
        m = 1024
        for threshold in (80.0, 40.0, 10.0, 5.0):
            g = gamma(job, threshold, m)
            assert g is not None
            assert job.processing_time(g) <= threshold
            if g > 1:
                assert job.processing_time(g - 1) > threshold

    def test_large_m_uses_logarithmic_search(self):
        calls = []

        def oracle(k):
            calls.append(k)
            return 1e6 / k

        job = OracleJob("big", oracle)
        m = 10 ** 9
        g = gamma(job, 2.0, m)
        assert g == 500_000
        # binary search plus the two endpoint probes: far fewer than m calls
        assert len(calls) < 80

    def test_invalid_m(self):
        job = TabulatedJob("t", [1.0])
        with pytest.raises(ValueError):
            gamma(job, 1.0, 0)


class TestCanonicalAllotment:
    def test_all_jobs_meet_threshold(self):
        jobs = [AmdahlJob(f"a{i}", 50.0, 0.1) for i in range(5)]
        allot = canonical_allotment(jobs, 10.0, 64)
        assert allot is not None
        for job in jobs:
            assert job.processing_time(allot[job]) <= 10.0

    def test_returns_none_when_impossible(self):
        jobs = [AmdahlJob("a", 50.0, 0.5)]  # can never go below 25
        assert canonical_allotment(jobs, 10.0, 1024) is None


class TestAllotment:
    def test_aggregates(self):
        a = TabulatedJob("a", [10.0, 6.0])
        b = TabulatedJob("b", [8.0, 5.0])
        allot = Allotment({a: 2, b: 1})
        assert allot.total_processors() == 3
        assert allot.total_work() == pytest.approx(2 * 6.0 + 8.0)
        assert allot.max_time() == pytest.approx(8.0)
        assert allot.average_load(4) == pytest.approx((12.0 + 8.0) / 4)

    def test_invalid_count_rejected(self):
        a = TabulatedJob("a", [1.0])
        with pytest.raises(ValueError):
            Allotment({a: 0})

    def test_mapping_protocol(self):
        a = TabulatedJob("a", [1.0])
        allot = Allotment({a: 1})
        assert a in allot
        assert len(allot) == 1
        allot[a] = 3
        assert allot[a] == 3
        assert list(iter(allot)) == [a]

    def test_copy_is_independent(self):
        a = TabulatedJob("a", [1.0])
        allot = Allotment({a: 1})
        clone = allot.copy()
        clone[a] = 2
        assert allot[a] == 1

    def test_empty_allotment(self):
        allot = Allotment({})
        assert allot.total_processors() == 0
        assert allot.total_work() == 0.0
        assert allot.max_time() == 0.0
