"""Tests for instance/schedule serialisation."""

import json

import pytest

from repro.core.job import AmdahlJob, CommunicationJob, OracleJob, PowerLawJob, RigidJob, TabulatedJob
from repro.core.scheduler import schedule_moldable
from repro.hardness.reduction import ReductionJob
from repro.io import (
    SerializationError,
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.workloads.generators import random_mixed_instance

ALL_JOB_EXAMPLES = [
    TabulatedJob("tab", [10.0, 6.0, 4.0]),
    AmdahlJob("amd", 20.0, 0.15),
    PowerLawJob("pow", 30.0, 0.7),
    CommunicationJob("com", 40.0, 0.01),
    RigidJob("rig", 5.0, 3),
    ReductionJob(2, 7, 4),
]


class TestJobSerialization:
    @pytest.mark.parametrize("job", ALL_JOB_EXAMPLES, ids=lambda j: type(j).__name__)
    def test_round_trip_preserves_processing_times(self, job):
        clone = job_from_dict(job_to_dict(job))
        for k in (1, 2, 3, 5, 8):
            assert clone.processing_time(k) == pytest.approx(job.processing_time(k))

    def test_oracle_jobs_rejected(self):
        job = OracleJob("o", lambda k: 1.0 / k)
        with pytest.raises(SerializationError):
            job_to_dict(job)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            job_from_dict({"kind": "quantum", "name": "x"})

    def test_dict_is_json_serialisable(self):
        for job in ALL_JOB_EXAMPLES:
            json.dumps(job_to_dict(job))


class TestInstanceSerialization:
    def test_round_trip(self, tmp_path):
        jobs = ALL_JOB_EXAMPLES[:4]
        path = tmp_path / "instance.json"
        save_instance(path, jobs, 64, metadata={"source": "unit-test"})
        loaded_jobs, m, metadata = load_instance(path)
        assert m == 64
        assert metadata == {"source": "unit-test"}
        assert [j.name for j in loaded_jobs] == [j.name for j in jobs]

    def test_version_check(self):
        data = instance_to_dict([ALL_JOB_EXAMPLES[0]], 4)
        data["version"] = 99
        with pytest.raises(SerializationError):
            instance_from_dict(data)

    def test_format_check(self):
        with pytest.raises(SerializationError):
            instance_from_dict({"format": "something-else", "version": 1, "m": 1, "jobs": []})


class TestScheduleSerialization:
    def test_round_trip(self, tmp_path):
        instance = random_mixed_instance(15, 16, seed=1)
        result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="bounded")
        path = tmp_path / "schedule.json"
        save_schedule(path, result.schedule)
        loaded = load_schedule(path, instance.jobs)
        assert loaded.makespan == pytest.approx(result.makespan)
        assert len(loaded) == len(result.schedule)
        assert loaded.m == 16

    def test_round_trip_preserves_spans(self):
        instance = random_mixed_instance(10, 8, seed=2)
        result = schedule_moldable(instance.jobs, 8, 0.3, algorithm="mrt")
        data = schedule_to_dict(result.schedule)
        loaded = schedule_from_dict(data, instance.jobs)
        original_spans = sorted((e.job.name, e.spans) for e in result.schedule.entries)
        loaded_spans = sorted((e.job.name, e.spans) for e in loaded.entries)
        assert original_spans == loaded_spans

    def test_unknown_job_rejected(self):
        instance = random_mixed_instance(5, 4, seed=3)
        result = schedule_moldable(instance.jobs, 4, 0.3, algorithm="two_approx")
        data = schedule_to_dict(result.schedule)
        # an instance whose job *names* differ: placements cannot be re-attached
        from repro.workloads.generators import random_amdahl_instance

        other = random_amdahl_instance(5, 4, seed=4)
        with pytest.raises(SerializationError):
            schedule_from_dict(data, other.jobs)

    def test_duplicate_job_names_rejected(self):
        a = TabulatedJob("same", [1.0])
        b = TabulatedJob("same", [2.0])
        data = {"format": "repro-schedule", "version": 1, "m": 2, "entries": []}
        with pytest.raises(SerializationError):
            schedule_from_dict(data, [a, b])

    def test_corrupted_schedule_fails_validation(self):
        instance = random_mixed_instance(8, 8, seed=5)
        result = schedule_moldable(instance.jobs, 8, 0.3, algorithm="two_approx")
        data = schedule_to_dict(result.schedule)
        # corrupt: force two entries onto the same machine at the same time
        if len(data["entries"]) >= 2:
            data["entries"][1]["spans"] = data["entries"][0]["spans"]
            data["entries"][1]["start"] = data["entries"][0]["start"]
            from repro.core.validation import ValidationError

            with pytest.raises(ValidationError):
                schedule_from_dict(data, instance.jobs, validate=True)
            # but loading without validation still works for forensics
            loaded = schedule_from_dict(data, instance.jobs, validate=False)
            assert len(loaded) == len(result.schedule)


class TestFaultPlanIO:
    """io-level fault plan persistence (the header-wrapped variant of
    ``FaultPlan.to_dict``)."""

    def _plan(self):
        from repro.resilience.faults import FaultPlan, JobKill, MachineFailure

        return FaultPlan(
            m=16,
            failures=(
                MachineFailure(time=5.0, first=0, count=3),  # permanent
                MachineFailure(time=2.5, first=8, count=2, repair_time=4.0),
            ),
            kills=(JobKill(time=3.0, job="job-7"),),
        )

    def test_header_and_payload(self):
        from repro.io import fault_plan_to_dict

        data = fault_plan_to_dict(self._plan())
        assert data["format"] == "repro-fault-plan"
        assert data["version"] == 1
        assert len(data["failures"]) == 2 and len(data["kills"]) == 1

    def test_round_trip_equality(self):
        from repro.io import fault_plan_from_dict, fault_plan_to_dict

        plan = self._plan()
        assert fault_plan_from_dict(fault_plan_to_dict(plan)) == plan

    def test_save_load_file(self, tmp_path):
        from repro.io import load_fault_plan, save_fault_plan

        plan = self._plan()
        path = tmp_path / "plan.json"
        save_fault_plan(path, plan)
        assert load_fault_plan(path) == plan

    def test_wrong_format_rejected(self):
        from repro.io import fault_plan_from_dict

        with pytest.raises(SerializationError):
            fault_plan_from_dict({"format": "repro-instance", "version": 1, "m": 4})

    def test_property_round_trip(self):
        """Property: any mix of permanent failures, transient failures and
        job kills survives dict round-trip exactly (repr-exact floats)."""
        from hypothesis import given, settings, strategies as st

        from repro.io import fault_plan_from_dict, fault_plan_to_dict
        from repro.resilience.faults import FaultPlan, JobKill, MachineFailure

        times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

        @st.composite
        def fault_plans(draw):
            m = draw(st.integers(min_value=2, max_value=64))
            failures = []
            for _ in range(draw(st.integers(min_value=0, max_value=5))):
                first = draw(st.integers(min_value=0, max_value=m - 1))
                count = draw(st.integers(min_value=1, max_value=m - first))
                repair = draw(
                    st.one_of(st.none(), st.floats(min_value=0.5, max_value=1e4))
                )
                failures.append(
                    MachineFailure(
                        time=draw(times), first=first, count=count, repair_time=repair
                    )
                )
            kills = [
                JobKill(time=draw(times), job=f"job-{draw(st.integers(0, 99))}")
                for _ in range(draw(st.integers(min_value=0, max_value=4)))
            ]
            return FaultPlan(m=m, failures=tuple(failures), kills=tuple(kills))

        @given(fault_plans())
        @settings(max_examples=80, deadline=None)
        def check(plan):
            clone = fault_plan_from_dict(fault_plan_to_dict(plan))
            assert clone == plan
            # and through actual JSON text, where floats must repr-round-trip
            rehydrated = fault_plan_from_dict(
                json.loads(json.dumps(fault_plan_to_dict(plan)))
            )
            assert rehydrated == plan

        check()


class TestFleetReportIO:
    def test_save_load_round_trip(self, tmp_path):
        from repro.io import load_fleet_report, save_fleet_report
        from repro.serve import FleetInstance, ServePolicy, schedule_many

        instance = random_mixed_instance(8, 16, seed=9)
        fleet = [
            FleetInstance(name="io-0", jobs=instance.jobs, m=16, algorithm="two_approx")
        ]
        report = schedule_many(
            fleet,
            policy=ServePolicy(timeout=60.0, backoff_base=0.0),
            max_workers=1,
            mp_context="fork",
        )
        path = tmp_path / "report.json"
        save_fleet_report(path, report)
        loaded = load_fleet_report(path)
        assert loaded.comparable_dict() == report.comparable_dict()
        # schedules survive as data and re-attach to the original jobs
        outcome = loaded.outcome("io-0")
        schedule = outcome.schedule(instance.jobs, validate=True)
        assert schedule.makespan == outcome.makespan

    def test_wrong_format_rejected(self):
        from repro.io import fleet_report_from_dict

        with pytest.raises(SerializationError):
            fleet_report_from_dict({"format": "repro-schedule", "version": 1})


class TestInstanceReleasesIO:
    """Release-carrying instances round-trip at format version 2; plain
    instances stay at version 1 so older readers keep loading them."""

    def test_plain_instances_stay_version_1(self):
        data = instance_to_dict(ALL_JOB_EXAMPLES[:2], 8)
        assert data["version"] == 1
        assert "releases" not in data

    def test_releases_bump_the_version(self):
        data = instance_to_dict(ALL_JOB_EXAMPLES[:2], 8, releases=[0.0, 3.5])
        assert data["version"] == 2
        assert data["releases"] == [0.0, 3.5]
        json.dumps(data)

    def test_round_trip_preserves_releases(self, tmp_path):
        jobs = ALL_JOB_EXAMPLES[:4]
        releases = [0.0, 1.25, 1.25, 9.75]
        path = tmp_path / "online.json"
        save_instance(path, jobs, 32, metadata={"kind": "arrivals"}, releases=releases)
        loaded_jobs, m, metadata, loaded_releases = load_instance(path, with_releases=True)
        assert m == 32
        assert metadata == {"kind": "arrivals"}
        assert [j.name for j in loaded_jobs] == [j.name for j in jobs]
        assert loaded_releases == releases

    def test_default_return_stays_a_triple(self, tmp_path):
        path = tmp_path / "online.json"
        save_instance(path, ALL_JOB_EXAMPLES[:2], 8, releases=[0.0, 1.0])
        loaded_jobs, m, metadata = load_instance(path)
        assert m == 8 and len(loaded_jobs) == 2

    def test_version_1_documents_report_no_releases(self):
        data = instance_to_dict(ALL_JOB_EXAMPLES[:2], 8)
        jobs, m, metadata, releases = instance_from_dict(data, with_releases=True)
        assert releases is None

    def test_mismatched_release_count_rejected(self):
        with pytest.raises(SerializationError, match="releases"):
            instance_to_dict(ALL_JOB_EXAMPLES[:2], 8, releases=[0.0])
        data = instance_to_dict(ALL_JOB_EXAMPLES[:2], 8, releases=[0.0, 1.0])
        data["releases"] = [0.0]
        with pytest.raises(SerializationError, match="releases"):
            instance_from_dict(data)

    def test_hypothesis_release_round_trip(self):
        from hypothesis import given, settings, strategies as st

        finite_release = st.floats(
            min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
        )

        @given(st.lists(finite_release, min_size=0, max_size=12))
        @settings(max_examples=60, deadline=None)
        def round_trip(releases):
            jobs = [AmdahlJob(f"j{i}", 10.0 + i, 0.1) for i in range(len(releases))]
            data = json.loads(json.dumps(instance_to_dict(jobs, 16, releases=releases)))
            loaded_jobs, m, _, loaded = instance_from_dict(data, with_releases=True)
            assert m == 16
            assert len(loaded_jobs) == len(jobs)
            assert loaded == ([] if not releases else releases)
            expected_version = 2
            assert data["version"] == expected_version

        round_trip()
