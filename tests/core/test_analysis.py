"""Tests for schedule analysis metrics and comparisons."""

import pytest

from repro.analysis import analyze_schedule, compare_schedules
from repro.core.job import TabulatedJob
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.workloads.generators import planted_partition_instance, random_mixed_instance


class TestAnalyzeSchedule:
    def test_empty_schedule(self):
        metrics = analyze_schedule(Schedule(m=4), [])
        assert metrics.makespan == 0.0
        assert metrics.utilization == 0.0
        assert metrics.jobs == 0

    def test_empty_schedule_without_job_list(self):
        """No jobs argument + no entries: every aggregate has a sane default."""
        metrics = analyze_schedule(Schedule(m=4))
        assert metrics.jobs == 0
        assert metrics.makespan == 0.0
        assert metrics.total_work == 0.0
        assert metrics.sequential_work == 0.0
        assert metrics.lower_bound == 0.0
        assert metrics.ratio_vs_lower_bound == 1.0
        assert metrics.work_inflation == 1.0
        assert metrics.peak_processors == 0
        assert metrics.average_parallelism == 0.0
        assert metrics.max_stretch == 1.0
        assert metrics.mean_stretch == 1.0
        assert metrics.per_job == []

    def test_singleton_schedule(self):
        job = TabulatedJob("only", [12.0, 7.0, 5.0])
        schedule = Schedule(m=3)
        schedule.add(job, 0.0, [(0, 3)])
        metrics = analyze_schedule(schedule, [job])
        assert metrics.jobs == 1
        assert metrics.makespan == pytest.approx(5.0)
        assert metrics.total_work == pytest.approx(15.0)
        assert metrics.sequential_work == pytest.approx(12.0)
        assert metrics.utilization == pytest.approx(1.0)
        assert metrics.peak_processors == 3
        assert metrics.average_parallelism == pytest.approx(3.0)
        (only,) = metrics.per_job
        assert only.name == "only"
        assert only.processors == 3
        assert only.stretch == pytest.approx(1.0)
        assert metrics.max_stretch == metrics.mean_stretch == only.stretch

    def test_columnar_schedule_analyzed_lazily(self):
        """analyze_schedule reads the columns; entry views stay unbuilt."""
        from repro.perf.schedule_builder import ArraySchedule

        builder = ArraySchedule(8)
        jobs = [TabulatedJob(f"j{i}", [4.0, 3.0]) for i in range(4)]
        for i, job in enumerate(jobs):
            builder.append(job, 0.0, [(2 * i, 2)])
        schedule = builder.build()
        metrics = analyze_schedule(schedule, jobs)
        assert metrics.jobs == 4
        assert all(view is None for view in schedule._views)

    def test_hand_built_schedule(self):
        a = TabulatedJob("a", [10.0, 6.0])
        b = TabulatedJob("b", [4.0, 3.0])
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 2)])   # 2 procs, 6 time units, work 12
        schedule.add(b, 6.0, [(0, 1)])   # 1 proc, 4 time units, work 4
        metrics = analyze_schedule(schedule, [a, b])
        assert metrics.makespan == pytest.approx(10.0)
        assert metrics.total_work == pytest.approx(16.0)
        assert metrics.sequential_work == pytest.approx(14.0)
        assert metrics.utilization == pytest.approx(16.0 / 20.0)
        assert metrics.work_inflation == pytest.approx(16.0 / 14.0)
        assert metrics.peak_processors == 2
        assert metrics.jobs == 2
        per_job = {j.name: j for j in metrics.per_job}
        assert per_job["a"].work_inflation == pytest.approx(12.0 / 10.0)
        assert per_job["a"].efficiency == pytest.approx((10.0 / 6.0) / 2.0)
        assert per_job["b"].stretch == pytest.approx(10.0 / 3.0)

    def test_ratio_vs_lower_bound_at_least_one(self):
        instance = random_mixed_instance(20, 16, seed=1)
        result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="bounded")
        metrics = analyze_schedule(result.schedule, instance.jobs)
        assert metrics.ratio_vs_lower_bound >= 1.0 - 1e-9
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.work_inflation >= 1.0 - 1e-9

    def test_explicit_lower_bound_used(self):
        a = TabulatedJob("a", [5.0])
        schedule = Schedule(m=1)
        schedule.add(a, 0.0, [(0, 1)])
        metrics = analyze_schedule(schedule, [a], lower_bound=2.5)
        assert metrics.ratio_vs_lower_bound == pytest.approx(2.0)

    def test_average_parallelism(self):
        a = TabulatedJob("a", [8.0, 4.0])
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        metrics = analyze_schedule(schedule, [a])
        assert metrics.average_parallelism == pytest.approx(2.0)


class TestCompareSchedules:
    def test_orders_by_makespan(self):
        instance = planted_partition_instance(8, seed=2)
        schedules = {
            name: schedule_moldable(instance.jobs, instance.m, 0.2, algorithm=name).schedule
            for name in ("two_approx", "mrt")
        }
        rows = compare_schedules(schedules, instance.jobs, instance.m)
        assert len(rows) == 2
        assert rows[0].makespan <= rows[1].makespan
        assert rows[0].ratio_vs_best == pytest.approx(1.0)
        assert all(r.ratio_vs_lower_bound >= 1.0 - 1e-9 for r in rows)

    def test_empty(self):
        assert compare_schedules({}, [], 4) == []

    def test_all_algorithms_comparable(self):
        instance = random_mixed_instance(25, 24, seed=3)
        schedules = {
            name: schedule_moldable(instance.jobs, 24, 0.25, algorithm=name).schedule
            for name in ("two_approx", "bounded", "compressible")
        }
        rows = compare_schedules(schedules, instance.jobs, 24)
        labels = {r.label for r in rows}
        assert labels == set(schedules)
        for row in rows:
            assert row.ratio_vs_best >= 1.0 - 1e-9
            assert 0.0 < row.utilization <= 1.0


class TestReleaseAwareComparison:
    def test_online_rows_get_a_meaningful_ratio(self):
        from repro.online import OnlineScheduler
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(20, 24, seed=13)
        online = OnlineScheduler(24, eps=0.25).run(inst.arrivals)
        offline = schedule_moldable(inst.jobs, 24, 0.25, algorithm="bounded").schedule
        plain = compare_schedules(
            {"online": online.schedule, "offline": offline}, inst.jobs, 24
        )
        aware = compare_schedules(
            {"online": online.schedule, "offline": offline},
            inst.jobs,
            24,
            releases=inst.releases,
        )
        by_label = lambda rows: {r.label: r for r in rows}
        # the release-aware bound is tighter (larger), so every ratio shrinks
        # or stays put — and the online row's ratio becomes meaningful
        for label in ("online", "offline"):
            assert by_label(aware)[label].ratio_vs_lower_bound <= (
                by_label(plain)[label].ratio_vs_lower_bound + 1e-12
            )
            assert by_label(aware)[label].ratio_vs_lower_bound >= 1.0 - 1e-9

    def test_release_aware_bound_still_valid_for_offline_schedules(self):
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(10, 16, seed=21)
        offline = schedule_moldable(inst.jobs, 16, 0.25, algorithm="two_approx").schedule
        rows = compare_schedules({"offline": offline}, inst.jobs, 16)
        assert rows[0].ratio_vs_lower_bound >= 1.0 - 1e-9
