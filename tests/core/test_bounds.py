"""Tests for makespan bounds and the Ludwig–Tiwari estimator."""

import pytest

from repro.core.bounds import (
    ludwig_tiwari_estimator,
    makespan_lower_bound,
    serial_upper_bound,
    trivial_lower_bound,
)
from repro.core.exact_small import exact_makespan
from repro.core.job import AmdahlJob, PowerLawJob, TabulatedJob
from repro.core.list_scheduling import list_schedule
from repro.core.validation import assert_valid_schedule
from repro.workloads.generators import random_mixed_instance, random_monotone_tabulated_instance


class TestTrivialBounds:
    def test_single_sequential_job(self):
        jobs = [TabulatedJob("a", [10.0])]
        assert trivial_lower_bound(jobs, 4) == pytest.approx(10.0)
        assert serial_upper_bound(jobs) == pytest.approx(10.0)

    def test_work_bound_dominates_with_many_jobs(self):
        jobs = [TabulatedJob(f"j{i}", [10.0]) for i in range(8)]
        # total work 80 on 4 machines -> lower bound 20 > individual 10
        assert trivial_lower_bound(jobs, 4) == pytest.approx(20.0)

    def test_time_bound_dominates_with_serial_job(self):
        jobs = [AmdahlJob("big", 100.0, 1.0), TabulatedJob("small", [1.0])]
        assert trivial_lower_bound(jobs, 64) == pytest.approx(100.0)

    def test_empty(self):
        assert trivial_lower_bound([], 4) == 0.0
        assert serial_upper_bound([]) == 0.0

    def test_lower_bound_below_serial_upper(self):
        instance = random_mixed_instance(30, 16, seed=3)
        assert trivial_lower_bound(instance.jobs, 16) <= serial_upper_bound(instance.jobs)


class TestLudwigTiwariEstimator:
    def test_empty_instance(self):
        result = ludwig_tiwari_estimator([], 8)
        assert result.omega == 0.0

    def test_single_job(self):
        job = AmdahlJob("a", 100.0, 0.1)
        result = ludwig_tiwari_estimator([job], 16)
        # OPT = t(16); omega must be a lower bound and within a factor 2
        opt = job.processing_time(16)
        assert result.omega <= opt * (1 + 1e-6)
        assert opt <= result.upper_bound * (1 + 1e-6)

    def test_omega_is_lower_bound_on_exact_optimum(self):
        """omega <= OPT verified against the exact solver on tiny instances."""
        for seed in range(5):
            instance = random_monotone_tabulated_instance(4, 3, seed=seed)
            opt = exact_makespan(instance.jobs, 3)
            result = ludwig_tiwari_estimator(instance.jobs, 3)
            assert result.omega <= opt * (1 + 1e-6)

    def test_list_scheduling_witness_respects_ratio(self):
        """List scheduling the estimator's allotment stays within ratio * omega."""
        for seed in range(4):
            instance = random_mixed_instance(25, 16, seed=seed)
            result = ludwig_tiwari_estimator(instance.jobs, 16)
            schedule = list_schedule(instance.jobs, result.allotment, 16)
            assert_valid_schedule(schedule, instance.jobs)
            assert schedule.makespan <= result.ratio * result.omega * (1 + 1e-6)

    def test_omega_at_least_trivial_bound(self):
        instance = random_mixed_instance(30, 32, seed=11)
        result = ludwig_tiwari_estimator(instance.jobs, 32)
        assert result.omega >= trivial_lower_bound(instance.jobs, 32) * (1 - 1e-9)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            ludwig_tiwari_estimator([AmdahlJob("a", 1.0, 0.1)], 0)

    def test_huge_machine_count(self):
        """The estimator stays fast and sane for m = 10^9 (compact encoding)."""
        jobs = [PowerLawJob(f"p{i}", 50.0 + i, 0.9) for i in range(10)]
        m = 10 ** 9
        result = ludwig_tiwari_estimator(jobs, m)
        assert result.omega > 0
        # every job could run on ~m/10 processors: OPT is tiny but positive
        assert result.omega <= serial_upper_bound(jobs)


class TestMakespanLowerBound:
    def test_combines_bounds(self):
        instance = random_mixed_instance(20, 16, seed=5)
        lb = makespan_lower_bound(instance.jobs, 16)
        assert lb >= trivial_lower_bound(instance.jobs, 16) * (1 - 1e-9)

    def test_empty(self):
        assert makespan_lower_bound([], 4) == 0.0

    def test_lower_bound_below_exact_optimum(self):
        for seed in range(3):
            instance = random_monotone_tabulated_instance(5, 4, seed=seed + 20)
            opt = exact_makespan(instance.jobs, 4)
            assert makespan_lower_bound(instance.jobs, 4) <= opt * (1 + 1e-6)


class TestReleaseAwareLowerBound:
    def test_zero_releases_reduce_to_the_base_bounds(self):
        from repro.core.bounds import release_aware_lower_bound

        instance = random_mixed_instance(12, 16, seed=5)
        releases = [0.0] * instance.n
        bound = release_aware_lower_bound(instance.jobs, releases, 16)
        assert bound >= trivial_lower_bound(instance.jobs, 16) - 1e-12

    def test_late_release_dominates(self):
        from repro.core.bounds import release_aware_lower_bound

        a = TabulatedJob("a", [10.0])
        b = TabulatedJob("b", [1.0])
        # b arrives at 100: nothing can end before 101
        bound = release_aware_lower_bound([a, b], [0.0, 100.0], 4)
        assert bound == pytest.approx(101.0)

    def test_suffix_work_bound(self):
        from repro.core.bounds import release_aware_lower_bound

        # four unit jobs released at 10 on one machine: 10 + 4*1 = 14
        jobs = [TabulatedJob(f"j{i}", [1.0]) for i in range(4)]
        bound = release_aware_lower_bound(jobs, [10.0] * 4, 1)
        assert bound == pytest.approx(14.0)

    def test_base_is_respected(self):
        from repro.core.bounds import release_aware_lower_bound

        jobs = [TabulatedJob("a", [1.0])]
        assert release_aware_lower_bound(jobs, [0.0], 8, base=42.0) == 42.0

    def test_mismatched_lengths_rejected(self):
        from repro.core.bounds import release_aware_lower_bound

        with pytest.raises(ValueError, match="releases"):
            release_aware_lower_bound([TabulatedJob("a", [1.0])], [0.0, 1.0], 2)

    def test_empty(self):
        from repro.core.bounds import release_aware_lower_bound

        assert release_aware_lower_bound([], [], 4) == 0.0

    def test_certifies_an_online_schedule(self):
        from repro.core.bounds import release_aware_lower_bound
        from repro.online import OnlineScheduler
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(16, 24, seed=9)
        result = OnlineScheduler(24, eps=0.25).run(inst.arrivals)
        bound = release_aware_lower_bound(inst.jobs, inst.releases, 24)
        assert bound <= result.makespan + 1e-9
