"""Tests for the Mounié–Rapine–Trystram (3/2)-dual algorithm."""

import pytest

from repro.core.bounds import ludwig_tiwari_estimator, makespan_lower_bound, serial_upper_bound
from repro.core.exact_small import exact_makespan
from repro.core.mrt import mrt_dual, mrt_schedule
from repro.core.validation import assert_valid_schedule
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import (
    planted_partition_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
)


class TestMrtDual:
    def test_accepts_serial_upper_bound(self):
        instance = random_mixed_instance(20, 16, seed=0)
        d = serial_upper_bound(instance.jobs)
        schedule = mrt_dual(instance.jobs, 16, d)
        assert schedule is not None
        assert_valid_schedule(schedule, instance.jobs, max_makespan=1.5 * d)

    def test_never_rejects_above_exact_optimum(self):
        """Dual completeness: any d >= OPT is accepted (checked on tiny instances)."""
        for seed in range(4):
            instance = random_monotone_tabulated_instance(4, 4, seed=seed)
            opt = exact_makespan(instance.jobs, 4)
            for factor in (1.0, 1.1, 1.5, 2.0):
                schedule = mrt_dual(instance.jobs, 4, opt * factor)
                assert schedule is not None, f"rejected d = {factor} * OPT (seed {seed})"
                assert_valid_schedule(schedule, instance.jobs, max_makespan=1.5 * opt * factor)

    def test_rejects_impossible_target(self):
        instance = random_mixed_instance(20, 4, seed=1)
        lb = makespan_lower_bound(instance.jobs, 4)
        assert mrt_dual(instance.jobs, 4, lb * 0.3) is None

    def test_rejects_nonpositive_target(self):
        instance = random_mixed_instance(5, 4, seed=2)
        assert mrt_dual(instance.jobs, 4, 0.0) is None
        assert mrt_dual(instance.jobs, 4, -1.0) is None

    def test_makespan_bounded_by_three_halves_d(self):
        for seed in range(4):
            instance = random_mixed_instance(30, 24, seed=seed)
            omega = ludwig_tiwari_estimator(instance.jobs, 24).omega
            d = 1.3 * omega
            schedule = mrt_dual(instance.jobs, 24, d)
            if schedule is not None:
                assert schedule.makespan <= 1.5 * d * (1 + 1e-9)
                simulate_schedule(schedule)

    def test_knapsack_engines_agree(self):
        instance = random_mixed_instance(25, 32, seed=5)
        omega = ludwig_tiwari_estimator(instance.jobs, 32).omega
        d = 1.4 * omega
        dense = mrt_dual(instance.jobs, 32, d, knapsack="dense")
        pairs = mrt_dual(instance.jobs, 32, d, knapsack="pairs")
        assert (dense is None) == (pairs is None)
        if dense is not None and pairs is not None:
            assert dense.makespan <= 1.5 * d * (1 + 1e-9)
            assert pairs.makespan <= 1.5 * d * (1 + 1e-9)

    def test_invalid_knapsack_engine(self):
        instance = random_mixed_instance(5, 4, seed=6)
        with pytest.raises(ValueError):
            mrt_dual(instance.jobs, 4, 100.0, knapsack="bogus")


class TestMrtSchedule:
    def test_guarantee_vs_exact_optimum(self):
        eps = 0.25
        for seed in range(3):
            instance = random_monotone_tabulated_instance(5, 4, seed=seed + 5)
            opt = exact_makespan(instance.jobs, 4)
            result = mrt_schedule(instance.jobs, 4, eps)
            assert result.makespan <= (1.5 + eps) * opt * (1 + 1e-6)

    def test_guarantee_vs_planted_optimum(self):
        eps = 0.2
        instance = planted_partition_instance(10, seed=4)
        result = mrt_schedule(instance.jobs, instance.m, eps)
        assert instance.known_optimum is not None
        assert result.makespan <= (1.5 + eps) * instance.known_optimum * (1 + 1e-6)

    def test_schedules_are_valid(self):
        instance = random_mixed_instance(35, 16, seed=9)
        result = mrt_schedule(instance.jobs, 16, 0.2)
        assert_valid_schedule(result.schedule, instance.jobs)
        simulate_schedule(result.schedule)

    def test_metadata(self):
        instance = random_mixed_instance(10, 8, seed=10)
        result = mrt_schedule(instance.jobs, 8, 0.3)
        assert result.schedule.metadata["algorithm"] == "mrt"
        assert result.schedule.metadata["guarantee"] == pytest.approx(1.8)

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            mrt_schedule([], 4, 0.0)

    def test_smaller_eps_does_not_worsen_makespan_much(self):
        instance = random_mixed_instance(20, 16, seed=11)
        coarse = mrt_schedule(instance.jobs, 16, 0.5)
        fine = mrt_schedule(instance.jobs, 16, 0.05)
        assert fine.makespan <= coarse.makespan * (1 + 0.5)
