"""Tests for Algorithm 3 (Section 4.3) and the linear variant (Section 4.3.3)."""

import pytest

from repro.core.bounded_algorithm import bounded_dual, bounded_schedule
from repro.core.bounds import ludwig_tiwari_estimator, makespan_lower_bound, serial_upper_bound
from repro.core.exact_small import exact_makespan
from repro.core.validation import assert_valid_schedule
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import (
    planted_partition_instance,
    random_amdahl_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
)


class TestBoundedDual:
    @pytest.mark.parametrize("transform", ["heap", "bucket"])
    def test_accepts_serial_upper_bound(self, transform):
        instance = random_mixed_instance(20, 16, seed=0)
        d = serial_upper_bound(instance.jobs)
        eps = 0.25
        schedule = bounded_dual(instance.jobs, 16, d, eps, transform=transform)
        assert schedule is not None
        assert schedule.makespan <= (1.5 + eps) * d * (1 + 1e-9)
        assert_valid_schedule(schedule, instance.jobs)

    @pytest.mark.parametrize("transform", ["heap", "bucket"])
    def test_never_rejects_above_exact_optimum(self, transform):
        eps = 0.3
        for seed in range(3):
            instance = random_monotone_tabulated_instance(4, 4, seed=seed)
            opt = exact_makespan(instance.jobs, 4)
            for factor in (1.0, 1.3, 1.8):
                schedule = bounded_dual(instance.jobs, 4, opt * factor, eps, transform=transform)
                assert schedule is not None, f"rejected d = {factor} * OPT (seed {seed})"
                assert schedule.makespan <= (1.5 + eps) * opt * factor * (1 + 1e-9)

    def test_rejects_impossible_target(self):
        instance = random_mixed_instance(20, 4, seed=1)
        lb = makespan_lower_bound(instance.jobs, 4)
        assert bounded_dual(instance.jobs, 4, lb * 0.3, 0.2) is None

    def test_large_m_dispatch(self):
        instance = random_amdahl_instance(8, 256, seed=3)
        omega = ludwig_tiwari_estimator(instance.jobs, 256).omega
        schedule = bounded_dual(instance.jobs, 256, 1.2 * omega, 0.2)
        assert schedule is not None
        assert "large_m" in schedule.metadata["algorithm"]

    def test_records_item_type_count(self):
        instance = random_mixed_instance(60, 64, seed=4)
        omega = ludwig_tiwari_estimator(instance.jobs, 64).omega
        schedule = bounded_dual(instance.jobs, 64, 1.5 * omega, 0.3)
        if schedule is not None and "num_item_types" in schedule.metadata:
            assert 1 <= schedule.metadata["num_item_types"] <= 60

    def test_number_of_types_far_below_n_for_large_instances(self):
        """The whole point of Section 4.3: the knapsack sees types, not jobs."""
        instance = random_mixed_instance(300, 512, seed=5)
        omega = ludwig_tiwari_estimator(instance.jobs, 512).omega
        schedule = bounded_dual(instance.jobs, 512, 1.3 * omega, 0.3)
        if schedule is not None and "num_item_types" in schedule.metadata:
            assert schedule.metadata["num_item_types"] < 300

    def test_empty_instance(self):
        schedule = bounded_dual([], 4, 1.0, 0.2)
        assert schedule is not None and schedule.makespan == 0.0


class TestBoundedSchedule:
    @pytest.mark.parametrize("transform", ["heap", "bucket"])
    def test_guarantee_vs_exact_optimum(self, transform):
        eps = 0.25
        for seed in range(3):
            instance = random_monotone_tabulated_instance(5, 4, seed=seed + 3)
            opt = exact_makespan(instance.jobs, 4)
            result = bounded_schedule(instance.jobs, 4, eps, transform=transform)
            assert result.makespan <= (1.5 + eps) * opt * (1 + 1e-6)

    def test_guarantee_vs_planted_optimum(self):
        eps = 0.2
        instance = planted_partition_instance(12, seed=9)
        result = bounded_schedule(instance.jobs, instance.m, eps)
        assert instance.known_optimum is not None
        assert result.makespan <= (1.5 + eps) * instance.known_optimum * (1 + 1e-6)

    @pytest.mark.parametrize("transform", ["heap", "bucket"])
    def test_schedules_are_valid(self, transform):
        instance = random_mixed_instance(40, 32, seed=14)
        result = bounded_schedule(instance.jobs, 32, 0.2, transform=transform)
        assert_valid_schedule(result.schedule, instance.jobs)
        simulate_schedule(result.schedule)

    def test_heap_and_bucket_agree_on_feasibility(self):
        instance = random_mixed_instance(25, 16, seed=15)
        heap = bounded_schedule(instance.jobs, 16, 0.25, transform="heap")
        bucket = bounded_schedule(instance.jobs, 16, 0.25, transform="bucket")
        lb = makespan_lower_bound(instance.jobs, 16)
        assert heap.makespan <= (1.75) * lb * 1.2
        assert bucket.makespan <= (1.75) * lb * 1.2

    def test_metadata(self):
        instance = random_mixed_instance(10, 8, seed=16)
        heap = bounded_schedule(instance.jobs, 8, 0.3, transform="heap")
        bucket = bounded_schedule(instance.jobs, 8, 0.3, transform="bucket")
        assert heap.schedule.metadata["algorithm"] == "bounded"
        assert bucket.schedule.metadata["algorithm"] == "bounded_linear"

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            bounded_schedule([], 4, 0.0)
