"""Additional edge-case tests for the shelf construction."""

import pytest

from repro.core.job import TabulatedJob
from repro.core.shelves import build_three_shelf_schedule, build_two_shelf_schedule
from repro.core.validation import assert_valid_schedule
from repro.simulator.engine import simulate_schedule


class TestDegenerateInstances:
    def test_only_small_jobs(self):
        """With only small jobs, the construction reduces to next-fit packing."""
        d = 10.0
        m = 3
        jobs = [TabulatedJob(f"s{i}", [3.0]) for i in range(10)]
        schedule = build_three_shelf_schedule(jobs, m, d, shelf1_jobs=[])
        assert schedule is not None
        assert_valid_schedule(schedule, jobs, max_makespan=1.5 * d)

    def test_only_small_jobs_too_much_work_rejected(self):
        d = 10.0
        m = 2
        # 9 small jobs of 3 time units each: work 27 > m*d = 20 -> reject
        jobs = [TabulatedJob(f"s{i}", [3.0]) for i in range(9)]
        assert build_three_shelf_schedule(jobs, m, d, shelf1_jobs=[]) is None

    def test_single_big_job_in_shelf1(self):
        d = 10.0
        m = 4
        job = TabulatedJob("big", [30.0, 16.0, 11.0, 9.0])
        schedule = build_three_shelf_schedule([job], m, d, shelf1_jobs=[job])
        assert schedule is not None
        entry = schedule.entry_for(job)
        assert entry.duration <= 1.5 * d + 1e-9

    def test_single_big_job_in_shelf2(self):
        d = 10.0
        m = 4
        job = TabulatedJob("big", [8.0, 4.5, 3.5, 3.0])
        schedule = build_three_shelf_schedule([job], m, d, shelf1_jobs=[])
        assert schedule is not None
        assert_valid_schedule(schedule, [job], max_makespan=1.5 * d)

    def test_empty_instance(self):
        schedule = build_three_shelf_schedule([], 4, 10.0, shelf1_jobs=[])
        assert schedule is not None
        assert schedule.makespan == 0.0

    def test_single_machine(self):
        d = 20.0
        jobs = [TabulatedJob("a", [12.0]), TabulatedJob("b", [6.0]), TabulatedJob("c", [9.0])]
        # work 27 > m*d = 20 -> must reject
        assert build_three_shelf_schedule(jobs, 1, d, shelf1_jobs=[jobs[0]]) is None
        # a roomier target succeeds
        schedule = build_three_shelf_schedule(jobs, 1, 28.0, shelf1_jobs=[jobs[0]])
        assert schedule is not None
        assert_valid_schedule(schedule, jobs, max_makespan=1.5 * 28.0)


class TestPiggybackSpecialCase:
    def test_unpaired_short_job_rides_on_tall_job(self):
        """Rule (ii) special case: one leftover 1-processor job of height
        <= 3d/4 is stacked on top of a tall shelf-1 job when they fit in 3d/2."""
        d = 10.0
        m = 3
        tall = TabulatedJob("tall", [16.0, 9.0, 8.5])      # gamma(d)=2, t=9 > 3d/4
        short = TabulatedJob("short", [6.0, 5.9, 5.8])     # gamma(d)=1, t=6 <= 7.5
        filler = TabulatedJob("filler", [4.0])             # small job
        schedule = build_three_shelf_schedule([tall, short, filler], m, d, shelf1_jobs=[tall, short])
        assert schedule is not None
        assert_valid_schedule(schedule, [tall, short, filler], max_makespan=1.5 * d)
        e_tall, e_short = schedule.entry_for(tall), schedule.entry_for(short)
        # 9 + 6 = 15 = 3d/2: the short job starts exactly when the tall one ends
        assert e_short.start == pytest.approx(e_tall.end)
        # and it runs on one of the tall job's machines
        shared = set(e_short.machines()) & set(e_tall.machines())
        assert shared

    def test_unpaired_short_job_without_partner_stays_in_shelf1(self):
        d = 10.0
        m = 3
        tall = TabulatedJob("tall", [16.0, 9.9, 9.8])      # 9.9 + 6 > 15: no piggyback possible
        short = TabulatedJob("short", [6.0, 5.9, 5.8])
        schedule = build_three_shelf_schedule([tall, short], m, d, shelf1_jobs=[tall, short])
        assert schedule is not None
        assert_valid_schedule(schedule, [tall, short], max_makespan=1.5 * d)
        e_short = schedule.entry_for(short)
        assert e_short.start == 0.0  # stays in shelf S1


class TestShelf2Placement:
    def test_shelf2_jobs_finish_at_three_halves_d(self):
        d = 10.0
        m = 6
        s1 = [TabulatedJob(f"one-{i}", [9.5, 8.0, 7.9, 7.8, 7.7, 7.6]) for i in range(2)]
        s2 = [TabulatedJob(f"two-{i}", [8.0, 4.8, 4.7, 4.6, 4.5, 4.4]) for i in range(2)]
        schedule = build_three_shelf_schedule(s1 + s2, m, d, shelf1_jobs=s1)
        assert schedule is not None
        for job in s2:
            entry = schedule.entry_for(job)
            # shelf-2 jobs are right-aligned at 3d/2 (unless moved by rule iii)
            assert entry.end <= 1.5 * d + 1e-9
        simulate_schedule(schedule)

    def test_two_shelf_reports_infeasibility_correctly(self):
        d = 10.0
        m = 2
        jobs = [TabulatedJob(f"j{i}", [9.0, 4.9]) for i in range(3)]
        two = build_two_shelf_schedule(jobs, m, d, shelf1_jobs=[])
        assert two is not None
        # each of the three jobs needs 2 processors to meet d/2
        assert two.shelf2_processors == 6 > m
        assert not two.is_feasible
