"""Tests for the geometric job rounding of Section 4.3."""

import math

import pytest

from repro.core.allotment import gamma
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.rounding import round_jobs_to_types
from repro.core.shelves import partition_small_big
from repro.workloads.generators import random_mixed_instance


def _prepare(n, m, seed, d_factor=1.3):
    instance = random_mixed_instance(n, m, seed=seed)
    omega = ludwig_tiwari_estimator(instance.jobs, m).omega
    d = d_factor * omega
    _, big = partition_small_big(instance.jobs, d)
    eligible = [j for j in big if gamma(j, d / 2.0, m) is not None and gamma(j, d, m) is not None]
    return instance, d, eligible


class TestRoundJobsToTypes:
    def test_sizes_never_exceed_true_counts(self):
        instance, d, big = _prepare(60, 64, seed=1)
        scheme = round_jobs_to_types(big, 64, d, delta=0.1)
        for rj in scheme.rounded:
            assert rj.size <= rj.gamma_full
            assert rj.size >= 1

    def test_size_underestimate_bounded_by_one_plus_rho(self):
        """Rounded counts are within a (1+rho) factor of the true counts."""
        instance, d, big = _prepare(60, 64, seed=2)
        scheme = round_jobs_to_types(big, 64, d, delta=0.2)
        rho = scheme.params.rho
        for rj in scheme.rounded:
            assert rj.gamma_full <= rj.size * (1.0 + rho) * (1 + 1e-9) or rj.size == rj.gamma_full

    def test_narrow_counts_kept_exact(self):
        instance, d, big = _prepare(60, 64, seed=3)
        scheme = round_jobs_to_types(big, 64, d, delta=0.1)
        b = scheme.params.b
        for rj in scheme.rounded:
            if rj.gamma_full <= b:
                assert rj.size == rj.gamma_full

    def test_profits_nonnegative(self):
        instance, d, big = _prepare(80, 96, seed=4)
        scheme = round_jobs_to_types(big, 96, d, delta=0.15)
        assert all(rj.profit >= 0.0 for rj in scheme.rounded)

    def test_rounded_times_below_true_times(self):
        """Wide-in-S2 jobs have processing times rounded *down*."""
        instance, d, big = _prepare(80, 96, seed=5)
        scheme = round_jobs_to_types(big, 96, d, delta=0.15)
        for rj in scheme.rounded:
            if rj.type_key[0] == "wide":
                assert rj.rounded_time_full <= rj.job.processing_time(rj.gamma_full) * (1 + 1e-9)
                assert rj.rounded_time_half <= rj.job.processing_time(rj.gamma_half) * (1 + 1e-9)

    def test_members_grouped_consistently(self):
        instance, d, big = _prepare(100, 128, seed=6)
        scheme = round_jobs_to_types(big, 128, d, delta=0.2)
        total_members = sum(t.count for t in scheme.types)
        assert total_members == len(big)
        for t in scheme.types:
            assert len(t.members) == t.count

    def test_type_count_far_below_job_count_for_large_n(self):
        instance, d, big = _prepare(400, 512, seed=7)
        scheme = round_jobs_to_types(big, 512, d, delta=0.25)
        assert scheme.num_types < len(big)

    def test_type_count_within_theoretical_bound_order(self):
        """Not a strict check of the constant, but the bound expression should
        dominate the observed count for reasonable deltas."""
        instance, d, big = _prepare(200, 256, seed=8)
        scheme = round_jobs_to_types(big, 256, d, delta=0.2)
        assert scheme.num_types <= 10 * scheme.theoretical_type_bound()

    def test_raises_on_forced_jobs(self):
        """Jobs that cannot meet d/2 must be removed by the caller first."""
        from repro.core.job import AmdahlJob

        stubborn = AmdahlJob("stubborn", 100.0, 1.0)
        with pytest.raises(ValueError):
            round_jobs_to_types([stubborn], 64, 110.0, delta=0.1)

    def test_narrow_small_profits_dropped_to_zero(self):
        instance, d, big = _prepare(60, 64, seed=9)
        delta = 0.2
        scheme = round_jobs_to_types(big, 64, d, delta=delta)
        for rj in scheme.rounded:
            if rj.type_key[0] == "narrow" and rj.profit > 0.0:
                assert rj.profit >= delta / 2.0 * d * (1 - 1e-9)
