"""Tests for knapsack item containers."""

import pytest

from repro.knapsack.items import ItemType, KnapsackItem


class TestKnapsackItem:
    def test_construction(self):
        item = KnapsackItem(key="a", size=3, profit=5.0, payload="job")
        assert item.size == 3
        assert item.profit == 5.0
        assert item.payload == "job"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            KnapsackItem(key="a", size=-1, profit=1.0)

    def test_negative_profit_rejected(self):
        with pytest.raises(ValueError):
            KnapsackItem(key="a", size=1, profit=-1.0)

    def test_zero_values_allowed(self):
        item = KnapsackItem(key="a", size=0, profit=0.0)
        assert item.size == 0


class TestItemType:
    def test_construction(self):
        t = ItemType(key="t", size=2, profit=3.0, count=4)
        assert t.count == 4
        assert t.members == []

    def test_members_length_checked(self):
        with pytest.raises(ValueError):
            ItemType(key="t", size=2, profit=3.0, count=3, members=["a"])

    def test_members_ok_when_matching(self):
        t = ItemType(key="t", size=2, profit=3.0, count=2, members=["a", "b"])
        assert t.members == ["a", "b"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ItemType(key="t", size=2, profit=3.0, count=0)

    def test_negative_size_or_profit(self):
        with pytest.raises(ValueError):
            ItemType(key="t", size=-2, profit=3.0, count=1)
        with pytest.raises(ValueError):
            ItemType(key="t", size=2, profit=-3.0, count=1)
