"""Direct tests of the dominance-list engine internals (Lawler's DP)."""

import pytest

from repro.knapsack.dp import DominanceList, Pair
from repro.knapsack.items import KnapsackItem


class TestPair:
    def test_backtrack_chain(self):
        items = [KnapsackItem(key=i, size=i + 1, profit=float(i + 1)) for i in range(3)]
        root = Pair(0.0, 0.0, None, None)
        first = Pair(1.0, 1.0, 0, root)
        second = Pair(4.0, 4.0, 2, first)
        chosen = second.backtrack(items)
        assert [i.key for i in chosen] == [0, 2]

    def test_backtrack_empty(self):
        root = Pair(0.0, 0.0, None, None)
        assert root.backtrack([]) == []


class TestDominanceList:
    def test_starts_with_empty_state(self):
        dom = DominanceList()
        assert len(dom) == 1
        assert dom.pairs[0].profit == 0.0
        assert dom.pairs[0].size == 0.0

    def test_add_item_grows_states(self):
        dom = DominanceList()
        dom.add_item(KnapsackItem(key="a", size=2, profit=3.0), 0, capacity=10)
        assert len(dom) == 2
        assert dom.best_for_capacity(1).profit == 0.0
        assert dom.best_for_capacity(2).profit == 3.0

    def test_dominated_states_pruned(self):
        dom = DominanceList()
        # a small very profitable item dominates a larger less profitable one
        dom.add_item(KnapsackItem(key="good", size=1, profit=10.0), 0, capacity=10)
        dom.add_item(KnapsackItem(key="bad", size=5, profit=1.0), 1, capacity=10)
        sizes = [p.size for p in dom.pairs]
        profits = [p.profit for p in dom.pairs]
        # invariant: sizes strictly increasing AND profits strictly increasing
        assert sizes == sorted(sizes)
        assert profits == sorted(profits)
        # the state "bad alone" (size 5, profit 1) must have been pruned
        assert not any(abs(p.size - 5.0) < 1e-12 and abs(p.profit - 1.0) < 1e-12 for p in dom.pairs)

    def test_capacity_respected(self):
        dom = DominanceList()
        dom.add_item(KnapsackItem(key="a", size=8, profit=5.0), 0, capacity=10)
        dom.add_item(KnapsackItem(key="b", size=7, profit=5.0), 1, capacity=10)
        # the combined state (size 15) exceeds the capacity and must not exist
        assert all(p.size <= 10 + 1e-9 for p in dom.pairs)

    def test_best_for_capacity_monotone(self):
        dom = DominanceList()
        for i, (size, profit) in enumerate([(2, 3.0), (3, 4.0), (4, 7.0)]):
            dom.add_item(KnapsackItem(key=i, size=size, profit=profit), i, capacity=9)
        best = [dom.best_for_capacity(c).profit for c in range(0, 10)]
        assert best == sorted(best)

    def test_size_transform_applied(self):
        dom = DominanceList()
        dom.add_item(
            KnapsackItem(key="a", size=3.7, profit=1.0),
            0,
            capacity=10,
            size_transform=lambda s: float(int(s)),  # floor to integers
        )
        assert any(abs(p.size - 3.0) < 1e-12 for p in dom.pairs)
