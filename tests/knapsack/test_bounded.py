"""Tests for the bounded-knapsack conversion."""

import numpy as np
import pytest

from repro.knapsack.bounded import assign_members, binary_split, expand_bounded_items, selected_counts
from repro.knapsack.dp import solve_knapsack
from repro.knapsack.items import ItemType, KnapsackItem


class TestBinarySplit:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 13, 100, 1023])
    def test_parts_sum_to_count(self, count):
        parts = binary_split(count)
        assert sum(parts) == count

    @pytest.mark.parametrize("count", [1, 5, 17, 100, 1000])
    def test_every_value_expressible(self, count):
        parts = binary_split(count)
        reachable = {0}
        for p in parts:
            reachable |= {r + p for r in reachable}
        assert set(range(count + 1)) <= reachable

    def test_logarithmic_size(self):
        assert len(binary_split(1023)) <= 11
        assert len(binary_split(10 ** 6)) <= 21

    def test_invalid(self):
        with pytest.raises(ValueError):
            binary_split(0)


class TestExpandAndAssign:
    def make_types(self):
        return [
            ItemType(key="t1", size=3, profit=5.0, count=5, members=[f"a{i}" for i in range(5)]),
            ItemType(key="t2", size=7, profit=11.0, count=2, members=["b0", "b1"]),
        ]

    def test_expand_counts(self):
        containers = expand_bounded_items(self.make_types())
        # t1 -> 1+2+2 (3 containers), t2 -> 1+1 (2 containers)
        assert len(containers) == 5
        assert sum(c.payload[1] for c in containers if c.payload[0] == "t1") == 5

    def test_container_sizes_and_profits_scale(self):
        containers = expand_bounded_items(self.make_types())
        for c in containers:
            type_key, mult = c.payload
            base = 3 if type_key == "t1" else 7
            base_profit = 5.0 if type_key == "t1" else 11.0
            assert c.size == base * mult
            assert c.profit == pytest.approx(base_profit * mult)

    def test_selected_counts(self):
        containers = expand_bounded_items(self.make_types())
        chosen = [c for c in containers if c.payload[0] == "t1"][:2]
        counts = selected_counts(chosen)
        assert counts == {"t1": chosen[0].payload[1] + chosen[1].payload[1]}

    def test_assign_members(self):
        types = self.make_types()
        members = assign_members({"t1": 3, "t2": 1}, types)
        assert members == ["a0", "a1", "a2", "b0"]

    def test_assign_too_many_raises(self):
        types = self.make_types()
        with pytest.raises(ValueError):
            assign_members({"t2": 3}, types)

    def test_assign_without_members_raises(self):
        types = [ItemType(key="t", size=1, profit=1.0, count=2)]
        with pytest.raises(ValueError):
            assign_members({"t": 1}, types)


class TestBoundedViaContainersOptimality:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exhaustive_bounded_optimum(self, seed):
        """Solving the container expansion with the exact 0/1 solver matches a
        brute-force bounded knapsack optimum."""
        rng = np.random.default_rng(seed)
        types = []
        for t in range(4):
            count = int(rng.integers(1, 4))
            types.append(
                ItemType(
                    key=f"t{t}",
                    size=int(rng.integers(1, 6)),
                    profit=float(rng.integers(1, 20)),
                    count=count,
                    members=list(range(count)),
                )
            )
        capacity = int(rng.integers(5, 25))

        containers = expand_bounded_items(types)
        profit, chosen = solve_knapsack(containers, capacity)

        # brute force over copy counts
        best = 0.0
        import itertools

        ranges = [range(t.count + 1) for t in types]
        for counts in itertools.product(*ranges):
            size = sum(c * t.size for c, t in zip(counts, types))
            if size <= capacity:
                best = max(best, sum(c * t.profit for c, t in zip(counts, types)))
        assert profit == pytest.approx(best)

        # and the chosen containers map back to a consistent member selection
        counts = selected_counts(chosen)
        members = assign_members(counts, types)
        assert len(members) == sum(counts.values())
