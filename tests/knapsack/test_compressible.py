"""Tests for geometric rounding, adaptive normalisation and Algorithm 2."""

import math

import numpy as np
import pytest

from repro.knapsack.compressible import (
    AdaptiveNormalizer,
    CompressibleSolution,
    geom,
    round_down_geom,
    round_up_geom,
    solve_compressible_knapsack,
    solve_compressible_multi,
)
from repro.knapsack.dp import solve_knapsack
from repro.knapsack.items import KnapsackItem


class TestGeom:
    def test_basic(self):
        grid = geom(1.0, 8.0, 2.0)
        assert grid == [1.0, 2.0, 4.0, 8.0]

    def test_covers_range(self):
        grid = geom(3.0, 1000.0, 1.3)
        assert grid[0] == 3.0
        assert grid[-1] >= 1000.0 * (1 - 1e-12)

    def test_degenerate(self):
        assert geom(5.0, 5.0, 2.0) == [5.0]
        assert geom(5.0, 1.0, 2.0) == [5.0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            geom(0.0, 10.0, 2.0)
        with pytest.raises(ValueError):
            geom(1.0, 10.0, 1.0)

    def test_lemma14_cardinality(self):
        """|geom(L, U, x)| = O(log(U/L) / (x-1)) — checked with the constant 2."""
        for ratio in (1.05, 1.1, 1.5, 2.0):
            for low, high in ((1.0, 100.0), (5.0, 1e6), (2.0, 1e9)):
                grid = geom(low, high, ratio)
                bound = 2.0 * math.log(high / low) / (ratio - 1.0) + 2
                assert len(grid) <= bound


class TestGeometricRounding:
    def test_round_down(self):
        assert round_down_geom(5.0, 1.0, 16.0, 2.0) == pytest.approx(4.0)
        assert round_down_geom(4.0, 1.0, 16.0, 2.0) == pytest.approx(4.0)

    def test_round_down_below_grid_raises(self):
        with pytest.raises(ValueError):
            round_down_geom(0.5, 1.0, 16.0, 2.0)

    def test_round_up(self):
        assert round_up_geom(5.0, 1.0, 16.0, 2.0) == pytest.approx(8.0)
        assert round_up_geom(8.0, 1.0, 16.0, 2.0) == pytest.approx(8.0)

    def test_round_up_clamps_to_max(self):
        assert round_up_geom(40.0, 1.0, 16.0, 2.0) == pytest.approx(16.0)

    def test_round_down_error_bounded_by_ratio(self):
        for value in (3.7, 12.4, 999.0):
            rounded = round_down_geom(value, 1.0, 1e6, 1.25)
            assert rounded <= value <= rounded * 1.25 * (1 + 1e-12)


class TestAdaptiveNormalizer:
    def test_normalize_never_increases(self):
        caps = geom(10.0, 1000.0, 1.25)
        norm = AdaptiveNormalizer(caps, alpha_min=10.0, rho=0.1, n_bar=20)
        rng = np.random.default_rng(0)
        for _ in range(200):
            s = float(rng.uniform(1.0, 1200.0))
            assert norm.normalize(s) <= s + 1e-12

    def test_small_sizes_unchanged(self):
        caps = [100.0, 200.0]
        norm = AdaptiveNormalizer(caps, alpha_min=50.0, rho=0.1, n_bar=5)
        assert norm.normalize(10.0) == 10.0

    def test_underestimate_bounded(self):
        """The rounding error of a single value is at most the interval unit."""
        caps = geom(10.0, 10000.0, 1.2)
        norm = AdaptiveNormalizer(caps, alpha_min=10.0, rho=0.15, n_bar=30)
        rng = np.random.default_rng(1)
        for _ in range(300):
            s = float(rng.uniform(10.0, 10000.0))
            err = s - norm.normalize(s)
            assert err <= norm.max_underestimate(s) / norm.n_bar + 1e-9 or err <= max(
                info.unit for info in norm.intervals
            ) + 1e-9

    def test_eq16_cell_counts(self):
        caps = geom(10.0, 100000.0, 1.0 / 0.9)
        norm = AdaptiveNormalizer(caps, alpha_min=10.0, rho=0.1, n_bar=25)
        for count in norm.subinterval_counts():
            assert count <= (1 - 0.1) * 25 + 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            AdaptiveNormalizer([], 1.0, 0.1, 5)
        with pytest.raises(ValueError):
            AdaptiveNormalizer([10.0], 1.0, 0.0, 5)
        with pytest.raises(ValueError):
            AdaptiveNormalizer([10.0], 1.0, 0.1, 0)
        with pytest.raises(ValueError):
            AdaptiveNormalizer([10.0], 0.0, 0.1, 5)


def random_scheduling_like_items(rng, n, wide_fraction=0.4, max_wide=200, rho=0.1):
    """Items shaped like the scheduling application: compressible items are
    wide (size >= 1/rho), incompressible ones narrow."""
    items = []
    compressible = set()
    threshold = 1.0 / rho
    for i in range(n):
        if rng.uniform() < wide_fraction:
            size = int(rng.integers(int(threshold), max_wide))
            compressible.add(i)
        else:
            size = int(rng.integers(1, int(threshold)))
        items.append(KnapsackItem(key=i, size=size, profit=float(rng.uniform(1, 100))))
    return items, compressible


class TestSolveCompressibleMulti:
    def test_profit_at_least_exact_for_each_capacity(self):
        rng = np.random.default_rng(5)
        rho = 0.1
        items, _ = random_scheduling_like_items(rng, 14, wide_fraction=1.0, rho=rho)
        caps = [40.0, 80.0, 160.0, 320.0]
        n_bar = 10
        results = solve_compressible_multi(items, caps, rho, n_bar, alpha_min=1.0 / rho)
        for cap in caps:
            exact_profit, _ = solve_knapsack(items, cap)
            profit, chosen = results[cap]
            assert profit >= exact_profit - 1e-9
            # the overshoot must be covered by compressing with 2 rho - rho^2
            true_size = sum(i.size for i in chosen)
            assert true_size * (1.0 - (2 * rho - rho ** 2)) <= cap + 1e-6


class TestAlgorithm2:
    @pytest.mark.parametrize("seed", range(6))
    def test_profit_at_least_uncompressed_optimum(self, seed):
        rng = np.random.default_rng(seed)
        rho = 0.1
        items, compressible = random_scheduling_like_items(rng, 16, rho=rho)
        capacity = float(rng.integers(100, 600))
        solution = solve_compressible_knapsack(items, compressible, capacity, rho)
        exact_profit, _ = solve_knapsack(items, capacity)
        assert solution.profit >= exact_profit - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_compressed_size_fits_capacity(self, seed):
        rng = np.random.default_rng(seed + 10)
        rho = 0.12
        items, compressible = random_scheduling_like_items(rng, 18, rho=rho)
        capacity = float(rng.integers(100, 500))
        solution = solve_compressible_knapsack(items, compressible, capacity, rho)
        assert solution.compressed_size() <= capacity * (1 + 1e-9)

    def test_incompressible_items_within_their_budget(self):
        rng = np.random.default_rng(3)
        rho = 0.1
        items, compressible = random_scheduling_like_items(rng, 15, rho=rho)
        capacity = 300.0
        solution = solve_compressible_knapsack(items, compressible, capacity, rho)
        incompressible_size = sum(i.size for i in solution.incompressible)
        assert incompressible_size <= capacity + 1e-9

    def test_no_compressible_items(self):
        items = [KnapsackItem(key=i, size=i + 1, profit=float(i + 1)) for i in range(8)]
        solution = solve_compressible_knapsack(items, set(), 12.0, 0.1)
        exact_profit, _ = solve_knapsack(items, 12.0)
        assert solution.profit == pytest.approx(exact_profit)
        assert solution.compressible == []

    def test_all_compressible_items(self):
        rho = 0.2
        items = [KnapsackItem(key=i, size=5 + i, profit=10.0 * (i + 1)) for i in range(6)]
        solution = solve_compressible_knapsack(items, {i.key for i in items}, 20.0, rho)
        exact_profit, _ = solve_knapsack(items, 20.0)
        assert solution.profit >= exact_profit - 1e-9
        assert solution.compressed_size() <= 20.0 + 1e-9

    def test_zero_capacity(self):
        items = [KnapsackItem(key=0, size=3, profit=5.0)]
        solution = solve_compressible_knapsack(items, set(), 0.0, 0.1)
        assert solution.profit == 0.0

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            solve_compressible_knapsack([], set(), 10.0, 0.3)
        with pytest.raises(ValueError):
            solve_compressible_knapsack([], set(), 10.0, 0.0)

    def test_solution_items_property(self):
        solution = CompressibleSolution(
            profit=5.0,
            compressible=[KnapsackItem(key=0, size=10, profit=3.0)],
            incompressible=[KnapsackItem(key=1, size=2, profit=2.0)],
            alpha_tilde=10.0,
            rho_prime=0.19,
        )
        assert len(solution.items) == 2
        assert solution.true_size() == 12
