"""Tests for the exact 0/1 knapsack solvers."""

import itertools

import numpy as np
import pytest

from repro.knapsack.dp import solve_knapsack, solve_knapsack_dense
from repro.knapsack.items import KnapsackItem


def brute_force(items, capacity):
    best = 0.0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            if sum(i.size for i in combo) <= capacity + 1e-12:
                best = max(best, sum(i.profit for i in combo))
    return best


def random_items(rng, n, max_size=20, max_profit=50, integer_sizes=True):
    items = []
    for i in range(n):
        size = int(rng.integers(1, max_size + 1)) if integer_sizes else float(rng.uniform(0.5, max_size))
        profit = float(rng.uniform(1, max_profit))
        items.append(KnapsackItem(key=i, size=size, profit=profit))
    return items


class TestSolveKnapsack:
    def test_empty(self):
        profit, chosen = solve_knapsack([], 10)
        assert profit == 0.0 and chosen == []

    def test_zero_capacity(self):
        items = [KnapsackItem(key=0, size=1, profit=5.0)]
        profit, chosen = solve_knapsack(items, 0)
        assert profit == 0.0 and chosen == []

    def test_single_item_fits(self):
        items = [KnapsackItem(key=0, size=3, profit=7.0)]
        profit, chosen = solve_knapsack(items, 5)
        assert profit == 7.0 and [i.key for i in chosen] == [0]

    def test_single_item_too_large(self):
        items = [KnapsackItem(key=0, size=6, profit=7.0)]
        profit, chosen = solve_knapsack(items, 5)
        assert profit == 0.0 and chosen == []

    def test_classic_example(self):
        items = [
            KnapsackItem(key="a", size=10, profit=60.0),
            KnapsackItem(key="b", size=20, profit=100.0),
            KnapsackItem(key="c", size=30, profit=120.0),
        ]
        profit, chosen = solve_knapsack(items, 50)
        assert profit == pytest.approx(220.0)
        assert {i.key for i in chosen} == {"b", "c"}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack([], -1)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        items = random_items(rng, 10)
        capacity = int(rng.integers(10, 60))
        profit, chosen = solve_knapsack(items, capacity)
        assert profit == pytest.approx(brute_force(items, capacity))
        assert sum(i.size for i in chosen) <= capacity
        assert sum(i.profit for i in chosen) == pytest.approx(profit)

    @pytest.mark.parametrize("seed", range(3))
    def test_float_sizes(self, seed):
        rng = np.random.default_rng(seed + 100)
        items = random_items(rng, 9, integer_sizes=False)
        capacity = float(rng.uniform(10, 50))
        profit, chosen = solve_knapsack(items, capacity)
        assert profit == pytest.approx(brute_force(items, capacity))
        assert sum(i.size for i in chosen) <= capacity + 1e-9


class TestSolveKnapsackDense:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_pairs_engine(self, seed):
        rng = np.random.default_rng(seed + 50)
        items = random_items(rng, 12)
        capacity = int(rng.integers(10, 80))
        dense_profit, dense_chosen = solve_knapsack_dense(items, capacity)
        pairs_profit, _ = solve_knapsack(items, capacity)
        assert dense_profit == pytest.approx(pairs_profit)
        assert sum(i.size for i in dense_chosen) <= capacity
        assert sum(i.profit for i in dense_chosen) == pytest.approx(dense_profit)

    def test_requires_integer_sizes(self):
        items = [KnapsackItem(key=0, size=1.5, profit=1.0)]
        with pytest.raises(ValueError):
            solve_knapsack_dense(items, 10)

    def test_zero_capacity(self):
        items = [KnapsackItem(key=0, size=1, profit=5.0)]
        profit, chosen = solve_knapsack_dense(items, 0)
        assert profit == 0.0 and chosen == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack_dense([], -3)
