"""Tests for the one-pass multi-capacity knapsack solver."""

import numpy as np
import pytest

from repro.knapsack.dp import solve_knapsack
from repro.knapsack.items import KnapsackItem
from repro.knapsack.multi import solve_knapsack_multi


def random_items(rng, n, max_size=15, max_profit=40):
    return [
        KnapsackItem(key=i, size=int(rng.integers(1, max_size + 1)), profit=float(rng.uniform(1, max_profit)))
        for i in range(n)
    ]


class TestSolveKnapsackMulti:
    def test_empty_capacities(self):
        assert solve_knapsack_multi([], []) == {}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack_multi([], [-1.0])

    @pytest.mark.parametrize("seed", range(5))
    def test_each_capacity_matches_single_solve(self, seed):
        rng = np.random.default_rng(seed)
        items = random_items(rng, 12)
        capacities = sorted({float(rng.integers(0, 60)) for _ in range(6)})
        results = solve_knapsack_multi(items, capacities)
        for cap in capacities:
            single_profit, _ = solve_knapsack(items, cap)
            multi_profit, chosen = results[cap]
            assert multi_profit == pytest.approx(single_profit)
            assert sum(i.size for i in chosen) <= cap + 1e-9
            assert sum(i.profit for i in chosen) == pytest.approx(multi_profit)

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(99)
        items = random_items(rng, 10)
        capacities = [5.0, 10.0, 20.0, 40.0, 80.0]
        results = solve_knapsack_multi(items, capacities)
        profits = [results[c][0] for c in capacities]
        assert profits == sorted(profits)

    def test_zero_capacity_gives_empty_solution(self):
        items = [KnapsackItem(key=0, size=2, profit=9.0)]
        results = solve_knapsack_multi(items, [0.0, 2.0])
        assert results[0.0] == (0.0, [])
        assert results[2.0][0] == pytest.approx(9.0)

    def test_duplicate_capacities(self):
        items = [KnapsackItem(key=0, size=2, profit=9.0)]
        results = solve_knapsack_multi(items, [2.0, 2.0])
        assert results[2.0][0] == pytest.approx(9.0)
