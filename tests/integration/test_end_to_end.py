"""End-to-end integration tests across the whole library."""

import pytest

from repro import (
    AmdahlJob,
    assert_valid_schedule,
    bounded_schedule,
    compressible_schedule,
    fptas_schedule,
    makespan_lower_bound,
    mrt_schedule,
    schedule_moldable,
    two_approximation,
)
from repro.core.exact_small import exact_makespan
from repro.hardness.four_partition import random_yes_instance
from repro.hardness.reduction import reduce_to_scheduling
from repro.simulator.engine import simulate_schedule
from repro.simulator.gantt import render_gantt
from repro.workloads.generators import scenario, planted_partition_instance, random_mixed_instance


class TestPublicApiRoundTrip:
    def test_quickstart_snippet(self):
        """The README quick-start must keep working."""
        jobs = [AmdahlJob(f"job{i}", t1=10.0 + i, serial_fraction=0.05) for i in range(20)]
        result = schedule_moldable(jobs, m=1 << 20, eps=0.1)
        assert result.makespan > 0
        assert result.certified_ratio < 1.5
        assert_valid_schedule(result.schedule, jobs)

    def test_all_top_level_algorithms_on_one_instance(self):
        instance = random_mixed_instance(35, 40, seed=21)
        lb = makespan_lower_bound(instance.jobs, instance.m)
        results = {
            "two_approx": two_approximation(instance.jobs, instance.m).schedule,
            "mrt": mrt_schedule(instance.jobs, instance.m, 0.2).schedule,
            "compressible": compressible_schedule(instance.jobs, instance.m, 0.2).schedule,
            "bounded": bounded_schedule(instance.jobs, instance.m, 0.2).schedule,
        }
        for name, schedule in results.items():
            assert_valid_schedule(schedule, instance.jobs)
            trace = simulate_schedule(schedule)
            assert trace.peak_busy <= instance.m, name
            assert schedule.makespan >= lb * (1 - 1e-9)

    def test_scenarios_run_through_auto(self):
        for name in ("cluster_small", "hpc_large_m"):
            instance = scenario(name, seed=1)
            result = schedule_moldable(instance.jobs, instance.m, 0.25)
            assert_valid_schedule(result.schedule, instance.jobs)

    def test_gantt_of_final_schedule(self):
        instance = random_mixed_instance(15, 8, seed=2)
        result = schedule_moldable(instance.jobs, 8, 0.3, algorithm="mrt")
        out = render_gantt(result.schedule)
        assert len(out.splitlines()) >= 5


class TestCrossAlgorithmConsistency:
    def test_better_guarantees_never_much_worse(self):
        """On planted instances the (3/2+eps) algorithms must beat 2x the optimum
        and the FPTAS must beat (1+eps) on its domain."""
        instance = planted_partition_instance(16, seed=5)
        opt = instance.known_optimum
        assert opt is not None
        for algorithm in ("mrt", "compressible", "bounded", "bounded_linear"):
            result = schedule_moldable(instance.jobs, instance.m, 0.2, algorithm=algorithm)
            assert result.makespan <= 1.7 * opt * (1 + 1e-9)

    def test_fptas_close_to_optimal_for_huge_m(self):
        """The FPTAS is within (1+eps) of the optimum, hence within (1+eps) of
        any other algorithm's makespan."""
        jobs = [AmdahlJob(f"a{i}", 30.0 + i, 0.02) for i in range(12)]
        m = 10 ** 7
        eps = 0.05
        fptas = fptas_schedule(jobs, m, eps)
        two = two_approximation(jobs, m)
        assert fptas.schedule.makespan <= (1 + eps) * two.schedule.makespan * (1 + 1e-9)
        lb = makespan_lower_bound(jobs, m)
        assert fptas.schedule.makespan <= (1 + eps) * lb * 1.01

    def test_exact_never_beaten(self):
        from repro.workloads.generators import random_monotone_tabulated_instance

        instance = random_monotone_tabulated_instance(5, 4, seed=9)
        opt = exact_makespan(instance.jobs, 4)
        for algorithm in ("two_approx", "mrt", "bounded"):
            result = schedule_moldable(instance.jobs, 4, 0.2, algorithm=algorithm)
            assert result.makespan >= opt * (1 - 1e-9)


class TestHardnessIntegration:
    def test_reduction_instances_schedulable_by_approximation_algorithms(self):
        """The approximation algorithms handle the reduction jobs (which are
        strictly monotone) and stay within their guarantee of the known target."""
        inst = random_yes_instance(4, seed=11)
        reduced = reduce_to_scheduling(inst)
        opt = reduced.target_makespan  # the planted schedule achieves exactly this
        result = schedule_moldable(reduced.jobs, reduced.m, 0.2, algorithm="bounded")
        assert_valid_schedule(result.schedule, reduced.jobs)
        assert result.makespan <= 1.7 * opt * (1 + 1e-6)

    def test_two_approx_on_reduction_instance(self):
        inst = random_yes_instance(5, seed=12)
        reduced = reduce_to_scheduling(inst)
        result = two_approximation(reduced.jobs, reduced.m)
        assert result.makespan <= 2.0 * reduced.target_makespan * (1 + 1e-6)
