"""Subprocess smoke tests for the runnable examples/.

Each example is executed exactly the way the README tells a user to run it
(``python examples/<name>.py`` with ``src`` on ``PYTHONPATH``), so import
breakage, API drift, or a crash anywhere in the script fails tier-1 —
docstring-only walkthroughs cannot rot silently.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = [
    "online_cluster_day.py",
    "cluster_with_failures.py",
    "hpc_cluster_campaign.py",
    "serve_fleet.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr


def test_online_example_reports_warm_start_parity():
    proc = run_example("online_cluster_day.py")
    assert proc.returncode == 0, proc.stderr
    assert "schedules bit-identical: True" in proc.stdout
    assert "reduction)" in proc.stdout
    assert "clairvoyant offline" in proc.stdout
    assert "release-aware LB" in proc.stdout
    assert "release round-trip exact: True" in proc.stdout


def test_campaign_example_reports_complete_fleet():
    proc = run_example("hpc_cluster_campaign.py")
    assert proc.returncode == 0, proc.stderr
    assert "fleet: 5 solved, 0 degraded, 0 quarantined" in proc.stdout
    assert "best schedule: two_approx" in proc.stdout
    assert "QUARANTINED" not in proc.stdout


def test_serve_fleet_example_reports_resume():
    proc = run_example("serve_fleet.py")
    assert proc.returncode == 0, proc.stderr
    assert "(complete=True)" in proc.stdout
    assert "12 of 12 resumed from the journal" in proc.stdout
    assert "journal grew by 0 lines" in proc.stdout
    assert "resumed outcomes identical to first run: True" in proc.stdout


def test_failure_example_reports_successful_recovery():
    proc = run_example("cluster_with_failures.py")
    assert proc.returncode == 0, proc.stderr
    assert "stitched schedule validates on survivors: True" in proc.stdout
    assert "simulator replay matches: True" in proc.stdout
    assert "fault plan JSON roundtrip: True" in proc.stdout
    assert "re-plans" in proc.stdout
