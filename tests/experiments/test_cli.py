"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry(self):
        for name in ("table1", "fig1", "fig2-fig3", "fig4", "fptas", "quality", "crossover"):
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "Reproduce" in capsys.readouterr().out

    def test_fig4_runs_end_to_end(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "True" in out
