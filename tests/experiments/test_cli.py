"""Tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry(self):
        for name in ("table1", "fig1", "fig2-fig3", "fig4", "fptas", "quality", "crossover"):
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "Reproduce" in capsys.readouterr().out

    def test_fig4_runs_end_to_end(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "True" in out

    def test_fig1_runs_end_to_end(self, capsys):
        """fig1 renders a Gantt chart of a columnar hardness schedule."""
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "4-Partition" in out
        assert "█" in out  # the example Gantt rendering

    def test_no_arguments_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code != 0
        assert "experiment" in capsys.readouterr().err


class TestMainModule:
    """``python -m repro`` smoke invocations (the real module entry point)."""

    def _run(self, *args):
        src = Path(__file__).resolve().parents[2] / "src"
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )

    def test_module_help(self):
        proc = self._run("--help")
        assert proc.returncode == 0
        assert "Reproduce" in proc.stdout

    def test_module_runs_experiment(self):
        proc = self._run("fig1")
        assert proc.returncode == 0
        assert "Figure 1" in proc.stdout

    def test_module_unknown_experiment(self):
        proc = self._run("bogus")
        assert proc.returncode != 0
        assert "invalid choice" in proc.stderr
