"""Smoke/invariant tests for the experiment drivers (small parameters)."""

import pytest

from repro.experiments import (
    crossover_study,
    fig1_hardness,
    fig2_fig3_shelves,
    fig4_intervals,
    fptas_study,
    quality_study,
    table1,
)
from repro.experiments.common import Table, fit_power_law, geometric_levels, timed


class TestCommonHelpers:
    def test_timed(self):
        seconds, result = timed(lambda: sum(range(1000)))
        assert result == 499500
        assert seconds >= 0.0

    def test_table_render(self):
        table = Table("title", ["a", "b"], [])
        table.add(1, 2.5)
        out = table.render()
        assert "title" in out and "2.500" in out

    def test_geometric_levels(self):
        assert geometric_levels(2, 16) == [2, 4, 8, 16]
        with pytest.raises(ValueError):
            geometric_levels(0, 4)

    def test_fit_power_law(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x ** 2 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(2.0, abs=1e-6)
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])


class TestTable1:
    def test_rows_and_shape(self):
        rows = table1.run(
            n_values=(30, 60),
            m_values=(64, 128),
            eps_values=(0.3,),
            base_n=40,
            base_m=96,
            base_eps=0.3,
            seed=1,
        )
        assert set(rows) == set(table1.ALGORITHM_LABELS)
        for entries in rows.values():
            assert len(entries) == 5  # 2 n-values + 2 m-values + 1 eps-value
            assert all(r.seconds >= 0 for r in entries)
            assert all(r.accepted for r in entries)
        exps = table1.scaling_exponents(rows)
        assert set(exps) == set(table1.ALGORITHM_LABELS)


class TestFig1:
    def test_yes_instances_reproduce_figure(self):
        rows = fig1_hardness.run(group_sizes=(3, 4), seed=2)
        yes_rows = [r for r in rows if r.kind == "yes"]
        assert all(r.solved for r in yes_rows)
        assert all(r.jobs_per_machine_ok for r in yes_rows)
        assert all(r.machine_loads_ok for r in yes_rows)
        assert all(r.roundtrip_ok for r in yes_rows)

    def test_no_instances_unschedulable(self):
        rows = fig1_hardness.run(group_sizes=(3,), seed=3)
        no_rows = [r for r in rows if r.kind == "no"]
        assert all(not r.solved for r in no_rows)


class TestFig2Fig3:
    def test_three_shelf_always_valid(self):
        rows = fig2_fig3_shelves.run(cases=((25, 12), (50, 24)), seed=4)
        for row in rows:
            assert row.three_shelf_built
            assert row.makespan_within_bound
            assert row.simulator_ok
            # the 3-shelf schedule never uses more processors than available
            assert row.two_shelf_s1_procs <= row.m


class TestFig4:
    def test_bounds_hold(self):
        rows = fig4_intervals.run(capacities=(1000.0, 1e6), rhos=(0.1, 0.2), alpha_min=10.0)
        assert all(r.eq16_holds for r in rows)
        assert all(r.lemma14_holds for r in rows)


class TestFptasStudy:
    def test_within_guarantee(self):
        rows = fptas_study.run(
            n_values=(8, 16),
            m_values=(10 ** 5, 10 ** 7),
            eps_values=(0.1,),
            base_n=8,
            base_eps=0.1,
            seed=5,
        )
        assert rows
        assert all(r.within_guarantee for r in rows)


class TestQualityStudy:
    def test_guarantees_hold(self):
        rows = quality_study.run(
            eps=0.25,
            seed=6,
            tiny_cases=((4, 3),),
            planted_groups=(6,),
            random_cases=((20, 16),),
            algorithms=("two_approx", "mrt", "bounded"),
        )
        assert rows
        for row in rows:
            assert row.simulator_ok
            if row.within_guarantee is not None:
                assert row.within_guarantee
        summary = quality_study.summarize(rows)
        assert summary


class TestCrossoverStudy:
    def test_runs_and_reports(self):
        rows = crossover_study.run(n=30, eps=0.3, m_values=(32, 128), mrt_m_limit=1024, seed=7)
        assert len(rows) == 2
        assert all(r.mrt_seconds is not None for r in rows)
        exps = crossover_study.scaling_exponents(rows)
        assert "mrt" in exps and "compressible" in exps
