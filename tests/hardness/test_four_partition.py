"""Tests for 4-Partition instances, generators and the exact solver."""

import pytest

from repro.hardness.four_partition import (
    FourPartitionInstance,
    random_no_instance,
    random_yes_instance,
    solve_four_partition,
    verify_four_partition_solution,
)


class TestInstance:
    def test_basic_properties(self):
        inst = FourPartitionInstance((5, 5, 5, 5, 6, 6, 4, 4), 20)
        assert inst.groups == 2
        assert inst.is_balanced

    def test_multiple_of_four_required(self):
        with pytest.raises(ValueError):
            FourPartitionInstance((1, 2, 3), 6)

    def test_positive_numbers_required(self):
        with pytest.raises(ValueError):
            FourPartitionInstance((1, 2, 3, 0), 6)

    def test_strictness_check(self):
        # all numbers strictly between B/5=4 and B/3=6.67 -> strict
        strict = FourPartitionInstance((5, 5, 5, 5), 20)
        assert strict.is_strict
        loose = FourPartitionInstance((10, 4, 3, 3), 20)
        assert not loose.is_strict


class TestGenerators:
    @pytest.mark.parametrize("groups", [1, 2, 3, 5])
    def test_yes_instances_are_balanced_and_strict(self, groups):
        inst = random_yes_instance(groups, seed=groups)
        assert inst.groups == groups
        assert inst.is_balanced
        assert inst.is_strict

    def test_yes_instances_solvable(self):
        inst = random_yes_instance(4, seed=1)
        solution = solve_four_partition(inst)
        assert solution is not None
        assert verify_four_partition_solution(inst, solution)

    @pytest.mark.parametrize("groups", [2, 3, 4])
    def test_no_instances_unsolvable(self, groups):
        inst = random_no_instance(groups, seed=groups)
        assert solve_four_partition(inst) is None

    def test_generator_determinism(self):
        a = random_yes_instance(3, seed=7)
        b = random_yes_instance(3, seed=7)
        assert a.numbers == b.numbers

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            random_yes_instance(0)


class TestSolver:
    def test_tiny_yes_instance(self):
        inst = FourPartitionInstance((5, 5, 5, 5), 20)
        solution = solve_four_partition(inst)
        assert solution == [(0, 1, 2, 3)]

    def test_tiny_no_instance(self):
        inst = FourPartitionInstance((5, 5, 5, 6), 20)
        assert solve_four_partition(inst) is None

    def test_two_group_instance(self):
        inst = FourPartitionInstance((6, 6, 4, 4, 5, 5, 5, 5), 20)
        solution = solve_four_partition(inst)
        assert solution is not None
        assert verify_four_partition_solution(inst, solution)

    def test_unbalanced_shortcut(self):
        inst = FourPartitionInstance((1, 2, 3, 4), 100)
        assert solve_four_partition(inst) is None

    def test_size_limit(self):
        inst = random_yes_instance(10, seed=3)
        with pytest.raises(ValueError):
            solve_four_partition(inst, max_items=16)


class TestVerifier:
    def test_valid_solution(self):
        inst = FourPartitionInstance((6, 6, 4, 4, 5, 5, 5, 5), 20)
        assert verify_four_partition_solution(inst, [(0, 1, 2, 3), (4, 5, 6, 7)])

    def test_wrong_sum_rejected(self):
        inst = FourPartitionInstance((6, 6, 4, 4, 5, 5, 5, 5), 20)
        assert not verify_four_partition_solution(inst, [(0, 1, 2, 4), (3, 5, 6, 7)])

    def test_wrong_group_size_rejected(self):
        inst = FourPartitionInstance((5, 5, 5, 5), 20)
        assert not verify_four_partition_solution(inst, [(0, 1, 2)])

    def test_missing_index_rejected(self):
        inst = FourPartitionInstance((6, 6, 4, 4, 5, 5, 5, 5), 20)
        assert not verify_four_partition_solution(inst, [(0, 1, 2, 3)])
