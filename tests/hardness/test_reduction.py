"""Tests for the Theorem 1 reduction (4-Partition -> scheduling)."""

import pytest

from repro.core.bounds import trivial_lower_bound
from repro.core.validation import (
    assert_valid_schedule,
    is_monotone_work,
    is_nonincreasing_time,
)
from repro.hardness.four_partition import FourPartitionInstance, random_yes_instance, solve_four_partition
from repro.hardness.reduction import (
    ReductionJob,
    partition_from_schedule,
    reduce_to_scheduling,
    schedule_from_partition,
    verify_reduction,
)


class TestReductionJob:
    def test_processing_time_formula(self):
        job = ReductionJob(0, a=10, m_machines=4)
        assert job.processing_time(1) == pytest.approx(40.0)
        assert job.processing_time(3) == pytest.approx(38.0)

    def test_strict_monotony(self):
        """Eq. (1): the jobs are strictly monotone (for a >= 2)."""
        job = ReductionJob(0, a=5, m_machines=6)
        assert is_nonincreasing_time(job, 6)
        assert is_monotone_work(job, 6)
        works = [job.work(k) for k in range(1, 7)]
        assert all(b > a for a, b in zip(works, works[1:]))

    def test_invalid_a(self):
        with pytest.raises(ValueError):
            ReductionJob(0, a=0, m_machines=3)


class TestReduceToScheduling:
    def test_structure(self):
        inst = random_yes_instance(3, seed=0)
        reduced = reduce_to_scheduling(inst)
        assert reduced.m == 3
        assert len(reduced.jobs) == 12
        assert reduced.target_makespan == pytest.approx(reduced.m * inst.bound * reduced.scaling)

    def test_scaling_applied_when_numbers_small(self):
        inst = FourPartitionInstance((1, 1, 1, 1), 4)
        reduced = reduce_to_scheduling(inst)
        assert reduced.scaling == 2
        assert reduced.jobs[0].a == 2

    def test_jobs_are_monotone(self):
        inst = random_yes_instance(2, seed=1)
        reduced = reduce_to_scheduling(inst)
        for job in reduced.jobs:
            assert is_nonincreasing_time(job, reduced.m)
            assert is_monotone_work(job, reduced.m)

    def test_target_equals_work_lower_bound(self):
        """The reduction is tight: the area bound equals the target makespan
        exactly for balanced instances."""
        inst = random_yes_instance(4, seed=2)
        reduced = reduce_to_scheduling(inst)
        assert trivial_lower_bound(reduced.jobs, reduced.m) == pytest.approx(reduced.target_makespan)


class TestScheduleFromPartition:
    def test_yes_instance_round_trip(self):
        inst = random_yes_instance(4, seed=3)
        reduced = reduce_to_scheduling(inst)
        solution = solve_four_partition(inst)
        assert solution is not None
        schedule = schedule_from_partition(reduced, solution)
        assert_valid_schedule(schedule, reduced.jobs, max_makespan=reduced.target_makespan)
        assert schedule.makespan == pytest.approx(reduced.target_makespan)
        # every machine holds exactly four unit-processor jobs
        by_machine = {}
        for entry in schedule.entries:
            assert entry.processors == 1
            by_machine.setdefault(entry.spans[0][0], []).append(entry)
        assert all(len(v) == 4 for v in by_machine.values())

    def test_round_trip_back_to_partition(self):
        inst = random_yes_instance(3, seed=4)
        reduced = reduce_to_scheduling(inst)
        solution = solve_four_partition(inst)
        schedule = schedule_from_partition(reduced, solution)
        back = partition_from_schedule(reduced, schedule)
        from repro.hardness.four_partition import verify_four_partition_solution

        assert verify_four_partition_solution(inst, back)

    def test_invalid_partition_rejected(self):
        inst = random_yes_instance(2, seed=5)
        reduced = reduce_to_scheduling(inst)
        bad_groups = [(0, 1, 2, 3), (4, 5, 6, 7)]
        # the planted instance is shuffled, so this fixed grouping is almost
        # surely wrong; if it happens to be right, skip.
        from repro.hardness.four_partition import verify_four_partition_solution

        if verify_four_partition_solution(inst, bad_groups):
            pytest.skip("fixed grouping happened to be a valid partition")
        with pytest.raises(ValueError):
            schedule_from_partition(reduced, bad_groups)


class TestVerifyReduction:
    def test_yes_instance_report(self):
        inst = random_yes_instance(3, seed=6)
        report = verify_reduction(inst)
        assert report["is_yes"] is True
        assert report["schedulable"] is True
        assert report["roundtrip_ok"] is True

    def test_no_instance_report(self):
        from repro.hardness.four_partition import random_no_instance

        inst = random_no_instance(3, seed=7)
        report = verify_reduction(inst)
        assert report["is_yes"] is False
        assert report["schedulable"] is False
