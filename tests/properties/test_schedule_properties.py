"""Property-based tests for schedules, validation and list scheduling."""

from hypothesis import given, settings, strategies as st

from repro.core.allotment import Allotment
from repro.core.job import TabulatedJob
from repro.core.list_scheduling import list_schedule, list_schedule_bound
from repro.core.schedule import Schedule
from repro.core.validation import validate_schedule
from repro.simulator.engine import SimulationError, simulate_schedule


@st.composite
def rigid_instances(draw, max_jobs=8, max_m=6):
    """Jobs with constant processing time plus an explicit processor demand."""
    m = draw(st.integers(min_value=1, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    sizes = {}
    for i in range(n):
        duration = draw(st.floats(min_value=0.1, max_value=50.0))
        size = draw(st.integers(min_value=1, max_value=m))
        job = TabulatedJob(f"j{i}", [duration] * m)
        jobs.append(job)
        sizes[job] = size
    return jobs, Allotment(sizes), m


class TestListSchedulingProperties:
    @given(rigid_instances())
    @settings(max_examples=80, deadline=None)
    def test_always_feasible(self, instance):
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        report = validate_schedule(schedule, jobs)
        assert report.ok, report.violations

    @given(rigid_instances())
    @settings(max_examples=80, deadline=None)
    def test_factor_two_bound(self, instance):
        """makespan <= 2 * max(W/m, T_max) — the bound the 2-approximation needs."""
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        assert schedule.makespan <= list_schedule_bound(allot, m) * (1 + 1e-9)

    @given(rigid_instances())
    @settings(max_examples=60, deadline=None)
    def test_additive_bound_for_single_processor_jobs(self, instance):
        """For 1-processor jobs the classical additive Graham bound holds:
        makespan <= W/m + (1 - 1/m) T_max."""
        jobs, _, m = instance
        allot = Allotment({job: 1 for job in jobs})
        schedule = list_schedule(jobs, allot, m)
        bound = allot.average_load(m) + (1.0 - 1.0 / m) * allot.max_time()
        assert schedule.makespan <= bound * (1 + 1e-9)

    def test_additive_bound_fails_for_rigid_jobs(self):
        """Regression for the counterexample hypothesis found: five unit jobs
        with sizes (1,1,2,2,2) on three machines need makespan 4 while
        W/m + T_max = 11/3; only the factor-2 bound holds."""
        jobs = [TabulatedJob(f"j{i}", [1.0] * 3) for i in range(5)]
        sizes = [1, 1, 2, 2, 2]
        allot = Allotment({job: size for job, size in zip(jobs, sizes)})
        schedule = list_schedule(jobs, allot, 3)
        additive = allot.average_load(3) + allot.max_time()
        assert schedule.makespan > additive
        assert schedule.makespan <= list_schedule_bound(allot, 3) * (1 + 1e-9)

    @given(rigid_instances())
    @settings(max_examples=60, deadline=None)
    def test_peak_usage_within_m(self, instance):
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        assert schedule.peak_processor_usage() <= m

    @given(rigid_instances())
    @settings(max_examples=60, deadline=None)
    def test_simulator_agrees_with_validator(self, instance):
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        trace = simulate_schedule(schedule)  # must not raise
        assert abs(trace.makespan - schedule.makespan) < 1e-9

    @given(rigid_instances())
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_longest_job(self, instance):
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        assert schedule.makespan >= max(j.processing_time(allot[j]) for j in jobs) - 1e-9


class TestValidatorVsSimulatorConsistency:
    @given(rigid_instances(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_corrupted_schedules_caught_by_both(self, instance, data):
        """Shifting one job's start earlier either keeps the schedule valid for
        both checkers or invalid for both (they must agree)."""
        jobs, allot, m = instance
        schedule = list_schedule(jobs, allot, m)
        if len(schedule.entries) < 2:
            return
        idx = data.draw(st.integers(min_value=1, max_value=len(schedule.entries) - 1))
        entry = schedule.entries[idx]
        if entry.start <= 0:
            return
        shift = data.draw(st.floats(min_value=0.0, max_value=float(entry.start)))
        corrupted = Schedule(m=m)
        for i, e in enumerate(schedule.entries):
            corrupted.add(e.job, e.start - shift if i == idx else e.start, e.spans)
        validator_ok = validate_schedule(corrupted, jobs).ok
        try:
            simulate_schedule(corrupted)
            simulator_ok = True
        except SimulationError:
            simulator_ok = False
        assert validator_ok == simulator_ok
