"""Property-based tests (hypothesis) for job models and gamma."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.allotment import gamma
from repro.core.compression import compressed_count, is_compressible, verify_compression_lemma
from repro.core.job import AmdahlJob, PowerLawJob, TabulatedJob
from repro.core.validation import is_monotone_work, is_nonincreasing_time


# strategy: a valid monotone processing-time table built multiplicatively
@st.composite
def monotone_tables(draw, max_len=24):
    t1 = draw(st.floats(min_value=0.5, max_value=1000.0, allow_nan=False, allow_infinity=False))
    length = draw(st.integers(min_value=1, max_value=max_len))
    times = [t1]
    for k in range(1, length):
        # t(k+1) in [t(k) * k/(k+1), t(k)] keeps both monotony properties
        factor = draw(st.floats(min_value=k / (k + 1), max_value=1.0))
        times.append(times[-1] * factor)
    return times


@st.composite
def amdahl_jobs(draw):
    t1 = draw(st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False))
    f = draw(st.floats(min_value=0.0, max_value=1.0))
    return AmdahlJob("a", t1, f)


@st.composite
def power_jobs(draw):
    t1 = draw(st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False))
    alpha = draw(st.floats(min_value=0.0, max_value=1.0))
    return PowerLawJob("p", t1, alpha)


class TestMonotoneTableStrategy:
    @given(monotone_tables())
    @settings(max_examples=60, deadline=None)
    def test_generated_tables_are_monotone(self, times):
        job = TabulatedJob("t", times)
        assert is_nonincreasing_time(job, len(times))
        assert is_monotone_work(job, len(times))


class TestGammaProperties:
    @given(monotone_tables(), st.floats(min_value=0.01, max_value=2000.0))
    @settings(max_examples=80, deadline=None)
    def test_gamma_minimality(self, times, threshold):
        job = TabulatedJob("t", times)
        m = len(times)
        g = gamma(job, threshold, m)
        if g is None:
            assert job.processing_time(m) > threshold
        else:
            assert job.processing_time(g) <= threshold
            if g > 1:
                assert job.processing_time(g - 1) > threshold

    @given(amdahl_jobs(), st.floats(min_value=0.5, max_value=1e4), st.integers(min_value=1, max_value=10 ** 9))
    @settings(max_examples=60, deadline=None)
    def test_gamma_monotone_in_threshold(self, job, threshold, m):
        g1 = gamma(job, threshold, m)
        g2 = gamma(job, threshold * 2, m)
        if g1 is not None and g2 is not None:
            assert g2 <= g1


class TestAnalyticJobProperties:
    @given(amdahl_jobs(), st.integers(min_value=1, max_value=512))
    @settings(max_examples=80, deadline=None)
    def test_amdahl_monotone_work(self, job, k):
        assert job.work(k) <= job.work(k + 1) + 1e-9 * job.work(k + 1)
        assert job.processing_time(k + 1) <= job.processing_time(k) * (1 + 1e-12)

    @given(power_jobs(), st.integers(min_value=1, max_value=512))
    @settings(max_examples=80, deadline=None)
    def test_power_law_monotone_work(self, job, k):
        assert job.work(k) <= job.work(k + 1) + 1e-9 * job.work(k + 1)
        assert job.processing_time(k + 1) <= job.processing_time(k) * (1 + 1e-12)

    @given(amdahl_jobs(), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_speedup_bounded_by_k(self, job, k):
        assert job.speedup(k) <= k * (1 + 1e-9)


class TestCompressionProperties:
    @given(
        st.one_of(amdahl_jobs(), power_jobs()),
        st.integers(min_value=4, max_value=100_000),
        st.floats(min_value=0.01, max_value=0.25),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma4_holds_for_monotone_jobs(self, job, b, rho):
        if not is_compressible(b, rho):
            return
        assert verify_compression_lemma(job, b, rho)

    @given(st.integers(min_value=1, max_value=10 ** 6), st.floats(min_value=0.01, max_value=0.25))
    @settings(max_examples=100, deadline=None)
    def test_compressed_count_frees_processors(self, b, rho):
        new = compressed_count(b, rho)
        assert 1 <= new <= b
        if is_compressible(b, rho):
            # at least ceil(b * rho) - 1 processors freed (floor effects)
            assert b - new >= math.floor(b * rho) - 1
