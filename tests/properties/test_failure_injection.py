"""Failure injection: every class of schedule corruption must be caught.

The validator and the discrete-event simulator are the safety net for all
algorithms; these tests corrupt known-good schedules in specific ways and
assert that the corruption is detected (and that the *uncorrupted* schedule
still passes, so the tests cannot pass vacuously).
"""

import pytest

from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.core.validation import validate_schedule
from repro.simulator.engine import SimulationError, simulate_schedule
from repro.workloads.generators import random_mixed_instance


@pytest.fixture(scope="module")
def good_schedule():
    instance = random_mixed_instance(25, 16, seed=99)
    result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="bounded")
    assert validate_schedule(result.schedule, instance.jobs).ok
    return instance, result.schedule


def rebuild(schedule: Schedule, mutate) -> Schedule:
    """Copy a schedule, applying `mutate(index, entry) -> (start, spans, duration_override)`."""
    clone = Schedule(m=schedule.m, metadata=dict(schedule.metadata))
    for index, entry in enumerate(schedule.entries):
        start, spans, duration_override = mutate(index, entry)
        clone.add(entry.job, start, spans, duration_override=duration_override)
    return clone


class TestValidatorCatchesCorruption:
    def test_shifting_a_job_into_another_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        # find a job that starts strictly after another on the same machines
        target = max(range(len(schedule.entries)), key=lambda i: schedule.entries[i].start)
        if schedule.entries[target].start == 0:
            pytest.skip("all jobs start at 0 in this schedule")

        corrupted = rebuild(
            schedule,
            lambda i, e: (0.0 if i == target else e.start, e.spans, e.duration_override),
        )
        report = validate_schedule(corrupted, instance.jobs)
        # moving the last job to time 0 either conflicts or (rarely) still fits;
        # ensure the validator at least still terminates and flags conflicts when present
        if not report.ok:
            assert any("conflict" in v for v in report.violations)

    def test_dropping_a_job_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries[:-1]:
            clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        assert any("missing" in v for v in report.violations)

    def test_duplicating_a_job_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries:
            clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        first = schedule.entries[0]
        clone.add(first.job, schedule.makespan + 1.0, first.spans)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        assert any("times" in v for v in report.violations)

    def test_out_of_range_span_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        corrupted = rebuild(
            schedule,
            lambda i, e: (e.start, [(schedule.m, e.processors)] if i == 0 else e.spans, e.duration_override),
        )
        report = validate_schedule(corrupted, instance.jobs)
        assert not report.ok
        assert any("exceeds machine count" in v for v in report.violations)

    def test_understating_duration_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        corrupted = rebuild(
            schedule,
            lambda i, e: (e.start, e.spans, 1e-6 if i == 0 else e.duration_override),
        )
        report = validate_schedule(corrupted, instance.jobs)
        assert not report.ok
        assert any("understates" in v for v in report.violations)

    def test_overlapping_spans_between_jobs_caught_by_simulator_too(self, good_schedule):
        instance, schedule = good_schedule
        entries = schedule.sorted_by_start()
        # pick two jobs running concurrently and force them onto the same span
        concurrent = None
        for i, a in enumerate(entries):
            for b in entries[i + 1 :]:
                if b.start < a.end - 1e-9:
                    concurrent = (a, b)
                    break
            if concurrent:
                break
        if concurrent is None:
            pytest.skip("no concurrent pair in this schedule")
        a, b = concurrent
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries:
            if entry is b:
                clone.add(entry.job, entry.start, a.spans, duration_override=entry.duration_override)
            else:
                clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        with pytest.raises(SimulationError):
            simulate_schedule(clone)

    def test_uncorrupted_schedule_still_passes(self, good_schedule):
        instance, schedule = good_schedule
        assert validate_schedule(schedule, instance.jobs).ok
        simulate_schedule(schedule)
