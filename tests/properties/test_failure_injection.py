"""Failure injection: every class of schedule corruption must be caught.

The validator and the discrete-event simulator are the safety net for all
algorithms; these tests corrupt known-good schedules in specific ways and
assert that the corruption is detected (and that the *uncorrupted* schedule
still passes, so the tests cannot pass vacuously).
"""

import pytest

from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.core.validation import (
    BAD_DURATION,
    BAD_SPAN,
    CONFLICT,
    DUPLICATE_JOB,
    MISSING_JOB,
    Violation,
    validate_schedule,
)
from repro.simulator.engine import SimulationError, simulate_schedule
from repro.workloads.generators import random_mixed_instance


@pytest.fixture(scope="module")
def good_schedule():
    instance = random_mixed_instance(25, 16, seed=99)
    result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="bounded")
    assert validate_schedule(result.schedule, instance.jobs).ok
    return instance, result.schedule


def rebuild(schedule: Schedule, mutate) -> Schedule:
    """Copy a schedule, applying `mutate(index, entry) -> (start, spans, duration_override)`."""
    clone = Schedule(m=schedule.m, metadata=dict(schedule.metadata))
    for index, entry in enumerate(schedule.entries):
        start, spans, duration_override = mutate(index, entry)
        clone.add(entry.job, start, spans, duration_override=duration_override)
    return clone


class TestValidatorCatchesCorruption:
    def test_shifting_a_job_into_another_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        # guaranteed conflict: give one entry another entry's start *and*
        # machine spans — both run for a positive duration from the same
        # instant on the same machines, so they must overlap
        entries = schedule.entries
        assert len(entries) >= 2
        victim, mover = entries[0], entries[-1]
        assert victim is not mover

        corrupted = rebuild(
            schedule,
            lambda i, e: (
                (victim.start, victim.spans, None) if e is mover else (e.start, e.spans, e.duration_override)
            ),
        )
        report = validate_schedule(corrupted, instance.jobs)
        assert not report.ok
        assert report.has(CONFLICT), report.violations

    def test_dropping_a_job_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries[:-1]:
            clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        assert report.has(MISSING_JOB), report.codes

    def test_duplicating_a_job_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries:
            clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        first = schedule.entries[0]
        clone.add(first.job, schedule.makespan + 1.0, first.spans)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        assert report.has(DUPLICATE_JOB), report.codes

    def test_out_of_range_span_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        corrupted = rebuild(
            schedule,
            lambda i, e: (e.start, [(schedule.m, e.processors)] if i == 0 else e.spans, e.duration_override),
        )
        report = validate_schedule(corrupted, instance.jobs)
        assert not report.ok
        assert report.has(BAD_SPAN), report.codes

    def test_understating_duration_is_caught(self, good_schedule):
        instance, schedule = good_schedule
        corrupted = rebuild(
            schedule,
            lambda i, e: (e.start, e.spans, 1e-6 if i == 0 else e.duration_override),
        )
        report = validate_schedule(corrupted, instance.jobs)
        assert not report.ok
        assert report.has(BAD_DURATION), report.codes

    def test_overlapping_spans_between_jobs_caught_by_simulator_too(self, good_schedule):
        instance, schedule = good_schedule
        entries = schedule.sorted_by_start()
        # pick two jobs running concurrently and force them onto the same span
        concurrent = None
        for i, a in enumerate(entries):
            for b in entries[i + 1 :]:
                if b.start < a.end - 1e-9:
                    concurrent = (a, b)
                    break
            if concurrent:
                break
        if concurrent is None:
            pytest.skip("no concurrent pair in this schedule")
        a, b = concurrent
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries:
            if entry is b:
                clone.add(entry.job, entry.start, a.spans, duration_override=entry.duration_override)
            else:
                clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        assert report.has(CONFLICT), report.codes
        with pytest.raises(SimulationError):
            simulate_schedule(clone)

    def test_violations_are_strings_with_codes(self, good_schedule):
        """Violations stay plain strings (messages) while carrying codes."""
        instance, schedule = good_schedule
        clone = Schedule(m=schedule.m)
        for entry in schedule.entries[:-1]:
            clone.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        report = validate_schedule(clone, instance.jobs)
        assert not report.ok
        for v in report.violations:
            assert isinstance(v, str)
            assert isinstance(v, Violation)
            assert v.code == MISSING_JOB
            assert "missing" in v  # the human-readable message is intact
        assert report.codes == [MISSING_JOB]

    def test_uncorrupted_schedule_still_passes(self, good_schedule):
        instance, schedule = good_schedule
        assert validate_schedule(schedule, instance.jobs).ok
        simulate_schedule(schedule)
