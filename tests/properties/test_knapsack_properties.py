"""Property-based tests for the knapsack solvers."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.knapsack.bounded import binary_split
from repro.knapsack.compressible import geom, round_down_geom, round_up_geom, solve_compressible_knapsack
from repro.knapsack.dp import solve_knapsack, solve_knapsack_dense
from repro.knapsack.items import KnapsackItem
from repro.knapsack.multi import solve_knapsack_multi


@st.composite
def knapsack_instances(draw, max_items=9, max_size=15, max_profit=30):
    n = draw(st.integers(min_value=0, max_value=max_items))
    items = []
    for i in range(n):
        size = draw(st.integers(min_value=1, max_value=max_size))
        profit = draw(st.integers(min_value=0, max_value=max_profit))
        items.append(KnapsackItem(key=i, size=size, profit=float(profit)))
    capacity = draw(st.integers(min_value=0, max_value=max_items * max_size))
    return items, capacity


def brute_force(items, capacity):
    best = 0.0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            if sum(i.size for i in combo) <= capacity:
                best = max(best, sum(i.profit for i in combo))
    return best


class TestExactSolvers:
    @given(knapsack_instances())
    @settings(max_examples=60, deadline=None)
    def test_pairs_engine_is_optimal(self, instance):
        items, capacity = instance
        profit, chosen = solve_knapsack(items, capacity)
        assert abs(profit - brute_force(items, capacity)) < 1e-9
        assert sum(i.size for i in chosen) <= capacity
        assert abs(sum(i.profit for i in chosen) - profit) < 1e-9

    @given(knapsack_instances())
    @settings(max_examples=40, deadline=None)
    def test_dense_matches_pairs(self, instance):
        items, capacity = instance
        dense, _ = solve_knapsack_dense(items, capacity)
        pairs, _ = solve_knapsack(items, capacity)
        assert abs(dense - pairs) < 1e-9

    @given(knapsack_instances(), st.lists(st.integers(min_value=0, max_value=120), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_multi_capacity_consistent(self, instance, capacities):
        items, _ = instance
        results = solve_knapsack_multi(items, [float(c) for c in capacities])
        for cap in capacities:
            single, _ = solve_knapsack(items, float(cap))
            assert abs(results[float(cap)][0] - single) < 1e-9


class TestGeometricGrids:
    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e6),
        st.floats(min_value=1.01, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_down_within_factor(self, low, high, ratio):
        if high < low:
            low, high = high, low
        value = (low + high) / 2
        rounded = round_down_geom(value, low, high, ratio)
        assert rounded <= value * (1 + 1e-12)
        assert value <= rounded * ratio * (1 + 1e-9)

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=1e6),
        st.floats(min_value=1.01, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_up_within_factor(self, low, high, ratio):
        if high < low:
            low, high = high, low
        value = (low + high) / 2
        rounded = round_up_geom(value, low, high, ratio)
        assert rounded * (1 + 1e-12) >= min(value, max(geom(low, high, ratio)))
        assert rounded <= value * ratio * (1 + 1e-9)

    @given(st.integers(min_value=1, max_value=10 ** 9))
    @settings(max_examples=100, deadline=None)
    def test_binary_split_expresses_all_counts(self, count):
        parts = binary_split(count)
        assert sum(parts) == count
        assert len(parts) <= count.bit_length() + 1


@st.composite
def compressible_instances(draw):
    rho = draw(st.sampled_from([0.05, 0.1, 0.2, 0.25]))
    threshold = int(1.0 / rho)
    n = draw(st.integers(min_value=1, max_value=8))
    items = []
    compressible = set()
    for i in range(n):
        wide = draw(st.booleans())
        if wide:
            size = draw(st.integers(min_value=threshold, max_value=threshold * 6))
            compressible.add(i)
        else:
            size = draw(st.integers(min_value=1, max_value=threshold - 1))
        profit = float(draw(st.integers(min_value=0, max_value=40)))
        items.append(KnapsackItem(key=i, size=size, profit=profit))
    capacity = float(draw(st.integers(min_value=0, max_value=threshold * 12)))
    return items, compressible, capacity, rho


class TestAlgorithm2Properties:
    @given(compressible_instances())
    @settings(max_examples=60, deadline=None)
    def test_profit_dominates_uncompressed_optimum(self, instance):
        items, compressible, capacity, rho = instance
        solution = solve_compressible_knapsack(items, compressible, capacity, rho)
        exact = brute_force(items, capacity)
        assert solution.profit >= exact - 1e-9

    @given(compressible_instances())
    @settings(max_examples=60, deadline=None)
    def test_compressed_size_feasible(self, instance):
        items, compressible, capacity, rho = instance
        solution = solve_compressible_knapsack(items, compressible, capacity, rho)
        assert solution.compressed_size() <= capacity * (1 + 1e-9) + 1e-9
