"""Property-based end-to-end guarantees of the scheduling algorithms.

These are the strongest tests in the suite: random monotone instances are
generated (with a valid-by-construction speedup profile), every algorithm is
run, and the invariants claimed by the paper are asserted:

* every produced schedule is feasible (validator + simulator);
* the makespan respects the algorithm's guarantee relative to the exact
  optimum on tiny instances;
* the dual algorithms never reject a target that the exact optimum shows to be
  feasible.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bounded_algorithm import bounded_dual
from repro.core.compressible_algorithm import compressible_dual
from repro.core.exact_small import exact_makespan
from repro.core.fptas import fptas_schedule
from repro.core.job import TabulatedJob
from repro.core.mrt import mrt_dual
from repro.core.scheduler import schedule_moldable
from repro.core.validation import validate_schedule
from repro.simulator.engine import simulate_schedule
from repro.workloads.speedup_models import random_monotone_speedup


@st.composite
def tiny_monotone_instances(draw, max_jobs=4, max_m=4):
    m = draw(st.integers(min_value=1, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        t1 = float(rng.uniform(1.0, 50.0))
        speedup = random_monotone_speedup(m, rng)
        jobs.append(TabulatedJob(f"j{i}", [t1 / s for s in speedup]))
    return jobs, m


@st.composite
def medium_monotone_instances(draw, max_jobs=25, max_m=24):
    m = draw(st.integers(min_value=2, max_value=max_m))
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        t1 = float(rng.uniform(0.5, 100.0))
        speedup = random_monotone_speedup(m, rng)
        jobs.append(TabulatedJob(f"j{i}", [t1 / s for s in speedup]))
    return jobs, m


class TestFeasibilityProperties:
    @given(medium_monotone_instances(), st.sampled_from(["two_approx", "mrt", "compressible", "bounded", "bounded_linear"]))
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms_feasible(self, instance, algorithm):
        jobs, m = instance
        result = schedule_moldable(jobs, m, 0.3, algorithm=algorithm, validate=False)
        report = validate_schedule(result.schedule, jobs)
        assert report.ok, report.violations
        simulate_schedule(result.schedule)

    @given(medium_monotone_instances())
    @settings(max_examples=25, deadline=None)
    def test_fptas_feasible_when_applicable(self, instance):
        jobs, m = instance
        eps = 0.5
        big_m = max(m, int(8 * len(jobs) / eps) + 1)
        result = fptas_schedule(jobs, big_m, eps)
        report = validate_schedule(result.schedule, jobs)
        assert report.ok, report.violations


class TestGuaranteeProperties:
    @given(tiny_monotone_instances(), st.sampled_from(["mrt", "compressible", "bounded", "bounded_linear"]))
    @settings(max_examples=30, deadline=None)
    def test_three_halves_guarantee_vs_exact(self, instance, algorithm):
        jobs, m = instance
        eps = 0.3
        opt = exact_makespan(jobs, m)
        result = schedule_moldable(jobs, m, eps, algorithm=algorithm, validate=False)
        assert result.makespan <= (1.5 + eps) * opt * (1 + 1e-6)

    @given(tiny_monotone_instances())
    @settings(max_examples=30, deadline=None)
    def test_two_approx_guarantee_vs_exact(self, instance):
        jobs, m = instance
        opt = exact_makespan(jobs, m)
        result = schedule_moldable(jobs, m, algorithm="two_approx", validate=False)
        assert result.makespan <= 2.0 * opt * (1 + 1e-6)


class TestDualCompleteness:
    @given(tiny_monotone_instances(), st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_mrt_dual_accepts_feasible_targets(self, instance, factor):
        jobs, m = instance
        opt = exact_makespan(jobs, m)
        schedule = mrt_dual(jobs, m, opt * factor)
        assert schedule is not None
        assert schedule.makespan <= 1.5 * opt * factor * (1 + 1e-9)

    @given(tiny_monotone_instances(), st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_compressible_dual_accepts_feasible_targets(self, instance, factor):
        jobs, m = instance
        eps = 0.3
        opt = exact_makespan(jobs, m)
        schedule = compressible_dual(jobs, m, opt * factor, eps)
        assert schedule is not None
        assert schedule.makespan <= (1.5 + eps) * opt * factor * (1 + 1e-9)

    @given(tiny_monotone_instances(), st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_bounded_dual_accepts_feasible_targets(self, instance, factor):
        jobs, m = instance
        eps = 0.3
        opt = exact_makespan(jobs, m)
        schedule = bounded_dual(jobs, m, opt * factor, eps)
        assert schedule is not None
        assert schedule.makespan <= (1.5 + eps) * opt * factor * (1 + 1e-9)
