"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import AmdahlJob, PowerLawJob, TabulatedJob
from repro.workloads.generators import random_mixed_instance


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_mixed_instance():
    """A small mixed workload used by many algorithm tests (n=20, m=24)."""
    return random_mixed_instance(20, 24, seed=42)


@pytest.fixture
def medium_mixed_instance():
    """A medium mixed workload (n=60, m=64)."""
    return random_mixed_instance(60, 64, seed=7)


@pytest.fixture
def simple_jobs():
    """Three hand-constructed monotone jobs with easy-to-reason-about values."""
    return [
        TabulatedJob("seq", [10.0]),                      # never speeds up
        AmdahlJob("amdahl", t1=40.0, serial_fraction=0.1),
        PowerLawJob("power", t1=30.0, alpha=0.8),
    ]


def assert_within(value: float, bound: float, *, rel: float = 1e-6, msg: str = ""):
    assert value <= bound * (1.0 + rel) + 1e-9, msg or f"{value} exceeds bound {bound}"
