"""Fault-aware replay: fates, preserved work, truncated traces."""

import pytest

from repro.core.job import AmdahlJob
from repro.core.schedule import Schedule
from repro.resilience import (
    FATE_CONTINUING,
    FATE_FINISHED,
    FATE_LOST,
    FaultPlan,
    JobKill,
    MachineFailure,
    execute_with_faults,
)
from repro.simulator.engine import simulate_schedule


def constant_job(name: str, t: float) -> AmdahlJob:
    """serial_fraction=1 makes t(k) == t for every k — fully predictable."""
    return AmdahlJob(name, t1=t, serial_fraction=1.0)


@pytest.fixture()
def abc_schedule():
    """A on machines 0-1 [0,10), B on 2-3 [0,10), C on 0-1 [10,20)."""
    a, b, c = (constant_job(x, 10.0) for x in "ABC")
    sched = Schedule(m=4)
    sched.add(a, 0.0, [(0, 2)])
    sched.add(b, 0.0, [(2, 2)])
    sched.add(c, 10.0, [(0, 2)])
    return sched


class TestReplay:
    def test_no_faults_everything_completes(self, abc_schedule):
        ex = execute_with_faults(abc_schedule, FaultPlan(m=4))
        assert len(ex.completed) == 3 and not ex.lost and not ex.killed
        assert ex.work_completed == abc_schedule.total_work
        assert ex.work_lost == 0.0
        assert ex.unfinished_jobs == []

    def test_failure_cuts_running_job_and_strands_queued_one(self, abc_schedule):
        plan = FaultPlan(m=4, failures=(MachineFailure(time=5.0, first=0, count=2),))
        ex = execute_with_faults(abc_schedule, plan)
        assert [e.job.name for e in ex.completed] == ["B"]
        by_name = {r.job_name: r for r in ex.lost}
        # A ran [0,5) on the failed machines: 2 procs * 5 time units lost
        assert by_name["A"].cut == 5.0 and by_name["A"].work_lost == 10.0
        assert by_name["A"].cause == "failure"
        # C was scheduled at t=10 on machines that are down forever: it
        # never launches, losing zero work
        assert by_name["C"].cut == 10.0 and by_name["C"].work_lost == 0.0
        assert sorted(ex.unfinished_jobs) == ["A", "C"]
        (epoch,) = ex.epochs
        assert epoch.time == 5.0
        assert epoch.fates == {"A": FATE_LOST, "B": FATE_CONTINUING, "C": FATE_LOST}
        assert epoch.available_after == 2

    def test_transient_failure_spares_later_jobs(self, abc_schedule):
        plan = FaultPlan(
            m=4, failures=(MachineFailure(time=2.0, first=0, count=2, repair_time=3.0),)
        )
        ex = execute_with_faults(abc_schedule, plan)
        # A dies at t=2; the machines are back at t=5, so C (start 10) runs
        assert sorted(e.job.name for e in ex.completed) == ["B", "C"]
        assert [r.job_name for r in ex.lost] == ["A"]
        assert ex.lost[0].cut == 2.0

    def test_kill_discards_partial_work(self, abc_schedule):
        plan = FaultPlan(m=4, kills=(JobKill(time=4.0, job="B"),))
        ex = execute_with_faults(abc_schedule, plan)
        assert ex.killed == ["B"]
        assert [r.job_name for r in ex.lost] == ["B"]
        assert ex.lost[0].cause == "kill" and ex.lost[0].work_lost == 8.0
        assert sorted(e.job.name for e in ex.completed) == ["A", "C"]
        assert ex.unfinished_jobs == []  # killed jobs don't need recovery

    def test_kill_after_completion_is_noop(self, abc_schedule):
        plan = FaultPlan(m=4, kills=(JobKill(time=12.0, job="B"),))
        ex = execute_with_faults(abc_schedule, plan)
        assert not ex.killed and not ex.lost
        assert len(ex.completed) == 3
        (epoch,) = ex.epochs
        assert epoch.fates["B"] == FATE_FINISHED

    def test_unknown_kill_target_rejected(self, abc_schedule):
        with pytest.raises(ValueError, match="unknown job"):
            execute_with_faults(abc_schedule, FaultPlan(m=4, kills=(JobKill(time=1.0, job="Z"),)))

    def test_plan_machine_count_must_match(self, abc_schedule):
        with pytest.raises(ValueError, match="m="):
            execute_with_faults(abc_schedule, FaultPlan(m=8))


class TestTraceSchedule:
    def test_trace_preserves_completed_and_truncates_lost(self, abc_schedule):
        plan = FaultPlan(m=4, failures=(MachineFailure(time=5.0, first=0, count=2),))
        trace = execute_with_faults(abc_schedule, plan).trace_schedule()
        by_name = {e.job.name: e for e in trace.entries}
        # C never launched: omitted entirely
        assert set(by_name) == {"A", "B"}
        assert by_name["A"].duration == 5.0  # truncated at the failure
        assert by_name["B"].duration == 10.0
        # the simulator replays the truncated trace (both backends agree)
        t_auto = simulate_schedule(trace)
        t_scalar = simulate_schedule(trace, backend="scalar")
        assert t_auto.makespan == t_scalar.makespan == 10.0

    def test_completed_schedule_contains_only_finished_runs(self, abc_schedule):
        plan = FaultPlan(m=4, failures=(MachineFailure(time=5.0, first=0, count=2),))
        done = execute_with_faults(abc_schedule, plan).completed_schedule()
        assert [e.job.name for e in done.entries] == ["B"]
        assert done.makespan == 10.0
