"""Recovery loop: stitched schedules, degradation accounting, warm starts."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bounds import trivial_lower_bound
from repro.core.schedule import MAX_COLUMNAR_M
from repro.core.validation import validate_schedule
from repro.resilience import (
    FaultPlan,
    JobKill,
    MachineFailure,
    RecoveryError,
    random_fault_plan,
    recover_with_faults,
)
from repro.resilience.executor import spans_hit
from repro.simulator.engine import simulate_schedule
from repro.workloads.generators import random_mixed_instance

from .test_executor import constant_job


def _no_entry_runs_on_down_machines(schedule, plan):
    """Every stitched entry's run window must avoid every failure's down
    window on the machines it occupies."""
    for entry in schedule.entries:
        for f in plan.failures:
            if spans_hit(entry.spans, f):
                assert not (
                    f.time < entry.end - 1e-9 and f.down_until > entry.start + 1e-9
                ), (entry.job.name, entry.start, entry.end, f)


class TestRecoveryDeterministic:
    def test_empty_plan_reproduces_fault_free_schedule(self):
        inst = random_mixed_instance(12, 16, seed=3)
        res = recover_with_faults(inst.jobs, 16, FaultPlan(m=16), eps=0.25, algorithm="bounded")
        assert res.makespan == res.fault_free.schedule.makespan
        assert res.report.replans == 0
        assert res.report.makespan_regret == 0.0
        assert not res.killed and not res.lost

    def test_permanent_failure_replans_on_survivors(self):
        a, b, c = (constant_job(x, 10.0) for x in "ABC")
        # m=2: the fault-free plan runs jobs with some parallelism; machine 0
        # dies at t=5 and everything left must finish on machine 1
        plan = FaultPlan(m=2, failures=(MachineFailure(time=5.0, first=0, count=1),))
        res = recover_with_faults([a, b, c], 2, plan, eps=0.25, algorithm="two_approx")
        v = validate_schedule(res.schedule, [a, b, c])
        assert v.ok, v.violations
        _no_entry_runs_on_down_machines(res.schedule, plan)
        assert res.report.machines_lost == 1
        assert res.report.replans >= 1
        assert res.report.makespan_regret >= 0.0

    def test_kill_removes_job_from_stitched_schedule(self):
        inst = random_mixed_instance(10, 8, seed=4)
        victim = inst.jobs[0].name
        plan = FaultPlan(m=8, kills=(JobKill(time=0.0, job=victim),))
        res = recover_with_faults(inst.jobs, 8, plan, eps=0.25, algorithm="bounded")
        assert res.killed == [victim]
        names = [e.job.name for e in res.schedule.entries]
        assert victim not in names
        assert sorted(names) == sorted(j.name for j in inst.jobs if j.name != victim)
        assert validate_schedule(res.schedule, res.survivors).ok

    def test_transient_failure_machines_get_reused_after_repair(self):
        jobs = [constant_job(f"j{i}", 10.0) for i in range(6)]
        plan = FaultPlan(
            m=4, failures=(MachineFailure(time=1.0, first=1, count=3, repair_time=5.0),)
        )
        res = recover_with_faults(jobs, 4, plan, eps=0.25, algorithm="two_approx")
        assert validate_schedule(res.schedule, jobs).ok
        _no_entry_runs_on_down_machines(res.schedule, plan)
        # two epochs: the failure and the repair; both re-plan
        assert res.report.replans == 2
        # after the repair some entry runs on a repaired machine again
        assert any(
            entry.start >= 6.0 and any(first < 4 and first + c > 1 for first, c in entry.spans)
            for entry in res.schedule.entries
        )

    def test_mismatched_plan_m_rejected(self):
        inst = random_mixed_instance(4, 8, seed=1)
        with pytest.raises(ValueError, match="m="):
            recover_with_faults(inst.jobs, 16, FaultPlan(m=8))

    def test_unknown_kill_rejected(self):
        inst = random_mixed_instance(4, 8, seed=1)
        plan = FaultPlan(m=8, kills=(JobKill(time=1.0, job="nope"),))
        with pytest.raises(ValueError, match="unknown job"):
            recover_with_faults(inst.jobs, 8, plan)

    def test_all_machines_down_raises_recovery_error(self):
        jobs = [constant_job("a", 10.0)]
        plan = FaultPlan(m=2, failures=(MachineFailure(time=1.0, first=0, count=2),))
        with pytest.raises(RecoveryError, match="no machines"):
            recover_with_faults(jobs, 2, plan, algorithm="two_approx")

    def test_warm_and_cold_replans_are_bit_identical(self):
        inst = random_mixed_instance(20, 32, seed=9)
        names = [j.name for j in inst.jobs]
        horizon = 1.5 * trivial_lower_bound(inst.jobs, 32)
        plan = random_fault_plan(names, 32, seed=17, failures=3, kills=1, horizon=horizon)
        warm = recover_with_faults(inst.jobs, 32, plan, eps=0.25, algorithm="two_approx")
        cold = recover_with_faults(
            inst.jobs, 32, plan, eps=0.25, algorithm="two_approx", warm_start=False
        )
        assert warm.makespan == cold.makespan
        assert warm.report.replans == cold.report.replans
        assert [e.start for e in warm.schedule.entries] == [e.start for e in cold.schedule.entries]
        assert [e.spans for e in warm.schedule.entries] == [e.spans for e in cold.schedule.entries]
        # the whole point: warm re-plans probe strictly less
        assert warm.report.gamma_probes < cold.report.gamma_probes

    def test_fptas_falls_back_when_survivor_count_leaves_regime(self):
        # fptas needs m >= 8n/eps; keep it valid fault-free, then kill enough
        # machines that the regime breaks and the loop must fall back
        inst = random_mixed_instance(3, 512, seed=2)
        plan = FaultPlan(m=512, failures=(MachineFailure(time=0.5, first=16, count=496),))
        res = recover_with_faults(inst.jobs, 512, plan, eps=0.5, algorithm="fptas")
        assert validate_schedule(res.schedule, inst.jobs).ok
        assert any(e.replan_algorithm == "bounded" for e in res.report.epochs)

    def test_astronomical_machine_counts(self):
        # compact-encoding regime: m far beyond the columnar/vectorized caps;
        # the whole loop (interval arithmetic, remapping, scalar drivers)
        # must stay exact on python ints
        m = MAX_COLUMNAR_M + 1000
        inst = random_mixed_instance(4, 64, seed=5)
        plan = FaultPlan(m=m, failures=(MachineFailure(time=1.0, first=0, count=m - 7),))
        res = recover_with_faults(inst.jobs, m, plan, eps=0.5, algorithm="two_approx")
        assert validate_schedule(res.schedule, inst.jobs).ok
        _no_entry_runs_on_down_machines(res.schedule, plan)
        # post-failure entries live on the 7 surviving machines [m-7, m)
        late = [e for e in res.schedule.entries if e.start >= 1.0]
        assert late, "the failure must force at least one re-planned entry"
        for e in late:
            assert all(first >= m - 7 for first, _ in e.spans)

    def test_degradation_report_summary_lines(self):
        inst = random_mixed_instance(8, 8, seed=6)
        names = [j.name for j in inst.jobs]
        horizon = 1.5 * trivial_lower_bound(inst.jobs, 8)
        plan = random_fault_plan(names, 8, seed=1, failures=2, kills=1, horizon=horizon)
        res = recover_with_faults(inst.jobs, 8, plan, eps=0.25)
        lines = res.report.summary_lines()
        assert any("recovered makespan" in line for line in lines)
        assert any("re-plans" in line for line in lines)


class TestRecoveryEndToEndProperty:
    """The ISSUE acceptance property: every fuzzed (instance, FaultPlan)
    yields a stitched schedule that validates on the surviving machines and
    completes every non-killed job exactly once."""

    @given(
        n=st.integers(min_value=1, max_value=12),
        m=st.sampled_from([1, 2, 4, 8, 24, 64]),
        eps=st.sampled_from([0.1, 0.25, 0.5]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        algorithm=st.sampled_from(["two_approx", "bounded", "auto"]),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_recovery_end_to_end(self, n, m, eps, seed, algorithm):
        inst = random_mixed_instance(n, m, seed=seed)
        names = [j.name for j in inst.jobs]
        horizon = 1.5 * trivial_lower_bound(inst.jobs, m)
        plan = random_fault_plan(names, m, seed=seed ^ 0x5EED, horizon=max(horizon, 1.0))
        res = recover_with_faults(inst.jobs, m, plan, eps=eps, algorithm=algorithm)

        survivors = [j for j in inst.jobs if j.name not in set(res.killed)]
        verdict = validate_schedule(res.schedule, survivors)
        assert verdict.ok, verdict.violations
        # exactly-once completion for every non-killed job
        scheduled = sorted(e.job.name for e in res.schedule.entries)
        assert scheduled == sorted(j.name for j in survivors)
        # nothing ever runs on a down machine
        _no_entry_runs_on_down_machines(res.schedule, plan)
        # the independent simulator accepts the stitched schedule
        trace = simulate_schedule(res.schedule, backend="scalar")
        assert trace.makespan == res.schedule.makespan
        # degradation accounting is internally consistent
        assert res.report.jobs_killed == len(res.killed)
        assert res.report.work_lost >= 0.0
        assert res.report.replans == len(res.report.replan_latencies)
