"""FaultPlan: interval arithmetic, serialisation, random generation."""

import pytest

from repro.resilience.faults import FaultPlan, JobKill, MachineFailure, random_fault_plan


class TestMachineFailure:
    def test_permanent_vs_transient(self):
        perm = MachineFailure(time=5.0, first=0, count=2)
        assert perm.permanent and perm.down_until == float("inf")
        trans = MachineFailure(time=5.0, first=0, count=2, repair_time=3.0)
        assert not trans.permanent and trans.down_until == 8.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MachineFailure(time=-1.0, first=0)
        with pytest.raises(ValueError):
            MachineFailure(time=0.0, first=0, count=0)
        with pytest.raises(ValueError):
            MachineFailure(time=0.0, first=-1)
        with pytest.raises(ValueError):
            MachineFailure(time=0.0, first=0, repair_time=0.0)
        with pytest.raises(ValueError):
            JobKill(time=-0.5, job="a")

    def test_span_must_fit_machine_count(self):
        with pytest.raises(ValueError):
            FaultPlan(m=4, failures=(MachineFailure(time=1.0, first=3, count=2),))


class TestAvailability:
    def test_down_window_is_half_open(self):
        plan = FaultPlan(m=4, failures=(MachineFailure(time=2.0, first=1, count=2, repair_time=3.0),))
        assert plan.available_count(1.9) == 4
        assert plan.available_count(2.0) == 2  # failure instant counts as down
        assert plan.available_count(4.9) == 2
        assert plan.available_count(5.0) == 4  # repair instant counts as up

    def test_overlapping_failures_union(self):
        plan = FaultPlan(
            m=10,
            failures=(
                MachineFailure(time=1.0, first=2, count=4),
                MachineFailure(time=2.0, first=4, count=4),
            ),
        )
        assert plan.down_intervals(3.0) == [(2, 8)]
        assert plan.available_intervals(3.0) == [(0, 2), (8, 10)]
        assert plan.available_count(3.0) == 4
        assert plan.machines_lost_forever() == 6

    def test_epochs_include_repairs(self):
        plan = FaultPlan(
            m=4,
            failures=(MachineFailure(time=2.0, first=0, count=1, repair_time=3.0),),
            kills=(JobKill(time=7.0, job="x"),),
        )
        assert plan.epochs() == [2.0, 5.0, 7.0]
        at2 = plan.events_at(2.0)
        assert len(at2["failures"]) == 1 and not at2["repairs"] and not at2["kills"]
        at5 = plan.events_at(5.0)
        assert len(at5["repairs"]) == 1 and not at5["failures"]
        assert plan.events_at(7.0)["kills"][0].job == "x"

    def test_huge_machine_counts_stay_exact(self):
        m = (1 << 62) + 12345
        plan = FaultPlan(m=m, failures=(MachineFailure(time=1.0, first=m - 10, count=10),))
        assert plan.available_count(2.0) == m - 10
        assert plan.available_intervals(2.0) == [(0, m - 10)]


class TestSerialisation:
    def test_roundtrip(self):
        plan = FaultPlan(
            m=8,
            failures=(
                MachineFailure(time=1.5, first=0, count=3, repair_time=2.0),
                MachineFailure(time=4.0, first=5, count=2),
            ),
            kills=(JobKill(time=2.5, job="job-3"),),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_sorted_on_construction(self):
        plan = FaultPlan(
            m=8,
            failures=(
                MachineFailure(time=4.0, first=0),
                MachineFailure(time=1.0, first=2),
            ),
            kills=(JobKill(time=9.0, job="b"), JobKill(time=3.0, job="a")),
        )
        assert [f.time for f in plan.failures] == [1.0, 4.0]
        assert [k.time for k in plan.kills] == [3.0, 9.0]


class TestRandomFaultPlan:
    def test_deterministic_in_seed(self):
        names = [f"j{i}" for i in range(20)]
        a = random_fault_plan(names, 16, seed=5, horizon=100.0)
        b = random_fault_plan(names, 16, seed=5, horizon=100.0)
        assert a == b
        c = random_fault_plan(names, 16, seed=6, horizon=100.0)
        assert a != c  # overwhelmingly likely

    @pytest.mark.parametrize("m", [1, 2, 7, 64])
    def test_min_alive_guarantee(self, m):
        names = [f"j{i}" for i in range(10)]
        for seed in range(30):
            plan = random_fault_plan(names, m, seed=seed, failures=4, kills=1, horizon=50.0)
            for t in plan.epochs():
                assert plan.available_count(t) >= 1, (m, seed, t)

    def test_kills_reference_real_jobs(self):
        names = ["a", "b", "c"]
        plan = random_fault_plan(names, 8, seed=3, failures=1, kills=2, horizon=10.0)
        assert all(k.job in names for k in plan.kills)
        assert len({k.job for k in plan.kills}) == len(plan.kills)

    def test_no_kills_without_jobs(self):
        plan = random_fault_plan([], 8, seed=3, failures=1, kills=2, horizon=10.0)
        assert plan.kills == ()
