"""Units for the pure-data serving policies: backoff, ladder, chaos, deadlines."""

import time

import pytest

from repro.serve import ChaosPolicy, DEFAULT_LADDER, Deadline, LadderStep, ServePolicy


class TestLadder:
    def test_default_ladder_fast_to_conservative(self):
        assert DEFAULT_LADDER[0] == LadderStep(
            backend="vectorized", list_backend="event_queue_indexed"
        )
        assert DEFAULT_LADDER[-1].algorithm == "two_approx"
        # only the last rung changes the algorithm (result-changing
        # degradation); everything above trades speed only
        assert all(step.algorithm is None for step in DEFAULT_LADDER[:-1])

    def test_labels(self):
        assert DEFAULT_LADDER[0].label == "vectorized+event_queue_indexed"
        assert DEFAULT_LADDER[2].label == "scalar"
        assert DEFAULT_LADDER[3].label == "scalar+algorithm=two_approx"

    def test_step_round_trips(self):
        for step in DEFAULT_LADDER:
            assert LadderStep.from_dict(step.to_dict()) == step

    def test_policy_step_clamps_past_the_last_rung(self):
        policy = ServePolicy()
        assert policy.step(0) is DEFAULT_LADDER[0]
        assert policy.step(len(DEFAULT_LADDER) + 5) is DEFAULT_LADDER[-1]

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            ServePolicy(ladder=())


class TestBackoff:
    def test_deterministic_per_instance_and_attempt(self):
        a = ServePolicy(seed=3).backoff("inst-1", 2)
        b = ServePolicy(seed=3).backoff("inst-1", 2)
        assert a == b
        assert ServePolicy(seed=3).backoff("inst-2", 2) != a
        assert ServePolicy(seed=4).backoff("inst-1", 2) != a

    def test_exponential_with_cap(self):
        policy = ServePolicy(backoff_base=0.1, backoff_cap=0.4, backoff_jitter=0.0)
        assert policy.backoff("x", 0) == pytest.approx(0.1)
        assert policy.backoff("x", 1) == pytest.approx(0.2)
        assert policy.backoff("x", 2) == pytest.approx(0.4)
        assert policy.backoff("x", 10) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_and_nonnegative(self):
        policy = ServePolicy(backoff_base=0.1, backoff_cap=2.0, backoff_jitter=0.5)
        for attempt in range(6):
            delay = policy.backoff("inst", attempt)
            base = min(0.1 * 2.0 ** attempt, 2.0)
            assert base <= delay <= base * 1.5

    def test_zero_base_means_no_delay(self):
        assert ServePolicy(backoff_base=0.0).backoff("inst", 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServePolicy(timeout=0.0)
        with pytest.raises(ValueError):
            ServePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ServePolicy(backoff_base=-0.1)


class TestChaos:
    def test_draw_deterministic(self):
        chaos = ChaosPolicy(seed=9, kill_prob=0.3, hang_prob=0.3, raise_prob=0.3)
        draws = [chaos.draw(f"i-{k}", a) for k in range(40) for a in range(3)]
        again = [chaos.draw(f"i-{k}", a) for k in range(40) for a in range(3)]
        assert draws == again
        assert set(draws) <= {"kill", "hang", "raise", None}
        # at 90% total probability all three kinds actually appear
        assert {"kill", "hang", "raise"} <= set(draws)

    def test_zero_probability_is_always_clean(self):
        chaos = ChaosPolicy(seed=1)
        assert all(chaos.draw(f"i-{k}", 0) is None for k in range(50))

    def test_attempt_limit_protects_retries(self):
        chaos = ChaosPolicy(seed=1, kill_prob=1.0, attempts=1)
        assert chaos.draw("inst", 0) == "kill"
        assert chaos.draw("inst", 1) is None
        assert chaos.draw("inst", 5) is None

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ChaosPolicy(kill_prob=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(kill_prob=0.6, hang_prob=0.6)
        with pytest.raises(ValueError):
            ChaosPolicy(hang_seconds=0.0)

    def test_to_dict_mentions_every_knob(self):
        data = ChaosPolicy(seed=2, kill_prob=0.1).to_dict()
        assert data["seed"] == 2 and data["kill_prob"] == 0.1
        assert set(data) == {
            "seed", "kill_prob", "hang_prob", "raise_prob", "attempts",
            "mid_solve", "hang_seconds", "fire_after_probes",
        }


class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining() == float("inf")

    def test_expiry(self):
        deadline = Deadline(0.01)
        assert deadline.remaining() <= 0.01
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() == 0.0  # clamped, never negative

    def test_fresh_deadline_not_expired(self):
        assert not Deadline(60.0).expired

    def test_nan_seconds_rejected(self):
        """NaN passes a naive ``seconds < 0`` check and would build a
        deadline that never expires — it must be rejected up front."""
        with pytest.raises(ValueError, match="deadline seconds"):
            Deadline(float("nan"))
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestNaNHardening:
    def test_nan_timeout_rejected(self):
        """A NaN timeout would silently disable deadline enforcement (NaN
        fails every comparison, including ``<= 0``)."""
        with pytest.raises(ValueError, match="timeout must be positive"):
            ServePolicy(timeout=float("nan"))

    def test_mega_batch_size_validation(self):
        assert ServePolicy().mega_batch_size == 1
        assert ServePolicy(mega_batch_size=8).mega_batch_size == 8
        with pytest.raises(ValueError, match="mega_batch_size"):
            ServePolicy(mega_batch_size=0)
