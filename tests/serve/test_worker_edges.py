"""Worker-death, mid-solve timeout, spawn pickling and journal-resume edges.

These are the failure modes the dispatcher must survive *deterministically*:
chaos is seeded and limited to the first attempt, so every test proves both
the failure and the recovery path.
"""

import json

import pytest

from repro import schedule_moldable
from repro.serve import (
    ChaosPolicy,
    FleetInstance,
    ServePolicy,
    schedule_many,
)
from repro.workloads.generators import (
    random_bimodal_instance,
    random_chain_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
    random_quantized_instance,
)


def _fleet(count, n=12, m=24, algorithm="two_approx", seed0=300):
    return [
        FleetInstance(
            name=f"edge-{i:02d}",
            jobs=random_mixed_instance(n, m, seed=seed0 + i).jobs,
            m=m,
            algorithm=algorithm,
        )
        for i in range(count)
    ]


class TestWorkerDeath:
    def test_sigkill_mid_solve_then_retry_succeeds(self):
        """Chaos SIGKILLs the worker inside the γ-bisection of attempt 0;
        the parent reaps the corpse, recycles the slot and attempt 1 (clean
        by construction) answers from one ladder rung further down."""
        instances = _fleet(2)
        chaos = ChaosPolicy(seed=2, kill_prob=1.0, attempts=1)
        policy = ServePolicy(timeout=60.0, max_retries=2, backoff_base=0.0)
        report = schedule_many(
            instances, policy=policy, chaos=chaos, max_workers=2, mp_context="fork"
        )
        assert report.complete and len(report.degraded) == 2
        for inst in instances:
            outcome = report.outcome(inst.name)
            assert [a.outcome for a in outcome.attempts] == ["worker-death", "ok"]
            assert outcome.ladder_step == 1
            # rung 1 differs only in backend, so the makespan is still
            # bit-identical to the solo run
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            assert outcome.makespan == solo.makespan
            outcome.schedule(inst.jobs, validate=True)

    def test_timeout_during_gamma_bisection_then_retry(self):
        """Chaos hangs the worker *inside* the oracle's γ-array evaluation;
        the parent's deadline — not anything in the worker — must fire."""
        instances = _fleet(2, seed0=400)
        chaos = ChaosPolicy(seed=3, hang_prob=1.0, attempts=1, hang_seconds=30.0)
        policy = ServePolicy(timeout=1.0, max_retries=2, backoff_base=0.0)
        report = schedule_many(
            instances, policy=policy, chaos=chaos, max_workers=2, mp_context="fork"
        )
        assert report.complete and len(report.degraded) == 2
        for inst in instances:
            outcome = report.outcome(inst.name)
            assert [a.outcome for a in outcome.attempts] == ["timeout", "ok"]
            assert "deadline" in outcome.attempts[0].error
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            assert outcome.makespan == solo.makespan


class TestSpawnPickling:
    def test_all_seven_families_cross_the_spawn_boundary(self):
        """Every workload family's job objects must pickle to a spawned
        worker (spawn shares nothing, unlike fork) and solve bit-identically
        to a solo run in this process."""
        m = 24
        fleet = [
            FleetInstance("mixed", random_mixed_instance(10, m, seed=1).jobs, m),
            FleetInstance("powerwork", random_power_work_instance(10, m, seed=2).jobs, m),
            FleetInstance("comm", random_communication_instance(10, m, seed=3).jobs, m),
            FleetInstance("bimodal", random_bimodal_instance(10, m, seed=4).jobs, m),
            FleetInstance(
                "tiny_n_huge_m", random_mixed_instance(6, 1 << 18, seed=5).jobs, 1 << 18
            ),
            FleetInstance("quantized", random_quantized_instance(10, m, seed=6).jobs, m),
            FleetInstance("chain", random_chain_instance(64, 8, seed=7).jobs, 8),
        ]
        report = schedule_many(
            fleet,
            policy=ServePolicy(timeout=120.0, backoff_base=0.0),
            max_workers=4,
            mp_context="spawn",
        )
        assert report.complete
        assert len(report.solved) == 7 and not report.degraded and not report.quarantined
        for inst in fleet:
            outcome = report.outcome(inst.name)
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            assert outcome.makespan == solo.makespan, inst.name


class TestJournalResume:
    def test_interrupted_fleet_resumes_without_resolving(self, tmp_path):
        """Interrupt after N of 2N instances (simulated by journalling only
        the first half), resume the full fleet: the N decided instances come
        back from disk, the rest solve fresh, and the combined report equals
        an uninterrupted run modulo timings."""
        journal = tmp_path / "fleet.jsonl"
        policy = ServePolicy(timeout=60.0, backoff_base=0.0, seed=9)
        full = _fleet(6, seed0=500)

        first_half = schedule_many(
            full[:3], policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert len(first_half.solved) == 3
        lines_after_half = journal.read_text().count("\n")
        assert lines_after_half == 3

        resumed = schedule_many(
            full, policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert resumed.complete
        assert sorted(o.instance for o in resumed.resumed) == [
            "edge-00", "edge-01", "edge-02"
        ]
        # no instance solved twice: the journal grew only by the second half
        assert journal.read_text().count("\n") == 6

        uninterrupted = schedule_many(
            full, policy=policy, max_workers=2, mp_context="fork"
        )
        assert resumed.comparable_dict() == uninterrupted.comparable_dict()

    def test_resume_after_torn_journal_tail(self, tmp_path):
        """A parent killed mid-append leaves a truncated final line; resume
        drops exactly that instance's record and re-solves it."""
        journal = tmp_path / "fleet.jsonl"
        policy = ServePolicy(timeout=60.0, backoff_base=0.0, seed=9)
        fleet = _fleet(4, seed0=600)

        baseline = schedule_many(
            fleet, policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert len(baseline.solved) == 4

        # tear the final line mid-JSON, as a kill -9 during the append would
        text = journal.read_text()
        torn = text.rstrip("\n")[: len(text) - 40]
        journal.write_text(torn)
        torn_names = {
            json.loads(line)["instance"] for line in torn.splitlines()[:-1]
        }

        resumed = schedule_many(
            fleet, policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert resumed.complete
        resumed_names = {o.instance for o in resumed.resumed}
        assert resumed_names == torn_names  # the torn record was re-solved
        assert len(resumed_names) == 3
        assert resumed.comparable_dict() == baseline.comparable_dict()
        # the journal was healed: the re-solved outcome re-journalled
        healed = journal.read_text()
        assert healed.endswith("\n")
        assert healed.count("\n") == 4

    def test_no_journal_means_no_resume(self):
        fleet = _fleet(2, seed0=700)
        policy = ServePolicy(timeout=60.0, backoff_base=0.0)
        report = schedule_many(fleet, policy=policy, max_workers=1, mp_context="fork")
        assert not report.resumed


class TestDegradationLadderExhaustion:
    def test_persistent_raise_walks_the_whole_ladder(self):
        """Chaos raises on every attempt: the instance walks every rung and
        is quarantined with the final traceback once retries run out."""
        inst = _fleet(1, n=8, m=16, seed0=800)[0]
        chaos = ChaosPolicy(seed=4, raise_prob=1.0)
        policy = ServePolicy(timeout=60.0, max_retries=3, backoff_base=0.0)
        report = schedule_many(
            [inst], policy=policy, chaos=chaos, max_workers=1, mp_context="fork"
        )
        outcome = report.outcome(inst.name)
        assert outcome.status == "quarantined"
        assert [a.outcome for a in outcome.attempts] == ["raise"] * 4
        # one ladder rung per failed attempt, clamped at the last
        assert [a.step for a in outcome.attempts] == [0, 1, 2, 3]
        assert "ChaosError" in outcome.error
