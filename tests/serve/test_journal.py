"""Units for the append-only outcome journal and its crash-tolerant loader."""

import json

import pytest

from repro.serve import (
    FleetInstance,
    JournalError,
    JournalWriter,
    ServePolicy,
    instance_fingerprint,
    load_journal,
    schedule_many,
)
from repro.workloads.generators import random_mixed_instance


def _outcome(name, makespan=1.0):
    return {
        "instance": name,
        "status": "solved",
        "makespan": makespan,
        "lower_bound": 0.5,
        "guarantee": 2.0,
        "algorithm": "two_approx",
        "eps": 0.1,
        "ladder_step": 0,
        "attempts": [],
        "error": None,
        "schedule_data": None,
    }


def _line(name, makespan=1.0):
    return json.dumps(
        {
            "record": "repro-fleet-outcome",
            "instance": name,
            "fingerprint": "f" * 32,
            "outcome": _outcome(name, makespan),
        }
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        jobs = random_mixed_instance(6, 8, seed=1).jobs
        a = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        b = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        assert a == b and len(a) == 32

    def test_sensitive_to_every_input(self):
        jobs = random_mixed_instance(6, 8, seed=1).jobs
        base = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        assert instance_fingerprint("y", jobs, 8, 0.1, "auto") != base
        assert instance_fingerprint("x", jobs, 16, 0.1, "auto") != base
        assert instance_fingerprint("x", jobs, 8, 0.2, "auto") != base
        assert instance_fingerprint("x", jobs, 8, 0.1, "fptas") != base
        other = random_mixed_instance(6, 8, seed=2).jobs
        assert instance_fingerprint("x", other, 8, 0.1, "auto") != base


class TestJournalRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a"))
            writer.append("b", "f" * 32, _outcome("b"))
        records = load_journal(path)
        assert set(records) == {"a", "b"}
        assert records["a"]["outcome"]["status"] == "solved"
        assert records["b"]["fingerprint"] == "f" * 32

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl")
        writer.close()
        with pytest.raises(JournalError):
            writer.append("a", "f" * 32, _outcome("a"))

    def test_later_records_win(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a", makespan=1.0))
            writer.append("a", "f" * 32, _outcome("a", makespan=2.0))
        assert load_journal(path)["a"]["outcome"]["makespan"] == 2.0

    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == {}

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a"))
            writer.append("b", "f" * 32, _outcome("b"))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # parent killed mid-write
        records = load_journal(path)
        assert set(records) == {"a"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("\n".join([_line("a"), "{corrupt", _line("b")]) + "\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_foreign_record_before_the_tail_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        foreign = json.dumps({"record": "something-else"})
        path.write_text("\n".join([foreign, _line("a")]) + "\n")
        with pytest.raises(JournalError):
            load_journal(path)


class TestFingerprintGuard:
    def test_stale_fingerprint_forces_resolve(self, tmp_path):
        """A journal whose fingerprint no longer matches the instance (the
        workload changed under the same name) must be ignored, not resumed."""
        journal = tmp_path / "j.jsonl"
        policy = ServePolicy(timeout=30.0, backoff_base=0.0)
        inst_v1 = FleetInstance(
            name="inst", jobs=random_mixed_instance(6, 8, seed=1).jobs, m=8,
            algorithm="two_approx",
        )
        first = schedule_many(
            [inst_v1], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert first.outcome("inst").status == "solved"
        assert not first.resumed

        inst_v2 = FleetInstance(
            name="inst", jobs=random_mixed_instance(6, 8, seed=2).jobs, m=8,
            algorithm="two_approx",
        )
        second = schedule_many(
            [inst_v2], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        outcome = second.outcome("inst")
        assert outcome.status == "solved"
        assert not outcome.resumed  # fingerprint mismatch -> solved fresh
        assert outcome.makespan != first.outcome("inst").makespan

        # same workload again: now it resumes from the journal
        third = schedule_many(
            [inst_v2], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert third.outcome("inst").resumed
        assert third.outcome("inst").makespan == outcome.makespan
