"""Units for the append-only outcome journal and its crash-tolerant loader."""

import json

import pytest

from repro.serve import (
    FleetInstance,
    JournalError,
    JournalWriter,
    ServePolicy,
    instance_fingerprint,
    load_journal,
    schedule_many,
)
from repro.workloads.generators import random_mixed_instance


def _outcome(name, makespan=1.0):
    return {
        "instance": name,
        "status": "solved",
        "makespan": makespan,
        "lower_bound": 0.5,
        "guarantee": 2.0,
        "algorithm": "two_approx",
        "eps": 0.1,
        "ladder_step": 0,
        "attempts": [],
        "error": None,
        "schedule_data": None,
    }


def _line(name, makespan=1.0):
    return json.dumps(
        {
            "record": "repro-fleet-outcome",
            "instance": name,
            "fingerprint": "f" * 32,
            "outcome": _outcome(name, makespan),
        }
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        jobs = random_mixed_instance(6, 8, seed=1).jobs
        a = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        b = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        assert a == b and len(a) == 32

    def test_sensitive_to_every_input(self):
        jobs = random_mixed_instance(6, 8, seed=1).jobs
        base = instance_fingerprint("x", jobs, 8, 0.1, "auto")
        assert instance_fingerprint("y", jobs, 8, 0.1, "auto") != base
        assert instance_fingerprint("x", jobs, 16, 0.1, "auto") != base
        assert instance_fingerprint("x", jobs, 8, 0.2, "auto") != base
        assert instance_fingerprint("x", jobs, 8, 0.1, "fptas") != base
        other = random_mixed_instance(6, 8, seed=2).jobs
        assert instance_fingerprint("x", other, 8, 0.1, "auto") != base

    def test_sensitive_to_ladder_and_chaos(self):
        """The degradation ladder and the chaos policy are part of the resume
        identity: a journal written under either a different ladder or a
        different chaos seed must not resume."""
        jobs = random_mixed_instance(6, 8, seed=1).jobs
        ladder = [{"backend": "vectorized", "list_backend": None, "algorithm": None}]
        chaos = {"seed": 3, "kill_prob": 0.1}
        base = instance_fingerprint("x", jobs, 8, 0.1, "auto", ladder=ladder, chaos=chaos)
        shorter = ladder + [{"backend": "scalar", "list_backend": None, "algorithm": None}]
        assert (
            instance_fingerprint("x", jobs, 8, 0.1, "auto", ladder=shorter, chaos=chaos)
            != base
        )
        reseeded = dict(chaos, seed=4)
        assert (
            instance_fingerprint("x", jobs, 8, 0.1, "auto", ladder=ladder, chaos=reseeded)
            != base
        )
        assert (
            instance_fingerprint("x", jobs, 8, 0.1, "auto", ladder=ladder, chaos=None)
            != base
        )


class TestJournalRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a"))
            writer.append("b", "f" * 32, _outcome("b"))
        records = load_journal(path)
        assert set(records) == {"a", "b"}
        assert records["a"]["outcome"]["status"] == "solved"
        assert records["b"]["fingerprint"] == "f" * 32

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl")
        writer.close()
        with pytest.raises(JournalError):
            writer.append("a", "f" * 32, _outcome("a"))

    def test_later_records_win(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a", makespan=1.0))
            writer.append("a", "f" * 32, _outcome("a", makespan=2.0))
        assert load_journal(path)["a"]["outcome"]["makespan"] == 2.0

    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "absent.jsonl") == {}

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path) as writer:
            writer.append("a", "f" * 32, _outcome("a"))
            writer.append("b", "f" * 32, _outcome("b"))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # parent killed mid-write
        records = load_journal(path)
        assert set(records) == {"a"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("\n".join([_line("a"), "{corrupt", _line("b")]) + "\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_foreign_record_before_the_tail_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        foreign = json.dumps({"record": "something-else"})
        path.write_text("\n".join([foreign, _line("a")]) + "\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_nan_token_mid_file_is_corruption(self, tmp_path):
        """``json.loads`` accepts the NaN token by default; the loader must
        not — a NaN makespan would sail through every ``!= inf`` /
        ``<= deadline`` comparison downstream."""
        path = tmp_path / "j.jsonl"
        nan_line = _line("a").replace("1.0", "NaN", 1)
        path.write_text("\n".join([nan_line, _line("b")]) + "\n")
        with pytest.raises(JournalError, match="non-finite JSON token"):
            load_journal(path)

    def test_nan_token_in_final_line_dropped_as_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("\n".join([_line("a"), _line("b").replace("1.0", "Infinity", 1)]) + "\n")
        assert set(load_journal(path)) == {"a"}

    def test_writer_refuses_non_finite_outcomes(self, tmp_path):
        with JournalWriter(tmp_path / "j.jsonl") as writer:
            with pytest.raises(ValueError):
                writer.append("a", "f" * 32, _outcome("a", makespan=float("nan")))


class TestFingerprintGuard:
    def test_stale_fingerprint_forces_resolve(self, tmp_path):
        """A journal whose fingerprint no longer matches the instance (the
        workload changed under the same name) must be ignored, not resumed."""
        journal = tmp_path / "j.jsonl"
        policy = ServePolicy(timeout=30.0, backoff_base=0.0)
        inst_v1 = FleetInstance(
            name="inst", jobs=random_mixed_instance(6, 8, seed=1).jobs, m=8,
            algorithm="two_approx",
        )
        first = schedule_many(
            [inst_v1], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert first.outcome("inst").status == "solved"
        assert not first.resumed

        inst_v2 = FleetInstance(
            name="inst", jobs=random_mixed_instance(6, 8, seed=2).jobs, m=8,
            algorithm="two_approx",
        )
        second = schedule_many(
            [inst_v2], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        outcome = second.outcome("inst")
        assert outcome.status == "solved"
        assert not outcome.resumed  # fingerprint mismatch -> solved fresh
        assert outcome.makespan != first.outcome("inst").makespan

        # same workload again: now it resumes from the journal
        third = schedule_many(
            [inst_v2], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert third.outcome("inst").resumed
        assert third.outcome("inst").makespan == outcome.makespan

    def test_changed_ladder_or_chaos_forces_resolve(self, tmp_path):
        """Outcomes journalled under a different degradation ladder or chaos
        configuration must re-solve: the journalled answer may have been
        reached through a rung (or an attempt history) the current
        configuration cannot reproduce."""
        from repro.serve import ChaosPolicy, LadderStep

        journal = tmp_path / "j.jsonl"
        inst = FleetInstance(
            name="inst", jobs=random_mixed_instance(6, 8, seed=1).jobs, m=8,
            algorithm="two_approx",
        )
        policy = ServePolicy(timeout=30.0, backoff_base=0.0)
        first = schedule_many(
            [inst], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert first.outcome("inst").status == "solved" and not first.resumed

        # identical everything -> resumes
        again = schedule_many(
            [inst], policy=policy, max_workers=1, mp_context="fork", journal=journal
        )
        assert again.outcome("inst").resumed

        # a different ladder -> fingerprint mismatch -> solved fresh
        short_ladder = ServePolicy(
            timeout=30.0, backoff_base=0.0,
            ladder=(LadderStep(backend="vectorized"), LadderStep(backend="scalar")),
        )
        reladdered = schedule_many(
            [inst], policy=short_ladder, max_workers=1, mp_context="fork", journal=journal
        )
        assert not reladdered.outcome("inst").resumed
        assert reladdered.outcome("inst").status == "solved"

        # a chaos policy (even an all-clean one with a new seed) -> re-solve
        rechaosed = schedule_many(
            [inst], policy=policy, chaos=ChaosPolicy(seed=99),
            max_workers=1, mp_context="fork", journal=journal,
        )
        assert not rechaosed.outcome("inst").resumed
        assert rechaosed.outcome("inst").status == "solved"
        # the result itself is configuration-independent here
        assert rechaosed.outcome("inst").makespan == first.outcome("inst").makespan
