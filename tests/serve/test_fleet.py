"""Acceptance tests for the fault-isolated fleet scheduler.

The contract under test (the robustness tentpole):

* ``schedule_many`` **always** returns a complete :class:`FleetReport` —
  every instance lands in exactly one of solved / degraded / quarantined,
  and no per-instance failure ever raises out of the fleet;
* solved and degraded outcomes re-validate against the paper's validator;
* outcomes that never left the backend-only ladder rungs reproduce the solo
  ``schedule_moldable`` makespan **bit-identically**;
* quarantined outcomes carry the captured failure (kind + traceback).
"""

import pytest

from repro import schedule_moldable
from repro.core.job import OracleJob
from repro.serve import (
    ChaosPolicy,
    FleetInstance,
    FleetReport,
    ServePolicy,
    STATUSES,
    schedule_many,
)
from repro.workloads.generators import random_mixed_instance

FAST = ServePolicy(timeout=60.0, backoff_base=0.0, seed=5)


def _fleet(count, n=16, m=32, algorithm="two_approx", seed0=100):
    return [
        FleetInstance(
            name=f"inst-{i:02d}",
            jobs=random_mixed_instance(n, m, seed=seed0 + i).jobs,
            m=m,
            algorithm=algorithm,
        )
        for i in range(count)
    ]


class TestHealthyFleet:
    def test_bit_identical_to_solo_and_validator_clean(self):
        instances = _fleet(6)
        report = schedule_many(
            instances, policy=FAST, max_workers=3, mp_context="fork"
        )
        assert report.complete
        assert len(report.solved) == 6 and not report.degraded and not report.quarantined
        for inst in instances:
            outcome = report.outcome(inst.name)
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            assert outcome.makespan == solo.makespan  # bit-identical
            assert outcome.lower_bound == solo.lower_bound
            # re-attach and re-validate the shipped schedule
            schedule = outcome.schedule(inst.jobs, validate=True)
            assert schedule.makespan == solo.makespan

    def test_report_iteration_and_lookup(self):
        report = schedule_many(_fleet(3), policy=FAST, max_workers=2, mp_context="fork")
        assert len(report) == 3
        assert {o.instance for o in report} == {"inst-00", "inst-01", "inst-02"}
        with pytest.raises(KeyError):
            report.outcome("no-such-instance")

    def test_report_round_trips_through_dict(self):
        report = schedule_many(_fleet(2), policy=FAST, max_workers=1, mp_context="fork")
        clone = FleetReport.from_dict(report.to_dict())
        assert clone.comparable_dict() == report.comparable_dict()
        assert clone.complete


class TestChaoticFleet:
    def test_twenty_percent_chaos_report_still_complete(self):
        """The acceptance gate: seeded 20% kill/hang/raise chaos, and the
        report still accounts for every instance with a valid status."""
        instances = _fleet(10)
        chaos = ChaosPolicy(
            seed=5, kill_prob=0.07, hang_prob=0.07, raise_prob=0.07, hang_seconds=30.0
        )
        policy = ServePolicy(timeout=5.0, max_retries=3, backoff_base=0.0, seed=5)
        report = schedule_many(
            instances, policy=policy, chaos=chaos, max_workers=4, mp_context="fork"
        )
        assert report.complete
        statuses = {o.instance: o.status for o in report.outcomes}
        assert set(statuses.values()) <= set(STATUSES)
        # exactly-one-status partition
        assert sorted(statuses) == sorted(i.name for i in instances)
        assert len(report.solved) + len(report.degraded) + len(report.quarantined) == 10
        # with 3 retries at 20% chaos nothing should exhaust its attempts
        assert not report.quarantined
        for inst in instances:
            outcome = report.outcome(inst.name)
            schedule = outcome.schedule(inst.jobs, validate=True)  # validator-clean
            assert outcome.guarantee >= 1.0
            assert outcome.makespan <= outcome.guarantee * outcome.lower_bound * (1 + 1e-9)
            assert schedule.makespan == outcome.makespan
            if not outcome.degraded:
                solo = schedule_moldable(
                    inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm
                )
                assert outcome.makespan == solo.makespan
            else:
                # degradation is recorded: rung > 0 and a failed attempt trail
                assert outcome.ladder_step > 0
                assert any(a.outcome != "ok" for a in outcome.attempts)

    def test_all_kill_chaos_quarantines_with_traceback(self):
        instances = _fleet(3, n=8, m=16)
        chaos = ChaosPolicy(seed=1, kill_prob=1.0)
        policy = ServePolicy(timeout=30.0, max_retries=1, backoff_base=0.0)
        report = schedule_many(
            instances, policy=policy, chaos=chaos, max_workers=2, mp_context="fork"
        )
        assert report.complete
        assert len(report.quarantined) == 3
        for outcome in report.outcomes:
            assert outcome.status == "quarantined"
            assert outcome.makespan is None
            assert "died mid-solve" in outcome.error and "-9" in outcome.error
            # the full attempt trail is preserved
            assert [a.outcome for a in outcome.attempts] == ["worker-death"] * 2

    def test_chaos_statuses_reproducible(self):
        instances = _fleet(6, n=8, m=16)
        chaos = ChaosPolicy(seed=7, kill_prob=0.2, raise_prob=0.2)
        policy = ServePolicy(timeout=30.0, max_retries=2, backoff_base=0.0, seed=7)
        runs = [
            schedule_many(
                instances, policy=policy, chaos=chaos, max_workers=2, mp_context="fork"
            )
            for _ in range(2)
        ]
        assert runs[0].comparable_dict() == runs[1].comparable_dict()


class TestQuarantine:
    def test_unpicklable_instance_quarantined_not_raised(self):
        """Oracle jobs close over arbitrary callables; a lambda cannot cross
        the process boundary.  That is a deterministic serialization failure:
        immediate quarantine, no retries burned, siblings unaffected."""
        poison = FleetInstance(
            name="poison",
            jobs=[OracleJob("opaque", lambda k: 10.0 / k)],
            m=8,
            algorithm="two_approx",
        )
        healthy = _fleet(2, n=8, m=16)
        report = schedule_many(
            [poison] + healthy, policy=FAST, max_workers=2, mp_context="fork"
        )
        assert report.complete
        outcome = report.outcome("poison")
        assert outcome.status == "quarantined"
        assert outcome.attempts[0].outcome == "serialization"
        assert "pickle" in outcome.error
        assert len(outcome.attempts) == 1  # deterministic: no retry loop
        assert len(report.solved) == 2


class TestMegaPack:
    """``mega_batch_size > 1``: workers solve packs via the lockstep mega
    batch; journalled outcomes stay per-instance and bit-identical."""

    def test_pack_outcomes_identical_to_solo_fleet(self):
        instances = _fleet(10, n=6, m=16)
        solo = schedule_many(instances, policy=FAST, max_workers=2, mp_context="fork")
        packed = schedule_many(
            instances,
            policy=ServePolicy(timeout=60.0, backoff_base=0.0, seed=5, mega_batch_size=4),
            max_workers=2,
            mp_context="fork",
        )
        assert solo.complete and packed.complete
        assert {o.instance: o.comparable_dict() for o in packed} == {
            o.instance: o.comparable_dict() for o in solo
        }
        assert len(packed.solved) == 10

    def test_pack_of_one_and_mixed_algorithms(self):
        """A pack smaller than mega_batch_size (including a single leftover)
        and auto/fptas/two_approx members all reproduce solo results."""
        instances = _fleet(3, n=5, m=16, algorithm="two_approx")
        instances += [
            FleetInstance(
                name=f"auto-{i}",
                jobs=random_mixed_instance(4, 1 << 10, seed=300 + i).jobs,
                m=1 << 10,
                algorithm="auto",
            )
            for i in range(2)
        ]
        report = schedule_many(
            instances,
            policy=ServePolicy(timeout=60.0, backoff_base=0.0, mega_batch_size=4),
            max_workers=2,
            mp_context="fork",
        )
        assert report.complete and len(report.solved) == 5
        for inst in instances:
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            outcome = report.outcome(inst.name)
            assert outcome.makespan == solo.makespan
            assert outcome.algorithm == solo.algorithm

    def test_chaotic_pack_members_recover_solo(self):
        """A chaos action drawn for any member fails the whole pack; every
        member then retries individually and recovers (attempts=1 limits the
        chaos to first attempts)."""
        instances = _fleet(8, n=5, m=16)
        chaos = ChaosPolicy(seed=7, raise_prob=0.6, attempts=1, mid_solve=False)
        report = schedule_many(
            instances,
            policy=ServePolicy(timeout=60.0, backoff_base=0.0, mega_batch_size=4),
            chaos=chaos,
            max_workers=2,
            mp_context="fork",
        )
        assert report.complete
        assert not report.quarantined
        # at least one pack was chaos-failed, so some instances retried solo
        assert report.degraded
        for outcome in report.degraded:
            assert outcome.attempts[0].outcome == "raise"
            assert outcome.attempts[-1].outcome == "ok"

    def test_pack_journal_resume_is_per_instance(self, tmp_path):
        instances = _fleet(6, n=5, m=16)
        policy = ServePolicy(timeout=60.0, backoff_base=0.0, mega_batch_size=3)
        journal = tmp_path / "j.jsonl"
        first = schedule_many(
            instances, policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert first.complete and not first.resumed
        second = schedule_many(
            instances, policy=policy, max_workers=2, mp_context="fork", journal=journal
        )
        assert second.complete
        assert len(second.resumed) == 6  # every pack member journalled solo
        assert second.comparable_dict() == first.comparable_dict()


class TestNormalization:
    def test_bare_job_lists_with_shared_m(self):
        batches = [random_mixed_instance(8, 16, seed=s).jobs for s in (1, 2)]
        report = schedule_many(
            batches, 16, algorithm="two_approx", policy=FAST,
            max_workers=2, mp_context="fork",
        )
        assert report.complete and len(report.solved) == 2
        assert report.instances == ["instance-0", "instance-1"]

    def test_bare_job_lists_without_m_rejected(self):
        with pytest.raises(ValueError):
            schedule_many([random_mixed_instance(8, 16, seed=1).jobs], policy=FAST)

    def test_workload_instances_accepted(self):
        report = schedule_many(
            [random_mixed_instance(8, 16, seed=1)],
            algorithm="two_approx", policy=FAST, max_workers=1, mp_context="fork",
        )
        assert report.complete and len(report.solved) == 1
        assert report.instances == ["mixed-0"]

    def test_duplicate_names_rejected(self):
        inst = _fleet(1)[0]
        with pytest.raises(ValueError):
            schedule_many([inst, inst], policy=FAST)

    def test_bad_mp_context_rejected_eagerly(self):
        with pytest.raises(ValueError):
            schedule_many(_fleet(1), policy=FAST, mp_context="no-such-context")
