"""Tests for the speedup model generators."""

import numpy as np
import pytest

from repro.workloads.speedup_models import (
    amdahl_speedup,
    communication_speedup,
    is_valid_monotone_speedup,
    power_law_speedup,
    random_monotone_speedup,
)


class TestAmdahlSpeedup:
    def test_values(self):
        s = amdahl_speedup(4, 0.5)
        assert s[0] == pytest.approx(1.0)
        assert s[3] == pytest.approx(1.0 / (0.5 + 0.5 / 4))

    def test_valid(self):
        assert is_valid_monotone_speedup(amdahl_speedup(64, 0.1))
        assert is_valid_monotone_speedup(amdahl_speedup(64, 0.9))

    def test_bounded_by_one_over_f(self):
        s = amdahl_speedup(10_000, 0.01)
        assert s[-1] <= 100.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)


class TestPowerLawSpeedup:
    def test_values(self):
        s = power_law_speedup(9, 0.5)
        assert s[8] == pytest.approx(3.0)

    def test_valid(self):
        for alpha in (0.0, 0.3, 0.7, 1.0):
            assert is_valid_monotone_speedup(power_law_speedup(32, alpha))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            power_law_speedup(4, 1.2)


class TestCommunicationSpeedup:
    def test_valid(self):
        assert is_valid_monotone_speedup(communication_speedup(64, 100.0, 0.5))

    def test_saturates(self):
        s = communication_speedup(100, 100.0, 1.0)
        assert s[-1] == pytest.approx(s[50])

    def test_zero_overhead_linear(self):
        s = communication_speedup(16, 50.0, 0.0)
        assert s[15] == pytest.approx(16.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            communication_speedup(4, -1.0, 0.1)
        with pytest.raises(ValueError):
            communication_speedup(4, 1.0, -0.1)


class TestRandomMonotoneSpeedup:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        s = random_monotone_speedup(64, rng)
        assert is_valid_monotone_speedup(s)

    def test_efficiency_floor_biases_up(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        lazy = random_monotone_speedup(64, rng_a, efficiency_floor=0.0)
        eager = random_monotone_speedup(64, rng_b, efficiency_floor=0.9)
        assert eager[-1] >= lazy[-1]

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_monotone_speedup(0, rng)
        with pytest.raises(ValueError):
            random_monotone_speedup(4, rng, efficiency_floor=1.0)


class TestValidityChecker:
    def test_rejects_wrong_start(self):
        assert not is_valid_monotone_speedup([2.0, 3.0])

    def test_rejects_decreasing(self):
        assert not is_valid_monotone_speedup([1.0, 1.5, 1.2])

    def test_rejects_superlinear_step(self):
        # jump from 1 to 2.5 at k=2 exceeds (k+1)/k = 2
        assert not is_valid_monotone_speedup([1.0, 2.5])

    def test_rejects_empty(self):
        assert not is_valid_monotone_speedup([])
