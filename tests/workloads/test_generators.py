"""Tests for the workload instance generators."""

import pytest

from repro.core.validation import is_monotone_work, is_nonincreasing_time
from repro.workloads.generators import (
    SCENARIOS,
    planted_partition_instance,
    random_amdahl_instance,
    random_bimodal_instance,
    random_communication_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
    random_power_law_instance,
    random_power_work_instance,
    scenario,
)


ANALYTIC_GENERATORS = [
    random_amdahl_instance,
    random_power_law_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
    random_bimodal_instance,
]


class TestAnalyticGenerators:
    @pytest.mark.parametrize("generator", ANALYTIC_GENERATORS)
    def test_shape(self, generator):
        instance = generator(25, 64, seed=1)
        assert instance.n == 25
        assert instance.m == 64
        assert len({j.name for j in instance.jobs}) == 25

    @pytest.mark.parametrize("generator", ANALYTIC_GENERATORS)
    def test_jobs_are_monotone(self, generator):
        instance = generator(10, 32, seed=2)
        for job in instance.jobs:
            assert is_nonincreasing_time(job, 32)
            assert is_monotone_work(job, 32)

    @pytest.mark.parametrize("generator", ANALYTIC_GENERATORS)
    def test_determinism(self, generator):
        a = generator(8, 16, seed=5)
        b = generator(8, 16, seed=5)
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.processing_time(1) == pytest.approx(jb.processing_time(1))
            assert ja.processing_time(16) == pytest.approx(jb.processing_time(16))

    @pytest.mark.parametrize("generator", ANALYTIC_GENERATORS)
    def test_different_seeds_differ(self, generator):
        a = generator(8, 16, seed=5)
        b = generator(8, 16, seed=6)
        assert any(
            ja.processing_time(1) != pytest.approx(jb.processing_time(1))
            for ja, jb in zip(a.jobs, b.jobs)
        )

    def test_large_m_supported(self):
        instance = random_amdahl_instance(5, 10 ** 9, seed=0)
        for job in instance.jobs:
            assert job.processing_time(10 ** 9) > 0


class TestTabulatedGenerator:
    def test_jobs_are_monotone(self):
        instance = random_monotone_tabulated_instance(6, 24, seed=3)
        for job in instance.jobs:
            assert is_nonincreasing_time(job, 24)
            assert is_monotone_work(job, 24)

    def test_m_limit(self):
        with pytest.raises(ValueError):
            random_monotone_tabulated_instance(3, 1 << 20, seed=0)


class TestPlantedPartitionInstance:
    def test_known_optimum(self):
        instance = planted_partition_instance(10, seed=1, target=50.0)
        assert instance.known_optimum == pytest.approx(50.0)
        assert instance.m == 10
        assert instance.n == 40

    def test_optimum_is_achievable_and_tight(self):
        """Total minimal work equals m * target, so the planted makespan is
        simultaneously an upper and a lower bound — the true optimum."""
        instance = planted_partition_instance(6, seed=2, target=80.0)
        total = sum(j.processing_time(1) for j in instance.jobs)
        assert total == pytest.approx(6 * 80.0)
        # jobs never speed up => minimal work is also the work at any count
        for job in instance.jobs:
            assert job.processing_time(3) == pytest.approx(job.processing_time(1))

    def test_jobs_per_group(self):
        instance = planted_partition_instance(4, seed=3, jobs_per_group=5)
        assert instance.n == 20

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            planted_partition_instance(0)


class TestScenarios:
    def test_all_scenarios_instantiate(self):
        for name in SCENARIOS:
            instance = scenario(name, seed=0)
            assert instance.n > 0
            assert instance.m > 0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            scenario("does_not_exist")


class TestNewFamilies:
    def test_power_work_tail_is_heavy_and_capped(self):
        instance = random_power_work_instance(400, 64, seed=3, t1_cap=500.0)
        t1s = sorted(j.processing_time(1) for j in instance.jobs)
        assert t1s[-1] <= 500.0
        # heavy tail: the top decile holds a disproportionate share of work
        top = sum(t1s[-40:])
        assert top > 0.3 * sum(t1s)

    def test_bimodal_has_two_modes(self):
        instance = random_bimodal_instance(400, 64, seed=3)
        t1s = [j.processing_time(1) for j in instance.jobs]
        small = [t for t in t1s if t <= 8.0]
        big = [t for t in t1s if t >= 300.0]
        assert len(small) + len(big) == len(t1s)
        assert small and big


class TestArrivalsFamily:
    def test_releases_are_seeded_sorted_and_in_span(self):
        from repro.workloads.generators import random_arrivals_instance

        a = random_arrivals_instance(50, 64, seed=4)
        b = random_arrivals_instance(50, 64, seed=4)
        assert a.releases == b.releases
        assert [j.name for j in a.jobs] == [j.name for j in b.jobs]
        assert a.releases == sorted(a.releases)
        span = a.spec.params["span"]
        assert all(0.0 <= r <= span for r in a.releases)

    def test_default_span_tracks_the_lower_bound(self):
        from repro.core.bounds import trivial_lower_bound
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(30, 32, seed=8, span_factor=0.5)
        expected = 0.5 * trivial_lower_bound(inst.jobs, 32)
        assert inst.spec.params["span"] == pytest.approx(expected)

    def test_explicit_span_zero_means_everything_at_t0(self):
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(10, 8, seed=1, span=0.0)
        assert inst.releases == [0.0] * 10

    def test_base_families(self):
        from repro.workloads.generators import ARRIVAL_BASES, random_arrivals_instance

        for base in ARRIVAL_BASES:
            inst = random_arrivals_instance(6, 16, seed=2, base=base)
            assert inst.n == 6 and len(inst.releases) == 6
            assert inst.spec.kind == f"arrivals[{base}]"
        with pytest.raises(ValueError, match="unknown arrivals base"):
            random_arrivals_instance(4, 8, seed=0, base="nope")

    def test_arrivals_property_pairs_jobs_with_releases(self):
        from repro.workloads.generators import random_arrivals_instance

        inst = random_arrivals_instance(5, 8, seed=3)
        pairs = inst.arrivals
        assert [j.name for j, _ in pairs] == [j.name for j in inst.jobs]
        assert [r for _, r in pairs] == inst.releases

    def test_offline_instances_expose_zero_release_arrivals(self):
        inst = random_mixed_instance(4, 8, seed=1)
        assert [r for _, r in inst.arrivals] == [0.0] * 4
