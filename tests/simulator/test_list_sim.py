"""Tests for the online list-scheduling simulator."""

import pytest

from repro.core.allotment import canonical_allotment
from repro.core.job import TabulatedJob
from repro.core.list_scheduling import list_schedule
from repro.core.validation import assert_valid_schedule
from repro.simulator.list_sim import OnlineListScheduler
from repro.workloads.generators import random_mixed_instance


class TestOnlineListScheduler:
    def test_empty(self):
        scheduler = OnlineListScheduler(4)
        schedule = scheduler.run()
        assert schedule.makespan == 0.0

    def test_single_job(self):
        scheduler = OnlineListScheduler(4)
        job = TabulatedJob("a", [10.0, 6.0])
        scheduler.submit(job, 2)
        schedule = scheduler.run()
        assert schedule.makespan == pytest.approx(6.0)

    def test_release_times_respected(self):
        scheduler = OnlineListScheduler(2)
        a = TabulatedJob("a", [3.0])
        b = TabulatedJob("b", [3.0])
        scheduler.submit(a, 1, release=0.0)
        scheduler.submit(b, 1, release=10.0)
        schedule = scheduler.run()
        assert schedule.entry_for(b).start >= 10.0

    def test_matches_analytic_list_schedule(self):
        """Without release times the simulator reproduces the analytic makespan."""
        instance = random_mixed_instance(20, 8, seed=3)
        allot = canonical_allotment(instance.jobs, 1e9, 8)
        analytic = list_schedule(instance.jobs, allot, 8)

        scheduler = OnlineListScheduler(8)
        scheduler.submit_allotment(instance.jobs, allot)
        simulated = scheduler.run()
        assert_valid_schedule(simulated, instance.jobs)
        assert simulated.makespan == pytest.approx(analytic.makespan)

    def test_invalid_submissions(self):
        scheduler = OnlineListScheduler(2)
        job = TabulatedJob("a", [1.0])
        with pytest.raises(ValueError):
            scheduler.submit(job, 0)
        with pytest.raises(ValueError):
            scheduler.submit(job, 3)
        with pytest.raises(ValueError):
            scheduler.submit(job, 1, release=-1.0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            OnlineListScheduler(0)

    def test_queue_cleared_after_run(self):
        scheduler = OnlineListScheduler(2)
        job = TabulatedJob("a", [1.0])
        scheduler.submit(job, 1)
        scheduler.run()
        assert scheduler.run().makespan == 0.0
