"""Tests for the discrete-event execution engine."""

import pytest

from repro.core.job import TabulatedJob
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.simulator.engine import SimulationError, simulate_schedule
from repro.workloads.generators import random_mixed_instance


def make_job(name="j", times=(10.0, 6.0, 4.0)):
    return TabulatedJob(name, list(times))


class TestSimulateSchedule:
    def test_empty_schedule(self):
        trace = simulate_schedule(Schedule(m=4))
        assert trace.makespan == 0.0
        assert trace.peak_busy == 0

    def test_simple_schedule(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 0.0, [(2, 2)])
        trace = simulate_schedule(schedule)
        assert trace.peak_busy == 4
        assert trace.events == 2
        assert trace.total_work == pytest.approx(2 * 2 * 6.0)

    def test_conflict_detected(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 1.0, [(1, 2)])
        with pytest.raises(SimulationError):
            simulate_schedule(schedule)

    def test_conflict_tolerated_when_not_strict(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 1.0, [(1, 2)])
        trace = simulate_schedule(schedule, strict=False)
        assert trace.peak_busy == 4

    def test_out_of_range_span(self):
        a = make_job("a")
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(1, 2)])
        with pytest.raises(SimulationError):
            simulate_schedule(schedule)

    def test_sequential_reuse_ok(self):
        a, b = make_job("a", (5.0,)), make_job("b", (5.0,))
        schedule = Schedule(m=1)
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 5.0, [(0, 1)])
        trace = simulate_schedule(schedule)
        assert trace.makespan == pytest.approx(10.0)

    def test_utilization_profile(self):
        a = make_job("a", (10.0,))
        schedule = Schedule(m=2)
        schedule.add(a, 0.0, [(0, 1)])
        trace = simulate_schedule(schedule)
        assert trace.average_utilization(2) == pytest.approx(0.5)

    def test_agrees_with_validator_on_algorithm_output(self):
        """Schedules produced by the algorithms execute cleanly."""
        instance = random_mixed_instance(30, 24, seed=1)
        for algorithm in ("two_approx", "mrt", "bounded"):
            result = schedule_moldable(instance.jobs, 24, 0.25, algorithm=algorithm)
            trace = simulate_schedule(result.schedule)
            assert trace.makespan == pytest.approx(result.makespan)
            assert trace.peak_busy <= 24


class TestColumnarBackendParity:
    """The columnar event sweep must produce the identical trace, and fall
    back to the scalar loop for everything it cannot replay exactly."""

    def _traces(self, schedule):
        fast = simulate_schedule(schedule)
        slow = simulate_schedule(schedule, backend="scalar")
        return fast, slow

    def test_trace_parity_on_algorithm_schedules(self):
        from repro.core.mrt import mrt_schedule
        from repro.core.two_approx import two_approximation

        for seed in (1, 5):
            inst = random_mixed_instance(60, 480, seed=seed)
            for sched in (
                mrt_schedule(inst.jobs, 480, 0.1).schedule,
                two_approximation(inst.jobs, 480).schedule,
            ):
                fast, slow = self._traces(sched)
                assert fast.makespan == slow.makespan
                assert fast.total_work == slow.total_work
                assert fast.peak_busy == slow.peak_busy
                assert fast.events == slow.events
                assert fast.utilization_profile == slow.utilization_profile

    def test_conflicting_schedule_raises_for_both(self):
        a, b = make_job("a"), make_job("b")
        schedule = Schedule(m=4)
        schedule.add(a, 0.0, [(0, 2)])
        schedule.add(b, 1.0, [(1, 2)])
        with pytest.raises(SimulationError):
            simulate_schedule(schedule)
        with pytest.raises(SimulationError):
            simulate_schedule(schedule, backend="scalar")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            simulate_schedule(Schedule(m=1), backend="quantum")
