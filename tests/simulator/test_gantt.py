"""Tests for the ASCII Gantt / shelf renderings."""

from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.job import TabulatedJob
from repro.core.mrt import mrt_dual
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.perf.schedule_builder import ArraySchedule
from repro.simulator.gantt import render_gantt, render_shelves
from repro.workloads.generators import random_mixed_instance


class TestRenderGantt:
    def test_empty(self):
        assert "empty" in render_gantt(Schedule(m=4))

    def test_contains_job_names(self):
        schedule = Schedule(m=2)
        a = TabulatedJob("alpha", [5.0])
        b = TabulatedJob("beta", [3.0])
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 0.0, [(1, 1)])
        out = render_gantt(schedule)
        assert "alpha" in out
        assert "beta" in out
        assert "p=1" in out

    def test_row_limit(self):
        schedule = Schedule(m=64)
        for i in range(50):
            schedule.add(TabulatedJob(f"j{i}", [1.0]), 0.0, [(i, 1)])
        out = render_gantt(schedule, max_rows=10)
        assert "more jobs not shown" in out

    def test_bars_scale_with_time(self):
        schedule = Schedule(m=2)
        short = TabulatedJob("short", [1.0])
        long = TabulatedJob("long", [10.0])
        schedule.add(short, 0.0, [(0, 1)])
        schedule.add(long, 0.0, [(1, 1)])
        out = render_gantt(schedule, width=40)
        lines = {line.split()[0]: line for line in out.splitlines()[1:]}
        assert lines["long"].count("█") > lines["short"].count("█")

    def test_rows_ordered_by_start_then_width(self):
        schedule = Schedule(m=8)
        late = TabulatedJob("late", [2.0] * 8)
        narrow = TabulatedJob("narrow", [4.0] * 8)
        wide = TabulatedJob("wide", [4.0] * 8)
        schedule.add(late, 5.0, [(0, 1)])
        schedule.add(narrow, 0.0, [(1, 1)])
        schedule.add(wide, 0.0, [(2, 4)])
        names = [line.split()[0] for line in render_gantt(schedule).splitlines()[1:]]
        assert names == ["wide", "narrow", "late"]

    def test_renders_columnar_schedule_without_materializing_entries(self):
        """Gantt rendering must work straight off the columns of a
        builder-assembled schedule — no entry views."""
        builder = ArraySchedule(16)
        for i in range(8):
            builder.append(TabulatedJob(f"job{i}", [float(i + 1)]), float(i), [(2 * i, 2)])
        schedule = builder.build()
        out = render_gantt(schedule)
        assert "job0" in out
        assert "p=2" in out
        assert all(view is None for view in schedule._views)

    def test_zero_length_schedule(self):
        schedule = Schedule(m=2)
        schedule.add(TabulatedJob("instant", [5.0]), 0.0, [(0, 1)], duration_override=0.0)
        assert "zero-length" in render_gantt(schedule)

    def test_long_names_truncated_to_label_width(self):
        schedule = Schedule(m=1)
        schedule.add(TabulatedJob("a-very-long-job-name-indeed", [2.0]), 0.0, [(0, 1)])
        out = render_gantt(schedule, label_width=8)
        assert "a-very-" in out
        assert "a-very-long" not in out


class TestRenderShelves:
    def test_reports_shelf_statistics(self):
        instance = random_mixed_instance(20, 12, seed=5)
        omega = ludwig_tiwari_estimator(instance.jobs, 12).omega
        schedule = mrt_dual(instance.jobs, 12, 1.4 * omega)
        assert schedule is not None
        out = render_shelves(schedule, 1.4 * omega)
        for shelf in ("S0", "S1", "S2", "small"):
            assert shelf in out
        assert "makespan bound" in out

    def test_shelf_classification_covers_all_jobs(self):
        """The shelf masks partition the entries: job counts sum to n."""
        instance = random_mixed_instance(24, 16, seed=9)
        result = schedule_moldable(instance.jobs, 16, 0.25, algorithm="bounded")
        schedule = result.schedule
        d = schedule.metadata.get("d", schedule.makespan / 1.5)
        out = render_shelves(schedule, d)
        counts = [
            int(line.split("jobs=")[1].split()[0])
            for line in out.splitlines()
            if "jobs=" in line
        ]
        assert sum(counts) == len(schedule)

    def test_shelves_render_columnar_schedule_lazily(self):
        instance = random_mixed_instance(15, 12, seed=4)
        result = schedule_moldable(instance.jobs, 12, 0.25, algorithm="bounded")
        schedule = result.schedule
        views_before = sum(view is not None for view in schedule._views)
        render_shelves(schedule, schedule.metadata.get("d", 1.0))
        assert sum(view is not None for view in schedule._views) == views_before

    def test_empty_schedule_shelves(self):
        out = render_shelves(Schedule(m=4), 1.0)
        assert "jobs=0" in out
        assert "empty schedule" in out
