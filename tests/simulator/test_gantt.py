"""Tests for the ASCII Gantt / shelf renderings."""

from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.job import TabulatedJob
from repro.core.mrt import mrt_dual
from repro.core.schedule import Schedule
from repro.simulator.gantt import render_gantt, render_shelves
from repro.workloads.generators import random_mixed_instance


class TestRenderGantt:
    def test_empty(self):
        assert "empty" in render_gantt(Schedule(m=4))

    def test_contains_job_names(self):
        schedule = Schedule(m=2)
        a = TabulatedJob("alpha", [5.0])
        b = TabulatedJob("beta", [3.0])
        schedule.add(a, 0.0, [(0, 1)])
        schedule.add(b, 0.0, [(1, 1)])
        out = render_gantt(schedule)
        assert "alpha" in out
        assert "beta" in out
        assert "p=1" in out

    def test_row_limit(self):
        schedule = Schedule(m=64)
        for i in range(50):
            schedule.add(TabulatedJob(f"j{i}", [1.0]), 0.0, [(i, 1)])
        out = render_gantt(schedule, max_rows=10)
        assert "more jobs not shown" in out

    def test_bars_scale_with_time(self):
        schedule = Schedule(m=2)
        short = TabulatedJob("short", [1.0])
        long = TabulatedJob("long", [10.0])
        schedule.add(short, 0.0, [(0, 1)])
        schedule.add(long, 0.0, [(1, 1)])
        out = render_gantt(schedule, width=40)
        lines = {line.split()[0]: line for line in out.splitlines()[1:]}
        assert lines["long"].count("█") > lines["short"].count("█")


class TestRenderShelves:
    def test_reports_shelf_statistics(self):
        instance = random_mixed_instance(20, 12, seed=5)
        omega = ludwig_tiwari_estimator(instance.jobs, 12).omega
        schedule = mrt_dual(instance.jobs, 12, 1.4 * omega)
        assert schedule is not None
        out = render_shelves(schedule, 1.4 * omega)
        for shelf in ("S0", "S1", "S2", "small"):
            assert shelf in out
        assert "makespan bound" in out
