"""Scalar-vs-columnar simulator parity on fault-truncated traces.

The fault executor's :meth:`FaultyExecution.trace_schedule` produces the
mid-run-stop / partial-work trace shape: entries whose ``duration_override``
*understates* the oracle processing time (a validator violation by design —
the run genuinely stopped early).  The discrete-event simulator must replay
these identically under its columnar fast path and its scalar reference
loop, and must keep raising :class:`SimulationError` for genuinely invalid
traces.  The astronomical-m route (``m > 2^62``, beyond the columnar cap)
must fall back to the scalar loop transparently.
"""

import pytest

from repro.core.schedule import MAX_COLUMNAR_M, Schedule
from repro.core.scheduler import schedule_moldable
from repro.core.bounds import trivial_lower_bound
from repro.resilience import (
    FaultPlan,
    MachineFailure,
    execute_with_faults,
    random_fault_plan,
    recover_with_faults,
)
from repro.simulator.engine import SimulationError, simulate_schedule
from repro.workloads.generators import random_mixed_instance


def assert_backends_agree(schedule):
    auto = simulate_schedule(schedule)
    scalar = simulate_schedule(schedule, backend="scalar")
    assert auto.makespan == scalar.makespan
    assert auto.total_work == scalar.total_work
    assert auto.events == scalar.events
    assert auto.peak_busy == scalar.peak_busy
    return auto


class TestTruncatedTraceParity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_executor_traces_replay_identically(self, seed):
        inst = random_mixed_instance(20, 16, seed=seed)
        schedule = schedule_moldable(inst.jobs, 16, 0.25, algorithm="bounded").schedule
        horizon = 1.5 * trivial_lower_bound(inst.jobs, 16)
        plan = random_fault_plan(
            [j.name for j in inst.jobs], 16, seed=seed + 100, failures=3, kills=1,
            horizon=horizon,
        )
        trace_schedule = execute_with_faults(schedule, plan).trace_schedule()
        assert_backends_agree(trace_schedule)

    def test_manual_partial_work_entry(self):
        inst = random_mixed_instance(6, 8, seed=3)
        schedule = schedule_moldable(inst.jobs, 8, 0.25, algorithm="two_approx").schedule
        # truncate the longest entry to a third of its duration
        victim = max(schedule.entries, key=lambda e: e.duration)
        clone = Schedule(m=8)
        for e in schedule.entries:
            override = e.duration / 3.0 if e is victim else e.duration_override
            clone.add(e.job, e.start, e.spans, duration_override=override)
        trace = assert_backends_agree(clone)
        assert trace.total_work < schedule.total_work

    def test_stitched_recovery_schedules_replay_identically(self):
        inst = random_mixed_instance(15, 16, seed=5)
        horizon = 1.5 * trivial_lower_bound(inst.jobs, 16)
        plan = random_fault_plan(
            [j.name for j in inst.jobs], 16, seed=42, failures=2, kills=1, horizon=horizon
        )
        res = recover_with_faults(inst.jobs, 16, plan, eps=0.25, algorithm="two_approx")
        trace = assert_backends_agree(res.schedule)
        assert trace.makespan == res.makespan

    def test_overlapping_truncated_entries_still_raise(self):
        """Truncation must not mask genuine conflicts."""
        inst = random_mixed_instance(6, 8, seed=3)
        schedule = schedule_moldable(inst.jobs, 8, 0.25, algorithm="bounded").schedule
        entries = schedule.sorted_by_start()
        a, b = entries[0], entries[-1]
        clone = Schedule(m=8)
        for e in schedule.entries:
            if e is b:
                # same machines and start as `a`, truncated but overlapping
                clone.add(e.job, a.start, a.spans, duration_override=a.duration / 2.0)
            else:
                clone.add(e.job, e.start, e.spans, duration_override=e.duration_override)
        with pytest.raises(SimulationError):
            simulate_schedule(clone)
        with pytest.raises(SimulationError):
            simulate_schedule(clone, backend="scalar")

    def test_strict_false_keeps_going(self):
        j1, j2 = random_mixed_instance(2, 4, seed=1).jobs
        clone = Schedule(m=4)
        clone.add(j1, 0.0, [(0, 2)])
        clone.add(j2, 0.0, [(0, 2)])  # conflict
        trace = simulate_schedule(clone, strict=False)
        assert trace.makespan > 0.0


class TestAstronomicalMachineCounts:
    """m > 2^62 exceeds the columnar cap: simulate/validate must take the
    scalar fallback, and recovery must produce identical answers there."""

    def test_simulator_falls_back_beyond_columnar_cap(self):
        m = MAX_COLUMNAR_M + 5
        inst = random_mixed_instance(4, 64, seed=11)
        schedule = schedule_moldable(inst.jobs, m, 0.5, algorithm="two_approx").schedule
        assert schedule.m > MAX_COLUMNAR_M  # backend="auto" must take the scalar loop
        assert_backends_agree(schedule)

    def test_truncated_trace_beyond_columnar_cap(self):
        m = MAX_COLUMNAR_M + 5
        inst = random_mixed_instance(4, 64, seed=11)
        schedule = schedule_moldable(inst.jobs, m, 0.5, algorithm="two_approx").schedule
        plan = FaultPlan(m=m, failures=(MachineFailure(time=0.5, first=0, count=m - 3),))
        trace_schedule = execute_with_faults(schedule, plan).trace_schedule()
        assert_backends_agree(trace_schedule)

    def test_recovery_beyond_columnar_cap_matches_small_m_shape(self):
        m = MAX_COLUMNAR_M + 5
        inst = random_mixed_instance(4, 64, seed=11)
        plan = FaultPlan(m=m, failures=(MachineFailure(time=0.5, first=0, count=m - 3),))
        res = recover_with_faults(inst.jobs, m, plan, eps=0.5, algorithm="two_approx")
        trace = assert_backends_agree(res.schedule)
        assert trace.makespan == res.makespan
