"""Hypothesis-driven cross-backend parity fuzzing.

Draws random (driver, family, n, m, eps, seed) cases across all five
algorithm drivers and every instance family (the bench sweep plus the
tie-heavy ``quantized``, the no-tie ``chain``, the fault-recovery
``faulty``, the overflow-boundary ``huge_m``, the lockstep co-batch
``mega``, and the arrival-epoch ``online`` families), runs each
driver under every backend of the N-way comparison (scalar heap reference,
vectorized drivers, batched event-queue list scheduler, candidate-indexed
event-queue list scheduler), and asserts identical schedules, makespans and
validator verdicts (see ``tests/differential/harness.py`` for the exact
checks).

Any failing case is serialised into ``tests/differential/corpus/`` before
the assertion propagates, so it is replayed forever after as a
deterministic regression test (``test_corpus_replay.py``) — shrinking a
hypothesis failure once is enough to pin it for every future run.

Two environment knobs configure the run (the nightly long-fuzz workflow
sets both; tier-1 CI uses the defaults):

* ``DIFF_FUZZ_EXAMPLES`` — hypothesis ``max_examples`` (default 120);
* ``DIFF_FUZZ_PROFILE`` — ``"tier1"`` (default) or ``"long"``: the long
  profile draws larger instances (n up to 48, m up to 4096) where rarer
  epoch/packing interactions live.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from .harness import BACKENDS, DRIVERS, FAMILIES, run_case, save_failure

FUZZ_EXAMPLES = int(os.environ.get("DIFF_FUZZ_EXAMPLES", "120"))
FUZZ_PROFILE = os.environ.get("DIFF_FUZZ_PROFILE", "tier1")

if FUZZ_PROFILE == "long":
    MAX_N = 48
    M_CHOICES = [1, 2, 3, 8, 24, 64, 256, 1024, 4096]
    EPS_CHOICES = [0.05, 0.1, 0.25, 0.5]
else:
    MAX_N = 10
    M_CHOICES = [1, 2, 3, 8, 24, 64, 256]
    EPS_CHOICES = [0.1, 0.25, 0.5]


@st.composite
def cases(draw):
    driver = draw(st.sampled_from(DRIVERS))
    family = draw(st.sampled_from(sorted(FAMILIES)))
    n = draw(st.integers(min_value=1, max_value=MAX_N))
    m = draw(st.sampled_from(M_CHOICES))
    eps = draw(st.sampled_from(EPS_CHOICES))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return {"driver": driver, "family": family, "n": n, "m": m, "eps": eps, "seed": seed}


class TestCrossBackendParity:
    @given(cases())
    @settings(
        max_examples=FUZZ_EXAMPLES,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_backends_agree_on_random_cases(self, case):
        try:
            run_case(case)
        except AssertionError as exc:
            path = save_failure(case, exc)
            raise AssertionError(
                f"cross-backend divergence (case saved to {path}): {exc}"
            ) from exc


class TestHarnessSelfChecks:
    """The harness must actually be able to catch divergences."""

    def test_every_driver_and_family_is_exercised(self):
        assert set(DRIVERS) == {"mrt", "compressible", "bounded", "fptas", "two_approx"}
        assert set(FAMILIES) == {
            "mixed",
            "powerwork",
            "comm",
            "bimodal",
            "tiny_n_huge_m",
            "quantized",
            "chain",
            "faulty",
            "huge_m",
            "mega",
            "online",
        }

    def test_comparison_is_n_way(self):
        """The harness must compare the scalar reference against *every*
        non-scalar implementation, including both event-queue backends
        (scanning and candidate-indexed)."""
        assert BACKENDS[0] == "scalar"
        assert "vectorized" in BACKENDS and "event_queue" in BACKENDS
        assert "event_queue_indexed" in BACKENDS
        assert len(BACKENDS) >= 4

    def test_profile_defaults(self):
        """Tier-1 CI must keep the fast profile unless told otherwise."""
        if "DIFF_FUZZ_EXAMPLES" not in os.environ:
            assert FUZZ_EXAMPLES == 120
        if os.environ.get("DIFF_FUZZ_PROFILE", "tier1") != "long":
            assert MAX_N == 10

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_case_per_driver(self, driver):
        run_case(
            {"driver": driver, "family": "mixed", "n": 6, "m": 24, "eps": 0.25, "seed": 7}
        )

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_huge_m_case_per_driver(self, driver):
        """Every driver runs the astronomical-m family: the drawn ``m``
        selects a HUGE_M_CHOICES boundary straddler (here 2^62 + 1, the
        first wide-tier machine count)."""
        run_case(
            {"driver": driver, "family": "huge_m", "n": 6, "m": 5, "eps": 0.25, "seed": 13}
        )

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_mega_case_per_driver(self, driver):
        """Every driver solves inside a random lockstep co-batch and must
        reproduce its solo result bit-identically."""
        run_case(
            {"driver": driver, "family": "mega", "n": 6, "m": 24, "eps": 0.25, "seed": 17}
        )

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_faulty_case_per_driver(self, driver):
        """The recovery loop itself is part of the N-way comparison."""
        run_case(
            {"driver": driver, "family": "faulty", "n": 8, "m": 24, "eps": 0.25, "seed": 11}
        )

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_online_case_per_driver(self, driver):
        """The online arrival-epoch loop is part of the N-way comparison."""
        run_case(
            {"driver": driver, "family": "online", "n": 8, "m": 24, "eps": 0.25, "seed": 19}
        )

    def test_save_failure_roundtrip(self, tmp_path, monkeypatch):
        import json

        from . import harness

        monkeypatch.setattr(harness, "CORPUS_DIR", tmp_path / "corpus")
        case = {"driver": "mrt", "family": "comm", "n": 3, "m": 8, "eps": 0.5, "seed": 1}
        path = harness.save_failure(case, AssertionError("makespan mismatch"))
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["driver"] == "mrt"
        assert payload["seed"] == 1
        assert "makespan mismatch" in payload["error"]
        # idempotent: the same case maps to the same file
        assert harness.save_failure(case, AssertionError("again")) == path
