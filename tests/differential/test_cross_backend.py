"""Hypothesis-driven cross-backend parity fuzzing.

Draws random (driver, family, n, m, eps, seed) cases across all five
algorithm drivers and all five bench instance families, runs each driver
under ``backend="scalar"`` and ``backend="vectorized"``, and asserts
identical schedules, makespans and validator verdicts (see
``tests/differential/harness.py`` for the exact checks).

Any failing case is serialised into ``tests/differential/corpus/`` before
the assertion propagates, so it is replayed forever after as a
deterministic regression test (``test_corpus_replay.py``) — shrinking a
hypothesis failure once is enough to pin it for every future run.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from .harness import DRIVERS, FAMILIES, run_case, save_failure


@st.composite
def cases(draw):
    driver = draw(st.sampled_from(DRIVERS))
    family = draw(st.sampled_from(sorted(FAMILIES)))
    n = draw(st.integers(min_value=1, max_value=10))
    m = draw(st.sampled_from([1, 2, 3, 8, 24, 64, 256]))
    eps = draw(st.sampled_from([0.1, 0.25, 0.5]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return {"driver": driver, "family": family, "n": n, "m": m, "eps": eps, "seed": seed}


class TestCrossBackendParity:
    @given(cases())
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_backends_agree_on_random_cases(self, case):
        try:
            run_case(case)
        except AssertionError as exc:
            path = save_failure(case, exc)
            raise AssertionError(
                f"cross-backend divergence (case saved to {path}): {exc}"
            ) from exc


class TestHarnessSelfChecks:
    """The harness must actually be able to catch divergences."""

    def test_every_driver_and_family_is_exercised(self):
        assert set(DRIVERS) == {"mrt", "compressible", "bounded", "fptas", "two_approx"}
        assert set(FAMILIES) == {"mixed", "powerwork", "comm", "bimodal", "tiny_n_huge_m"}

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_one_deterministic_case_per_driver(self, driver):
        run_case(
            {"driver": driver, "family": "mixed", "n": 6, "m": 24, "eps": 0.25, "seed": 7}
        )

    def test_save_failure_roundtrip(self, tmp_path, monkeypatch):
        import json

        from . import harness

        monkeypatch.setattr(harness, "CORPUS_DIR", tmp_path / "corpus")
        case = {"driver": "mrt", "family": "comm", "n": 3, "m": 8, "eps": 0.5, "seed": 1}
        path = harness.save_failure(case, AssertionError("makespan mismatch"))
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert payload["driver"] == "mrt"
        assert payload["seed"] == 1
        assert "makespan mismatch" in payload["error"]
        # idempotent: the same case maps to the same file
        assert harness.save_failure(case, AssertionError("again")) == path
