"""Cross-backend differential testing harness (N-way).

The repository ships multiple bit-identical implementations of every
algorithm driver — exactly the structure differential testing exploits: run
all of them on the same random instance and *any* disagreement is a bug in
one of them, no oracle needed.  Since PR 4 the comparison is **N-way**
(:data:`BACKENDS`):

* ``"scalar"`` — the pure-Python reference (heap wake-up loop for list
  scheduling, per-entry ``Schedule.add`` assembly);
* ``"vectorized"`` — the batched-oracle drivers; for ``two_approx`` the
  list-scheduling phase is pinned to the columnar per-wake-up loop
  (``list_backend="wakeup"``), PR 2's fast path;
* ``"event_queue"`` — the batched event-queue list scheduler: the genuinely
  distinct third implementation, so it is compared for ``two_approx`` (the
  one driver with a list-scheduling phase) and skipped for the others —
  re-running their unchanged vectorized path would double the fuzz budget
  without exercising any new code;
* ``"event_queue_indexed"`` — the event-queue list scheduler with the
  incremental need-bucket candidate index (its admission queries come from
  bucket prefix walks instead of per-epoch scans): a genuinely distinct
  fourth implementation, compared for ``two_approx`` and skipped for the
  other drivers exactly like ``"event_queue"``.

A *case* is a small JSON-able dict ``{driver, family, n, m, eps, seed}``:
the instance is regenerated from the family generator and the seed, so a
failing case costs a few dozen bytes to persist.  :func:`run_case` executes
every backend and asserts

* identical schedules: same entry order, job names, start times, processor
  counts and machine spans (compared columnar, so a 10^3-entry schedule
  costs a handful of array comparisons);
* identical makespans (also re-checked via the schedule columns);
* identical validator verdicts: the columnar and the scalar validation
  backends must return the same ``ok``, the same violation messages, the
  same makespan and the same peak processor count on every schedule;
* an agreeing independent simulator replay (the discrete-event engine's
  scalar loop shares no code with the validator) for every non-scalar
  backend.

:func:`save_failure` serialises a failing case into ``corpus/`` — the
hypothesis fuzzer in ``test_cross_backend.py`` calls it from its exception
path, and ``test_corpus_replay.py`` replays every corpus file as a
deterministic tier-1 regression test.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from pathlib import Path
from types import SimpleNamespace
from typing import Callable, Dict

import numpy as np

from repro.core.bounded_algorithm import bounded_schedule
from repro.core.bounds import trivial_lower_bound
from repro.core.compressible_algorithm import compressible_schedule
from repro.core.fptas import fptas_schedule
from repro.core.mrt import mrt_schedule
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.core.two_approx import two_approximation
from repro.core.validation import validate_schedule
from repro.online import OnlineResult, OnlineScheduler
from repro.perf.megabatch import solve_mega
from repro.resilience import FaultPlan, RecoveryResult, random_fault_plan, recover_with_faults
from repro.simulator.engine import SimulationError, simulate_schedule
from repro.workloads.generators import (
    random_arrivals_instance,
    random_bimodal_instance,
    random_chain_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
    random_quantized_instance,
)

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Instance families: the bench suite's sweep (``tiny_n_huge_m`` reuses the
#: mixed generator but pins an m that forces every driver through its
#: large-m dispatch) plus the differential-only ``quantized`` family, whose
#: discrete duration grid makes exact completion-time ties — the fuel of the
#: event-queue backend's simultaneous-completion epochs — common instead of
#: measure-zero, and the ``chain`` family (strongly serial jobs, no ties:
#: the single-completion regime whose admission queries the candidate index
#: answers from bucket prefix walks).
FAMILIES: Dict[str, Callable] = {
    "mixed": random_mixed_instance,
    "powerwork": random_power_work_instance,
    "comm": random_communication_instance,
    "bimodal": random_bimodal_instance,
    "tiny_n_huge_m": random_mixed_instance,
    "quantized": random_quantized_instance,
    "chain": random_chain_instance,
    # fault-recovery family: mixed instances executed through the
    # drain-and-replan recovery loop against a seed-derived FaultPlan; the
    # comparison pins the *stitched* schedules bit-identical across backends
    "faulty": random_mixed_instance,
    # astronomical-m family: the drawn m only *selects* one of the
    # HUGE_M_CHOICES boundary straddlers (2^53 and 2^62 plus ±1, and far
    # beyond), so the exact-float cut and the int64→wide→object capacity
    # tier cuts are fuzzed, not just regression-pinned
    "huge_m": random_mixed_instance,
    # mega-batch family: the case's instance is solved solo and again inside
    # a seed-derived random co-batch via solve_mega's lockstep loop; the two
    # results (schedule, makespan, certification, validator verdicts) must be
    # bit-identical regardless of what it was co-batched with
    "mega": random_mixed_instance,
    # online-arrival family: mixed instances with seed-derived release times
    # driven through the whole OnlineScheduler epoch loop (the epoch policy
    # is also seed-derived); the comparison pins the *stitched* online
    # schedules bit-identical across backends and warm vs cold re-planning
    "online": random_arrivals_instance,
}

TINY_N_HUGE_M = 1 << 20

#: ``huge_m``-family machine counts: both overflow boundaries with their
#: off-by-one neighbours (2^53 = exact-float limit, 2^62 = int64 columnar
#: limit), plus firmly-wide and object-tier magnitudes.
HUGE_M_CHOICES = (
    (1 << 53) - 1,
    1 << 53,
    (1 << 53) + 1,
    (1 << 62) - 1,
    1 << 62,
    (1 << 62) + 1,
    1 << 64,
    1 << 80,
    1 << 96,
)

DRIVERS = ("mrt", "compressible", "bounded", "fptas", "two_approx")

#: The N-way comparison: the scalar reference plus every non-scalar
#: implementation, compared pairwise against the reference.
BACKENDS = ("scalar", "vectorized", "event_queue", "event_queue_indexed")

#: Backends that only differ inside the list-scheduling phase — compared
#: for ``two_approx`` (the one driver with such a phase), skipped elsewhere.
LIST_ONLY_BACKENDS = ("event_queue", "event_queue_indexed")


def effective_m(case: dict) -> int:
    """The machine count a case actually runs with.

    ``tiny_n_huge_m`` pins the huge machine count; ``huge_m`` maps the drawn
    m onto one of the :data:`HUGE_M_CHOICES` boundary straddlers (the drawn
    value acts as the fuzz selector); the FPTAS additionally needs
    ``m >= 8n/eps`` (its applicability regime), so its cases are lifted to
    the threshold when the drawn m is below it.
    """
    if case["family"] == "tiny_n_huge_m":
        m = TINY_N_HUGE_M
    elif case["family"] == "huge_m":
        m = HUGE_M_CHOICES[int(case["m"]) % len(HUGE_M_CHOICES)]
    else:
        m = int(case["m"])
    if case["driver"] == "fptas":
        m = max(m, int(math.ceil(8.0 * case["n"] / case["eps"])) + 1)
    return m


def build_instance(case: dict):
    family = FAMILIES[case["family"]]
    return family(int(case["n"]), effective_m(case), seed=int(case["seed"]))


def run_driver(case: dict, backend: str, jobs=None) -> Schedule:
    if backend not in BACKENDS:
        raise KeyError(backend)
    if jobs is None:
        jobs = build_instance(case).jobs
    m = effective_m(case)
    eps = float(case["eps"])
    driver = case["driver"]
    if driver == "two_approx":
        # the four genuinely distinct list-scheduling implementations
        if backend == "scalar":
            return two_approximation(jobs, m, backend="scalar").schedule
        list_backend = "wakeup" if backend == "vectorized" else backend
        return two_approximation(
            jobs, m, backend="vectorized", list_backend=list_backend
        ).schedule
    # the remaining drivers have no list-scheduling phase; the list-only
    # backends map to their vectorized path (run_case skips them there)
    effective = "vectorized" if backend in LIST_ONLY_BACKENDS else backend
    if driver == "mrt":
        return mrt_schedule(jobs, m, eps, backend=effective).schedule
    if driver == "compressible":
        return compressible_schedule(jobs, m, eps, backend=effective).schedule
    if driver == "bounded":
        return bounded_schedule(jobs, m, eps, backend=effective).schedule
    if driver == "fptas":
        return fptas_schedule(jobs, m, eps, backend=effective).schedule
    raise KeyError(driver)


def _assert_schedules_identical(
    reference: Schedule, other: Schedule, case: dict, backend: str
) -> None:
    context = f"case {case!r}, backend {backend!r} vs scalar"
    assert reference.m == other.m, context
    assert len(reference) == len(other), context
    s_names = [job.name for job in reference.jobs()]
    v_names = [job.name for job in other.jobs()]
    assert s_names == v_names, context
    if len(reference) == 0:
        return
    s_cols = reference.columns()
    v_cols = other.columns()
    assert np.array_equal(s_cols.start, v_cols.start), context
    assert np.array_equal(s_cols.processors, v_cols.processors), context
    assert np.array_equal(s_cols.duration, v_cols.duration), context
    assert np.array_equal(s_cols.span_owner, v_cols.span_owner), context
    assert np.array_equal(s_cols.span_first, v_cols.span_first), context
    assert np.array_equal(s_cols.span_end, v_cols.span_end), context


def _assert_validator_verdicts_agree(schedule: Schedule, jobs, case: dict) -> None:
    columnar = validate_schedule(schedule, jobs)
    scalar = validate_schedule(schedule, jobs, backend="scalar")
    context = f"case {case!r}"
    assert columnar.ok == scalar.ok, context
    assert columnar.violations == scalar.violations, context
    assert columnar.makespan == scalar.makespan, context
    assert columnar.peak_processors == scalar.peak_processors, context
    assert columnar.ok, f"{context}: {columnar.violations}"


def fault_plan_for(case: dict, jobs) -> FaultPlan:
    """Seed-derived fault plan for a ``faulty``-family case.

    Deterministic in the case alone (the horizon comes from the instance's
    trivial lower bound, itself seed-deterministic), so every backend of the
    comparison regenerates the identical plan.
    """
    m = effective_m(case)
    horizon = 1.5 * trivial_lower_bound(jobs, m)
    if horizon <= 0:
        horizon = 1.0
    return random_fault_plan(
        [j.name for j in jobs], m, seed=int(case["seed"]) ^ 0x5EED, horizon=horizon
    )


def run_recovery(case: dict, backend: str, jobs, plan: FaultPlan) -> RecoveryResult:
    """Run the drain-and-replan recovery loop under one backend, mirroring
    :func:`run_driver`'s backend → (backend, list_backend) mapping."""
    if backend not in BACKENDS:
        raise KeyError(backend)
    m = effective_m(case)
    eps = float(case["eps"])
    driver = case["driver"]
    if backend == "scalar":
        return recover_with_faults(jobs, m, plan, eps=eps, algorithm=driver, backend="scalar")
    if driver == "two_approx":
        list_backend = "wakeup" if backend == "vectorized" else backend
        return recover_with_faults(
            jobs, m, plan, eps=eps, algorithm=driver, backend="vectorized",
            list_backend=list_backend,
        )
    return recover_with_faults(jobs, m, plan, eps=eps, algorithm=driver, backend="vectorized")


def _run_recovery_case(case: dict) -> None:
    """The ``faulty``-family differential check: every backend must produce
    the identical *stitched* recovery schedule, agreeing validator verdicts
    on the surviving jobs, and matching degradation accounting."""
    scalar_jobs = build_instance(case).jobs
    plan = fault_plan_for(case, scalar_jobs)
    scalar = run_recovery(case, "scalar", scalar_jobs, plan)
    scalar_survivors = [j for j in scalar_jobs if j.name not in set(scalar.killed)]
    _assert_validator_verdicts_agree(scalar.schedule, scalar_survivors, case)

    for backend in BACKENDS[1:]:
        if backend in LIST_ONLY_BACKENDS and case["driver"] != "two_approx":
            continue
        jobs = build_instance(case).jobs
        result = run_recovery(case, backend, jobs, fault_plan_for(case, jobs))
        context = f"case {case!r}, backend {backend!r} vs scalar (recovery)"
        assert scalar.killed == result.killed, context
        assert scalar.makespan == result.makespan, (
            f"{context}: makespan {scalar.makespan!r} != {result.makespan!r}"
        )
        _assert_schedules_identical(scalar.schedule, result.schedule, case, backend)
        survivors = [j for j in jobs if j.name not in set(result.killed)]
        _assert_validator_verdicts_agree(result.schedule, survivors, case)
        # degradation accounting must be backend-independent (latencies and
        # probe counts legitimately differ; everything else must not)
        assert scalar.report.replans == result.report.replans, context
        assert scalar.report.fault_free_makespan == result.report.fault_free_makespan, context
        assert scalar.report.recovered_makespan == result.report.recovered_makespan, context
        assert scalar.report.work_lost == result.report.work_lost, context
        assert scalar.report.jobs_killed == result.report.jobs_killed, context
        assert scalar.report.jobs_restarted == result.report.jobs_restarted, context

        # independent cross-check: the discrete-event simulator accepts the
        # stitched schedule and reproduces its makespan
        try:
            trace = simulate_schedule(result.schedule, backend="scalar")
        except SimulationError as exc:  # pragma: no cover - a real finding
            raise AssertionError(
                f"simulator rejected a stitched recovery schedule for {context}: {exc}"
            )
        assert trace.makespan == result.schedule.makespan, context


def online_policy_for(case: dict, instance) -> dict:
    """Seed-derived epoch-policy kwargs for an ``online``-family case.

    Deterministic in the case alone (the quantum is scaled off the
    instance's seed-deterministic release span), so every backend of the
    comparison groups the identical arrival stream into identical epochs.
    """
    seed = int(case["seed"])
    kind = ("immediate", "quantum", "count")[seed % 3]
    if kind == "quantum":
        span = max(instance.releases) if instance.releases else 0.0
        if span <= 0:
            span = 1.0
        return {"policy": "quantum", "quantum": span / (2 + seed % 5)}
    if kind == "count":
        return {"policy": "count", "batch_size": 1 + seed % 4}
    return {"policy": "immediate"}


def run_online(
    case: dict, backend: str, instance, *, warm_start: bool = True
) -> OnlineResult:
    """Run the whole online arrival-epoch loop under one backend, mirroring
    :func:`run_driver`'s backend → (backend, list_backend) mapping."""
    if backend not in BACKENDS:
        raise KeyError(backend)
    m = effective_m(case)
    eps = float(case["eps"])
    driver = case["driver"]
    kwargs = online_policy_for(case, instance)
    if backend == "scalar":
        scheduler = OnlineScheduler(
            m, eps=eps, algorithm=driver, backend="scalar", warm_start=warm_start, **kwargs
        )
    elif driver == "two_approx":
        list_backend = "wakeup" if backend == "vectorized" else backend
        scheduler = OnlineScheduler(
            m, eps=eps, algorithm=driver, backend="vectorized",
            list_backend=list_backend, warm_start=warm_start, **kwargs,
        )
    else:
        scheduler = OnlineScheduler(
            m, eps=eps, algorithm=driver, backend="vectorized",
            warm_start=warm_start, **kwargs,
        )
    return scheduler.run(instance.arrivals)


def _run_online_case(case: dict) -> None:
    """The ``online``-family differential check: every backend must produce
    the identical *stitched* online schedule through the whole arrival-epoch
    loop, with agreeing validator verdicts, and warm-started re-planning
    must be bit-identical to cold re-solving while probing no more."""
    scalar_inst = build_instance(case)
    scalar = run_online(case, "scalar", scalar_inst)
    _assert_validator_verdicts_agree(scalar.schedule, scalar_inst.jobs, case)

    for backend in BACKENDS[1:]:
        if backend in LIST_ONLY_BACKENDS and case["driver"] != "two_approx":
            continue
        inst = build_instance(case)
        result = run_online(case, backend, inst)
        context = f"case {case!r}, backend {backend!r} vs scalar (online)"
        assert scalar.makespan == result.makespan, (
            f"{context}: makespan {scalar.makespan!r} != {result.makespan!r}"
        )
        _assert_schedules_identical(scalar.schedule, result.schedule, case, backend)
        _assert_validator_verdicts_agree(result.schedule, inst.jobs, case)
        # regret accounting must be backend-independent (latencies and probe
        # counts legitimately differ; everything else must not)
        assert scalar.report.replans == result.report.replans, context
        assert scalar.report.offline_makespan == result.report.offline_makespan, context
        assert scalar.report.lower_bound == result.report.lower_bound, context
        assert [e.barrier for e in scalar.report.epochs] == [
            e.barrier for e in result.report.epochs
        ], context

        # independent cross-check: the discrete-event simulator accepts the
        # stitched schedule and reproduces its makespan
        try:
            trace = simulate_schedule(result.schedule, backend="scalar")
        except SimulationError as exc:  # pragma: no cover - a real finding
            raise AssertionError(
                f"simulator rejected a stitched online schedule for {context}: {exc}"
            )
        assert trace.makespan == result.schedule.makespan, context

        if backend == "vectorized":
            # the warm-start toggle must never change the schedule, only the
            # γ-probe count (cold re-solves probe at least as much)
            cold_inst = build_instance(case)
            cold = run_online(case, "vectorized", cold_inst, warm_start=False)
            wc = f"case {case!r}, warm vs cold (online)"
            assert result.makespan == cold.makespan, wc
            _assert_schedules_identical(result.schedule, cold.schedule, case, "cold")
            if result.report.gamma_probes is not None:
                assert result.report.gamma_probes <= cold.report.gamma_probes, wc


#: Co-batch companion generators for ``mega``-family cases (kept small so a
#: mega case stays cheap; variety matters more than size here).
_MEGA_COMPANIONS = (
    random_mixed_instance,
    random_power_work_instance,
    random_communication_instance,
    random_bimodal_instance,
)


def mega_co_batch(case: dict, jobs):
    """A seed-derived random co-batch embedding the case's instance.

    Returns ``(items, pos)``: the batch items for :func:`solve_mega` and the
    index of the case's own instance within them.  Deterministic in the case
    alone, so a failing mega case replays from its corpus line.
    """
    rng = random.Random(int(case["seed"]) ^ 0x3E6A)
    eps = float(case["eps"])
    companions = []
    for _ in range(rng.randint(2, 5)):
        gen = _MEGA_COMPANIONS[rng.randrange(len(_MEGA_COMPANIONS))]
        inst = gen(rng.randint(1, 8), rng.choice([2, 8, 24, 64]), seed=rng.randrange(2**31))
        companions.append(
            SimpleNamespace(jobs=inst.jobs, m=inst.m, eps=eps, algorithm="auto")
        )
    pos = rng.randrange(len(companions) + 1)
    own = SimpleNamespace(
        jobs=jobs, m=effective_m(case), eps=eps, algorithm=case["driver"]
    )
    return companions[:pos] + [own] + companions[pos:], pos


def _run_mega_case(case: dict) -> None:
    """The ``mega``-family differential check: solving an instance inside a
    random lockstep co-batch must be bit-identical to solving it solo —
    schedule, makespan, certification numbers and validator verdicts."""
    solo_jobs = build_instance(case).jobs
    solo = schedule_moldable(
        solo_jobs, effective_m(case), float(case["eps"]), algorithm=case["driver"]
    )
    _assert_validator_verdicts_agree(solo.schedule, solo_jobs, case)

    # a fresh instance for the mega run: separate job objects rule out memo
    # pollution hiding a real divergence, exactly like the backend comparison
    mega_jobs = build_instance(case).jobs
    items, pos = mega_co_batch(case, mega_jobs)
    result = solve_mega(items)[pos]
    context = f"case {case!r}, mega co-batch (position {pos} of {len(items)})"
    assert solo.makespan == result.makespan, (
        f"{context}: makespan {solo.makespan!r} != {result.makespan!r}"
    )
    assert solo.lower_bound == result.lower_bound, context
    assert solo.guarantee == result.guarantee, context
    assert solo.algorithm == result.algorithm, context
    assert solo.eps == result.eps, context
    _assert_schedules_identical(solo.schedule, result.schedule, case, "mega")
    _assert_validator_verdicts_agree(result.schedule, mega_jobs, case)


def run_case(case: dict) -> None:
    """Execute one differential case; raises AssertionError on any mismatch.

    N-way: every backend in :data:`BACKENDS` runs on its own regenerated
    instance (the generators are seed-deterministic, and separate job
    objects rule out cross-backend memo pollution hiding a real divergence)
    and is compared against the scalar reference.  ``faulty``-family cases
    run the whole fault-recovery loop instead of a single solve; ``mega``
    cases compare a solo solve against the same instance solved inside a
    random lockstep co-batch.
    """
    if case["family"] == "faulty":
        _run_recovery_case(case)
        return
    if case["family"] == "mega":
        _run_mega_case(case)
        return
    if case["family"] == "online":
        _run_online_case(case)
        return
    scalar_jobs = build_instance(case).jobs
    scalar = run_driver(case, "scalar", scalar_jobs)
    # validator verdicts: columnar and scalar validation backends must agree
    # on every schedule, checked against the full instance (completeness too)
    _assert_validator_verdicts_agree(scalar, scalar_jobs, case)

    for backend in BACKENDS[1:]:
        if backend in LIST_ONLY_BACKENDS and case["driver"] != "two_approx":
            # identical to the vectorized run for drivers without a
            # list-scheduling phase — skip the duplicate work
            continue
        jobs = build_instance(case).jobs
        schedule = run_driver(case, backend, jobs)
        assert scalar.makespan == schedule.makespan, (
            f"makespan mismatch for case {case!r}: "
            f"scalar {scalar.makespan!r} != {backend} {schedule.makespan!r}"
        )
        _assert_schedules_identical(scalar, schedule, case, backend)
        _assert_validator_verdicts_agree(schedule, jobs, case)

        # independent cross-check: the discrete-event simulator's scalar loop
        try:
            trace = simulate_schedule(schedule, backend="scalar")
        except SimulationError as exc:  # pragma: no cover - a real finding
            raise AssertionError(
                f"simulator rejected a validated schedule for case {case!r} "
                f"(backend {backend!r}): {exc}"
            )
        assert trace.makespan == schedule.makespan, f"case {case!r}, backend {backend!r}"


def case_id(case: dict) -> str:
    """Stable short identifier for a case (used for corpus filenames)."""
    payload = json.dumps(
        {k: case[k] for k in ("driver", "family", "n", "m", "eps", "seed")},
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:10]
    return f"{case['driver']}-{case['family']}-{digest}"


def save_failure(case: dict, error: BaseException) -> Path:
    """Persist a failing case into the replay corpus (idempotent)."""
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    path = CORPUS_DIR / f"{case_id(case)}.json"
    payload = {
        "driver": case["driver"],
        "family": case["family"],
        "n": int(case["n"]),
        "m": int(case["m"]),
        "eps": float(case["eps"]),
        "seed": int(case["seed"]),
        "error": str(error)[:2000],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_corpus():
    """All persisted corpus cases, sorted for deterministic test order."""
    if not CORPUS_DIR.is_dir():
        return []
    return sorted(CORPUS_DIR.glob("*.json"))
