"""Deterministic replay of the differential regression corpus.

Every JSON file under ``tests/differential/corpus/`` is a previously found
(or hand-planted) cross-backend case: the fuzzer in
``test_cross_backend.py`` serialises failures here, and this module replays
them on every run — a hypothesis discovery only needs to happen once to be
pinned forever.  The corpus ships with seed cases covering every driver so
the replay path itself cannot rot silently.

CI runs this module as its own named step ("Differential corpus replay") so
parity regressions are visible in the workflow summary at a glance.
"""

import json

import pytest

from .harness import load_corpus, run_case

CORPUS = load_corpus()


def test_corpus_is_seeded():
    """The shipped corpus must never be empty (the replay must exercise
    every driver at least once)."""
    drivers = {json.loads(path.read_text())["driver"] for path in CORPUS}
    assert drivers == {"mrt", "compressible", "bounded", "fptas", "two_approx"}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_replay_corpus_case(path):
    case = json.loads(path.read_text())
    run_case(case)
