"""Columnar schedule assembly: ArraySchedule / schedule_from_arrays parity.

The builder's contract is *identity* with sequential ``Schedule.add``: same
entry order, same floats, same normalized span tuples, same errors.  The
hypothesis suite drives random shelf-like layouts — including multi-span
placements reusing scattered leftover machines and exactly-adjacent spans
that must merge — through both assembly paths and compares entry by entry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.job import AmdahlJob, TabulatedJob
from repro.core.schedule import Schedule
from repro.perf.schedule_builder import (
    ArraySchedule,
    ScheduleColumns,
    schedule_from_arrays,
    spans_time_overlap,
)


def make_job(i: int) -> AmdahlJob:
    return AmdahlJob(f"job-{i}", 10.0 + i, 0.1)


@st.composite
def layouts(draw):
    """(m, entries) with valid per-entry spans: disjoint, possibly adjacent."""
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=4, max_value=64))
    entries = []
    for _ in range(n_jobs):
        start = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
        k = draw(st.integers(min_value=1, max_value=3))
        firsts = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=m - 1),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
        )
        spans = []
        for j, f in enumerate(firsts):
            max_count = (firsts[j + 1] - f) if j + 1 < len(firsts) else m - f
            spans.append((f, draw(st.integers(min_value=1, max_value=max_count))))
        override = draw(st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0)))
        entries.append((start, spans, override))
    return m, entries


class TestArrayScheduleParity:
    @given(layouts())
    @settings(max_examples=120, deadline=None)
    def test_row_mode_matches_sequential_add(self, layout):
        m, rows = layout
        jobs = [make_job(i) for i in range(len(rows))]
        reference = Schedule(m=m, metadata={"src": "reference"})
        builder = ArraySchedule(m, metadata={"src": "reference"})
        for job, (start, spans, override) in zip(jobs, rows):
            reference.add(job, start, spans, duration_override=override)
            builder.append(job, start, spans, duration_override=override)
        built = builder.build()
        assert built.m == reference.m
        assert built.metadata == reference.metadata
        assert len(built.entries) == len(reference.entries)
        for a, b in zip(reference.entries, built.entries):
            assert a.job is b.job
            assert a.start == b.start
            assert a.spans == b.spans
            assert a.duration_override == b.duration_override
            assert a.duration == b.duration
        assert built.makespan == reference.makespan

    @given(layouts())
    @settings(max_examples=60, deadline=None)
    def test_block_mode_matches_sequential_add(self, layout):
        m, rows = layout
        jobs = [make_job(i) for i in range(len(rows))]
        reference = Schedule(m=m)
        span_owner, span_first, span_count = [], [], []
        for i, (job, (start, spans, override)) in enumerate(zip(jobs, rows)):
            reference.add(job, start, spans, duration_override=override)
            for f, c in spans:
                span_owner.append(i)
                span_first.append(f)
                span_count.append(c)
        built = schedule_from_arrays(
            jobs,
            m,
            np.arange(len(jobs)),
            np.array([r[0] for r in rows]),
            np.array(span_first),
            np.array(span_count),
            span_owner=np.array(span_owner),
            duration_overrides=[r[2] for r in rows],
        )
        for a, b in zip(reference.entries, built.entries):
            assert a.job is b.job and a.start == b.start and a.spans == b.spans
            assert a.duration_override == b.duration_override
        assert built.makespan == reference.makespan

    def test_multi_span_leftover_reuse(self):
        """The shelf idiom: one job on scattered leftover machines, including
        a pair of exactly-adjacent pieces that must merge into one span."""
        jobs = [make_job(i) for i in range(3)]
        reference = Schedule(m=20)
        reference.add(jobs[0], 0.0, [(0, 4)])
        reference.add(jobs[1], 2.0, [(4, 2), (9, 3), (6, 3)])  # (4,2)+(6,3) adjacent
        reference.add(jobs[2], 5.0, [(15, 2), (18, 1)])
        builder = ArraySchedule(20)
        builder.append(jobs[0], 0.0, [(0, 4)])
        builder.append(jobs[1], 2.0, [(4, 2), (9, 3), (6, 3)])
        builder.append(jobs[2], 5.0, [(15, 2), (18, 1)])
        built = builder.build()
        assert built.entries[1].spans == reference.entries[1].spans == ((4, 8),)
        assert built.entries[2].spans == ((15, 2), (18, 1))
        for a, b in zip(reference.entries, built.entries):
            assert a.spans == b.spans and a.start == b.start and a.job is b.job

    @pytest.mark.parametrize(
        "spans,start",
        [
            ([(0, 3), (2, 2)], 0.0),  # overlapping spans double-book
            ([(0, 0)], 0.0),  # non-positive count
            ([(-1, 2)], 0.0),  # negative machine index
            ([], 0.0),  # no spans at all
            ([(0, 1)], -1.0),  # negative start
        ],
    )
    def test_error_parity_with_sequential_add(self, spans, start):
        job = make_job(0)
        reference_error = builder_error = None
        try:
            Schedule(m=10).add(job, start, spans)
        except ValueError as exc:
            reference_error = str(exc)
        builder = ArraySchedule(10)
        builder.append(job, start, spans)
        try:
            builder.build()
        except ValueError as exc:
            builder_error = str(exc)
        assert reference_error is not None
        assert builder_error == reference_error

    def test_extend_columns_validates_alignment(self):
        jobs = [make_job(0)]
        builder = ArraySchedule(4)
        with pytest.raises(ValueError):
            builder.extend_columns(jobs, [0.0, 1.0], [0], [1])
        with pytest.raises(ValueError):
            builder.extend_columns(jobs, [0.0], [0, 1], [1, 1])  # owner omitted
        with pytest.raises(ValueError):
            builder.extend_columns(jobs, [0.0], [0], [1], span_owner=[3])

    def test_empty_build(self):
        built = ArraySchedule(5, metadata={"a": 1}).build()
        assert len(built) == 0
        assert built.m == 5
        assert built.metadata == {"a": 1}


class TestScheduleColumns:
    def test_columns_match_entries(self):
        jobs = [TabulatedJob("t0", [8.0, 5.0]), TabulatedJob("t1", [4.0])]
        schedule = Schedule(m=6)
        schedule.add(jobs[0], 0.0, [(0, 2)])
        schedule.add(jobs[1], 5.0, [(2, 1), (4, 2)], duration_override=9.0)
        cols = ScheduleColumns(schedule)
        assert cols.n == 2
        assert cols.start.tolist() == [0.0, 5.0]
        assert cols.duration.tolist() == [5.0, 9.0]
        assert cols.end.tolist() == [5.0, 14.0]
        assert cols.processors.tolist() == [2, 3]
        assert cols.has_override.tolist() == [False, True]
        assert cols.span_owner.tolist() == [0, 1, 1]
        assert cols.span_first.tolist() == [0, 2, 4]
        assert cols.span_end.tolist() == [2, 3, 6]


class TestSpansTimeOverlap:
    def test_disjoint_machines_no_overlap(self):
        assert spans_time_overlap(
            np.array([0, 5]), np.array([5, 10]), np.array([0.0, 0.0]), np.array([9.0, 9.0])
        ) is False

    def test_touching_times_no_overlap(self):
        assert spans_time_overlap(
            np.array([0, 0]), np.array([3, 3]), np.array([0.0, 5.0]), np.array([5.0, 8.0])
        ) is False

    def test_true_overlap_detected(self):
        assert spans_time_overlap(
            np.array([0, 1]), np.array([3, 4]), np.array([0.0, 1.0]), np.array([5.0, 6.0])
        ) is True

    def test_incidence_cap_returns_none(self):
        span_first = np.arange(10, dtype=np.int64)
        span_end = span_first + 10
        starts = np.zeros(10)
        ends = np.full(10, 1.0)
        assert (
            spans_time_overlap(span_first, span_end, starts, ends, max_incidences=3)
            is None
        )
