"""Mega-batch lockstep solving: bit-identity against solo solves.

``solve_mega`` packs many instances into one shared ``JobArrayBundle`` and
drives every dual search in lockstep; its contract is that each instance's
result is *bit-identical* to a solo ``schedule_moldable`` call — schedules,
makespans, certification numbers, validator verdicts and even the per-oracle
probe accounting.  The hypothesis test here draws random co-batches across
all seven workload families and checks exactly that; the deterministic tests
pin the packing edge cases (fallback paths, error parity, stats shape).
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import MegaBatch, MegaOracle, solve_mega
from repro.core.backend import MAX_VECTORIZED_M
from repro.core.fptas import fptas_machine_threshold
from repro.core.scheduler import schedule_moldable
from repro.core.validation import validate_schedule
from repro.perf.oracle import BatchedOracle
from repro.workloads.generators import (
    random_amdahl_instance,
    random_bimodal_instance,
    random_chain_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
    random_quantized_instance,
)

#: All seven workload families of the co-batch draw.
FAMILIES = (
    random_mixed_instance,
    random_power_work_instance,
    random_communication_instance,
    random_bimodal_instance,
    random_quantized_instance,
    random_chain_instance,
    random_amdahl_instance,
)


def _instances(specs):
    """Regenerate the specs' instances (fresh job objects every call, so the
    solo and mega runs cannot share memoised state)."""
    return [
        SimpleNamespace(
            jobs=FAMILIES[s["family"]](s["n"], s["m"], seed=s["seed"]).jobs,
            m=s["m"],
            eps=s["eps"],
            algorithm=s["algorithm"],
        )
        for s in specs
    ]


def _resolved(spec) -> str:
    """The algorithm ``schedule_moldable`` actually runs for this spec."""
    if spec["algorithm"] != "auto":
        return spec["algorithm"]
    if spec["m"] >= fptas_machine_threshold(spec["n"], spec["eps"]):
        return "fptas"
    return "bounded"


def _assert_same_schedule(solo, mega, context):
    assert solo.m == mega.m, context
    assert len(solo) == len(mega), context
    assert [j.name for j in solo.jobs()] == [j.name for j in mega.jobs()], context
    if len(solo) == 0:
        return
    a, b = solo.columns(), mega.columns()
    assert np.array_equal(a.start, b.start), context
    assert np.array_equal(a.processors, b.processors), context
    assert np.array_equal(a.duration, b.duration), context
    assert np.array_equal(a.span_owner, b.span_owner), context
    assert np.array_equal(a.span_first, b.span_first), context
    assert np.array_equal(a.span_end, b.span_end), context


@st.composite
def co_batches(draw):
    size = draw(st.integers(min_value=2, max_value=5))
    return [
        {
            "family": draw(st.integers(min_value=0, max_value=len(FAMILIES) - 1)),
            "n": draw(st.integers(min_value=1, max_value=8)),
            "m": draw(st.sampled_from([1, 2, 8, 24, 64, 256])),
            "eps": draw(st.sampled_from([0.1, 0.25, 0.5])),
            "algorithm": draw(st.sampled_from(["auto", "two_approx"])),
            "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
        }
        for _ in range(size)
    ]


class TestMegaBitIdentity:
    @given(co_batches())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_random_co_batch_matches_solo_bit_for_bit(self, specs):
        stats = {}
        mega_instances = _instances(specs)
        mega_results = solve_mega(mega_instances, stats=stats)
        solo_instances = _instances(specs)

        seg = 0
        for spec, inst, mega_inst, mega in zip(
            specs, solo_instances, mega_instances, mega_results
        ):
            context = f"spec {spec!r}"
            chosen = _resolved(spec)
            packed = chosen in ("two_approx", "fptas")
            oracle = BatchedOracle(inst.jobs, inst.m) if packed else None
            solo = schedule_moldable(
                inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm, oracle=oracle
            )
            assert solo.makespan == mega.makespan, context
            assert solo.lower_bound == mega.lower_bound, context
            assert solo.guarantee == mega.guarantee, context
            assert solo.algorithm == mega.algorithm, context
            assert solo.eps == mega.eps, context
            _assert_same_schedule(solo.schedule, mega.schedule, context)
            # validator verdicts agree (and pass) on the mega schedule
            # (validated against the job objects the mega run scheduled)
            verdict = validate_schedule(mega.schedule, mega_inst.jobs)
            assert verdict.ok, f"{context}: {verdict.violations}"
            assert verdict.makespan == solo.makespan, context
            if packed:
                # γ-probe accounting: the lockstep search must attribute the
                # *solo* probe counters to every segment, exactly
                assert stats["segments"][seg] == oracle.stats, context
                seg += 1

        assert stats["mega_size"] == seg
        if seg:
            # sanity of the round accounting: every lockstep round served at
            # least one segment request, and each request either hit the
            # segment's threshold cache or ran one γ-batch
            assert stats["gamma_rounds"] >= 1
            total_requests = sum(
                s["gamma_batches"] + s["threshold_cache_hits"]
                for s in stats["segments"]
            )
            assert total_requests >= stats["gamma_rounds"]


class TestSoloFallbacks:
    def test_tuple_inputs_and_result_order(self):
        a = random_mixed_instance(4, 16, seed=1)
        b = random_amdahl_instance(3, 8, seed=2)
        results = solve_mega([(a.jobs, a.m), (b.jobs, b.m)], eps=0.25)
        for inst, result in zip((a, b), results):
            solo = schedule_moldable(inst.jobs, inst.m, 0.25)
            assert result.makespan == solo.makespan
            assert result.algorithm == solo.algorithm

    def test_empty_instance_reports_algorithm_as_given(self):
        (result,) = solve_mega([([], 5)], algorithm="fptas")
        assert result.makespan == 0.0
        assert result.algorithm == "fptas"
        assert result.guarantee is None
        assert len(result.schedule) == 0

    def test_astronomical_m_falls_back_to_solo(self):
        inst = random_mixed_instance(4, 8, seed=3)
        m = MAX_VECTORIZED_M + 1
        stats = {}
        (result,) = solve_mega(
            [(inst.jobs, m)], algorithm="two_approx", stats=stats
        )
        solo = schedule_moldable(inst.jobs, m, algorithm="two_approx")
        assert stats["mega_size"] == 0  # not packable: scalar backend territory
        assert result.makespan == solo.makespan
        assert result.lower_bound == solo.lower_bound

    def test_non_batchable_algorithms_fall_back_to_solo(self):
        inst = random_mixed_instance(5, 8, seed=4)
        for algorithm in ("mrt", "compressible", "bounded"):
            stats = {}
            (result,) = solve_mega(
                [(inst.jobs, inst.m)], algorithm=algorithm, stats=stats
            )
            fresh = random_mixed_instance(5, 8, seed=4)
            solo = schedule_moldable(fresh.jobs, fresh.m, algorithm=algorithm)
            assert stats["mega_size"] == 0
            assert result.makespan == solo.makespan
            assert result.algorithm == algorithm

    def test_mixed_batch_keeps_instance_order(self):
        packed = random_mixed_instance(4, 64, seed=5)
        fallback = random_mixed_instance(4, 8, seed=6)
        stats = {}
        results = solve_mega(
            [
                (packed.jobs, packed.m),
                (fallback.jobs, fallback.m),
            ],
            algorithm="auto",
            eps=0.5,
            stats=stats,
        )
        assert stats["mega_size"] == 1
        assert results[0].algorithm == "fptas"
        assert results[1].algorithm == "bounded"


class TestErrorParity:
    def test_bad_m_raises_the_solo_error(self):
        with pytest.raises(ValueError, match="m must be >= 1"):
            solve_mega([([], 0)])

    def test_unknown_algorithm_raises_the_solo_error(self):
        inst = random_mixed_instance(3, 8, seed=7)
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve_mega([(inst.jobs, inst.m)], algorithm="nope")

    def test_explicit_fptas_below_threshold_raises_the_solo_error(self):
        inst = random_mixed_instance(6, 4, seed=8)
        with pytest.raises(ValueError, match="the FPTAS requires m >= 8n/eps"):
            solve_mega([(inst.jobs, 4)], algorithm="fptas")
        with pytest.raises(ValueError, match="the FPTAS requires m >= 8n/eps"):
            schedule_moldable(inst.jobs, 4, algorithm="fptas")

    def test_bad_eps_raises_the_solo_error(self):
        inst = random_mixed_instance(2, 1 << 20, seed=9)
        with pytest.raises(ValueError, match=r"eps must lie in \(0, 1\]"):
            solve_mega([(inst.jobs, 1 << 20)], eps=1.5, algorithm="fptas")


class TestMegaBatchStructure:
    def test_segments_share_one_bundle_with_offsets(self):
        from repro.perf.megabatch import _Segment

        a = random_mixed_instance(3, 8, seed=10)
        b = random_amdahl_instance(4, 16, seed=11)
        segments = [
            _Segment(0, list(a.jobs), a.m, 0.25, "two_approx", True, None),
            _Segment(1, list(b.jobs), b.m, 0.25, "two_approx", True, None),
        ]
        batch = MegaBatch(segments)
        assert (batch.segments[0].start, batch.segments[0].stop) == (0, 3)
        assert (batch.segments[1].start, batch.segments[1].stop) == (3, 7)
        assert len(batch.bundle.jobs) == 7
        for seg in batch.segments:
            # the lockstep round requires the shared kernel table: every
            # segment oracle's bundle aliases the parent's group list
            assert seg.oracle.bundle.groups is batch.bundle.groups
        oracle = MegaOracle(batch)
        (gammas_a, gammas_b) = oracle.gamma_round(
            [(batch.segments[0], 10.0), (batch.segments[1], 10.0)]
        )
        assert len(gammas_a) == 3 and len(gammas_b) == 4
        assert oracle.stats["gamma_rounds"] == 1

    def test_segment_view_matches_private_bundle(self):
        from repro.perf.arrays import JobArrayBundle
        from repro.perf.megabatch import _SegmentView

        a = random_mixed_instance(5, 8, seed=12)
        b = random_communication_instance(4, 8, seed=13)
        jobs = list(a.jobs) + list(b.jobs)
        parent = JobArrayBundle(jobs)
        view = _SegmentView(parent, 5, 9)
        private = JobArrayBundle(list(b.jobs))
        ks = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(view.eval_all(ks), private.eval_all(ks))
        idx = np.array([0, 2])
        assert np.array_equal(
            view.eval_at(idx, ks[idx]), private.eval_at(idx, ks[idx])
        )
