"""Probe-count regression tests for the γ warm-start policy.

The warm start (neighbour brackets + monotone log-space interpolation across
the sorted dual-search thresholds) must pay for itself in *probes* — per-job
``t_j(k)`` kernel evaluations inside the lockstep searches — not just in
wall-clock.  Three layers of pinning:

* warm vs cold strictly fewer probes on every Table-1 bench family, driven
  through the real ``two_approximation`` / ``fptas_schedule`` threshold
  sequences;
* exact probe counts for two small deterministic instances (any change to
  the search policy shows up here first, deliberately);
* bit-identical γ-arrays warm vs cold (the policy may only steer *where*
  the searches probe, never what they return).
"""

import numpy as np
import pytest

from repro.core.fptas import fptas_schedule
from repro.core.job import AmdahlJob, CommunicationJob, PowerLawJob
from repro.core.two_approx import two_approximation
from repro.perf.oracle import BatchedOracle
from repro.workloads.generators import (
    random_bimodal_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
)

TABLE1_FAMILIES = {
    "mixed": random_mixed_instance,
    "powerwork": random_power_work_instance,
    "comm": random_communication_instance,
    "bimodal": random_bimodal_instance,
}


class TestWarmStartBeatsColdStart:
    @pytest.mark.parametrize("family", sorted(TABLE1_FAMILIES))
    def test_two_approx_probes_strictly_fewer(self, family):
        instance = TABLE1_FAMILIES[family](24, 192, seed=5)
        warm = BatchedOracle(instance.jobs, 192)
        result_warm = two_approximation(instance.jobs, 192, oracle=warm)
        instance2 = TABLE1_FAMILIES[family](24, 192, seed=5)
        cold = BatchedOracle(instance2.jobs, 192, warm_start=False)
        result_cold = two_approximation(instance2.jobs, 192, oracle=cold)
        assert result_warm.makespan == result_cold.makespan
        assert warm.gamma_probes < cold.gamma_probes
        assert result_warm.gamma_probes == warm.gamma_probes

    @pytest.mark.parametrize("family", sorted(TABLE1_FAMILIES))
    def test_fptas_probes_strictly_fewer(self, family):
        m = 1 << 12
        instance = TABLE1_FAMILIES[family](16, m, seed=5)
        warm = BatchedOracle(instance.jobs, m)
        result_warm = fptas_schedule(instance.jobs, m, 0.5, oracle=warm)
        instance2 = TABLE1_FAMILIES[family](16, m, seed=5)
        cold = BatchedOracle(instance2.jobs, m, warm_start=False)
        result_cold = fptas_schedule(instance2.jobs, m, 0.5, oracle=cold)
        assert result_warm.makespan == result_cold.makespan
        assert warm.gamma_probes < cold.gamma_probes
        assert result_warm.gamma_probes == warm.gamma_probes

    def test_warm_probes_are_counted(self):
        instance = random_mixed_instance(24, 192, seed=5)
        oracle = BatchedOracle(instance.jobs, 192)
        two_approximation(instance.jobs, 192, oracle=oracle)
        assert oracle.stats["warm_probes"] > 0
        assert oracle.stats["warm_probes"] <= oracle.stats["oracle_evals"]

    def test_cold_start_spends_no_warm_probes(self):
        instance = random_mixed_instance(24, 192, seed=5)
        oracle = BatchedOracle(instance.jobs, 192, warm_start=False)
        two_approximation(instance.jobs, 192, oracle=oracle)
        assert oracle.stats["warm_probes"] == 0
        assert oracle.gamma_probes == oracle.stats["oracle_evals"]


class TestExactProbePins:
    """Exact probe counts for two deterministic instances.

    These are *pins*, not tolerances: any change to the bracket/interpolation
    policy must update them consciously (and justify the new numbers in the
    diff).  The threshold sequences mimic a dual search: first two far-apart
    probes, then probes landing between earlier ones.
    """

    INSTANCE1_THRESHOLDS = (8.0, 2.0, 4.0, 3.0, 3.5)
    INSTANCE2_THRESHOLDS = (20.0, 5.0, 10.0, 7.0)

    def _instance1(self):
        return [AmdahlJob(f"a{i}", t1=10.0 + i, serial_fraction=0.05) for i in range(6)]

    def _instance2(self):
        return [
            AmdahlJob("a", t1=40.0, serial_fraction=0.1),
            PowerLawJob("p", t1=36.0, alpha=0.8),
            CommunicationJob("c", t1=50.0, overhead=0.01),
            PowerLawJob("q", t1=18.0, alpha=0.6),
        ]

    def test_homogeneous_amdahl_pin(self):
        warm = BatchedOracle(self._instance1(), 64)
        for thr in self.INSTANCE1_THRESHOLDS:
            warm.gamma_array(thr)
        assert warm.gamma_probes == 101
        assert warm.stats["warm_probes"] == 32
        cold = BatchedOracle(self._instance1(), 64, warm_start=False)
        for thr in self.INSTANCE1_THRESHOLDS:
            cold.gamma_array(thr)
        assert cold.gamma_probes == 174

    def test_mixed_class_pin(self):
        warm = BatchedOracle(self._instance2(), 256)
        for thr in self.INSTANCE2_THRESHOLDS:
            warm.gamma_array(thr)
        assert warm.gamma_probes == 80
        assert warm.stats["warm_probes"] == 16
        cold = BatchedOracle(self._instance2(), 256, warm_start=False)
        for thr in self.INSTANCE2_THRESHOLDS:
            cold.gamma_array(thr)
        assert cold.gamma_probes == 120


class TestWarmColdParity:
    """The policy steers probes, never results."""

    def test_gamma_arrays_bit_identical(self):
        instance = random_mixed_instance(30, 512, seed=11)
        warm = BatchedOracle(instance.jobs, 512)
        cold = BatchedOracle(instance.jobs, 512, warm_start=False)
        for thr in np.geomspace(0.5, 500.0, 23):
            assert np.array_equal(warm.gamma_array(thr), cold.gamma_array(thr))

    def test_interpolation_survives_unsorted_threshold_order(self):
        """Thresholds arriving in arbitrary order (the dual search's probes
        are not monotone) must keep the sorted-threshold invariant intact."""
        instance = random_bimodal_instance(20, 256, seed=3)
        warm = BatchedOracle(instance.jobs, 256)
        cold = BatchedOracle(instance.jobs, 256, warm_start=False)
        for thr in (100.0, 1.0, 50.0, 2.0, 25.0, 4.0, 12.0, 8.0, 10.0, 9.0):
            assert np.array_equal(warm.gamma_array(thr), cold.gamma_array(thr))
        assert warm.gamma_probes < cold.gamma_probes
