"""Cross-oracle γ-cache priming (``BatchedOracle.prime_from``).

The recovery loop re-plans a shrinking job subset on a changing machine
count every fault epoch; ``prime_from`` carries the previous epoch's cached
γ-thresholds into the fresh oracle.  The transfers must be *exact* — a
primed oracle's ``gamma_array`` answers must be bit-identical to a cold
oracle's — because the warm-start bracket narrowing trusts cached arrays
unconditionally.
"""

import numpy as np

from repro.core.job import AmdahlJob
from repro.perf.oracle import BatchedOracle


def make_jobs(n=12):
    return [AmdahlJob(f"j{i}", 20.0 + 3.0 * i, 0.05 + 0.01 * i) for i in range(n)]


THRESHOLDS = [2.0, 3.5, 5.0, 8.0, 21.0, 40.0]


class TestPrimeFrom:
    def test_same_m_transfers_everything_exactly(self):
        jobs = make_jobs()
        src = BatchedOracle(jobs, 64)
        for t in THRESHOLDS:
            src.gamma_array(t)

        primed = BatchedOracle(jobs, 64)
        assert primed.prime_from(src) == len(THRESHOLDS)
        cold = BatchedOracle(jobs, 64, warm_start=False)
        for t in THRESHOLDS:
            before = primed.stats["gamma_batches"]
            assert np.array_equal(primed.gamma_array(t), cold.gamma_array(t))
            # cache hit, no new lockstep search
            assert primed.stats["gamma_batches"] == before

    def test_subset_of_jobs_remaps_rows(self):
        jobs = make_jobs()
        src = BatchedOracle(jobs, 64)
        for t in THRESHOLDS:
            src.gamma_array(t)
        subset = [jobs[i] for i in (7, 1, 10, 4)]  # permuted subset
        primed = BatchedOracle(subset, 64)
        assert primed.prime_from(src) == len(THRESHOLDS)
        cold = BatchedOracle(subset, 64, warm_start=False)
        for t in THRESHOLDS:
            assert np.array_equal(primed.gamma_array(t), cold.gamma_array(t))

    def test_shrinking_m_clamps_to_sentinel_exactly(self):
        jobs = make_jobs()
        src = BatchedOracle(jobs, 64)
        for t in THRESHOLDS:
            src.gamma_array(t)
        primed = BatchedOracle(jobs, 5)
        assert primed.prime_from(src) == len(THRESHOLDS)
        cold = BatchedOracle(jobs, 5, warm_start=False)
        for t in THRESHOLDS:
            assert np.array_equal(primed.gamma_array(t), cold.gamma_array(t))

    def test_growing_m_skips_sentinel_thresholds(self):
        jobs = make_jobs()
        src = BatchedOracle(jobs, 4)  # tight: low thresholds are infeasible
        for t in THRESHOLDS:
            src.gamma_array(t)
        sentinel_thresholds = [
            t for t in THRESHOLDS if (src.gamma_array(t) > 4).any()
        ]
        assert sentinel_thresholds, "fixture must exercise the skip path"

        primed = BatchedOracle(jobs, 64)
        transferred = primed.prime_from(src)
        assert transferred == len(THRESHOLDS) - len(sentinel_thresholds)
        cold = BatchedOracle(jobs, 64, warm_start=False)
        for t in THRESHOLDS:
            assert np.array_equal(primed.gamma_array(t), cold.gamma_array(t))

    def test_unknown_jobs_are_a_noop(self):
        src = BatchedOracle(make_jobs(), 64)
        src.gamma_array(5.0)
        other = BatchedOracle(make_jobs(), 64)  # fresh objects, unknown ids
        assert other.prime_from(src) == 0
        assert other._sorted_thresholds == []

    def test_empty_oracle_is_a_noop(self):
        src = BatchedOracle(make_jobs(), 64)
        src.gamma_array(5.0)
        empty = BatchedOracle([], 64)
        assert empty.prime_from(src) == 0

    def test_existing_thresholds_not_overwritten(self):
        jobs = make_jobs()
        src = BatchedOracle(jobs, 64)
        src.gamma_array(5.0)
        primed = BatchedOracle(jobs, 64)
        own = primed.gamma_array(5.0)
        assert primed.prime_from(src) == 0
        assert primed.gamma_array(5.0) is own

    def test_primed_thresholds_feed_the_warm_start(self):
        """A primed oracle must spend fewer probes on a nearby threshold
        than a completely cold oracle — the recovery loop's win."""
        jobs = make_jobs(64)
        src = BatchedOracle(jobs, 1 << 14)
        src.gamma_array(4.9)
        src.gamma_array(5.1)

        primed = BatchedOracle(jobs, 1 << 14)
        primed.prime_from(src)
        primed.gamma_array(5.0)
        primed_evals = primed.stats["oracle_evals"]

        cold = BatchedOracle(jobs, 1 << 14)
        cold.gamma_array(5.0)
        assert primed_evals < cold.stats["oracle_evals"]
