"""Unit tests for the multi-family sharded bench harness (no timing runs)."""

import json

import pytest

from repro.perf.bench import (
    ALL_ALGORITHMS,
    BenchReport,
    BenchRow,
    DEFAULT_FAMILIES,
    FAMILIES,
    TABLE1_ALGORITHMS,
    _aggregate,
    _configs,
    _normalize_families,
    check_regression,
)


def _row(algorithm, family, n, speedup, identical=True, probes=(0, 0)):
    return BenchRow(
        algorithm=algorithm,
        family=family,
        n=n,
        m=8 * n,
        eps=0.1,
        scalar_seconds=speedup,
        vectorized_seconds=1.0,
        speedup=speedup,
        scalar_makespan=1.0,
        vectorized_makespan=1.0 if identical else 2.0,
        makespans_identical=identical,
        gamma_probes_warm=probes[0],
        gamma_probes_cold=probes[1],
    )


class TestConfigs:
    def test_full_sweep_covers_all_families_and_algorithms(self):
        configs = _configs("full", list(DEFAULT_FAMILIES))
        families = {c["family"] for c in configs}
        algorithms = {c["algorithm"] for c in configs}
        assert families == set(DEFAULT_FAMILIES)
        # recovery, online arrivals, fleet-serving and the astronomical-m
        # shard ride alongside the backend sweep
        assert algorithms == set(ALL_ALGORITHMS) | {
            "recovery", "online", "serve", "huge_m", "megabatch",
        }
        # the tiny family pins every algorithm to the large-m dispatch shape
        tiny = [c for c in configs if c["family"] == "tiny_n_huge_m"]
        assert {c["algorithm"] for c in tiny} == set(ALL_ALGORITHMS)
        assert all(c["n"] == 64 and c["m"] == 1 << 22 for c in tiny)
        # gate rows exist at n >= 1000 for every non-tiny family (chain only
        # ever sweeps the candidate-index ablation)
        for family in DEFAULT_FAMILIES:
            if family in ("tiny_n_huge_m", "chain"):
                continue
            assert any(
                c["algorithm"] == "fptas" and c["family"] == family and c["n"] >= 1000
                for c in configs
            )
            assert any(
                c["algorithm"] == "two_approx" and c["family"] == family and c["n"] >= 1000
                for c in configs
            )

    def test_chain_family_sweeps_only_the_index_ablation(self):
        configs = _configs("full", list(DEFAULT_FAMILIES))
        chain = [c for c in configs if c["family"] == "chain"]
        assert chain and all(c["algorithm"] == "list_schedule_indexed" for c in chain)
        assert any(c["n"] >= 1000 for c in chain)
        # the deep-queue shape: n well above m
        assert all(c["n"] >= 8 * c["m"] for c in chain)
        smoke = [
            c
            for c in _configs("smoke", list(DEFAULT_FAMILIES))
            if c["algorithm"] == "list_schedule_indexed"
        ]
        assert any(c["family"] == "chain" and c["n"] >= 1000 for c in smoke)

    def test_smoke_round_robins_families(self):
        families = list(DEFAULT_FAMILIES)
        configs = _configs("smoke", families)
        table1 = [c for c in configs if c["algorithm"] in TABLE1_ALGORITHMS]
        assert [c["family"] for c in table1] == families[: len(table1)]
        # every requested family appears somewhere in the smoke run
        assert {c["family"] for c in configs} == set(families)
        # the gate rows stay at n >= 1000
        for algorithm in ("fptas", "two_approx"):
            rows = [c for c in configs if c["algorithm"] == algorithm]
            assert any(c["n"] >= 1000 for c in rows)

    def test_fptas_rows_respect_machine_threshold(self):
        for mode in ("smoke", "full"):
            for c in _configs(mode, list(DEFAULT_FAMILIES)):
                if c["algorithm"] == "fptas":
                    assert c["m"] >= 8 * c["n"] / 0.5

    def test_list_schedule_rows_present_at_gate_sizes(self):
        for mode in ("smoke", "full"):
            configs = _configs(mode, list(DEFAULT_FAMILIES))
            rows = [c for c in configs if c["algorithm"] == "list_schedule"]
            assert any(c["n"] >= 1000 for c in rows), mode

    def test_recovery_rows_present_in_both_modes(self):
        for mode in ("smoke", "full"):
            configs = _configs(mode, list(DEFAULT_FAMILIES))
            rows = [c for c in configs if c["algorithm"] == "recovery"]
            assert rows, mode
            # recovery is an end-to-end loop on a moderate cluster, never
            # the tiny_n_huge_m / chain coverage shapes
            assert all(c["family"] not in ("tiny_n_huge_m", "chain") for c in rows)

    def test_online_rows_present_in_both_modes(self):
        for mode in ("smoke", "full"):
            configs = _configs(mode, list(DEFAULT_FAMILIES))
            rows = [c for c in configs if c["algorithm"] == "online"]
            assert rows, mode
            # the online loop, like recovery, runs on a moderate cluster,
            # never the tiny_n_huge_m / chain coverage shapes
            assert all(c["family"] not in ("tiny_n_huge_m", "chain") for c in rows)

    def test_huge_m_rows_present_in_both_modes(self):
        from repro.perf.bench import _HUGE_MS

        for mode in ("smoke", "full"):
            configs = _configs(mode, list(DEFAULT_FAMILIES))
            rows = [c for c in configs if c["algorithm"] == "huge_m"]
            # one row per astronomical machine count, straddling the exact
            # float boundary (2^53 + 1) and both wide-tier magnitudes
            assert {c["m"] for c in rows} == set(_HUGE_MS), mode
            assert min(_HUGE_MS) == (1 << 53) + 1
            assert max(_HUGE_MS) > 1 << 62
            # normal workload families only: the capacity tier is what the
            # row varies, not the instance shape
            assert all(c["family"] not in ("tiny_n_huge_m", "chain") for c in rows)

    def test_megabatch_rows_present_in_both_modes(self):
        from repro.perf.bench import _MEGA_FLEETS

        for mode in ("smoke", "full"):
            configs = _configs(mode, list(DEFAULT_FAMILIES))
            rows = [c for c in configs if c["algorithm"] == "megabatch"]
            # one row per fleet size, including at least one at the gated
            # fleet >= 32 regime, all on small-n instances (the lockstep
            # amortisation target)
            assert {c["fleet"] for c in rows} == set(_MEGA_FLEETS), mode
            assert max(_MEGA_FLEETS) >= 32
            assert all(c["n"] <= 16 for c in rows)
            assert all(c["family"] not in ("tiny_n_huge_m", "chain") for c in rows)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            _normalize_families(["mixed", "nope"])

    def test_family_registry_generators_work(self):
        for name, generator in FAMILIES.items():
            instance = generator(6, 48, seed=1)
            assert instance.n == 6


class TestAggregatesAndGate:
    def _report(self, rows):
        report = BenchReport(mode="full", seed=1, rows=rows)
        report.identical_makespans = all(r.makespans_identical for r in rows)
        report.aggregates = _aggregate(rows)
        return report

    def test_assembly_geomean_aggregate(self):
        rows = [
            _row("fptas", "mixed", 1000, 8.0),
            _row("fptas", "comm", 2000, 18.0),
            _row("two_approx", "mixed", 2000, 9.0),
            _row("two_approx", "tiny", 64, 0.5),  # small n excluded
        ]
        aggregates = _aggregate(rows)
        assert aggregates["fptas_two_approx_geomean_n1000"] == pytest.approx(
            (8.0 * 18.0 * 9.0) ** (1 / 3)
        )
        # the gated variant only counts Table-1 (mixed-family) rows
        assert aggregates["fptas_two_approx_table1_geomean_n1000"] == pytest.approx(
            (8.0 * 9.0) ** (1 / 2)
        )
        assert aggregates["speedup_fptas_n1000"] == pytest.approx(12.0)

    def test_floor_gate_fails_below_eight(self, tmp_path):
        rows = [_row("fptas", "mixed", 2000, 5.0), _row("two_approx", "mixed", 2000, 5.0)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(report, str(baseline))
        assert any("columnar-assembly floor" in f for f in failures)
        assert not check_regression(
            report, str(baseline), min_fptas_two_approx=None
        )

    def test_relative_regression_detected(self, tmp_path):
        rows = [_row("mrt", "mixed", 1000, 4.0)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {"speedup_mrt": 20.0}}))
        failures = check_regression(report, str(baseline), min_fptas_two_approx=None)
        assert any("speedup_mrt" in f for f in failures)

    def test_makespan_mismatch_fails_gate(self, tmp_path):
        rows = [_row("mrt", "mixed", 1000, 10.0, identical=False)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(report, str(baseline), min_fptas_two_approx=None)
        assert any("different makespans" in f for f in failures)

    def test_makespan_mismatch_names_the_offending_rows(self, tmp_path):
        """A red gate must point at the failing algorithm/family pair, not
        just report the aggregate verdict."""
        rows = [
            _row("mrt", "mixed", 1000, 10.0),
            _row("fptas", "bimodal", 2000, 9.0, identical=False),
        ]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        message = "\n".join(failures)
        assert "fptas/bimodal" in message
        assert "n=2000" in message
        assert "mrt/mixed" not in message

    def test_assembly_floor_failure_names_contributing_rows(self, tmp_path):
        rows = [
            _row("fptas", "mixed", 2000, 3.0),
            _row("two_approx", "mixed", 2000, 5.0),
        ]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(report, str(baseline), min_list_schedule=None)
        message = "\n".join(failures)
        assert "columnar-assembly floor" in message
        # slowest row first, both named
        assert message.index("fptas/mixed") < message.index("two_approx/mixed")
        assert "3.00x" in message and "5.00x" in message

    def test_list_schedule_floor_gate(self, tmp_path):
        rows = [_row("list_schedule", "mixed", 2000, 1.3)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(report, str(baseline), min_fptas_two_approx=None)
        message = "\n".join(failures)
        assert "event-queue floor" in message and "list_schedule/mixed" in message
        assert not check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        assert not check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=1.0
        )

    def test_relative_regression_failure_names_rows(self, tmp_path):
        rows = [_row("mrt", "comm", 1000, 4.0)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {"speedup_mrt": 20.0}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        assert any("mrt/comm" in f for f in failures)

    def test_gamma_probe_aggregates(self):
        rows = [
            _row("fptas", "mixed", 2000, 10.0, probes=(300, 1000)),
            _row("two_approx", "mixed", 2000, 9.0, probes=(100, 1000)),
            _row("mrt", "mixed", 1000, 5.0),
        ]
        aggregates = _aggregate(rows)
        assert aggregates["gamma_probes_warm_total"] == 400.0
        assert aggregates["gamma_probes_cold_total"] == 2000.0
        assert aggregates["gamma_probe_reduction"] == pytest.approx(0.8)

    def test_gamma_probe_aggregates_absent_without_instrumented_rows(self):
        aggregates = _aggregate([_row("mrt", "mixed", 1000, 5.0)])
        assert "gamma_probe_reduction" not in aggregates

    def _indexed_row(self, speedup, visits=(100_000, 1_000), n=2000):
        row = _row("list_schedule_indexed", "chain", n, speedup)
        row.m = max(64, n // 16)
        row.candidate_visits_scan, row.candidate_visits_indexed = visits
        return row

    def test_candidate_visit_aggregates(self):
        rows = [
            self._indexed_row(1.6, visits=(80_000, 2_000)),
            self._indexed_row(1.4, visits=(20_000, 3_000), n=1000),
            _row("mrt", "mixed", 1000, 5.0),
        ]
        aggregates = _aggregate(rows)
        assert aggregates["candidate_visits_scan_total"] == 100_000.0
        assert aggregates["candidate_visits_indexed_total"] == 5_000.0
        assert aggregates["candidate_visit_reduction"] == pytest.approx(0.95)
        assert "candidate_visit_reduction" not in _aggregate(rows[-1:])

    def test_indexed_floor_gate_names_rows_and_counters(self, tmp_path):
        """The candidate-index floor failure must name the offending rows
        *with* their scan/indexed visit counters, like γ-probe reporting."""
        report = self._report([self._indexed_row(1.1)])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        message = "\n".join(failures)
        assert "candidate-index floor" in message
        assert "list_schedule_indexed/chain" in message
        assert "visits scan 100000" in message and "indexed 1000" in message
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_list_schedule_indexed=None,
            min_visit_reduction=None,
        )

    def test_visit_reduction_gate(self, tmp_path):
        report = self._report([self._indexed_row(1.6, visits=(100_000, 80_000))])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_list_schedule_indexed=None,
        )
        message = "\n".join(failures)
        assert "admission-query floor" in message
        assert "scan 100000 vs indexed 80000" in message

    def _recovery_row(self, probes=(120, 1000), replans=4, warm_seconds=0.5):
        row = _row("recovery", "mixed", 80, 1.0)
        row.m = 64
        row.gamma_probes_warm, row.gamma_probes_cold = probes
        row.replans = replans
        row.vectorized_seconds = warm_seconds
        return row

    def test_recovery_aggregates(self):
        rows = [
            self._recovery_row(probes=(100, 800), replans=3, warm_seconds=0.5),
            self._recovery_row(probes=(100, 200), replans=5, warm_seconds=1.5),
            # fptas probes must stay out of the recovery aggregate (and the
            # recovery probes out of gamma_probe_reduction)
            _row("fptas", "mixed", 2000, 10.0, probes=(300, 1000)),
        ]
        aggregates = _aggregate(rows)
        assert aggregates["recovery_probes_warm_total"] == 200.0
        assert aggregates["recovery_probes_cold_total"] == 1000.0
        assert aggregates["recovery_probe_reduction"] == pytest.approx(0.8)
        assert aggregates["recovery_replans_total"] == 8.0
        assert aggregates["recovery_replans_per_sec"] == pytest.approx(4.0)
        assert aggregates["gamma_probes_warm_total"] == 300.0
        assert aggregates["gamma_probes_cold_total"] == 1000.0
        assert "recovery_probe_reduction" not in _aggregate(rows[-1:])

    def test_recovery_floor_gate_names_rows_and_counters(self, tmp_path):
        report = self._report([self._recovery_row(probes=(700, 1000))])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        message = "\n".join(failures)
        assert "re-plan warm-start floor" in message
        assert "recovery/mixed" in message
        assert "warm 700 vs cold 1000" in message and "4 re-plans" in message
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_recovery=None,
        )
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_recovery=0.25,
        )

    def _online_row(self, probes=(120, 1000), replans=6, warm_seconds=0.5):
        row = _row("online", "mixed", 80, 1.0)
        row.m = 64
        row.gamma_probes_warm, row.gamma_probes_cold = probes
        row.replans = replans
        row.vectorized_seconds = warm_seconds
        return row

    def test_online_aggregates(self):
        rows = [
            self._online_row(probes=(150, 900), replans=4, warm_seconds=0.5),
            self._online_row(probes=(50, 100), replans=6, warm_seconds=1.5),
            # recovery probes must stay out of the online aggregate and
            # vice versa — same counters, different warm-start policies
            self._recovery_row(probes=(100, 800)),
        ]
        aggregates = _aggregate(rows)
        assert aggregates["online_probes_warm_total"] == 200.0
        assert aggregates["online_probes_cold_total"] == 1000.0
        assert aggregates["online_probe_reduction"] == pytest.approx(0.8)
        assert aggregates["online_replans_total"] == 10.0
        assert aggregates["online_replans_per_sec"] == pytest.approx(5.0)
        assert aggregates["recovery_probes_cold_total"] == 800.0
        assert "online_probe_reduction" not in _aggregate(rows[-1:])

    def test_online_floor_gate_names_rows_and_counters(self, tmp_path):
        report = self._report([self._online_row(probes=(700, 1000))])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        message = "\n".join(failures)
        assert "arrival-epoch warm-start floor" in message
        assert "online/mixed" in message
        assert "warm 700 vs cold 1000" in message and "6 re-plans" in message
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_online=None,
        )
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_online=0.25,
        )

    def _mega_row(self, speedup, fleet=32):
        row = _row("megabatch", "mixed", 6, speedup)
        row.m = 48
        row.mega_fleet = fleet
        return row

    def test_megabatch_aggregates_gate_on_large_fleets_only(self):
        rows = [
            self._mega_row(2.0, fleet=8),
            self._mega_row(3.0, fleet=32),
            self._mega_row(12.0, fleet=128),
            _row("mrt", "mixed", 1000, 5.0),
        ]
        aggregates = _aggregate(rows)
        # the gated geomean reads fleet >= 32 rows only; the small-fleet row
        # still contributes to the recorded curve
        assert aggregates["megabatch_speedup"] == pytest.approx(6.0)
        assert aggregates["megabatch_speedup_all"] == pytest.approx(
            (2.0 * 3.0 * 12.0) ** (1 / 3)
        )
        # megabatch rows are solo-vs-lockstep, not a backend ratio: they must
        # stay out of the per-algorithm and all-row backend speedups
        assert "speedup_megabatch" not in aggregates
        assert aggregates["speedup_geomean_all"] == pytest.approx(5.0)
        assert "megabatch_speedup" not in _aggregate(rows[-1:])

    def test_megabatch_floor_gate_names_rows_and_fleets(self, tmp_path):
        report = self._report(
            [self._mega_row(1.2, fleet=32), self._mega_row(1.8, fleet=128)]
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_list_schedule=None
        )
        message = "\n".join(failures)
        assert "mega-batch lockstep floor" in message
        assert "megabatch/mixed" in message
        assert "fleet=32" in message and "fleet=128" in message
        # slowest row first
        assert message.index("1.20x") < message.index("1.80x")
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_megabatch=None,
        )
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_megabatch=1.0,
        )

    def test_stale_baseline_missing_row_fails_with_named_message(self, tmp_path):
        """A baseline that predates freshly added rows must fail the gate
        with a message naming the missing aggregate and its rows — not pass
        silently and not raise a KeyError."""
        rows = [_row("mrt", "mixed", 1000, 5.0), self._indexed_row(1.6)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        # an old baseline: knows mrt, predates list_schedule_indexed
        baseline.write_text(
            json.dumps({"aggregates": {"speedup_mrt": 5.0, "speedup_mrt_n1000": 5.0}})
        )
        failures = check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_list_schedule_indexed=None,
            min_visit_reduction=None,
        )
        message = "\n".join(failures)
        assert "speedup_list_schedule_indexed" in message
        assert "no reference" in message and "re-record" in message
        assert "list_schedule_indexed/chain" in message
        # a deliberately aggregate-free baseline still means "floors only"
        baseline.write_text(json.dumps({"aggregates": {}}))
        assert not check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_list_schedule=None,
            min_list_schedule_indexed=None,
            min_visit_reduction=None,
        )


class TestShardedRun:
    def test_pool_rows_match_sequential(self):
        """The pooled run must merge per-shard rows in configuration order
        with identical (deterministic) makespans — only timings may differ."""
        from repro.perf.bench import run_suite

        sequential = run_suite(
            "smoke", seed=3, repeat=1, verbose=False, families=["mixed"], processes=1
        )
        pooled = run_suite(
            "smoke", seed=3, repeat=1, verbose=False, families=["mixed"], processes=2
        )
        assert [r.algorithm for r in pooled.rows] == [r.algorithm for r in sequential.rows]
        assert [r.scalar_makespan for r in pooled.rows] == [
            r.scalar_makespan for r in sequential.rows
        ]
        assert pooled.identical_makespans and sequential.identical_makespans


class TestSmokeFamilySelection:
    def test_tiny_only_smoke_never_sweeps_excluded_families(self):
        configs = _configs("smoke", ["tiny_n_huge_m"])
        assert {c["family"] for c in configs} == {"tiny_n_huge_m"}
        assert {c["algorithm"] for c in configs} >= {"fptas", "two_approx"}

    def test_non_mixed_gate_rows_use_requested_family(self):
        configs = _configs("smoke", ["comm"])
        gates = [c for c in configs if c["algorithm"] in ("fptas", "two_approx")]
        assert all(c["family"] == "comm" for c in gates)
        assert any(c["n"] >= 1000 for c in gates)


def _serve_bench_row(
    healthy=1.0, chaos=4.0, instances=12, degraded=1, quarantined=0, identical=True
):
    return BenchRow(
        algorithm="serve",
        family="mixed",
        n=40,
        m=64,
        eps=0.1,
        scalar_seconds=healthy,
        vectorized_seconds=chaos,
        speedup=healthy / chaos,
        scalar_makespan=100.0,
        vectorized_makespan=100.0 if identical else 101.0,
        makespans_identical=identical,
        serve_instances=instances,
        serve_degraded=degraded,
        serve_quarantined=quarantined,
    )


class TestServeRowsAndPoolTimeout:
    def _report(self, rows):
        report = BenchReport(mode="full", seed=1, rows=rows)
        report.identical_makespans = all(r.makespans_identical for r in rows)
        report.aggregates = _aggregate(rows)
        return report

    def test_serve_rows_feed_throughput_not_speedups(self):
        rows = [_row("fptas", "mixed", 2000, 12.0), _serve_bench_row()]
        aggregates = _aggregate(rows)
        # the healthy/chaos wall-clock pair is not a backend ratio: no
        # speedup aggregate, and the all-row geomean ignores it
        assert "speedup_serve" not in aggregates
        assert aggregates["speedup_geomean_all"] == pytest.approx(12.0)
        assert aggregates["serve_throughput_healthy"] == pytest.approx(12.0)
        assert aggregates["serve_throughput_chaos"] == pytest.approx(3.0)
        assert aggregates["serve_instances_total"] == 12.0
        assert aggregates["serve_degraded_total"] == 1.0
        assert aggregates["serve_quarantined_total"] == 0.0

    def test_serve_throughput_floor_names_rows(self, tmp_path):
        rows = [_serve_bench_row(healthy=1.0, chaos=60.0)]
        report = self._report(rows)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"aggregates": {}}))
        failures = check_regression(
            report,
            str(baseline),
            min_fptas_two_approx=None,
            min_serve_throughput=0.5,
        )
        message = "\n".join(failures)
        assert "serve_throughput_chaos" in message
        assert "serve/mixed" in message
        assert "1 degraded, 0 quarantined" in message
        # the healthy leg (12 instances/s) clears the floor
        assert "serve_throughput_healthy" not in message
        assert not check_regression(
            report, str(baseline), min_fptas_two_approx=None, min_serve_throughput=None
        )

    def test_collect_pool_rows_times_out_with_named_rows(self):
        from repro.perf.bench import BenchShardTimeout, _collect_pool_rows

        class _Hung:
            def get(self, timeout=None):
                import multiprocessing as mp

                raise mp.TimeoutError

        class _Done:
            def __init__(self, row):
                self.row = row

            def get(self, timeout=None):
                return self.row

        fast = ({"algorithm": "mrt", "family": "mixed", "n": 100, "m": 800}, 1, 1)
        hung = ({"algorithm": "fptas", "family": "comm", "n": 2000, "m": 16000}, 1, 1)
        handles = [(fast, _Done(_row("mrt", "mixed", 100, 2.0))), (hung, _Hung())]
        with pytest.raises(BenchShardTimeout) as excinfo:
            _collect_pool_rows(handles, 0.01)
        assert "fptas/comm (n=2000, m=16000)" in str(excinfo.value)
        assert "mrt/mixed" not in str(excinfo.value)

    def test_collect_pool_rows_no_timeout(self):
        from repro.perf.bench import _collect_pool_rows

        row = _row("mrt", "mixed", 100, 2.0)
        task = ({"algorithm": "mrt", "family": "mixed", "n": 100, "m": 800}, 1, 1)

        class _Done:
            def get(self, timeout=None):
                assert timeout is None  # shard_timeout=None disables the deadline
                return row

        assert _collect_pool_rows([(task, _Done())], None) == [row]
