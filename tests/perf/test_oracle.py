"""Unit tests for the perf subsystem itself: the batched oracle's caches and
instrumentation, the job-memo eviction fix, and the simulator/validator
tolerance alignment regression."""

import numpy as np
import pytest

from repro.core.allotment import Allotment, gamma
from repro.core.job import AmdahlJob, OracleJob, TabulatedJob
from repro.core.list_scheduling import list_schedule
from repro.core.schedule import Schedule
from repro.core.validation import validate_schedule
from repro.perf.arrays import JobArrayBundle
from repro.perf.oracle import BatchedOracle
from repro.simulator.engine import SimulationError, simulate_schedule


class TestBatchedOracleCaches:
    def test_threshold_cache_hit(self):
        jobs = [AmdahlJob(f"a{i}", 10.0 + i, 0.1) for i in range(8)]
        oracle = BatchedOracle(jobs, 128)
        first = oracle.gamma_array(5.0)
        again = oracle.gamma_array(5.0)
        assert again is first
        assert oracle.stats["threshold_cache_hits"] == 1
        assert oracle.stats["gamma_batches"] == 1

    def test_gamma_arrays_are_read_only(self):
        oracle = BatchedOracle([AmdahlJob("a", 10.0, 0.1)], 16)
        arr = oracle.gamma_array(2.0)
        with pytest.raises(ValueError):
            arr[0] = 1

    def test_breakpoint_cache_reduces_bisection_work(self):
        """A threshold bracketed by two cached neighbours must need fewer
        oracle evaluations than a cold lockstep search."""
        jobs = [AmdahlJob(f"a{i}", 50.0 + i, 0.02) for i in range(64)]
        oracle_cold = BatchedOracle(jobs, 1 << 16)
        oracle_cold.gamma_array(3.0)
        cold_evals = oracle_cold.stats["oracle_evals"]

        oracle_warm = BatchedOracle(jobs, 1 << 16)
        oracle_warm.gamma_array(2.9)
        oracle_warm.gamma_array(3.1)
        before = oracle_warm.stats["oracle_evals"]
        oracle_warm.gamma_array(3.0)
        warm_evals = oracle_warm.stats["oracle_evals"] - before
        assert warm_evals < cold_evals

    def test_mixed_bundle_includes_fallback(self):
        jobs = [AmdahlJob("a", 10.0, 0.1), OracleJob("o", lambda k: 10.0 / k)]
        bundle = JobArrayBundle(jobs)
        assert 0.0 < bundle.vectorized_fraction < 1.0
        got = bundle.eval_all(np.array([4.0, 4.0]))
        assert got[0] == jobs[0].processing_time(4)
        assert got[1] == jobs[1].processing_time(4)

    def test_oracle_rejects_mismatched_m(self):
        jobs = [AmdahlJob("a", 10.0, 0.1)]
        oracle = BatchedOracle(jobs, 16)
        with pytest.raises(ValueError):
            oracle.gamma(jobs[0], 5.0, 32)

    def test_astronomical_m_falls_back_to_scalar(self):
        """The compact input encoding allows m beyond int64; the vectorized
        default must silently use the scalar path there, not overflow."""
        from repro.core.backend import MAX_VECTORIZED_M, resolve_backend
        from repro.core.fptas import fptas_schedule

        jobs = [AmdahlJob(f"a{i}", 10.0 + i, 0.1) for i in range(4)]
        m = 10 ** 25
        backend, oracle = resolve_backend(jobs, m, "vectorized", None)
        assert backend == "scalar" and oracle is None
        assert m > MAX_VECTORIZED_M
        result = fptas_schedule(jobs, m, 0.5)  # default backend="vectorized"
        assert result.makespan == fptas_schedule(jobs, m, 0.5, backend="scalar").makespan
        with pytest.raises(ValueError):
            BatchedOracle(jobs, m)

    def test_oracle_m_guard_sits_on_the_int64_contract_boundary(self):
        """The oracle funnels counts through float64 (``float(self.m)`` in
        ``tm``, broadcasts in ``works_at``/``times_at``), so its guard must be
        the capacity-tier int64 contract boundary (2^62) — not the raw int64
        ceiling, where the lossy cast would silently round m."""
        from repro.core.backend import MAX_VECTORIZED_M, resolve_backend
        from repro.core.capacity import MAX_COLUMNAR_M

        jobs = [AmdahlJob(f"a{i}", 10.0 + i, 0.1) for i in range(3)]
        assert MAX_VECTORIZED_M == MAX_COLUMNAR_M == 1 << 62

        accepted = BatchedOracle(jobs, 1 << 62)
        assert accepted.m == 1 << 62

        with pytest.raises(ValueError, match="use the scalar backend"):
            BatchedOracle(jobs, (1 << 62) + 1)

        backend, oracle = resolve_backend(jobs, 1 << 62, "vectorized", None)
        assert backend == "vectorized" and oracle is not None
        backend, oracle = resolve_backend(jobs, (1 << 62) + 1, "vectorized", None)
        assert backend == "scalar" and oracle is None

    def test_supplied_oracle_implies_vectorized(self):
        """Passing an oracle to a dual step must use it even though the dual
        functions default to backend='scalar'."""
        from repro.core.backend import resolve_backend
        from repro.core.mrt import mrt_dual

        jobs = [AmdahlJob(f"a{i}", 10.0 + i, 0.1) for i in range(6)]
        oracle = BatchedOracle(jobs, 32)
        backend, resolved = resolve_backend(jobs, 32, "scalar", oracle)
        assert backend == "vectorized" and resolved is oracle
        schedule = mrt_dual(jobs, 32, 20.0, oracle=oracle)
        assert schedule is not None
        assert oracle.stats["gamma_batches"] > 0
        with pytest.raises(ValueError):
            resolve_backend(jobs, 64, "scalar", oracle)

    def test_sequential_sum_matches_builtin(self):
        values = np.array([0.1, 0.2, 0.7, 1e-9, 3.3])
        assert BatchedOracle.sequential_sum(values) == sum(values.tolist())


class TestMemoEviction:
    def test_eviction_keeps_memoising_new_counts(self):
        calls = []

        def expensive(k):
            calls.append(k)
            return 100.0 / k

        job = OracleJob("o", expensive)
        capacity = job.MEMO_CAPACITY
        for k in range(1, capacity + 10):
            job.processing_time(k)
        stats = job.memo_stats()
        assert stats["size"] == capacity
        assert stats["evictions"] == 9
        # a recently evaluated count is still cached (the old behaviour
        # re-evaluated every count beyond the cap forever)
        before = len(calls)
        job.processing_time(capacity + 9)
        assert len(calls) == before

    def test_oldest_entry_evicted_first(self):
        job = OracleJob("o", lambda k: 100.0 / k)
        for k in range(1, job.MEMO_CAPACITY + 2):
            job.processing_time(k)
        assert 1 not in job._cache
        assert job.MEMO_CAPACITY + 1 in job._cache

    def test_hits_refresh_recency_once_full(self):
        """Hot anchors (t(1), t(m)) must survive long sweeps: at capacity the
        memo is LRU, so a hit protects the entry from the next eviction."""
        job = OracleJob("o", lambda k: 100.0 / k)
        for k in range(1, job.MEMO_CAPACITY + 1):
            job.processing_time(k)
        job.processing_time(1)  # refresh while full
        job.processing_time(job.MEMO_CAPACITY + 1)  # forces one eviction
        assert 1 in job._cache
        assert 2 not in job._cache


class TestSimulatorValidatorTolerance:
    def _sequential_schedule(self, shift):
        jobs = [TabulatedJob("j0", [7.0]), TabulatedJob("j1", [5.0])]
        allot = Allotment({jobs[0]: 1, jobs[1]: 1})
        schedule = list_schedule(jobs, allot, 1)
        corrupted = Schedule(m=1)
        for i, e in enumerate(schedule.entries):
            corrupted.add(e.job, e.start - shift if i == 1 else e.start, e.spans)
        return jobs, corrupted

    def test_sub_tolerance_shift_accepted_by_both(self):
        jobs, corrupted = self._sequential_schedule(shift=1e-11)
        assert validate_schedule(corrupted, jobs).ok
        simulate_schedule(corrupted)  # must not raise

    def test_real_overlap_rejected_by_both(self):
        jobs, corrupted = self._sequential_schedule(shift=0.5)
        assert not validate_schedule(corrupted, jobs).ok
        with pytest.raises(SimulationError):
            simulate_schedule(corrupted)


class TestOracleJobVectorizedHook:
    def _hooked_jobs(self, n=6):
        import math

        jobs = []
        for i in range(n):
            t1 = 20.0 + i
            jobs.append(
                OracleJob(
                    f"h{i}",
                    lambda k, t1=t1: t1 / math.sqrt(k),
                    times_vectorized=lambda ks, t1=t1: t1 / np.sqrt(ks),
                )
            )
        return jobs

    def test_hook_used_by_times_for(self):
        job = self._hooked_jobs(1)[0]
        got = job.times_for([1, 4, 9])
        want = [job.processing_time(k) for k in (1, 4, 9)]
        assert got.tolist() == want

    def test_hooked_jobs_count_as_vectorized(self):
        bundle = JobArrayBundle(self._hooked_jobs())
        assert bundle.vectorized_fraction == 1.0

    def test_plain_oracle_jobs_still_fall_back(self):
        bundle = JobArrayBundle([OracleJob("plain", lambda k: 9.0 / k)])
        assert bundle.vectorized_fraction == 0.0

    def test_bundle_eval_matches_scalar(self):
        jobs = self._hooked_jobs() + [OracleJob("plain", lambda k: 9.0 / k)]
        bundle = JobArrayBundle(jobs)
        ks = np.array([1.0, 2.0, 5.0, 9.0, 3.0, 4.0, 2.0])
        got = bundle.eval_all(ks)
        want = np.array([j.processing_time(int(k)) for j, k in zip(jobs, ks)])
        assert (got == want).all()

    def test_gamma_parity_with_hooked_jobs(self):
        jobs = self._hooked_jobs()
        oracle = BatchedOracle(jobs, 256)
        for threshold in (2.0, 3.5, 7.0, 1.1):
            arr = oracle.gamma_array(threshold)
            for i, job in enumerate(jobs):
                g = gamma(job, threshold, 256)
                assert (g if g is not None else 257) == arr[i]

    def test_one_hook_call_per_job(self):
        calls = []

        def make(i, t1):
            def vec(ks, t1=t1):
                calls.append(i)
                return t1 / ks

            return OracleJob(f"c{i}", lambda k, t1=t1: t1 / k, times_vectorized=vec)

        jobs = [make(i, 10.0 + i) for i in range(3)]
        bundle = JobArrayBundle(jobs)
        bundle.eval_at(
            np.array([0, 1, 2, 0, 1, 2, 0]),
            np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]),
        )
        assert sorted(calls) == [0, 1, 2]
