"""Scalar-vs-vectorized parity: the vectorized oracle layer must reproduce
the scalar reference paths bit for bit.

Covers, per the perf-subsystem contract:

* ``MoldableJob.times_for`` and the cross-job ``JobArrayBundle`` kernels
  against ``processing_time`` for every job class;
* ``gamma_batch`` / ``BatchedOracle.gamma_array`` (including bracket reuse
  across successive thresholds) against the scalar binary search;
* the array knapsack DPs against the Python dominance-list / dense-table
  engines;
* whole-algorithm runs: identical makespans from both backends.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allotment import gamma, gamma_batch
from repro.core.bounded_algorithm import bounded_schedule
from repro.core.bounds import ludwig_tiwari_estimator
from repro.core.compressible_algorithm import compressible_schedule
from repro.core.fptas import fptas_schedule
from repro.core.job import (
    AmdahlJob,
    CommunicationJob,
    OracleJob,
    PowerLawJob,
    RigidJob,
    TabulatedJob,
)
from repro.core.mrt import mrt_schedule
from repro.core.two_approx import two_approximation
from repro.knapsack.compressible import solve_compressible_knapsack
from repro.knapsack.dp import solve_knapsack, solve_knapsack_dense
from repro.knapsack.items import KnapsackItem
from repro.perf.arrays import JobArrayBundle
from repro.perf.oracle import BatchedOracle


# --------------------------------------------------------------------------
# Job strategies
# --------------------------------------------------------------------------

finite_pos = st.floats(min_value=0.05, max_value=500.0, allow_nan=False, allow_infinity=False)


@st.composite
def any_job(draw, index=0):
    kind = draw(st.sampled_from(["amdahl", "powerlaw", "comm", "tab", "rigid", "oracle"]))
    t1 = draw(finite_pos)
    if kind == "amdahl":
        return AmdahlJob(f"a{index}", t1, draw(st.floats(min_value=0.0, max_value=1.0)))
    if kind == "powerlaw":
        return PowerLawJob(f"p{index}", t1, draw(st.floats(min_value=0.0, max_value=1.0)))
    if kind == "comm":
        # overhead 0 exactly (k_star=None path) or bounded away from the
        # subnormal range where t1/overhead overflows
        overhead = draw(st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=0.5)))
        return CommunicationJob(f"c{index}", t1, overhead)
    if kind == "tab":
        length = draw(st.integers(min_value=1, max_value=12))
        times = sorted(
            draw(st.lists(finite_pos, min_size=length, max_size=length)), reverse=True
        )
        return TabulatedJob(f"t{index}", times)
    if kind == "rigid":
        return RigidJob(f"r{index}", t1, draw(st.integers(min_value=1, max_value=16)))
    return OracleJob(f"o{index}", lambda k, t1=t1: t1 / math.sqrt(k))


@st.composite
def job_lists(draw, max_jobs=12):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    return [draw(any_job(index=i)) for i in range(n)]


# --------------------------------------------------------------------------
# times_for / bundle parity
# --------------------------------------------------------------------------

class TestTimesForParity:
    @given(any_job(), st.lists(st.integers(min_value=1, max_value=1 << 20), min_size=1, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_times_for_matches_processing_time_bitwise(self, job, ks):
        batch = job.times_for(np.asarray(ks))
        scalar = np.array([job.processing_time(k) for k in ks], dtype=np.float64)
        assert np.array_equal(batch, scalar)

    @given(job_lists(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_bundle_eval_matches_scalar_bitwise(self, jobs, data):
        bundle = JobArrayBundle(jobs)
        ks = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=1 << 16),
                min_size=len(jobs),
                max_size=len(jobs),
            )
        )
        batch = bundle.eval_all(np.asarray(ks, dtype=np.float64))
        scalar = np.array(
            [job.processing_time(k) for job, k in zip(jobs, ks)], dtype=np.float64
        )
        assert np.array_equal(batch, scalar)

    def test_times_for_rejects_bad_counts(self):
        job = AmdahlJob("a", 10.0, 0.2)
        with pytest.raises(ValueError):
            job.times_for(np.array([0]))
        with pytest.raises(ValueError):
            job.times_for(np.array([1.5]))
        with pytest.raises(ValueError):
            job.times_for(np.array([[1, 2]]))

    def test_times_for_accepts_float_integers_and_empty(self):
        job = PowerLawJob("p", 8.0, 0.5)
        assert job.times_for(np.array([], dtype=np.int64)).shape == (0,)
        assert np.array_equal(job.times_for(np.array([1.0, 4.0])), job.times_for(np.array([1, 4])))


# --------------------------------------------------------------------------
# gamma_batch parity
# --------------------------------------------------------------------------

class TestGammaBatchParity:
    @given(
        job_lists(),
        st.integers(min_value=1, max_value=1 << 14),
        st.lists(st.floats(min_value=1e-3, max_value=2e3), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_gamma_batch_matches_scalar(self, jobs, m, thresholds):
        oracle = BatchedOracle(jobs, m)
        # successive thresholds share one oracle: exercises the γ-breakpoint
        # cache (brackets narrowed from neighbouring cached thresholds).
        for threshold in thresholds:
            got = gamma_batch(jobs, threshold, m, oracle=oracle)
            for job, g in zip(jobs, got):
                expected = gamma(job, threshold, m)
                if expected is None:
                    assert g == m + 1
                else:
                    assert g == expected

    def test_scalar_drop_in_gamma(self):
        jobs = [AmdahlJob(f"a{i}", 10.0 + i, 0.1) for i in range(5)]
        oracle = BatchedOracle(jobs, 64)
        for job in jobs:
            for threshold in (0.0, 0.5, 3.0, 11.0, 100.0):
                assert oracle.gamma(job, threshold, 64) == gamma(job, threshold, 64)

    def test_gamma_batch_nonpositive_threshold(self):
        jobs = [AmdahlJob("a", 10.0, 0.1)]
        assert gamma_batch(jobs, 0.0, 8)[0] == 9
        assert gamma_batch(jobs, -1.0, 8)[0] == 9


# --------------------------------------------------------------------------
# Array knapsack parity
# --------------------------------------------------------------------------

@st.composite
def knapsack_instances(draw, max_items=14, max_size=24):
    n = draw(st.integers(min_value=0, max_value=max_items))
    items = [
        KnapsackItem(
            key=i,
            size=draw(st.integers(min_value=1, max_value=max_size)),
            profit=draw(st.floats(min_value=0.0, max_value=200.0)),
        )
        for i in range(n)
    ]
    capacity = draw(st.integers(min_value=0, max_value=3 * max_size))
    return items, capacity


class TestArrayKnapsackParity:
    @given(knapsack_instances())
    @settings(max_examples=150, deadline=None)
    def test_dominance_engines_agree(self, instance):
        items, capacity = instance
        p_s, c_s = solve_knapsack(items, capacity, backend="scalar")
        p_v, c_v = solve_knapsack(items, capacity, backend="vectorized")
        assert p_s == p_v
        assert [i.key for i in c_s] == [i.key for i in c_v]

    @given(knapsack_instances())
    @settings(max_examples=100, deadline=None)
    def test_dense_engines_agree(self, instance):
        items, capacity = instance
        p_s, c_s = solve_knapsack_dense(items, capacity, backend="scalar")
        p_v, c_v = solve_knapsack_dense(items, capacity, backend="vectorized")
        assert p_s == p_v
        assert [i.key for i in c_s] == [i.key for i in c_v]

    @given(knapsack_instances(), st.floats(min_value=0.01, max_value=0.25))
    @settings(max_examples=100, deadline=None)
    def test_compressible_engines_agree(self, instance, rho):
        items, capacity = instance
        compressible_keys = {i.key for i in items if i.size >= 1.0 / rho}
        s = solve_compressible_knapsack(items, compressible_keys, capacity, rho, backend="scalar")
        v = solve_compressible_knapsack(items, compressible_keys, capacity, rho, backend="vectorized")
        assert s.profit == v.profit
        assert [i.key for i in s.items] == [i.key for i in v.items]


# --------------------------------------------------------------------------
# Whole-algorithm parity: identical makespans from both backends
# --------------------------------------------------------------------------

@st.composite
def monotone_instances(draw, max_jobs=10):
    """Monotone-only jobs (the algorithms' contract) plus a machine count."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        kind = draw(st.sampled_from(["amdahl", "powerlaw", "comm"]))
        t1 = draw(st.floats(min_value=0.5, max_value=100.0))
        if kind == "amdahl":
            jobs.append(AmdahlJob(f"a{i}", t1, draw(st.floats(min_value=0.01, max_value=0.9))))
        elif kind == "powerlaw":
            jobs.append(PowerLawJob(f"p{i}", t1, draw(st.floats(min_value=0.1, max_value=1.0))))
        else:
            jobs.append(CommunicationJob(f"c{i}", t1, draw(st.floats(min_value=1e-4, max_value=0.05))))
    m = draw(st.integers(min_value=1, max_value=256))
    return jobs, m


class TestAlgorithmBackendParity:
    @given(monotone_instances(), st.sampled_from([0.1, 0.25, 0.5]))
    @settings(max_examples=40, deadline=None)
    def test_mrt_backends_identical(self, instance, eps):
        jobs, m = instance
        s = mrt_schedule(jobs, m, eps, backend="scalar")
        v = mrt_schedule(jobs, m, eps, backend="vectorized")
        assert s.makespan == v.makespan
        assert s.accepted_d == v.accepted_d

    @given(monotone_instances(), st.sampled_from([0.1, 0.25, 0.5]))
    @settings(max_examples=30, deadline=None)
    def test_compressible_backends_identical(self, instance, eps):
        jobs, m = instance
        s = compressible_schedule(jobs, m, eps, backend="scalar")
        v = compressible_schedule(jobs, m, eps, backend="vectorized")
        assert s.makespan == v.makespan
        assert s.accepted_d == v.accepted_d

    @given(monotone_instances(), st.sampled_from([0.1, 0.5]), st.sampled_from(["heap", "bucket"]))
    @settings(max_examples=30, deadline=None)
    def test_bounded_backends_identical(self, instance, eps, transform):
        jobs, m = instance
        s = bounded_schedule(jobs, m, eps, transform=transform, backend="scalar")
        v = bounded_schedule(jobs, m, eps, transform=transform, backend="vectorized")
        assert s.makespan == v.makespan
        assert s.accepted_d == v.accepted_d

    @given(monotone_instances(max_jobs=6), st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=30, deadline=None)
    def test_fptas_backends_identical(self, instance, eps):
        jobs, _ = instance
        m = int(math.ceil(8 * len(jobs) / eps)) + 1
        s = fptas_schedule(jobs, m, eps, backend="scalar")
        v = fptas_schedule(jobs, m, eps, backend="vectorized")
        assert s.makespan == v.makespan
        assert s.accepted_d == v.accepted_d

    @given(monotone_instances())
    @settings(max_examples=30, deadline=None)
    def test_estimator_backends_identical(self, instance):
        jobs, m = instance
        scalar = ludwig_tiwari_estimator(jobs, m)
        vectorized = ludwig_tiwari_estimator(jobs, m, oracle=BatchedOracle(jobs, m))
        assert scalar.omega == vectorized.omega
        assert all(scalar.allotment[j] == vectorized.allotment[j] for j in jobs)

    @given(monotone_instances())
    @settings(max_examples=20, deadline=None)
    def test_two_approx_backends_identical(self, instance):
        jobs, m = instance
        s = two_approximation(jobs, m, backend="scalar")
        v = two_approximation(jobs, m, backend="vectorized")
        assert s.makespan == v.makespan
