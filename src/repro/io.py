"""Serialisation of instances and schedules (JSON).

A production scheduler needs to persist workloads and schedules; this module
provides a stable JSON format for both.

* **Instances** — every analytic job family of :mod:`repro.core.job` plus the
  hardness-reduction jobs can be round-tripped (oracle jobs with arbitrary
  Python callables cannot, by design: a closure is not data).
* **Schedules** — placements are stored as ``(job name, start, spans)``;
  loading a schedule requires the corresponding instance so that placements
  can be re-attached to job objects and re-validated.

The format is versioned; loaders reject unknown versions instead of guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .core.job import (
    AmdahlJob,
    CommunicationJob,
    MoldableJob,
    PowerLawJob,
    RigidJob,
    TabulatedJob,
)
from .core.schedule import Schedule
from .core.validation import assert_valid_schedule
from .hardness.reduction import ReductionJob

__all__ = [
    "FORMAT_VERSION",
    "INSTANCE_RELEASES_VERSION",
    "SerializationError",
    "job_to_dict",
    "job_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "fault_plan_to_dict",
    "fault_plan_from_dict",
    "save_fault_plan",
    "load_fault_plan",
    "fleet_report_to_dict",
    "fleet_report_from_dict",
    "save_fleet_report",
    "load_fleet_report",
]

FORMAT_VERSION = 1
#: Instance documents carrying release times are written at this version;
#: plain instances keep :data:`FORMAT_VERSION` so older readers still load
#: every file that doesn't use the new field.
INSTANCE_RELEASES_VERSION = 2
#: Versions each format's loader accepts (default: the base version only).
SUPPORTED_VERSIONS = {"repro-instance": (FORMAT_VERSION, INSTANCE_RELEASES_VERSION)}

PathLike = Union[str, Path]


class SerializationError(ValueError):
    """Raised when an object cannot be (de)serialised."""


# --------------------------------------------------------------------------
# Jobs
# --------------------------------------------------------------------------

def job_to_dict(job: MoldableJob) -> Dict[str, Any]:
    """Serialise a job to a plain dict."""
    if isinstance(job, TabulatedJob):
        return {"kind": "tabulated", "name": job.name, "times": list(job.times)}
    if isinstance(job, AmdahlJob):
        return {"kind": "amdahl", "name": job.name, "t1": job.t1, "serial_fraction": job.serial_fraction}
    if isinstance(job, PowerLawJob):
        return {"kind": "power_law", "name": job.name, "t1": job.t1, "alpha": job.alpha}
    if isinstance(job, CommunicationJob):
        return {"kind": "communication", "name": job.name, "t1": job.t1, "overhead": job.overhead}
    if isinstance(job, RigidJob):
        return {
            "kind": "rigid",
            "name": job.name,
            "duration": job.duration,
            "size": job.size,
            "penalty": job.penalty,
        }
    if isinstance(job, ReductionJob):
        return {"kind": "reduction", "name": job.name, "index": job.index, "a": job.a, "m": job.m_machines}
    raise SerializationError(
        f"job {job.name!r} of type {type(job).__name__} cannot be serialised "
        "(oracle jobs with arbitrary callables are not data)"
    )


def job_from_dict(data: Dict[str, Any]) -> MoldableJob:
    """Rebuild a job from :func:`job_to_dict` output."""
    kind = data.get("kind")
    if kind == "tabulated":
        return TabulatedJob(data["name"], data["times"])
    if kind == "amdahl":
        return AmdahlJob(data["name"], data["t1"], data["serial_fraction"])
    if kind == "power_law":
        return PowerLawJob(data["name"], data["t1"], data["alpha"])
    if kind == "communication":
        return CommunicationJob(data["name"], data["t1"], data["overhead"])
    if kind == "rigid":
        return RigidJob(data["name"], data["duration"], data["size"], data.get("penalty"))
    if kind == "reduction":
        return ReductionJob(data["index"], data["a"], data["m"])
    raise SerializationError(f"unknown job kind {kind!r}")


# --------------------------------------------------------------------------
# Instances
# --------------------------------------------------------------------------

def instance_to_dict(
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    metadata: Optional[dict] = None,
    releases: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """Serialise an instance; passing ``releases`` (aligned with ``jobs``)
    writes a version-:data:`INSTANCE_RELEASES_VERSION` document carrying
    them, otherwise the classic version-1 layout is emitted unchanged."""
    data: Dict[str, Any] = {
        "format": "repro-instance",
        "version": FORMAT_VERSION,
        "m": int(m),
        "metadata": metadata or {},
        "jobs": [job_to_dict(job) for job in jobs],
    }
    if releases is not None:
        if len(releases) != len(jobs):
            raise SerializationError(
                f"got {len(releases)} releases for {len(jobs)} jobs"
            )
        data["version"] = INSTANCE_RELEASES_VERSION
        data["releases"] = [float(r) for r in releases]
    return data


def instance_from_dict(
    data: Dict[str, Any], *, with_releases: bool = False
) -> Union[tuple[List[MoldableJob], int, dict], tuple[List[MoldableJob], int, dict, Optional[List[float]]]]:
    """Rebuild an instance.  The default return stays the historical
    ``(jobs, m, metadata)`` triple; ``with_releases=True`` appends the
    release list (``None`` for version-1 documents without one)."""
    _check_header(data, "repro-instance")
    jobs = [job_from_dict(item) for item in data["jobs"]]
    raw = data.get("releases")
    releases = [float(r) for r in raw] if raw is not None else None
    if releases is not None and len(releases) != len(jobs):
        raise SerializationError(
            f"instance carries {len(releases)} releases for {len(jobs)} jobs"
        )
    if with_releases:
        return jobs, int(data["m"]), dict(data.get("metadata", {})), releases
    return jobs, int(data["m"]), dict(data.get("metadata", {}))


def save_instance(
    path: PathLike,
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    metadata: Optional[dict] = None,
    releases: Optional[Sequence[float]] = None,
) -> None:
    # allow_nan=False on every save site: NaN/Infinity are not JSON, and a
    # file carrying them would poison comparisons on load — fail at write time
    Path(path).write_text(
        json.dumps(
            instance_to_dict(jobs, m, metadata=metadata, releases=releases),
            indent=2,
            allow_nan=False,
        )
    )


def load_instance(path: PathLike, *, with_releases: bool = False):
    return instance_from_dict(json.loads(Path(path).read_text()), with_releases=with_releases)


# --------------------------------------------------------------------------
# Schedules
# --------------------------------------------------------------------------

def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    entries: List[Dict[str, Any]] = []
    cols = schedule.try_columns()
    if cols is not None:
        # straight off the columns; only override durations are read, so no
        # oracle-time resolution happens for plain placements
        names = [job.name for job in schedule.jobs()]
        starts = cols.start.tolist()
        overrides = cols.override_values()
        bounds = cols.span_off.tolist()
        span_first = cols.span_first.tolist()
        span_count = (cols.span_end - cols.span_first).tolist()
        for i in range(cols.n):
            lo, hi = bounds[i], bounds[i + 1]
            entries.append(
                {
                    "job": names[i],
                    "start": starts[i],
                    "spans": [
                        [span_first[k], span_count[k]] for k in range(lo, hi)
                    ],
                    "duration_override": overrides[i],
                }
            )
    else:  # astronomically wide spans: per-entry fallback
        for entry in schedule.entries:
            entries.append(
                {
                    "job": entry.job.name,
                    "start": entry.start,
                    "spans": [list(span) for span in entry.spans],
                    "duration_override": entry.duration_override,
                }
            )
    return {
        "format": "repro-schedule",
        "version": FORMAT_VERSION,
        "m": schedule.m,
        "metadata": _jsonable(schedule.metadata),
        "entries": entries,
    }


def schedule_from_dict(
    data: Dict[str, Any],
    jobs: Iterable[MoldableJob],
    *,
    validate: bool = True,
) -> Schedule:
    """Rebuild a schedule; jobs are matched to placements by name."""
    _check_header(data, "repro-schedule")
    by_name: Dict[str, MoldableJob] = {}
    for job in jobs:
        if job.name in by_name:
            raise SerializationError(f"duplicate job name {job.name!r}: cannot re-attach placements")
        by_name[job.name] = job
    schedule = Schedule(m=int(data["m"]), metadata=dict(data.get("metadata", {})))
    for item in data["entries"]:
        name = item["job"]
        if name not in by_name:
            raise SerializationError(f"schedule references unknown job {name!r}")
        schedule.add(
            by_name[name],
            float(item["start"]),
            [tuple(span) for span in item["spans"]],
            duration_override=item.get("duration_override"),
        )
    if validate:
        assert_valid_schedule(schedule, by_name.values())
    return schedule


def save_schedule(path: PathLike, schedule: Schedule) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2, allow_nan=False))


def load_schedule(path: PathLike, jobs: Iterable[MoldableJob], *, validate: bool = True) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()), jobs, validate=validate)


# --------------------------------------------------------------------------
# Fault plans
# --------------------------------------------------------------------------

def fault_plan_to_dict(plan) -> Dict[str, Any]:
    """Serialise a :class:`repro.resilience.FaultPlan` with the standard
    format/version header (the bare ``FaultPlan.to_dict`` payload is kept
    under the same keys, so older consumers keep working)."""
    payload = plan.to_dict()
    payload["format"] = "repro-fault-plan"
    payload["version"] = FORMAT_VERSION
    return payload


def fault_plan_from_dict(data: Dict[str, Any]):
    """Rebuild a :class:`repro.resilience.FaultPlan` from
    :func:`fault_plan_to_dict` output (header checked)."""
    from .resilience.faults import FaultPlan

    _check_header(data, "repro-fault-plan")
    return FaultPlan.from_dict(data)


def save_fault_plan(path: PathLike, plan) -> None:
    Path(path).write_text(
        json.dumps(fault_plan_to_dict(plan), indent=2, sort_keys=True, allow_nan=False)
    )


def load_fault_plan(path: PathLike):
    return fault_plan_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------
# Fleet reports
# --------------------------------------------------------------------------

def fleet_report_to_dict(report) -> Dict[str, Any]:
    """Serialise a :class:`repro.serve.FleetReport` (schedules travel as
    :func:`schedule_to_dict` payloads inside each outcome)."""
    payload = report.to_dict()
    payload["format"] = "repro-fleet-report"
    payload["version"] = FORMAT_VERSION
    return payload


def fleet_report_from_dict(data: Dict[str, Any]):
    """Rebuild a :class:`repro.serve.FleetReport` (header checked).  Job
    objects are not part of the payload; re-attach schedules per outcome via
    :meth:`repro.serve.InstanceOutcome.schedule`."""
    from .serve.fleet import FleetReport

    _check_header(data, "repro-fleet-report")
    return FleetReport.from_dict(data)


def save_fleet_report(path: PathLike, report) -> None:
    Path(path).write_text(
        json.dumps(fleet_report_to_dict(report), indent=2, sort_keys=True, allow_nan=False)
    )


def load_fleet_report(path: PathLike):
    return fleet_report_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _check_header(data: Dict[str, Any], expected_format: str) -> None:
    if data.get("format") != expected_format:
        raise SerializationError(f"not a {expected_format} document (format={data.get('format')!r})")
    version = data.get("version")
    supported = SUPPORTED_VERSIONS.get(expected_format, (FORMAT_VERSION,))
    if version not in supported:
        raise SerializationError(
            f"unsupported {expected_format} version {version!r} "
            f"(expected {supported[0] if len(supported) == 1 else 'one of ' + repr(supported)})"
        )


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of metadata to JSON-serialisable values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)
