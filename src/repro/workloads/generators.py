"""Random instance generators and scenario presets.

Every generator takes a seed (or an ``numpy.random.Generator``) and returns a
:class:`WorkloadInstance` bundling the jobs, the machine count and provenance
metadata.  Generators with analytic speedup models (Amdahl, power law,
communication) produce oracle jobs usable with astronomically large ``m``;
the tabulated generator produces classical explicit-encoding jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.bounds import trivial_lower_bound
from ..core.job import AmdahlJob, CommunicationJob, MoldableJob, PowerLawJob, TabulatedJob
from .speedup_models import random_monotone_speedup

__all__ = [
    "InstanceSpec",
    "WorkloadInstance",
    "random_amdahl_instance",
    "random_power_law_instance",
    "random_communication_instance",
    "random_mixed_instance",
    "random_power_work_instance",
    "random_bimodal_instance",
    "random_monotone_tabulated_instance",
    "random_quantized_instance",
    "random_chain_instance",
    "random_arrivals_instance",
    "ARRIVAL_BASES",
    "planted_partition_instance",
    "scenario",
    "SCENARIOS",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class InstanceSpec:
    """Parameters describing a generated instance (for provenance/reporting)."""

    kind: str
    n: int
    m: int
    seed: Optional[int] = None
    params: Dict[str, float] = field(default_factory=dict)


@dataclass
class WorkloadInstance:
    """A generated scheduling instance.

    ``releases`` (when set) aligns with ``jobs``: job ``i`` becomes known to
    the scheduler at ``releases[i]``.  ``None`` means the classic offline
    setting where everything is available at time 0.
    """

    jobs: List[MoldableJob]
    m: int
    spec: InstanceSpec
    known_optimum: Optional[float] = None
    releases: Optional[List[float]] = None

    @property
    def n(self) -> int:
        return len(self.jobs)

    @property
    def arrivals(self) -> List[tuple[MoldableJob, float]]:
        """``(job, release)`` pairs for :class:`repro.online.OnlineScheduler`
        (release 0 for every job when the instance has no release times)."""
        releases = self.releases if self.releases is not None else [0.0] * self.n
        return list(zip(self.jobs, releases))


# --------------------------------------------------------------------------
# Analytic-model generators
# --------------------------------------------------------------------------

def random_amdahl_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (1.0, 100.0),
    serial_fraction_range: tuple[float, float] = (0.01, 0.3),
) -> WorkloadInstance:
    """Jobs following Amdahl's law with random base times and serial fractions."""
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        f = float(rng.uniform(*serial_fraction_range))
        jobs.append(AmdahlJob(f"amdahl-{i}", t1=t1, serial_fraction=f))
    spec = InstanceSpec("amdahl", n, m, params={"t1_lo": t1_range[0], "t1_hi": t1_range[1]})
    return WorkloadInstance(jobs, m, spec)


def random_power_law_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (1.0, 100.0),
    alpha_range: tuple[float, float] = (0.5, 1.0),
) -> WorkloadInstance:
    """Jobs with power-law (sub-linear) speedups."""
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        alpha = float(rng.uniform(*alpha_range))
        jobs.append(PowerLawJob(f"powerlaw-{i}", t1=t1, alpha=alpha))
    spec = InstanceSpec("power_law", n, m, params={"alpha_lo": alpha_range[0], "alpha_hi": alpha_range[1]})
    return WorkloadInstance(jobs, m, spec)


def random_communication_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (10.0, 500.0),
    overhead_range: tuple[float, float] = (1e-4, 1e-2),
) -> WorkloadInstance:
    """Jobs with per-processor communication overhead (speedup saturates)."""
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        c = float(rng.uniform(*overhead_range))
        jobs.append(CommunicationJob(f"comm-{i}", t1=t1, overhead=c))
    spec = InstanceSpec("communication", n, m)
    return WorkloadInstance(jobs, m, spec)


def random_mixed_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (1.0, 200.0),
) -> WorkloadInstance:
    """A mix of Amdahl, power-law and communication jobs (one third each)."""
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        kind = i % 3
        if kind == 0:
            jobs.append(AmdahlJob(f"mixed-amdahl-{i}", t1=t1, serial_fraction=float(rng.uniform(0.01, 0.4))))
        elif kind == 1:
            jobs.append(PowerLawJob(f"mixed-powerlaw-{i}", t1=t1, alpha=float(rng.uniform(0.4, 1.0))))
        else:
            jobs.append(CommunicationJob(f"mixed-comm-{i}", t1=t1, overhead=float(rng.uniform(1e-4, 5e-2))))
    spec = InstanceSpec("mixed", n, m)
    return WorkloadInstance(jobs, m, spec)


def random_power_work_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    shape: float = 1.4,
    t1_scale: float = 3.0,
    t1_cap: float = 5000.0,
) -> WorkloadInstance:
    """Power-law (Pareto) distributed sequential works.

    Real cluster traces have heavy-tailed job sizes: most jobs are tiny, a few
    dominate the total work.  ``t_j(1)`` is drawn from a Pareto distribution
    with tail index ``shape`` (smaller = heavier tail), capped at ``t1_cap``
    to keep instances numerically tame; the speedup models rotate through the
    same Amdahl / power-law / communication mix as
    :func:`random_mixed_instance`.
    """
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = min(float(t1_scale * (1.0 + rng.pareto(shape))), t1_cap)
        kind = i % 3
        if kind == 0:
            jobs.append(AmdahlJob(f"powerwork-amdahl-{i}", t1=t1, serial_fraction=float(rng.uniform(0.01, 0.4))))
        elif kind == 1:
            jobs.append(PowerLawJob(f"powerwork-powerlaw-{i}", t1=t1, alpha=float(rng.uniform(0.4, 1.0))))
        else:
            jobs.append(CommunicationJob(f"powerwork-comm-{i}", t1=t1, overhead=float(rng.uniform(1e-4, 5e-2))))
    spec = InstanceSpec("power_work", n, m, params={"shape": shape, "t1_scale": t1_scale})
    return WorkloadInstance(jobs, m, spec)


def random_bimodal_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    small_range: tuple[float, float] = (1.0, 8.0),
    big_range: tuple[float, float] = (300.0, 600.0),
    big_fraction: float = 0.15,
) -> WorkloadInstance:
    """Bimodal job sizes: a sea of short jobs plus a slab of long ones.

    This is the classic "interactive + batch" mix; the long jobs force the
    shelf constructions to exercise both shelves while the short ones stress
    the small-job insertion path.  Speedup models rotate through the mixed
    set.
    """
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        if float(rng.uniform()) < big_fraction:
            t1 = float(rng.uniform(*big_range))
        else:
            t1 = float(rng.uniform(*small_range))
        kind = i % 3
        if kind == 0:
            jobs.append(AmdahlJob(f"bimodal-amdahl-{i}", t1=t1, serial_fraction=float(rng.uniform(0.01, 0.3))))
        elif kind == 1:
            jobs.append(PowerLawJob(f"bimodal-powerlaw-{i}", t1=t1, alpha=float(rng.uniform(0.5, 1.0))))
        else:
            jobs.append(CommunicationJob(f"bimodal-comm-{i}", t1=t1, overhead=float(rng.uniform(1e-4, 2e-2))))
    spec = InstanceSpec(
        "bimodal", n, m, params={"big_fraction": big_fraction, "big_lo": big_range[0], "big_hi": big_range[1]}
    )
    return WorkloadInstance(jobs, m, spec)


def random_quantized_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    grid: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
    table_cap: int = 64,
) -> WorkloadInstance:
    """Tabulated jobs with perfectly linear speedup and *quantized* base times.

    ``t_j(1)`` is drawn from a small discrete grid and ``t_j(k) = t_j(1)/k``,
    so distinct jobs frequently share bit-identical processing times at their
    allotted counts — unlike the continuous families, which almost never
    produce exact duration ties.  The differential fuzzer uses this family to
    exercise simultaneous-completion *epochs* in the list-scheduling
    backends (many jobs finishing at exactly the same float instant) and the
    multi-span leftover reuse that mass wake-ups trigger.  Tables are capped
    at ``table_cap`` columns (``TabulatedJob`` clamps wider allotments to the
    last column, keeping the family usable at huge ``m``).
    """
    rng = _rng(seed)
    length = max(1, min(int(m), int(table_cap)))
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.choice(np.asarray(grid, dtype=np.float64)))
        times = [t1 / k for k in range(1, length + 1)]
        jobs.append(TabulatedJob(f"quantized-{i}", times))
    spec = InstanceSpec(
        "quantized", n, m, params={"grid_lo": float(min(grid)), "grid_hi": float(max(grid))}
    )
    return WorkloadInstance(jobs, m, spec)


def random_chain_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (8.0, 64.0),
    serial_range: tuple[float, float] = (0.5, 0.95),
) -> WorkloadInstance:
    """Single-completion chains: a no-tie, deep-queue list-scheduling regime.

    Strongly serial Amdahl jobs (serial fractions drawn from
    ``serial_range``) with continuous-uniform base times: useful parallelism
    is capped by the serial fraction, so allotments stay tiny and — run with
    ``n`` well above ``m`` — far more jobs queue behind the running set than
    machines exist.  Completion instants are then distinct with probability
    one, so the list scheduler's event queue degenerates to one completion
    per epoch: the adversarial workload for any per-epoch O(n) candidate
    scan (n epochs × O(n) = O(n²) scans), and the showcase for the
    incremental candidate index
    (``list_schedule(backend="event_queue_indexed")``), which answers each
    epoch's admission query from its need buckets instead.
    """
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        f = float(rng.uniform(*serial_range))
        jobs.append(AmdahlJob(f"chain-{i}", t1=t1, serial_fraction=f))
    spec = InstanceSpec(
        "chain",
        n,
        m,
        params={"serial_lo": serial_range[0], "serial_hi": serial_range[1]},
    )
    return WorkloadInstance(jobs, m, spec)


#: Base families an ``arrivals`` instance can draw its jobs from.
ARRIVAL_BASES: Dict[str, Callable[..., "WorkloadInstance"]] = {}


def random_arrivals_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    base: str = "mixed",
    span: Optional[float] = None,
    span_factor: float = 0.75,
) -> WorkloadInstance:
    """An online instance: a base family's jobs plus seeded release times.

    Jobs come from the ``base`` generator (any :data:`ARRIVAL_BASES` key)
    driven by the same RNG stream, so one seed pins both the jobs and the
    arrival pattern.  Releases are sorted uniform draws over ``[0, span]``;
    by default ``span`` is ``span_factor`` times the instance's trivial
    makespan lower bound, which keeps the stream busy — new work keeps
    arriving while earlier work is still running, the regime where
    incremental re-planning (and its γ warm start) actually matters.
    """
    if base not in ARRIVAL_BASES:
        raise ValueError(f"unknown arrivals base {base!r}; available: {sorted(ARRIVAL_BASES)}")
    if span is not None and span < 0:
        raise ValueError("span must be >= 0")
    rng = _rng(seed)
    inst = ARRIVAL_BASES[base](n, m, seed=rng)
    if span is None:
        span = span_factor * trivial_lower_bound(inst.jobs, m)
    releases = [float(r) for r in np.sort(rng.uniform(0.0, span, size=n))] if span > 0 else [0.0] * n
    spec = InstanceSpec(
        f"arrivals[{base}]", n, m, params={"span": float(span), "span_factor": span_factor}
    )
    return WorkloadInstance(inst.jobs, m, spec, releases=releases)


def random_monotone_tabulated_instance(
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    t1_range: tuple[float, float] = (1.0, 100.0),
    efficiency_floor: float = 0.0,
) -> WorkloadInstance:
    """Explicit-encoding jobs with arbitrary random monotone speedup tables.

    ``m`` should be modest here (the tables have ``m`` entries) — this is the
    classical input encoding against which the compact encoding is compared.
    """
    if m > 1 << 16:
        raise ValueError("tabulated instances are limited to m <= 65536 (use an analytic model instead)")
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for i in range(n):
        t1 = float(rng.uniform(*t1_range))
        speedup = random_monotone_speedup(m, rng, efficiency_floor=efficiency_floor)
        times = [t1 / s for s in speedup]
        jobs.append(TabulatedJob(f"tab-{i}", times))
    spec = InstanceSpec("tabulated", n, m)
    return WorkloadInstance(jobs, m, spec)


# --------------------------------------------------------------------------
# Planted-optimum instances
# --------------------------------------------------------------------------

def planted_partition_instance(
    groups: int,
    *,
    seed: SeedLike = None,
    target: float = 100.0,
    jobs_per_group: int = 4,
) -> WorkloadInstance:
    """An instance whose optimum is known exactly by construction.

    ``groups`` machines are each filled by ``jobs_per_group`` sequential jobs
    whose single-processor times sum to exactly ``target``; the jobs do not
    speed up at all (constant processing time), so every schedule has total
    work at least ``groups * target`` and the planted packing with makespan
    ``target`` is optimal.  Used to certify approximation ratios on instances
    far larger than the exact solver can handle.
    """
    if groups < 1 or jobs_per_group < 1:
        raise ValueError("groups and jobs_per_group must be >= 1")
    rng = _rng(seed)
    jobs: List[MoldableJob] = []
    for g in range(groups):
        cuts = np.sort(rng.uniform(0.05, 0.95, size=jobs_per_group - 1)) * target
        edges = np.concatenate(([0.0], cuts, [target]))
        durations = np.diff(edges)
        # guard against degenerate tiny pieces
        durations = np.maximum(durations, target * 1e-3)
        durations = durations / durations.sum() * target
        for j, duration in enumerate(durations):
            t1 = float(duration)
            jobs.append(TabulatedJob(f"planted-{g}-{j}", [t1]))  # constant time on any k
    spec = InstanceSpec("planted_partition", len(jobs), groups, params={"target": target})
    return WorkloadInstance(jobs, groups, spec, known_optimum=target)


ARRIVAL_BASES.update(
    {
        "mixed": random_mixed_instance,
        "amdahl": random_amdahl_instance,
        "power_law": random_power_law_instance,
        "communication": random_communication_instance,
        "power_work": random_power_work_instance,
        "bimodal": random_bimodal_instance,
        "chain": random_chain_instance,
    }
)


# --------------------------------------------------------------------------
# Scenario presets
# --------------------------------------------------------------------------

SCENARIOS: Dict[str, Callable[[SeedLike], WorkloadInstance]] = {
    # A departmental cluster: many moderately parallel jobs, few machines.
    "cluster_small": lambda seed=None: random_mixed_instance(200, 128, seed=seed),
    # A large HPC machine with compact encoding: m far exceeds n.
    "hpc_large_m": lambda seed=None: random_amdahl_instance(64, 1 << 20, seed=seed),
    # A cloud region: power-law scaling services.
    "cloud_powerlaw": lambda seed=None: random_power_law_instance(400, 4096, seed=seed),
    # Communication-bound simulation codes.
    "simulation_comm": lambda seed=None: random_communication_instance(150, 512, seed=seed),
    # Explicit tables, the classical encoding.
    "tabulated_classic": lambda seed=None: random_monotone_tabulated_instance(80, 64, seed=seed),
}


def scenario(name: str, seed: SeedLike = None) -> WorkloadInstance:
    """Instantiate a named scenario preset (see :data:`SCENARIOS`)."""
    try:
        factory = SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}") from exc
    return factory(seed)
