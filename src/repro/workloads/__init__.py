"""Synthetic workload models and instance generators.

The paper's algorithms are evaluated here on synthetic monotone moldable
workloads modelled after common HPC application behaviour:

* Amdahl's-law jobs (a sequential fraction limits speedup);
* power-law (sub-linear) speedup jobs;
* communication-overhead jobs (speedup saturates, then extra processors are
  pure overhead);
* arbitrary random monotone speedup profiles (tabulated);
* planted-optimum instances where a perfect packing of the machine area is
  known by construction (used to certify approximation ratios).
"""

from .speedup_models import (
    amdahl_speedup,
    communication_speedup,
    is_valid_monotone_speedup,
    power_law_speedup,
    random_monotone_speedup,
)
from .generators import (
    ARRIVAL_BASES,
    InstanceSpec,
    WorkloadInstance,
    random_amdahl_instance,
    random_arrivals_instance,
    random_communication_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
    random_power_law_instance,
    planted_partition_instance,
    scenario,
    SCENARIOS,
)

__all__ = [
    "amdahl_speedup",
    "power_law_speedup",
    "communication_speedup",
    "random_monotone_speedup",
    "is_valid_monotone_speedup",
    "InstanceSpec",
    "WorkloadInstance",
    "random_amdahl_instance",
    "random_power_law_instance",
    "random_communication_instance",
    "random_mixed_instance",
    "random_monotone_tabulated_instance",
    "random_arrivals_instance",
    "ARRIVAL_BASES",
    "planted_partition_instance",
    "scenario",
    "SCENARIOS",
]
