"""Speedup models for monotone moldable jobs.

A speedup function ``s(k)`` (with ``s(1) = 1``) induces processing times
``t(k) = t(1) / s(k)``.  The job is a valid *monotone* moldable job iff

* ``s`` is non-decreasing (processing time non-increasing), and
* ``k / s(k)`` is non-decreasing (work non-decreasing), equivalently
  ``s(k+1)/s(k) <= (k+1)/k``.

All generators in this module produce speedup sequences satisfying both
properties by construction; :func:`is_valid_monotone_speedup` checks them.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "amdahl_speedup",
    "power_law_speedup",
    "communication_speedup",
    "random_monotone_speedup",
    "is_valid_monotone_speedup",
]


def amdahl_speedup(k_max: int, serial_fraction: float) -> List[float]:
    """Amdahl's law: ``s(k) = 1 / (f + (1-f)/k)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must lie in [0, 1]")
    return [1.0 / (serial_fraction + (1.0 - serial_fraction) / k) for k in range(1, k_max + 1)]


def power_law_speedup(k_max: int, alpha: float) -> List[float]:
    """Power law: ``s(k) = k**alpha`` with ``alpha in [0, 1]``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must lie in [0, 1]")
    return [float(k) ** alpha for k in range(1, k_max + 1)]


def communication_speedup(k_max: int, t1: float, overhead: float) -> List[float]:
    """Speedup of the communication-overhead model, capped at its maximum.

    ``t(k) = t1/k + overhead*(k-1)`` while that is non-increasing, constant
    afterwards; the returned values are ``t1 / t(k)``.
    """
    if t1 <= 0:
        raise ValueError("t1 must be positive")
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    times: List[float] = []
    best = float("inf")
    for k in range(1, k_max + 1):
        raw = t1 / k + overhead * (k - 1)
        best = min(best, raw)
        times.append(best)
    return [t1 / t for t in times]


def random_monotone_speedup(k_max: int, rng: np.random.Generator, *, efficiency_floor: float = 0.0) -> List[float]:
    """A random valid monotone speedup profile.

    Built multiplicatively: ``s(k+1) = s(k) * u`` with
    ``u`` drawn uniformly from ``[1, (k+1)/k]`` — the largest interval that
    keeps both monotony properties.  ``efficiency_floor`` optionally biases the
    draws towards better scaling (``u`` drawn from the top part of the
    interval).
    """
    if k_max < 1:
        raise ValueError("k_max must be >= 1")
    if not 0.0 <= efficiency_floor < 1.0:
        raise ValueError("efficiency_floor must lie in [0, 1)")
    speedup = [1.0]
    for k in range(1, k_max):
        hi = (k + 1) / k
        lo = 1.0 + efficiency_floor * (hi - 1.0)
        u = rng.uniform(lo, hi)
        speedup.append(speedup[-1] * u)
    return speedup


def is_valid_monotone_speedup(speedup: Sequence[float], *, tol: float = 1e-9) -> bool:
    """Check the two monotony properties of a speedup sequence."""
    if not speedup or abs(speedup[0] - 1.0) > tol:
        return False
    for k in range(1, len(speedup)):
        ratio = speedup[k] / speedup[k - 1]
        if ratio < 1.0 - tol:
            return False
        if ratio > (k + 1) / k + tol:
            return False
    return True
