"""NP-membership certificates (Theorem 1, first half).

The paper's NP-membership argument: a schedule of makespan at most ``d`` can
be certified by (a) the number of processors allotted to each job and (b) the
order in which the jobs start; list scheduling the jobs in that order with
those allotments reproduces a schedule of makespan at most ``d``.

This module implements exactly that certificate: :func:`verify_certificate`
replays the certificate deterministically and checks the makespan, and
:func:`extract_certificate` produces a certificate from any feasible schedule
(so certifying and re-verifying a schedule produced by the approximation
algorithms is a built-in regression check — note that replaying uses *greedy*
list scheduling, so the replayed makespan can only be certified not to exceed
the original one when the original schedule is itself list-generated; for
arbitrary schedules the verifier answers the decision question "is there a
schedule of makespan at most d with these allotments and this order").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .allotment import Allotment
from .job import MoldableJob
from .list_scheduling import list_schedule
from .schedule import Schedule

__all__ = ["Certificate", "extract_certificate", "replay_certificate", "verify_certificate"]


@dataclass(frozen=True)
class Certificate:
    """An NP certificate for "the jobs can be scheduled with makespan <= d".

    ``allotment[i]`` is the processor count of ``jobs[i]`` and ``order`` lists
    job indices by non-decreasing start time.  The encoding length is
    ``n (log m + log n)`` bits, as counted in the paper's proof.
    """

    allotment: Tuple[int, ...]
    order: Tuple[int, ...]

    def encoded_bits(self, m: int) -> int:
        """Length of the certificate in bits (the quantity the proof counts)."""
        import math

        n = len(self.allotment)
        if n == 0:
            return 0
        return n * (max(1, math.ceil(math.log2(max(m, 2)))) + max(1, math.ceil(math.log2(max(n, 2)))))


def extract_certificate(schedule: Schedule, jobs: Sequence[MoldableJob]) -> Certificate:
    """Read a certificate (allotments + start order) off a schedule.

    Reads the schedule's flat columns (processor counts, start times)
    directly; entry objects are only materialised on the astronomically-wide
    fallback path.
    """
    index_of = {id(job): i for i, job in enumerate(jobs)}
    allotment: List[int] = [1] * len(jobs)
    starts: List[Tuple[float, int]] = []
    cols = schedule.try_columns()
    if cols is not None:
        entry_rows = zip(schedule.jobs(), cols.processors.tolist(), cols.start.tolist())
    else:
        entry_rows = ((e.job, e.processors, e.start) for e in schedule.entries)
    for job, processors, start in entry_rows:
        idx = index_of.get(id(job))
        if idx is None:
            raise ValueError(f"schedule contains a job not in the instance: {job.name!r}")
        allotment[idx] = processors
        starts.append((start, idx))
    starts.sort()
    return Certificate(allotment=tuple(allotment), order=tuple(idx for _, idx in starts))


def replay_certificate(jobs: Sequence[MoldableJob], m: int, certificate: Certificate) -> Schedule:
    """Deterministically rebuild a schedule from a certificate (list scheduling
    the jobs in certificate order with the certified allotments)."""
    if len(certificate.allotment) != len(jobs):
        raise ValueError("certificate allotment length does not match the number of jobs")
    if sorted(certificate.order) != list(range(len(jobs))):
        raise ValueError("certificate order must be a permutation of the job indices")
    allot = Allotment({job: count for job, count in zip(jobs, certificate.allotment)})
    order = [jobs[i] for i in certificate.order]
    return list_schedule(list(jobs), allot, m, order=order)


def verify_certificate(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    certificate: Certificate,
) -> Tuple[bool, Schedule]:
    """Verify a certificate for the decision problem "makespan <= d?".

    Returns ``(accepted, replayed_schedule)``; the verification itself runs in
    polynomial time (list scheduling), as required for NP membership.
    """
    schedule = replay_certificate(jobs, m, certificate)
    return schedule.makespan <= d * (1 + 1e-9), schedule
