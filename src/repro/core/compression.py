"""Compression of wide jobs (Lemma 4 and Lemma 16 of the paper).

*Compression* is the paper's central technique for exploiting monotony: a job
that occupies many processors can give some of them up in exchange for a
bounded increase in processing time.

Lemma 4
    If a job uses ``b >= 1/rho`` processors (``rho in (0, 1/4]``), reducing the
    count to ``floor(b * (1 - rho))`` increases the processing time by a factor
    of at most ``1 + 4*rho``.

Lemma 16
    For an accuracy ``delta in (0, 1]`` set ``rho = (sqrt(1+delta) - 1) / 4``
    and ``b = 1 / (2*rho - rho**2)``.  Any job using at least ``b`` processors
    can be compressed with factor ``2*rho - rho**2``: its processor count drops
    by a factor ``(1-rho)**2`` while its processing time grows by a factor of
    less than ``1 + delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .job import MoldableJob

__all__ = [
    "compressed_count",
    "compression_time_bound",
    "is_compressible",
    "CompressionParams",
    "params_for_delta",
    "verify_compression_lemma",
]


def compressed_count(b: int, rho: float) -> int:
    """Processor count after one compression step: ``floor(b * (1 - rho))``."""
    if b < 1:
        raise ValueError("processor count must be >= 1")
    if not 0 < rho <= 0.5:
        raise ValueError("compression factor rho must lie in (0, 0.5]")
    return max(1, math.floor(b * (1.0 - rho)))


def compression_time_bound(time: float, rho: float) -> float:
    """Upper bound ``(1 + 4*rho) * time`` on the processing time after compression."""
    return (1.0 + 4.0 * rho) * time


def is_compressible(count: int, rho: float) -> bool:
    """A job is compressible with factor ``rho`` iff it uses at least ``1/rho``
    processors (so at least one processor is freed)."""
    return count >= 1.0 / rho


@dataclass(frozen=True)
class CompressionParams:
    """Parameters derived from the accuracy ``delta`` as in Lemma 16."""

    delta: float
    rho: float
    b: float  # compressibility threshold (jobs using >= b processors are wide)

    @property
    def double_factor(self) -> float:
        """The combined compression factor ``2*rho - rho**2`` used by Algorithm 2/3."""
        return 2.0 * self.rho - self.rho ** 2


def params_for_delta(delta: float) -> CompressionParams:
    """Compute ``rho`` and ``b`` from ``delta`` as in Lemma 16.

    ``rho = (sqrt(1 + delta) - 1) / 4`` and ``b = 1 / (2*rho - rho**2)``.
    """
    if not 0 < delta <= 1.0 + 1e-12:
        raise ValueError("delta must lie in (0, 1]")
    rho = (math.sqrt(1.0 + delta) - 1.0) / 4.0
    b = 1.0 / (2.0 * rho - rho ** 2)
    return CompressionParams(delta=delta, rho=rho, b=b)


def verify_compression_lemma(job: MoldableJob, b: int, rho: float) -> bool:
    """Check Lemma 4 numerically for a specific job and processor count.

    Returns ``True`` iff ``t_j(floor(b*(1-rho))) <= (1 + 4*rho) * t_j(b)``.
    Only meaningful for monotone jobs with ``b >= 1/rho``; used by tests and
    instance sanity checks.
    """
    if not is_compressible(b, rho):
        raise ValueError(f"count {b} is not compressible with rho={rho} (needs >= {1.0 / rho:.3f})")
    new_count = compressed_count(b, rho)
    return job.processing_time(new_count) <= compression_time_bound(job.processing_time(b), rho) * (1 + 1e-12)
