"""Schedules for moldable jobs.

A schedule assigns every job a start time and a concrete set of machines.
Machine sets are represented by *spans* ``(first_machine, count)`` so that
instances with billions of machines never materialise per-machine data
structures; a job almost always occupies one contiguous span, but unions of
spans are supported (e.g. when a shelf construction reuses scattered leftover
machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .job import MoldableJob

__all__ = ["MachineSpan", "ScheduledJob", "Schedule"]


MachineSpan = Tuple[int, int]
"""A half-open machine range ``(first, count)`` covering machines
``first, first+1, ..., first+count-1`` (0-indexed)."""


def _normalize_spans(spans: Sequence[MachineSpan]) -> Tuple[MachineSpan, ...]:
    cleaned: List[MachineSpan] = []
    for first, count in spans:
        first = int(first)
        count = int(count)
        if count <= 0:
            raise ValueError(f"span count must be positive, got {count}")
        if first < 0:
            raise ValueError(f"span start must be non-negative, got {first}")
        cleaned.append((first, count))
    cleaned.sort()
    # Merge exactly-adjacent spans; *overlapping* spans would allocate the same
    # machine twice to one placement and are rejected (a silent merge used to
    # hide double-booked machines in hand-built span lists).
    merged: List[MachineSpan] = []
    for first, count in cleaned:
        if merged:
            prev_first, prev_count = merged[-1]
            prev_end = prev_first + prev_count
            if first < prev_end:
                raise ValueError(
                    f"overlapping machine spans ({prev_first}, {prev_count}) and "
                    f"({first}, {count}) double-book a machine"
                )
            if first == prev_end:
                merged[-1] = (prev_first, prev_count + count)
                continue
        merged.append((first, count))
    return tuple(merged)


@dataclass(frozen=True)
class ScheduledJob:
    """One job placed in a schedule.

    Attributes
    ----------
    job:
        The moldable job.
    start:
        Start time (the job runs in ``[start, start + duration)``).
    spans:
        Machine spans; the job uses ``processors = sum(count for _, count in spans)``
        machines for its whole duration.
    duration_override:
        Normally the duration is ``job.processing_time(processors)``.  A few
        constructions (e.g. conceptually "split" jobs in the shelf
        transformation) need to pin the duration explicitly; tests assert that
        overrides never *understate* the true processing time.
    """

    job: MoldableJob
    start: float
    spans: Tuple[MachineSpan, ...]
    duration_override: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "spans", _normalize_spans(self.spans))
        if self.start < 0:
            raise ValueError(f"start time must be non-negative, got {self.start}")
        if not self.spans:
            raise ValueError("a scheduled job needs at least one machine span")

    @property
    def processors(self) -> int:
        return sum(count for _, count in self.spans)

    @property
    def duration(self) -> float:
        if self.duration_override is not None:
            return self.duration_override
        return self.job.processing_time(self.processors)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def work(self) -> float:
        return self.processors * self.duration

    def machines(self) -> Iterator[int]:
        """Iterate over the individual machine indices (avoid for huge spans)."""
        for first, count in self.spans:
            yield from range(first, first + count)

    def uses_machine(self, machine: int) -> bool:
        return any(first <= machine < first + count for first, count in self.spans)


@dataclass
class Schedule:
    """A complete schedule on ``m`` machines."""

    m: int
    entries: List[ScheduledJob] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")

    # ----------------------------------------------------------------- edit
    def add(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration_override: float | None = None,
    ) -> ScheduledJob:
        entry = ScheduledJob(job=job, start=start, spans=tuple(spans), duration_override=duration_override)
        self.entries.append(entry)
        return entry

    def extend(self, entries: Iterable[ScheduledJob]) -> None:
        self.entries.extend(entries)

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduledJob]:
        return iter(self.entries)

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.entries), default=0.0)

    @property
    def total_work(self) -> float:
        return sum(e.work for e in self.entries)

    def jobs(self) -> List[MoldableJob]:
        return [e.job for e in self.entries]

    def entry_for(self, job: MoldableJob) -> ScheduledJob:
        for e in self.entries:
            if e.job is job:
                return e
        raise KeyError(f"job {job.name!r} is not in the schedule")

    def average_utilization(self) -> float:
        """Fraction of the ``m x makespan`` area covered by jobs."""
        ms = self.makespan
        if ms <= 0:
            return 0.0
        return self.total_work / (self.m * ms)

    def peak_processor_usage(self) -> int:
        """Maximum number of simultaneously busy machines (event sweep).

        The sweep is a NumPy sort + prefix sum over the ``2n`` start/finish
        events (releases sort before acquisitions at equal times, so
        back-to-back placements do not double-count).
        """
        n = len(self.entries)
        if n == 0:
            return 0
        times = np.empty(2 * n, dtype=np.float64)
        deltas_list: List[int] = [0] * (2 * n)
        total = 0
        for i, e in enumerate(self.entries):
            p = e.processors
            total += p
            times[i] = e.start
            deltas_list[i] = p
            times[n + i] = e.end
            deltas_list[n + i] = -p
        if total > (1 << 62):
            # int64 prefix sums could overflow on astronomically wide spans
            # (compact encoding): exact arbitrary-precision sweep instead.
            events = sorted(zip(times.tolist(), deltas_list))
            busy = 0
            peak = 0
            for _, delta in events:
                busy += delta
                peak = max(peak, busy)
            return peak
        deltas = np.array(deltas_list, dtype=np.int64)
        order = np.lexsort((deltas, times))
        peak = np.cumsum(deltas[order]).max()
        return max(0, int(peak))

    def sorted_by_start(self) -> List[ScheduledJob]:
        return sorted(self.entries, key=lambda e: (e.start, -e.processors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(m={self.m}, jobs={len(self.entries)}, makespan={self.makespan:.4g})"
