"""Schedules for moldable jobs — a fully *columnar* container.

A schedule assigns every job a start time and a concrete set of machines.
Machine sets are represented by *spans* ``(first_machine, count)`` so that
instances with billions of machines never materialise per-machine data
structures; a job almost always occupies one contiguous span, but unions of
spans are supported (e.g. when a shelf construction reuses scattered leftover
machines).

Storage model
-------------
The single source of truth is a set of flat NumPy columns (one value per
*entry*, plus span-block columns addressed through per-entry offsets):

======================  =====================================================
column                  meaning
======================  =====================================================
``start``               float64 start times
``procs``               int64 total processors per entry
``duration``            float64 durations (``NaN`` = not resolved yet;
                        resolved lazily from the jobs, in one batched kernel
                        pass when a :class:`repro.perf.oracle.BatchedOracle`
                        is supplied)
``has_override``        bool mask of explicit ``duration_override`` values
``span_off``            int64, length ``n+1``: entry ``i`` owns the span rows
                        ``span_off[i]:span_off[i+1]``
``span_first``          int64 first machine per span
``span_count``          int64 machine count per span
======================  =====================================================

plus a per-entry *object* column holding the :class:`MoldableJob` references.
Incremental ``add`` calls append to a small staging buffer which is
consolidated into the NumPy block the next time columns are read; the
columnar builders (:class:`repro.perf.schedule_builder.ArraySchedule`)
install a finished block directly, with zero per-entry conversion work.

:class:`ScheduledJob` entry objects are **views**: they are materialised
lazily from the columns the first time an entry is subscripted or iterated,
and cached.  Algorithms that only need the columns (validators, simulators,
renderers, analysis) never pay for the objects — read
``schedule.columns()`` arrays instead of iterating ``schedule.entries``
when writing vectorized consumers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .capacity import MAX_COLUMNAR_M, index_array, total_fits_int64
from .job import MoldableJob

__all__ = [
    "MachineSpan",
    "ScheduledJob",
    "Schedule",
    "ScheduleColumns",
    "MAX_COLUMNAR_M",
    "grouped_running_count",
    "spans_time_overlap",
]


MachineSpan = Tuple[int, int]
"""A half-open machine range ``(first, count)`` covering machines
``first, first+1, ..., first+count-1`` (0-indexed)."""


def _normalize_spans(spans: Sequence[MachineSpan]) -> Tuple[MachineSpan, ...]:
    cleaned: List[MachineSpan] = []
    for first, count in spans:
        first = int(first)
        count = int(count)
        if count <= 0:
            raise ValueError(f"span count must be positive, got {count}")
        if first < 0:
            raise ValueError(f"span start must be non-negative, got {first}")
        cleaned.append((first, count))
    cleaned.sort()
    # Merge exactly-adjacent spans; *overlapping* spans would allocate the same
    # machine twice to one placement and are rejected (a silent merge used to
    # hide double-booked machines in hand-built span lists).
    merged: List[MachineSpan] = []
    for first, count in cleaned:
        if merged:
            prev_first, prev_count = merged[-1]
            prev_end = prev_first + prev_count
            if first < prev_end:
                raise ValueError(
                    f"overlapping machine spans ({prev_first}, {prev_count}) and "
                    f"({first}, {count}) double-book a machine"
                )
            if first == prev_end:
                merged[-1] = (prev_first, prev_count + count)
                continue
        merged.append((first, count))
    return tuple(merged)


class ScheduledJob:
    """One job placed in a schedule.

    Attributes
    ----------
    job:
        The moldable job.
    start:
        Start time (the job runs in ``[start, start + duration)``).
    spans:
        Machine spans; the job uses ``processors = sum(count for _, count in spans)``
        machines for its whole duration.
    duration_override:
        Normally the duration is ``job.processing_time(processors)``.  A few
        constructions (e.g. conceptually "split" jobs in the shelf
        transformation) need to pin the duration explicitly; tests assert that
        overrides never *understate* the true processing time.

    Instances are immutable.  Inside a :class:`Schedule` they are lazy *views*
    over the schedule's columns, materialised on first access.
    """

    __slots__ = ("job", "start", "spans", "duration_override")

    def __init__(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration_override: Optional[float] = None,
    ) -> None:
        object.__setattr__(self, "job", job)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "spans", _normalize_spans(spans))
        object.__setattr__(self, "duration_override", duration_override)
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        if not self.spans:
            raise ValueError("a scheduled job needs at least one machine span")

    def __setattr__(self, name, value):  # noqa: ANN001 - frozen semantics
        raise AttributeError(f"ScheduledJob is immutable (cannot set {name!r})")

    def __delattr__(self, name):  # noqa: ANN001 - frozen semantics
        raise AttributeError(f"ScheduledJob is immutable (cannot delete {name!r})")

    def __getstate__(self):
        return (self.job, self.start, self.spans, self.duration_override)

    def __setstate__(self, state) -> None:
        set_attr = object.__setattr__
        for name, value in zip(self.__slots__, state):
            set_attr(self, name, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduledJob):
            return NotImplemented
        return (
            self.job == other.job
            and self.start == other.start
            and self.spans == other.spans
            and self.duration_override == other.duration_override
        )

    def __hash__(self) -> int:
        return hash((self.job, self.start, self.spans, self.duration_override))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduledJob(job={self.job!r}, start={self.start!r}, "
            f"spans={self.spans!r}, duration_override={self.duration_override!r})"
        )

    @property
    def processors(self) -> int:
        return sum(count for _, count in self.spans)

    @property
    def duration(self) -> float:
        if self.duration_override is not None:
            return self.duration_override
        return self.job.processing_time(self.processors)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def work(self) -> float:
        return self.processors * self.duration

    def machines(self) -> Iterator[int]:
        """Iterate over the individual machine indices (avoid for huge spans)."""
        for first, count in self.spans:
            yield from range(first, first + count)

    def uses_machine(self, machine: int) -> bool:
        return any(first <= machine < first + count for first, count in self.spans)


def _blank_entry(
    job: MoldableJob,
    start: float,
    spans: Tuple[MachineSpan, ...],
    duration_override: Optional[float],
) -> ScheduledJob:
    """Materialise an entry view from already-normalized column data,
    bypassing the constructor's re-validation."""
    entry = ScheduledJob.__new__(ScheduledJob)
    set_attr = object.__setattr__
    set_attr(entry, "job", job)
    set_attr(entry, "start", start)
    set_attr(entry, "spans", spans)
    set_attr(entry, "duration_override", duration_override)
    return entry


class _ColumnBlock:
    """Consolidated flat columns for all entries of a schedule."""

    __slots__ = (
        "n",
        "start",
        "procs",
        "duration",
        "has_override",
        "span_off",
        "span_first",
        "span_count",
    )

    def __init__(
        self,
        n: int,
        start: np.ndarray,
        procs: np.ndarray,
        duration: np.ndarray,
        has_override: np.ndarray,
        span_off: np.ndarray,
        span_first: np.ndarray,
        span_count: np.ndarray,
    ) -> None:
        self.n = n
        self.start = start
        self.procs = procs
        self.duration = duration
        self.has_override = has_override
        self.span_off = span_off
        self.span_first = span_first
        self.span_count = span_count

    @classmethod
    def empty(cls) -> "_ColumnBlock":
        return cls(
            0,
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=bool),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )


class ScheduleColumns:
    """Flat array view of a schedule's columns (shared, not copied).

    Attributes
    ----------
    start, duration, end:
        Per-entry float64 arrays (``end = start + duration``; overrides
        respected).  Durations resolve *lazily*: touching ``duration`` or
        ``end`` (or the event sweep) triggers resolution, so consumers that
        only need starts, processors or spans (certificate extraction,
        serialisation) never pay for oracle calls.
    processors:
        Per-entry int64 processor counts.
    has_override:
        Per-entry bool mask of explicit duration overrides.
    span_owner, span_first, span_end:
        Per-span int64 columns (``span_end`` is exclusive; spans are sorted
        by owner, then by first machine).
    span_off:
        int64, length ``n+1``: entry ``i`` owns span rows
        ``span_off[i]:span_off[i+1]``.

    The peak-busy event sweep shared by the validator, the simulator's
    columnar backend and :meth:`Schedule.peak_processor_usage` lives here
    (:meth:`event_sweep` / :meth:`peak_busy` / :meth:`busy_profile`), so the
    three consumers cannot drift apart on tie-breaking rules.
    """

    __slots__ = (
        "n",
        "start",
        "processors",
        "has_override",
        "span_owner",
        "span_first",
        "span_end",
        "span_off",
        "_schedule",
        "_block",
        "_duration",
        "_end",
        "_sweep",
    )

    def __init__(self, schedule: "Schedule", *, oracle=None) -> None:
        cols = schedule.columns(oracle=oracle)
        for name in ScheduleColumns.__slots__:
            setattr(self, name, getattr(cols, name))

    @classmethod
    def _from_block(cls, block: _ColumnBlock, schedule: "Schedule") -> "ScheduleColumns":
        cols = cls.__new__(cls)
        cols.n = block.n
        cols.start = block.start
        cols.processors = block.procs
        cols.has_override = block.has_override
        spans_per_entry = np.diff(block.span_off)
        cols.span_owner = np.repeat(
            np.arange(block.n, dtype=np.int64), spans_per_entry
        )
        cols.span_first = block.span_first
        cols.span_end = block.span_first + block.span_count
        cols.span_off = block.span_off
        cols._schedule = schedule
        cols._block = block
        cols._duration = None
        cols._end = None
        cols._sweep = None
        return cols

    # --------------------------------------------------- lazy durations
    def _ensure_durations(self, oracle=None) -> np.ndarray:
        if self._duration is None:
            self._schedule._resolve_durations(self._block, oracle)
            self._duration = self._block.duration
        return self._duration

    @property
    def duration(self) -> np.ndarray:
        return self._ensure_durations()

    @property
    def end(self) -> np.ndarray:
        if self._end is None:
            self._end = self.start + self.duration
        return self._end

    def override_values(self) -> List[Optional[float]]:
        """Per-entry ``duration_override`` (``None`` when absent) without
        forcing resolution of the non-overridden durations (override rows
        are always concrete in the duration column)."""
        if not self.has_override.any():
            return [None] * self.n
        raw = self._block.duration
        return [
            float(raw[i]) if flag else None
            for i, flag in enumerate(self.has_override.tolist())
        ]

    # ------------------------------------------------------- event sweep
    def event_sweep(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared start/finish event sweep: ``(order, times, running)``.

        ``order`` indexes the concatenated ``(start, end)`` event columns
        (indices ``< n`` are start events), sorted by time with finish events
        before start events at equal times (so back-to-back placements never
        double-count) and *stable* within ties (so equal-time start events
        keep entry order, which downstream float accumulations rely on).
        ``running[k]`` is the number of busy processors after event ``k``.
        """
        if self._sweep is None:
            n = self.n
            times = np.concatenate((self.start, self.end))
            kinds = np.concatenate(
                (np.ones(n, dtype=np.int64), np.zeros(n, dtype=np.int64))
            )
            order = np.lexsort((kinds, times))
            deltas = np.concatenate((self.processors, -self.processors))[order]
            self._sweep = (order, times[order], np.cumsum(deltas))
        return self._sweep

    def fits_int64_sweep(self) -> bool:
        """Whether int64 prefix sums over the ``2n`` events cannot overflow
        (the one check shared by every sweep caller —
        ``Schedule.peak_processor_usage``, the validator and the simulator —
        so the fallback threshold cannot drift between them).

        Object-dtype processor columns always pass: their cumsum is exact
        Python-int arithmetic.  For int64 columns the check is *exact* via
        :func:`repro.core.capacity.total_fits_int64` — the historical float
        sum was only trusted up to ``2**53`` and silently accepted totals in
        the ``(2**62, 2**62 + ulp]`` rounding gap."""
        if self.processors.dtype == object:
            return True
        return total_fits_int64(self.processors)

    def peak_busy(self) -> int:
        """Maximum number of simultaneously busy processors.

        Callers must check :meth:`fits_int64_sweep` first (see
        ``Schedule.peak_processor_usage`` for the arbitrary-precision
        fallback); below ``2**62`` total processors the sweep is exact.
        """
        if self.n == 0:
            return 0
        _, _, running = self.event_sweep()
        return max(0, int(running.max()))

    def busy_profile(self) -> Tuple[np.ndarray, np.ndarray]:
        """Piecewise-constant utilisation: ``(times, busy)`` change points
        (the busy count after the last event of each distinct instant)."""
        if self.n == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        _, t_sorted, running = self.event_sweep()
        change = np.concatenate((t_sorted[1:] != t_sorted[:-1], [True]))
        return t_sorted[change], running[change]


class _EntrySequence:
    """Read-only sequence view over a schedule's lazily materialised entries."""

    __slots__ = ("_schedule",)

    def __init__(self, schedule: "Schedule") -> None:
        self._schedule = schedule

    def __len__(self) -> int:
        return len(self._schedule._jobs)

    def __getitem__(self, index):
        n = len(self)
        if isinstance(index, slice):
            return [self._schedule._entry(i) for i in range(*index.indices(n))]
        i = index.__index__()
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("schedule entry index out of range")
        return self._schedule._entry(i)

    def __iter__(self) -> Iterator[ScheduledJob]:
        schedule = self._schedule
        for i in range(len(schedule._jobs)):
            yield schedule._entry(i)

    def __contains__(self, item: object) -> bool:
        return any(entry is item or entry == item for entry in self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _EntrySequence):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{len(self)} schedule entries>"


class Schedule:
    """A complete schedule on ``m`` machines (columnar storage)."""

    __slots__ = (
        "m",
        "metadata",
        "_jobs",
        "_block",
        "_t_start",
        "_t_procs",
        "_t_override",
        "_t_spans",
        "_views",
        "_cols",
        "_overflowed",
        "_entry_seq",
    )

    def __init__(
        self,
        m: int,
        entries: Optional[Iterable[ScheduledJob]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self.metadata = metadata if metadata is not None else {}
        self._jobs: List[MoldableJob] = []
        self._block: Optional[_ColumnBlock] = None
        # staging buffers for incremental appends (consolidated lazily)
        self._t_start: List[float] = []
        self._t_procs: List[int] = []
        self._t_override: List[Optional[float]] = []
        self._t_spans: List[Tuple[MachineSpan, ...]] = []
        self._views: List[Optional[ScheduledJob]] = []
        self._cols: Optional[ScheduleColumns] = None
        self._overflowed = False
        self._entry_seq = _EntrySequence(self)
        if entries is not None:
            self.extend(entries)

    # ----------------------------------------------------------------- edit
    def add(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration_override: Optional[float] = None,
    ) -> ScheduledJob:
        entry = ScheduledJob(job, start, tuple(spans), duration_override)
        self._ingest(entry)
        return entry

    def extend(self, entries: Iterable[ScheduledJob]) -> None:
        for entry in entries:
            self._ingest(entry)

    def _ingest(self, entry: ScheduledJob) -> None:
        """Append one (already validated) entry to the staging columns."""
        self._jobs.append(entry.job)
        self._t_start.append(entry.start)
        self._t_procs.append(entry.processors)
        self._t_override.append(entry.duration_override)
        self._t_spans.append(entry.spans)
        self._views.append(entry)
        self._cols = None
        self._overflowed = False

    def _install_block(self, jobs: List[MoldableJob], block: _ColumnBlock) -> None:
        """Adopt finished columns wholesale (the zero-conversion builder path)."""
        self._jobs = jobs
        self._block = block
        self._t_start = []
        self._t_procs = []
        self._t_override = []
        self._t_spans = []
        self._views = [None] * block.n
        self._cols = None
        self._overflowed = False

    # -------------------------------------------------------------- columns
    def _consolidate(self) -> _ColumnBlock:
        """Merge the staging buffers into the consolidated column block.

        Processor counts and machine indices beyond int64 (compact encodings
        of astronomically wide machines) land in exact object-dtype columns
        via :func:`repro.core.capacity.index_array` — the columnar view no
        longer overflows at any ``m``.
        """
        block = self._block
        if not self._t_start:
            if block is None:
                block = _ColumnBlock.empty()
                self._block = block
            return block
        t_n = len(self._t_start)
        t_start = np.asarray(self._t_start, dtype=np.float64)
        t_procs = index_array(self._t_procs)
        t_has_override = np.fromiter(
            (o is not None for o in self._t_override), dtype=bool, count=t_n
        )
        t_duration = np.fromiter(
            (o if o is not None else np.nan for o in self._t_override),
            dtype=np.float64,
            count=t_n,
        )
        spans_per_entry = np.fromiter(
            (len(s) for s in self._t_spans), dtype=np.int64, count=t_n
        )
        t_span_first = index_array(
            [f for spans in self._t_spans for f, _ in spans]
        )
        t_span_count = index_array(
            [c for spans in self._t_spans for _, c in spans]
        )
        if block is None or block.n == 0:
            span_off = np.zeros(t_n + 1, dtype=np.int64)
            np.cumsum(spans_per_entry, out=span_off[1:])
            merged = _ColumnBlock(
                t_n, t_start, t_procs, t_duration, t_has_override,
                span_off, t_span_first, t_span_count,
            )
        else:
            tail_off = np.empty(t_n, dtype=np.int64)
            np.cumsum(spans_per_entry, out=tail_off)
            merged = _ColumnBlock(
                block.n + t_n,
                np.concatenate((block.start, t_start)),
                np.concatenate((block.procs, t_procs)),
                np.concatenate((block.duration, t_duration)),
                np.concatenate((block.has_override, t_has_override)),
                np.concatenate((block.span_off, tail_off + block.span_off[-1])),
                np.concatenate((block.span_first, t_span_first)),
                np.concatenate((block.span_count, t_span_count)),
            )
        # commit only after every conversion succeeded
        self._block = merged
        self._t_start = []
        self._t_procs = []
        self._t_override = []
        self._t_spans = []
        return merged

    def _resolve_durations(self, block: _ColumnBlock, oracle=None) -> None:
        """Fill the NaN (unresolved) rows of the duration column.

        With a :class:`repro.perf.oracle.BatchedOracle` the durations of all
        oracle-known jobs come from one batched kernel pass; remaining rows
        fall back to per-job ``processing_time`` calls (bit-identical values
        either way — the batched kernels guarantee it).
        """
        duration = block.duration
        unresolved = np.isnan(duration)
        if not unresolved.any():
            return
        rows = np.flatnonzero(unresolved).tolist()
        jobs = self._jobs
        procs = block.procs
        if oracle is not None:
            index_of = oracle.index_of
            batch_rows: List[int] = []
            batch_jobs: List[int] = []
            rest: List[int] = []
            for i in rows:
                try:
                    batch_jobs.append(index_of(jobs[i]))
                    batch_rows.append(i)
                except KeyError:  # job not part of the oracle's instance
                    rest.append(i)
            if batch_rows:
                r = np.asarray(batch_rows, dtype=np.int64)
                duration[r] = oracle.bundle.eval_at(
                    np.asarray(batch_jobs, dtype=np.int64), procs[r]
                )
            rows = rest
        for i in rows:
            duration[i] = jobs[i].processing_time(int(procs[i]))

    def columns(self, *, oracle=None) -> ScheduleColumns:
        """The flat column view (cached; rebuilt after mutations).

        Durations stay unresolved until the view's ``duration``/``end``
        columns are touched — except when an ``oracle`` is supplied, in
        which case they are resolved immediately in one batched kernel pass
        (the oracle is at hand *now*; a later lazy access would fall back
        to per-job calls).

        Span values beyond int64 land in exact object-dtype columns (see
        :mod:`repro.core.capacity`), so this no longer raises at any ``m``.
        """
        block = self._consolidate()
        cols = self._cols
        if cols is None:
            cols = ScheduleColumns._from_block(block, self)
            self._cols = cols
        if oracle is not None:
            cols._ensure_durations(oracle)
        return cols

    def try_columns(self, *, oracle=None) -> Optional[ScheduleColumns]:
        """Like :meth:`columns` but returns ``None`` instead of raising
        :class:`OverflowError` (the caller then takes its scalar path).

        Since the object-dtype escape hatch landed, consolidation succeeds
        at any magnitude and this is equivalent to :meth:`columns`; the
        guard (with its failed-consolidation cache) is kept as a safety net
        for exotic column producers.
        """
        if self._overflowed:
            return None
        try:
            return self.columns(oracle=oracle)
        except OverflowError:
            self._overflowed = True
            return None

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[ScheduledJob]:
        return iter(self._entry_seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self.m == other.m
            and self.metadata == other.metadata
            and list(self.entries) == list(other.entries)
        )

    @property
    def entries(self) -> _EntrySequence:
        """Sequence view of the :class:`ScheduledJob` entries (lazy, cached)."""
        return self._entry_seq

    def _entry(self, i: int) -> ScheduledJob:
        entry = self._views[i]
        if entry is None:
            block = self._block
            lo = block.span_off[i]
            hi = block.span_off[i + 1]
            spans = tuple(
                zip(
                    block.span_first[lo:hi].tolist(),
                    block.span_count[lo:hi].tolist(),
                )
            )
            override = float(block.duration[i]) if block.has_override[i] else None
            entry = _blank_entry(self._jobs[i], float(block.start[i]), spans, override)
            self._views[i] = entry
        return entry

    @property
    def makespan(self) -> float:
        if not self._jobs:
            return 0.0
        cols = self.try_columns()
        if cols is None:  # astronomically wide spans: per-entry fallback
            return max(e.end for e in self.entries)
        return float(cols.end.max())

    @property
    def total_work(self) -> float:
        if not self._jobs:
            return 0.0
        cols = self.try_columns()
        if cols is None:
            return sum(e.work for e in self.entries)
        # python-sum in entry order: bit-identical to the per-entry loop
        return sum((cols.processors * cols.duration).tolist())

    def jobs(self) -> List[MoldableJob]:
        return list(self._jobs)

    def entry_for(self, job: MoldableJob) -> ScheduledJob:
        for i, candidate in enumerate(self._jobs):
            if candidate is job:
                return self._entry(i)
        raise KeyError(f"job {job.name!r} is not in the schedule")

    def average_utilization(self) -> float:
        """Fraction of the ``m x makespan`` area covered by jobs."""
        ms = self.makespan
        if ms <= 0:
            return 0.0
        return self.total_work / (self.m * ms)

    def peak_processor_usage(self) -> int:
        """Maximum number of simultaneously busy machines (event sweep).

        The sweep is the shared :meth:`ScheduleColumns.peak_busy` sort +
        prefix sum over the ``2n`` start/finish events (releases sort before
        acquisitions at equal times, so back-to-back placements do not
        double-count).
        """
        if not self._jobs:
            return 0
        cols = self.try_columns()
        if cols is None or not cols.fits_int64_sweep():
            # int64 prefix sums could overflow on astronomically wide spans
            # (compact encoding): exact arbitrary-precision sweep instead.
            events: List[Tuple[float, int]] = []
            for e in self.entries:
                p = e.processors
                events.append((e.start, p))
                events.append((e.end, -p))
            events.sort()
            busy = 0
            peak = 0
            for _, delta in events:
                busy += delta
                peak = max(peak, busy)
            return peak
        return cols.peak_busy()

    def sorted_by_start(self) -> List[ScheduledJob]:
        return sorted(self.entries, key=lambda e: (e.start, -e.processors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(m={self.m}, jobs={len(self._jobs)}, makespan={self.makespan:.4g})"


# --------------------------------------------------------------------------
# Columnar sweep helpers shared by the validator and the simulator
# --------------------------------------------------------------------------

def grouped_running_count(group_ids: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Per-group running sums of ``deltas`` (both sorted by group already).

    One global prefix sum, then each group is re-based by subtracting the
    prefix value just before its first element — the standard columnar
    substitute for a per-group Python loop.
    """
    run = np.cumsum(deltas)
    if len(run) == 0:
        return run
    new_group = np.concatenate(([True], group_ids[1:] != group_ids[:-1]))
    group_start = np.flatnonzero(new_group)
    base = np.concatenate(([deltas.dtype.type(0)], run[group_start[1:] - 1]))
    sizes = np.diff(np.concatenate((group_start, [len(run)])))
    return run - np.repeat(base, sizes)


def spans_time_overlap(
    span_first: np.ndarray,
    span_end: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    *,
    max_incidences: Optional[int] = None,
) -> Optional[bool]:
    """Detect whether any two busy rectangles (machine span × time interval)
    overlap with positive area.

    This is the O(P log P) sort/prefix-sum core of the vectorized conflict
    checks: machine spans are cut at every distinct span boundary, each piece
    is expanded to the elementary segments it covers, and per segment a
    time-sorted event sweep counts simultaneously active intervals (ends sort
    before starts, so touching intervals never count as two).

    Returns ``True``/``False``, or ``None`` when the expansion would exceed
    ``max_incidences`` (pathologically nested spans) — the caller should fall
    back to a scalar sweep.  The check is *exact* (no float tolerance): a
    ``True`` may still be a within-tolerance touch that a tolerant scalar
    checker would accept, so ``True`` means "re-check", not "infeasible".
    """
    p = len(span_first)
    if p < 2:
        return False
    cuts = np.unique(np.concatenate((span_first, span_end)))
    lo = np.searchsorted(cuts, span_first, side="left")
    hi = np.searchsorted(cuts, span_end, side="left")
    counts = hi - lo
    total = int(counts.sum())
    if max_incidences is not None and total > max_incidences:
        return None
    piece = np.repeat(np.arange(p, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    seg = lo[piece] + within
    ev_seg = np.concatenate((seg, seg))
    ev_time = np.concatenate((start[piece], end[piece]))
    ev_delta = np.concatenate(
        (np.ones(total, dtype=np.int64), -np.ones(total, dtype=np.int64))
    )
    order = np.lexsort((ev_delta, ev_time, ev_seg))
    running = grouped_running_count(ev_seg[order], ev_delta[order])
    return bool(running.size) and int(running.max()) >= 2
