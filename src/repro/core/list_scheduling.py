"""List scheduling for jobs with a fixed allotment (Garey & Graham).

Once an allotment ``a`` is fixed, every moldable job becomes a *rigid*
parallel job (``a_j`` processors for ``t_j(a_j)`` time units).  The list
scheduling rule implemented here is the classical one used in the analyses of
Garey & Graham and Ludwig & Tiwari: **whenever machines become idle, scan the
list of unstarted jobs in order and start every job that currently fits.**
(The scan may skip over a wide job and start a later narrow one — without this
"first fit" behaviour the additive bound below does not hold.)

The produced schedule satisfies the classic factor-2 bound

    makespan  <=  2 * max( sum_j w_j(a_j) / m ,  max_j t_j(a_j) )

because at any moment before the last-finishing job starts, fewer than its
processor requirement machines are idle.  (The *additive* form
``W/m + T_max`` quoted in some expositions holds for single-processor jobs
but is false for rigid multi-processor jobs — the property-based tests
include a counterexample.)  The factor-2 bound is what the Ludwig–Tiwari
2-approximation and the NP-membership argument of the paper rely on.

The implementation tracks idle machines as *spans*, so it never materialises
per-machine state and works for astronomically large ``m``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .allotment import Allotment
from .job import MoldableJob
from .schedule import MachineSpan, Schedule

__all__ = ["list_schedule", "list_schedule_bound"]


def list_schedule_bound(allotment: Allotment, m: int) -> float:
    """The list-scheduling guarantee ``2 * max(W/m, T_max)`` for an allotment."""
    return 2.0 * max(allotment.average_load(m), allotment.max_time())


def list_schedule(
    jobs: Sequence[MoldableJob],
    allotment: Allotment,
    m: int,
    *,
    order: Optional[Sequence[MoldableJob]] = None,
    columnar: bool = False,
    allotted_times: Optional[Dict[MoldableJob, float]] = None,
) -> Schedule:
    """Greedy (first-fit) list scheduling of ``jobs`` with counts ``allotment``.

    Parameters
    ----------
    jobs:
        Jobs to schedule; each must appear in ``allotment`` with
        ``allotment[job] <= m``.
    order:
        Optional list priority; defaults to the order of ``jobs``.
    columnar:
        Assemble the result through the columnar
        :class:`repro.perf.schedule_builder.ArraySchedule` builder instead of
        per-job ``Schedule.add`` calls (the vectorized drivers' fast path;
        bit-identical schedule).
    allotted_times:
        Optional precomputed ``{job: t_j(allotment[job])}`` durations (only
        used by the columnar path).  Callers that already evaluated the
        allotted processing times in a batched kernel pass (e.g. the
        two-approximation's LPT sort) hand them over instead of forcing one
        scalar oracle call per job; values must equal ``processing_time``
        bit for bit, which the batched kernels guarantee.

    Returns
    -------
    Schedule
        A feasible schedule satisfying :func:`list_schedule_bound`.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    sequence = list(order) if order is not None else list(jobs)
    if len(sequence) != len(jobs) or {id(j) for j in sequence} != {id(j) for j in jobs}:
        raise ValueError("order must be a permutation of jobs")
    for job in sequence:
        k = allotment.get(job)
        if k is None:
            raise ValueError(f"job {job.name!r} has no allotment")
        if k > m:
            raise ValueError(f"job {job.name!r} is allotted {k} > m={m} processors")

    if columnar:
        return _list_schedule_columnar(sequence, allotment, m, allotted_times)

    schedule = Schedule(m=m, metadata={"algorithm": "list_scheduling"})
    if not sequence:
        return schedule

    pending: List[MoldableJob] = list(sequence)
    idle_spans: List[MachineSpan] = [(0, m)]
    idle_count = m
    #: running jobs: (end_time, seq, spans)
    running: List[Tuple[float, int, Tuple[MachineSpan, ...]]] = []
    seq = 0
    now = 0.0

    def take(need: int) -> List[MachineSpan]:
        nonlocal idle_count
        taken: List[MachineSpan] = []
        while need > 0:
            first, count = idle_spans.pop()
            use = min(count, need)
            taken.append((first, use))
            if use < count:
                idle_spans.append((first + use, count - use))
            idle_count -= use
            need -= use
        return taken

    while pending or running:
        # start every pending job (in list order) that fits right now
        progressed = True
        while progressed:
            progressed = False
            for index, job in enumerate(pending):
                need = allotment[job]
                if need <= idle_count:
                    spans = take(need)
                    entry = schedule.add(job, now, spans)
                    heapq.heappush(running, (entry.end, seq, tuple(spans)))
                    seq += 1
                    pending.pop(index)
                    progressed = True
                    break
        if not running:
            if pending:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        # advance to the next completion and release its machines (plus any
        # other completions at the same instant)
        end, _, spans = heapq.heappop(running)
        now = end
        released = list(spans)
        while running and running[0][0] <= now + 1e-15:
            _, _, more = heapq.heappop(running)
            released.extend(more)
        for first, count in released:
            idle_spans.append((first, count))
            idle_count += count

    return schedule


def _list_schedule_columnar(
    sequence: List[MoldableJob],
    allotment: Allotment,
    m: int,
    allotted_times: Optional[Dict[MoldableJob, float]] = None,
) -> Schedule:
    """Columnar twin of the scalar first-fit loop.

    Produces the bit-identical schedule: the same first-fit decisions over the
    same idle-span state, the same start times (completion times are computed
    from the same ``processing_time`` floats), the same entry order — but
    processor needs and durations are resolved once up front, placements are
    collected as flat rows and materialized in one
    :meth:`~repro.perf.schedule_builder.ArraySchedule.build` pass, and each
    wake-up's list scan is one vectorized candidate query instead of a Python
    pass over every pending job.

    The scan equivalence: within one wake-up the idle count only *decreases*,
    so a job the scalar scan rejected keeps being rejected until the next
    completion — restarting the scan from the list head after every start
    (the scalar loop) therefore starts exactly the jobs a single forward pass
    over ``need <= idle_at_wakeup`` candidates starts, in the same order.
    """
    from ..perf.schedule_builder import ArraySchedule

    builder = ArraySchedule(m, metadata={"algorithm": "list_scheduling"})
    if not sequence:
        return builder.build()

    counts = allotment.counts
    needs = [counts[job] for job in sequence]
    needs_arr = np.array(needs, dtype=np.int64)
    if allotted_times is not None:
        durations = [allotted_times[job] for job in sequence]
    else:
        durations = [job.processing_time(k) for job, k in zip(sequence, needs)]

    # row columns, written through bound methods in the hot loop
    row_job_append = builder._jobs.append
    row_start_append = builder._starts.append
    row_override_append = builder._overrides.append
    span_owner_append = builder._span_owner.append
    span_first_append = builder._span_first.append
    span_count_append = builder._span_count.append
    heappush = heapq.heappush
    heappop = heapq.heappop

    waiting = np.ones(len(sequence), dtype=bool)
    n_waiting = len(sequence)
    #: lower bound on the smallest processor need among waiting jobs — lets a
    #: wake-up that cannot start anything bail out with one comparison
    min_waiting_need = int(needs_arr.min())
    idle_spans: List[MachineSpan] = [(0, m)]
    idle_count = m
    running: List[Tuple[float, int, Tuple[MachineSpan, ...]]] = []
    seq = 0
    now = 0.0
    row = 0

    while n_waiting or running:
        if n_waiting and idle_count >= min_waiting_need:
            # all pending jobs that could fit at this wake-up, in list order;
            # iterated lazily (map) because the loop usually breaks as soon as
            # the idle machines run out
            candidates = np.flatnonzero(waiting & (needs_arr <= idle_count))
            started_any = False
            for ji in map(int, candidates):
                need = needs[ji]
                if need > idle_count:
                    continue
                taken: List[MachineSpan] = []
                idle_count -= need
                while need > 0:
                    first, count = idle_spans.pop()
                    if count <= need:
                        taken.append((first, count))
                        span_owner_append(row)
                        span_first_append(first)
                        span_count_append(count)
                        need -= count
                    else:
                        taken.append((first, need))
                        span_owner_append(row)
                        span_first_append(first)
                        span_count_append(need)
                        idle_spans.append((first + need, count - need))
                        need = 0
                row_job_append(sequence[ji])
                row_start_append(now)
                row_override_append(None)
                heappush(running, (now + durations[ji], seq, tuple(taken)))
                row += 1
                seq += 1
                waiting[ji] = False
                n_waiting -= 1
                started_any = True
                if idle_count == 0:
                    break
            if n_waiting and not started_any:
                # The lower bound was stale (true minimum is larger): refresh
                # it so the next idle wake-ups can skip in O(1).  After a
                # start the stale bound stays *valid* (needs only leave the
                # waiting set, the minimum can only grow), so no refresh.
                min_waiting_need = int(needs_arr[waiting].min())
        if not running:
            if n_waiting:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        end, _, spans = heappop(running)
        now = end
        released = list(spans)
        while running and running[0][0] <= now + 1e-15:
            _, _, more = heappop(running)
            released.extend(more)
        for first, count in released:
            idle_spans.append((first, count))
            idle_count += count

    return builder.build()
