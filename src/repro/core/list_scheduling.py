"""List scheduling for jobs with a fixed allotment (Garey & Graham).

Once an allotment ``a`` is fixed, every moldable job becomes a *rigid*
parallel job (``a_j`` processors for ``t_j(a_j)`` time units).  The list
scheduling rule implemented here is the classical one used in the analyses of
Garey & Graham and Ludwig & Tiwari: **whenever machines become idle, scan the
list of unstarted jobs in order and start every job that currently fits.**
(The scan may skip over a wide job and start a later narrow one — without this
"first fit" behaviour the additive bound below does not hold.)

The produced schedule satisfies the classic factor-2 bound

    makespan  <=  2 * max( sum_j w_j(a_j) / m ,  max_j t_j(a_j) )

because at any moment before the last-finishing job starts, fewer than its
processor requirement machines are idle.  (The *additive* form
``W/m + T_max`` quoted in some expositions holds for single-processor jobs
but is false for rigid multi-processor jobs — the property-based tests
include a counterexample.)  The factor-2 bound is what the Ludwig–Tiwari
2-approximation and the NP-membership argument of the paper rely on.

The implementation tracks idle machines as *spans*, so it never materialises
per-machine state and works for astronomically large ``m``.

Three backends produce the bit-identical schedule:

* ``backend="heap"`` — the scalar reference: a Python ``heapq`` wake-up loop
  with per-entry ``Schedule.add`` calls;
* ``backend="wakeup"`` — the PR-2 columnar loop (one vectorized candidate
  query per wake-up, still one ``heapq`` pop per completion);
* ``backend="event_queue"`` — the batched event-queue formulation:
  completions live in one ``(end, seq)``-sorted array, every epoch pops *all*
  simultaneous completions with a single sorted-array partition, admission is
  one vectorized ``need <= idle`` scan with prefix-sum batching, and machine
  spans for a whole epoch are cut with one cumulative-sum partition feeding
  the :class:`~repro.perf.schedule_builder.ArraySchedule` block install;
* ``backend="event_queue_indexed"`` — the event-queue formulation with an
  *incremental candidate index* (:class:`_NeedBucketIndex`): the waiting set
  lives in power-of-two need buckets maintained across epochs, so an epoch's
  admission query walks only the bucket prefix with ``need <= idle`` (in
  per-bucket list order) instead of re-scanning all ``n`` jobs — the
  single-completion (no-tie) regime drops from O(n) to O(log m) per epoch.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .allotment import Allotment
from .capacity import capacity_ops
from .job import MoldableJob
from .schedule import MAX_COLUMNAR_M, MachineSpan, Schedule

__all__ = [
    "list_schedule",
    "list_schedule_bound",
    "epoch_tolerance",
    "LIST_BACKENDS",
]

#: Selectable list-scheduling backends (all bit-identical).
LIST_BACKENDS = ("heap", "wakeup", "event_queue", "event_queue_indexed")

#: Absolute floor of the epoch-grouping tolerance (the scalar heap loop
#: defined it first); see :func:`epoch_tolerance` for the effective window.
EPOCH_TOLERANCE = 1e-15

#: Relative part of the epoch-grouping tolerance: two float64 ulp per unit of
#: completion-time magnitude (``2 * 2**-52``).
EPOCH_REL_TOLERANCE = 2.0 ** -51

#: Magnitude at which the relative epoch window stops growing.  Without the
#: cap the two-ulp window reaches ``2**62 * 2**-51 = 2048`` at astronomical
#: completion times — wide enough to fuse *distinct representable* floats
#: (ulp near ``2**62`` is 1024) into one epoch, silently changing grouping
#: semantics exactly where compact-encoding instances live.  Pinning the
#: anchor at ``2**60`` keeps the window at 512 = half an ulp there, so only
#: exact ties group beyond the cap; every backend shares the pin through
#: :func:`epoch_tolerance`.
EPOCH_REL_MAGNITUDE_CAP = 2.0 ** 60


def epoch_tolerance(end: float) -> float:
    """Grouping tolerance of the wake-up epoch anchored at completion ``end``.

    Completions within this tolerance of the earliest pending one are
    processed in the same wake-up epoch, by every backend (the grouping rule
    is shared, so the backends stay bit-identical among themselves).

    Historically this was the bare absolute ``EPOCH_TOLERANCE = 1e-15``,
    which float64 resolution outgrows just past magnitude 1: one ulp of
    ``16.0`` is already ``3.6e-15``, so epoch grouping silently degraded to
    exact-ties-only for any schedule whose completion times exceeded ~1.
    The tolerance is therefore *relative* to the epoch anchor —
    ``max(EPOCH_TOLERANCE, min(end, 2**60) * EPOCH_REL_TOLERANCE)``, i.e. two
    ulp at every magnitude up to :data:`EPOCH_REL_MAGNITUDE_CAP` (above which
    the window is pinned so it can never swallow adjacent representable
    floats), with the historical absolute floor taking over below magnitude
    ``EPOCH_TOLERANCE / EPOCH_REL_TOLERANCE`` (~2.25).
    """
    return max(EPOCH_TOLERANCE, min(end, EPOCH_REL_MAGNITUDE_CAP) * EPOCH_REL_TOLERANCE)


def list_schedule_bound(allotment: Allotment, m: int) -> float:
    """The list-scheduling guarantee ``2 * max(W/m, T_max)`` for an allotment."""
    return 2.0 * max(allotment.average_load(m), allotment.max_time())


def list_schedule(
    jobs: Sequence[MoldableJob],
    allotment: Allotment,
    m: int,
    *,
    order: Optional[Sequence[MoldableJob]] = None,
    backend: Optional[str] = None,
    columnar: bool = False,
    allotted_times: Optional[Dict[MoldableJob, float]] = None,
    oracle=None,
    stats: Optional[dict] = None,
) -> Schedule:
    """Greedy (first-fit) list scheduling of ``jobs`` with counts ``allotment``.

    Parameters
    ----------
    jobs:
        Jobs to schedule; each must appear in ``allotment`` with
        ``allotment[job] <= m``.
    order:
        Optional list priority; defaults to the order of ``jobs``.
    backend:
        ``"heap"`` (scalar reference, default), ``"wakeup"`` (columnar
        per-wake-up loop), ``"event_queue"`` (batched event epochs) or
        ``"event_queue_indexed"`` (event epochs with the incremental
        need-bucket candidate index) — all bit-identical; see the module
        docstring.  Every backend handles arbitrary-precision ``m``: beyond
        the int64 range the columnar backends switch their capacity columns
        to the exact wide-limb (then object-dtype) tier of
        :mod:`repro.core.capacity` instead of falling back to the heap.
    columnar:
        Backwards-compatible alias: ``columnar=True`` selects
        ``backend="wakeup"`` when ``backend`` is not given.
    allotted_times:
        Optional precomputed ``{job: t_j(allotment[job])}`` durations (only
        used by the array backends).  Callers that already evaluated the
        allotted processing times in a batched kernel pass (e.g. the
        two-approximation's LPT sort) hand them over instead of forcing one
        scalar oracle call per job; values must equal ``processing_time``
        bit for bit, which the batched kernels guarantee.
    oracle:
        Optional :class:`repro.perf.oracle.BatchedOracle` covering ``jobs``;
        the array backends then resolve missing durations in one batched
        kernel pass instead of per-job Python calls.
    stats:
        Optional dict the event-queue backends fill with instrumentation
        (``epochs``: completion epochs processed, ``events``: completions,
        ``max_epoch_completions``: largest simultaneous-completion group,
        ``candidate_scans``: admission queries executed,
        ``candidates_visited``: total job slots those queries examined — the
        scanning backend examines every job slot per query, the indexed
        backend only the bucket entries its prefix walks touch).  Every
        columnar backend (wakeup included) also records ``capacity_tier``
        (``"int64"``/``"wide"``/``"object"``), the
        :mod:`repro.core.capacity` tier its capacity-axis arrays ran on.

    Returns
    -------
    Schedule
        A feasible schedule satisfying :func:`list_schedule_bound`.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if backend is None:
        backend = "wakeup" if columnar else "heap"
    if backend not in LIST_BACKENDS:
        raise ValueError(f"unknown list scheduling backend {backend!r}; choose from {LIST_BACKENDS}")
    sequence = list(order) if order is not None else list(jobs)
    if len(sequence) != len(jobs) or {id(j) for j in sequence} != {id(j) for j in jobs}:
        raise ValueError("order must be a permutation of jobs")
    total_need = 0
    for job in sequence:
        k = allotment.get(job)
        if k is None:
            raise ValueError(f"job {job.name!r} has no allotment")
        if k > m:
            raise ValueError(f"job {job.name!r} is allotted {k} > m={m} processors")
        total_need += k
    # One capacity decision for every columnar backend (wakeup included):
    # the batch paths prefix-sum needs and popped span capacities (bounded by
    # total_need + m), so the tier is chosen from both.  Within int64 range
    # this is the exact historical ``total_need > MAX_COLUMNAR_M - m`` guard;
    # beyond it the backends keep their batch structure on the wide-limb or
    # object-dtype tier instead of silently forking to the heap reference.
    ops = capacity_ops(m, total_need)

    if backend == "wakeup":
        if stats is not None:
            stats["capacity_tier"] = ops.name
        return _list_schedule_columnar(sequence, allotment, m, allotted_times, oracle, ops)
    if backend in ("event_queue", "event_queue_indexed"):
        return _list_schedule_event_queue(
            sequence,
            allotment,
            m,
            allotted_times,
            oracle,
            stats,
            indexed=backend == "event_queue_indexed",
            ops=ops,
        )

    schedule = Schedule(m=m, metadata={"algorithm": "list_scheduling"})
    if not sequence:
        return schedule

    pending: List[MoldableJob] = list(sequence)
    idle_spans: List[MachineSpan] = [(0, m)]
    idle_count = m
    #: running jobs: (end_time, seq, spans)
    running: List[Tuple[float, int, Tuple[MachineSpan, ...]]] = []
    seq = 0
    now = 0.0

    def take(need: int) -> List[MachineSpan]:
        nonlocal idle_count
        taken: List[MachineSpan] = []
        while need > 0:
            first, count = idle_spans.pop()
            use = min(count, need)
            taken.append((first, use))
            if use < count:
                idle_spans.append((first + use, count - use))
            idle_count -= use
            need -= use
        return taken

    while pending or running:
        # start every pending job (in list order) that fits right now
        progressed = True
        while progressed:
            progressed = False
            for index, job in enumerate(pending):
                need = allotment[job]
                if need <= idle_count:
                    spans = take(need)
                    entry = schedule.add(job, now, spans)
                    heapq.heappush(running, (entry.end, seq, tuple(spans)))
                    seq += 1
                    pending.pop(index)
                    progressed = True
                    break
        if not running:
            if pending:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        # advance to the next completion and release its machines (plus any
        # other completions at the same instant)
        end, _, spans = heapq.heappop(running)
        now = end
        released = list(spans)
        cut = now + epoch_tolerance(now)
        while running and running[0][0] <= cut:
            _, _, more = heapq.heappop(running)
            released.extend(more)
        for first, count in released:
            idle_spans.append((first, count))
            idle_count += count

    return schedule


def _resolve_durations(
    sequence: List[MoldableJob],
    needs: Sequence[int],
    allotted_times: Optional[Dict[MoldableJob, float]],
    oracle,
) -> List[float]:
    """Per-job allotted processing times (bit-identical however resolved)."""
    if allotted_times is not None:
        return [allotted_times[job] for job in sequence]
    if oracle is not None:
        return oracle.times_for(
            sequence, np.asarray(needs, dtype=np.float64)
        ).tolist()
    return [job.processing_time(k) for job, k in zip(sequence, needs)]


def _list_schedule_columnar(
    sequence: List[MoldableJob],
    allotment: Allotment,
    m: int,
    allotted_times: Optional[Dict[MoldableJob, float]] = None,
    oracle=None,
    ops=None,
) -> Schedule:
    """Columnar twin of the scalar first-fit loop.

    Produces the bit-identical schedule: the same first-fit decisions over the
    same idle-span state, the same start times (completion times are computed
    from the same ``processing_time`` floats), the same entry order — but
    processor needs and durations are resolved once up front, placements are
    collected as flat rows and materialized in one
    :meth:`~repro.perf.schedule_builder.ArraySchedule.build` pass, and each
    wake-up's list scan is one vectorized candidate query instead of a Python
    pass over every pending job.

    The scan equivalence: within one wake-up the idle count only *decreases*,
    so a job the scalar scan rejected keeps being rejected until the next
    completion — restarting the scan from the list head after every start
    (the scalar loop) therefore starts exactly the jobs a single forward pass
    over ``need <= idle_at_wakeup`` candidates starts, in the same order.
    """
    from ..perf.schedule_builder import ArraySchedule

    builder = ArraySchedule(m, metadata={"algorithm": "list_scheduling"})
    if not sequence:
        return builder.build()

    counts = allotment.counts
    needs = [counts[job] for job in sequence]
    if ops is None:
        ops = capacity_ops(m, sum(needs))
    needs_arr = ops.asarray(needs)
    durations = _resolve_durations(sequence, needs, allotted_times, oracle)

    # row columns, written through bound methods in the hot loop
    jobs_col, starts_col, overrides_col, owner_col, first_col, count_col = (
        builder.raw_columns()
    )
    row_job_append = jobs_col.append
    row_start_append = starts_col.append
    row_override_append = overrides_col.append
    span_owner_append = owner_col.append
    span_first_append = first_col.append
    span_count_append = count_col.append
    heappush = heapq.heappush
    heappop = heapq.heappop

    waiting = np.ones(len(sequence), dtype=bool)
    n_waiting = len(sequence)
    #: lower bound on the smallest processor need among waiting jobs — lets a
    #: wake-up that cannot start anything bail out with one comparison
    min_waiting_need = ops.min_value(needs_arr)
    idle_spans: List[MachineSpan] = [(0, m)]
    idle_count = m
    running: List[Tuple[float, int, Tuple[MachineSpan, ...]]] = []
    seq = 0
    now = 0.0
    row = 0

    while n_waiting or running:
        if n_waiting and idle_count >= min_waiting_need:
            # all pending jobs that could fit at this wake-up, in list order;
            # iterated lazily (map) because the loop usually breaks as soon as
            # the idle machines run out
            candidates = np.flatnonzero(waiting & ops.le_mask(needs_arr, idle_count))
            started_any = False
            for ji in map(int, candidates):
                need = needs[ji]
                if need > idle_count:
                    continue
                taken: List[MachineSpan] = []
                idle_count -= need
                while need > 0:
                    first, count = idle_spans.pop()
                    if count <= need:
                        taken.append((first, count))
                        span_owner_append(row)
                        span_first_append(first)
                        span_count_append(count)
                        need -= count
                    else:
                        taken.append((first, need))
                        span_owner_append(row)
                        span_first_append(first)
                        span_count_append(need)
                        idle_spans.append((first + need, count - need))
                        need = 0
                row_job_append(sequence[ji])
                row_start_append(now)
                row_override_append(None)
                heappush(running, (now + durations[ji], seq, tuple(taken)))
                row += 1
                seq += 1
                waiting[ji] = False
                n_waiting -= 1
                started_any = True
                if idle_count == 0:
                    break
            if n_waiting and not started_any:
                # The lower bound was stale (true minimum is larger): refresh
                # it so the next idle wake-ups can skip in O(1).  After a
                # start the stale bound stays *valid* (needs only leave the
                # waiting set, the minimum can only grow), so no refresh.
                min_waiting_need = ops.min_value(needs_arr, waiting)
        if not running:
            if n_waiting:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        end, _, spans = heappop(running)
        now = end
        released = list(spans)
        cut = now + epoch_tolerance(now)
        while running and running[0][0] <= cut:
            _, _, more = heappop(running)
            released.extend(more)
        for first, count in released:
            idle_spans.append((first, count))
            idle_count += count

    return builder.build()


#: Below this many admitted jobs (or admission candidates) an epoch uses the
#: lean scalar inner path — the vectorized batch machinery only amortizes its
#: fixed per-call overhead on larger groups.  Both paths are bit-identical;
#: tier-1 crosses the boundary in both directions
#: (``tests/core/test_event_queue.py``: the large-epoch deterministic pin and
#: the hypothesis strategy draw instances well past this threshold).
_SMALL_EPOCH = 32


class _NeedBucketIndex:
    """Incremental candidate index over the waiting set (power-of-two buckets).

    Bucket ``b`` holds the waiting jobs whose processor need lies in
    ``[2**b, 2**(b+1))``, as a plain list of list positions kept ascending.
    A query for *the first ``limit`` waiting jobs with need <= cap, in list
    order* is then a bucket **prefix walk**: every non-boundary bucket up to
    ``floor(log2 cap)`` contributes a position-prefix wholesale (all its
    members fit by construction), the single boundary bucket is filtered by
    need, and the per-bucket prefixes merge by position.  Maintained
    incrementally across epochs (admitted jobs are removed, nothing is ever
    re-inserted), a single-admission epoch costs O(log m) bucket probes plus
    the handful of entries it returns — instead of the O(n) ``need <= idle``
    scan of the waiting array the non-indexed event-queue backend pays.

    ``gathers`` / ``visits`` count queries and touched entries for the
    ``stats=`` instrumentation (``candidate_scans`` / ``candidates_visited``).
    """

    __slots__ = ("needs", "buckets", "lo", "hi", "size", "visits", "gathers")

    def __init__(self, needs: Sequence[int]) -> None:
        self.needs = needs
        # bucket count follows the widest need (needs are Python ints, so
        # compact-encoding instances with needs past 2**64 just get more
        # buckets — a fixed 64 would IndexError at astronomical m)
        width = max((need.bit_length() for need in needs), default=1)
        buckets: List[List[int]] = [[] for _ in range(width)]
        for pos, need in enumerate(needs):
            # positions arrive in ascending list order, so every bucket is
            # born sorted and removals keep it that way
            buckets[need.bit_length() - 1].append(pos)
        self.buckets = buckets
        self.lo = 0  # lazily-advanced lowest possibly-non-empty bucket
        self.hi = width - 1  # lazily-lowered highest possibly-non-empty bucket
        self.size = len(needs)
        self.visits = 0
        self.gathers = 0

    def _bounds(self) -> Tuple[int, int]:
        """Advance the lazy non-empty bucket bounds and return them."""
        buckets = self.buckets
        lo, hi = self.lo, self.hi
        while lo < len(buckets) and not buckets[lo]:
            lo += 1
        while hi >= 0 and not buckets[hi]:
            hi -= 1
        self.lo, self.hi = lo, hi
        return lo, hi

    def min_need(self) -> int:
        """Exact smallest waiting need (the lowest non-empty bucket holds it,
        since bucket ranges are disjoint and ordered).  Index must be
        non-empty."""
        lo, _ = self._bounds()
        bucket = self.buckets[lo]
        self.visits += len(bucket)
        needs = self.needs
        return min(needs[pos] for pos in bucket)

    def gather(self, cap: int, limit: int) -> List[int]:
        """First ``limit`` waiting positions with ``need <= cap``, ascending.

        The per-bucket prefix of length ``limit`` suffices: the global first
        ``limit`` matches draw at most ``limit`` entries from any one bucket,
        and always that bucket's position-smallest ones.
        """
        self.gathers += 1
        lo, hi = self._bounds()
        top = min(cap.bit_length() - 1, hi)
        needs = self.needs
        visits = 0
        parts: List[List[int]] = []
        for b in range(lo, top + 1):
            bucket = self.buckets[b]
            if not bucket:
                continue
            if (2 << b) - 1 <= cap:
                part = bucket[:limit]
                visits += len(part)
            else:
                # boundary bucket: members span [2**b, 2**(b+1)), only those
                # with need <= cap qualify — filter in position order
                part = []
                for pos in bucket:
                    visits += 1
                    if needs[pos] <= cap:
                        part.append(pos)
                        if len(part) == limit:
                            break
            if part:
                parts.append(part)
        self.visits += visits
        if not parts:
            return []
        if len(parts) == 1:
            return parts[0]
        merged = sorted(chain.from_iterable(parts))
        del merged[limit:]
        return merged

    def remove(self, pos: int) -> None:
        bucket = self.buckets[self.needs[pos].bit_length() - 1]
        del bucket[bisect_left(bucket, pos)]
        self.size -= 1

    def remove_many(self, positions: Sequence[int]) -> None:
        """Remove admitted positions, batching per-bucket for mass epochs."""
        if len(positions) <= 8:
            for pos in positions:
                self.remove(pos)
            return
        needs = self.needs
        by_bucket: Dict[int, set] = {}
        for pos in positions:
            by_bucket.setdefault(needs[pos].bit_length() - 1, set()).add(pos)
        for b, gone in by_bucket.items():
            bucket = self.buckets[b]
            if len(gone) * 8 < len(bucket):
                for pos in sorted(gone, reverse=True):
                    del bucket[bisect_left(bucket, pos)]
            else:
                self.buckets[b] = [pos for pos in bucket if pos not in gone]
        self.size -= len(positions)


def _list_schedule_event_queue(
    sequence: List[MoldableJob],
    allotment: Allotment,
    m: int,
    allotted_times: Optional[Dict[MoldableJob, float]] = None,
    oracle=None,
    stats: Optional[dict] = None,
    *,
    indexed: bool = False,
    ops=None,
) -> Schedule:
    """Batched event-queue twin of the scalar first-fit loop.

    Bit-identical to the heap backend, but the per-completion ``heapq`` is
    replaced by one ``(end, seq)``-sorted event queue processed in *epochs*:

    * **epoch pop** — all completions within :func:`epoch_tolerance` of the
      earliest pending one leave the queue via a single sorted-array
      partition (``bisect_right`` + one slice deletion; the heap backend
      pops them one by one with the same grouping rule, so the
      released-span order is identical);
    * **admission** — candidates are one vectorized ``need <= idle`` scan;
      large candidate sets are admitted per cumulative-sum round (the
      first-fit prefix whose need prefix-sum fits is admitted at once, the
      first rejected candidate is dropped for the whole epoch — idle only
      decreases within an epoch, so it can never be admitted later);
    * **span allocation** — a large admitted batch consumes the popped idle
      spans as one capacity axis: cutting it at every job boundary and
      every span boundary with two ``searchsorted`` calls yields exactly
      the pieces the sequential ``take`` loop produces, in the same order,
      and the rows feed the :class:`ArraySchedule` columns directly (no
      per-entry ``Schedule.add``);
    * **event merge** — a large epoch's new completions are sorted once and
      merged into the queue with a single ``searchsorted``/``insert`` pass
      (new events carry strictly larger ``seq``, so ``side="right"``
      preserves the heap's ``(end, seq)`` tie order).

    Epochs below :data:`_SMALL_EPOCH` jobs take lean scalar inner paths
    (identical decisions, same column writes) — the batch passes above only
    pay for themselves on mass starts and mass completions.

    With ``indexed=True`` only the admission *query* changes: instead of the
    per-epoch ``need <= idle`` scan over the whole waiting array, candidates
    come from a :class:`_NeedBucketIndex` maintained across epochs, gathered
    in rounds of at most ``remaining`` candidates (one round per observed
    first-fit rejection).  The round structure reproduces the scanning
    admission exactly: a round's window is the position-prefix of the
    eligible set, the admitted prefix is the longest whose need prefix-sum
    fits, and a rejected candidate — whose need provably exceeds the
    post-round remaining idle count — is excluded from every later round by
    the tightened ``need <= remaining`` gather cap itself.  Everything
    downstream of the admission list (span cuts, column writes, event merge,
    epoch pops) is the shared code path, so the two variants cannot drift.

    Every capacity-axis array (needs, their prefix sums, popped span
    capacities, cut boundaries) lives in the ``ops`` tier chosen by
    :func:`repro.core.capacity.capacity_ops` — plain int64 within the
    historical range, exact wide-limb pairs or object dtype beyond it — so
    the identical batch structure runs at astronomical ``m``.  Row/position
    arrays (candidate indices, span owners, event sequence numbers) are
    always plain int64: they count *jobs*, not machines.
    """
    from ..perf.schedule_builder import ArraySchedule

    builder = ArraySchedule(m, metadata={"algorithm": "list_scheduling"})
    n = len(sequence)
    backend_name = "event_queue_indexed" if indexed else "event_queue"
    counts = allotment.counts
    needs_list = [counts[job] for job in sequence]
    if ops is None:
        ops = capacity_ops(m, sum(needs_list))
    if stats is not None:
        stats.update(
            backend=backend_name,
            capacity_tier=ops.name,
            epochs=0,
            events=0,
            max_epoch_completions=0,
            candidate_scans=0,
            candidates_visited=0,
        )
    if n == 0:
        return builder.build()

    needs = ops.asarray(needs_list)
    durations = _resolve_durations(sequence, needs_list, allotted_times, oracle)
    index = _NeedBucketIndex(needs_list) if indexed else None

    # builder columns, written directly (block mode)
    (
        jobs_col,
        starts_col,
        overrides_col,
        span_owner_col,
        span_first_col,
        span_count_col,
    ) = builder.raw_columns()

    waiting = np.ones(n, dtype=bool)
    n_waiting = n
    #: lower bound on the smallest need among waiting jobs (see the wakeup
    #: backend: stale-but-valid, refreshed only on a fruitless scan)
    min_waiting_need = ops.min_value(needs)
    idle_spans: List[MachineSpan] = [(0, m)]
    idle = m
    #: the event queue: parallel lists sorted lexicographically by
    #: (end, seq); per started row, its piece slice
    #: [pieces_lo[row], pieces_hi[row]) in the builder span columns and its
    #: processor total for the release
    ev_end: List[float] = []
    ev_seq: List[int] = []
    pieces_lo: List[int] = []
    pieces_hi: List[int] = []
    row_need: List[int] = []
    now = 0.0
    epochs = 0
    events = 0
    max_epoch = 0

    scan_queries = 0
    scan_visited = 0

    while n_waiting or ev_end:
        if n_waiting and idle >= min_waiting_need:
            remaining = idle
            adm_list: List[int] = []
            if index is not None:
                # incremental candidate index: gather rounds of at most
                # ``remaining`` candidates (per-bucket prefix walks merged in
                # list order) — no per-epoch scan of the waiting array.  Each
                # non-final round ends at a first-fit rejection, whose need
                # provably exceeds the new remaining idle count, so the next
                # round's tightened gather cap excludes it exactly like the
                # scanning path's re-filter does.
                while remaining >= min_waiting_need:
                    window = index.gather(remaining, remaining)
                    if not window:
                        break
                    if len(window) <= _SMALL_EPOCH:
                        taken = 0
                        k = 0
                        for ji in window:
                            need = needs_list[ji]
                            if taken + need > remaining:
                                break
                            taken += need
                            k += 1
                    else:
                        csum = ops.cumsum(ops.take(needs, np.asarray(window, dtype=np.int64)))
                        k = ops.count_le(csum, remaining)
                        taken = ops.item(csum, k - 1)
                    # k >= 1: the gather cap guarantees the first fits
                    admitted_now = window[:k]
                    adm_list.extend(admitted_now)
                    index.remove_many(admitted_now)
                    remaining -= taken
            else:
                # one vectorized candidate scan for the whole epoch
                cand = (waiting & ops.le_mask(needs, idle)).nonzero()[0]
                scan_queries += 1
                scan_visited += n
                if cand.size <= _SMALL_EPOCH or remaining <= _SMALL_EPOCH:
                    # scalar first-fit pass over the few candidates
                    for ji in map(int, cand):
                        need = needs_list[ji]
                        if need <= remaining:
                            adm_list.append(ji)
                            remaining -= need
                            if remaining == 0:
                                break
                else:
                    # batched first-fit: admit the longest candidate prefix
                    # whose need prefix-sum fits, drop the first rejected
                    # candidate (idle only shrinks within the epoch), repeat
                    # on the rest.  Every admitted job takes >= 1 processor,
                    # so at most ``remaining`` candidates can be admitted per
                    # round — the prefix-sum window is sliced accordingly,
                    # keeping a round O(min(|cand|, remaining)) instead of
                    # O(|cand|).
                    admitted: List[np.ndarray] = []
                    first_round = True
                    while cand.size:
                        if first_round:
                            # the candidate scan already guaranteed need <= idle
                            first_round = False
                        else:
                            fits = ops.le_mask(ops.take(needs, cand), remaining)
                            if not fits.any():
                                break
                            cand = cand[fits]
                        window = cand[:remaining]
                        csum = ops.cumsum(ops.take(needs, window))
                        k = ops.count_le(csum, remaining)
                        # k >= 1: the first candidate fits by construction
                        admitted.append(cand[:k])
                        remaining -= ops.item(csum, k - 1)
                        if k < len(window):
                            # cand[k] is rejected *now* and stays rejected
                            cand = cand[k + 1 :]
                        else:
                            # the window limit cut the prefix short, no
                            # rejection was observed — continue with the tail
                            cand = cand[k:]
                    if admitted:
                        adm_list = (
                            admitted[0] if len(admitted) == 1 else np.concatenate(admitted)
                        ).tolist()
            if adm_list:
                k = len(adm_list)
                row_base = len(jobs_col)
                if k <= _SMALL_EPOCH:
                    # lean inner path: sequential take() per admitted job,
                    # single-event insertion into the sorted queue
                    for ji in adm_list:
                        waiting[ji] = False
                        need = needs_list[ji]
                        row = len(jobs_col)
                        p_lo = len(span_first_col)
                        while need > 0:
                            first, count = idle_spans.pop()
                            if count <= need:
                                span_owner_col.append(row)
                                span_first_col.append(first)
                                span_count_col.append(count)
                                need -= count
                            else:
                                span_owner_col.append(row)
                                span_first_col.append(first)
                                span_count_col.append(need)
                                idle_spans.append((first + need, count - need))
                                need = 0
                        jobs_col.append(sequence[ji])
                        starts_col.append(now)
                        overrides_col.append(None)
                        pieces_lo.append(p_lo)
                        pieces_hi.append(len(span_first_col))
                        row_need.append(needs_list[ji])
                        end = now + durations[ji]
                        pos = bisect_right(ev_end, end)
                        ev_end.insert(pos, end)
                        ev_seq.insert(pos, row)
                else:
                    adm = np.asarray(adm_list, dtype=np.int64)
                    adm_needs = ops.take(needs, adm)
                    ncum = ops.cumsum(adm_needs)
                    total = ops.item(ncum, -1)
                    # pop idle spans (stack order) until the batch is covered
                    popped_first: List[int] = []
                    popped_count: List[int] = []
                    acc = 0
                    while acc < total:
                        f, c = idle_spans.pop()
                        popped_first.append(f)
                        popped_count.append(c)
                        acc += c
                    if acc > total:
                        # the unused tail of the last popped span goes back on
                        # top of the stack, exactly like the sequential take()
                        used = popped_count[-1] - (acc - total)
                        idle_spans.append((popped_first[-1] + used, acc - total))
                        popped_count[-1] = used
                    pf = ops.asarray(popped_first)
                    ccum = ops.cumsum(ops.asarray(popped_count))
                    # cut the capacity axis at every job and span boundary:
                    # each resulting piece belongs to exactly one
                    # (job, idle-span) pair — the same pieces, in the same
                    # order, as the sequential take() loop emits
                    bounds = ops.merge_bounds(ncum, ccum)
                    lo_b = ops.head(ops.prepend_zero(bounds), len(bounds))
                    owner_local = ops.cut_positions(ncum, lo_b)
                    span_idx = ops.cut_positions(ccum, lo_b)
                    base = ops.take(ops.prepend_zero(ccum), span_idx)
                    piece_first = ops.add(ops.take(pf, span_idx), ops.sub(lo_b, base))
                    piece_count = ops.sub(bounds, lo_b)

                    piece_base = len(span_first_col)
                    jobs_col.extend([sequence[ji] for ji in adm_list])
                    starts_col.extend([now] * k)
                    overrides_col.extend([None] * k)
                    span_owner_col.extend((owner_local + row_base).tolist())
                    span_first_col.extend(ops.tolist(piece_first))
                    span_count_col.extend(ops.tolist(piece_count))
                    # per-row piece slices (pieces are grouped by owner)
                    row_ids = np.arange(k, dtype=np.int64)
                    pieces_lo.extend(
                        (np.searchsorted(owner_local, row_ids, side="left") + piece_base).tolist()
                    )
                    pieces_hi.extend(
                        (np.searchsorted(owner_local, row_ids, side="right") + piece_base).tolist()
                    )
                    row_need.extend(ops.tolist(adm_needs))

                    # merge the new completions into the sorted event queue
                    new_ends = now + np.array(
                        [durations[ji] for ji in adm_list], dtype=np.float64
                    )
                    order = np.argsort(new_ends, kind="stable")
                    new_ends = new_ends[order]
                    new_seqs = row_base + order
                    old_ends = np.asarray(ev_end, dtype=np.float64)
                    pos = np.searchsorted(old_ends, new_ends, side="right")
                    ev_end = np.insert(old_ends, pos, new_ends).tolist()
                    ev_seq = np.insert(
                        np.asarray(ev_seq, dtype=np.int64), pos, new_seqs
                    ).tolist()
                    waiting[adm_list] = False
                n_waiting -= k
                idle = remaining
            elif n_waiting:
                # fruitless query: the lower bound was stale — refresh it so
                # later idle wake-ups can skip the query in O(1)
                if index is not None:
                    min_waiting_need = index.min_need()
                else:
                    min_waiting_need = ops.min_value(needs, waiting)
        if not ev_end:
            if n_waiting:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        # epoch pop: one sorted-array partition takes every completion
        # within tolerance of the earliest one out of the queue at once
        now = ev_end[0]
        cut = bisect_right(ev_end, now + epoch_tolerance(now))
        for s in ev_seq[:cut]:
            for p in range(pieces_lo[s], pieces_hi[s]):
                idle_spans.append((span_first_col[p], span_count_col[p]))
            idle += row_need[s]
        del ev_end[:cut]
        del ev_seq[:cut]
        epochs += 1
        events += cut
        if cut > max_epoch:
            max_epoch = cut

    if stats is not None:
        if index is not None:
            stats.update(candidate_scans=index.gathers, candidates_visited=index.visits)
        else:
            stats.update(candidate_scans=scan_queries, candidates_visited=scan_visited)
        stats.update(epochs=epochs, events=events, max_epoch_completions=max_epoch)
    return builder.build()
