"""List scheduling for jobs with a fixed allotment (Garey & Graham).

Once an allotment ``a`` is fixed, every moldable job becomes a *rigid*
parallel job (``a_j`` processors for ``t_j(a_j)`` time units).  The list
scheduling rule implemented here is the classical one used in the analyses of
Garey & Graham and Ludwig & Tiwari: **whenever machines become idle, scan the
list of unstarted jobs in order and start every job that currently fits.**
(The scan may skip over a wide job and start a later narrow one — without this
"first fit" behaviour the additive bound below does not hold.)

The produced schedule satisfies the classic factor-2 bound

    makespan  <=  2 * max( sum_j w_j(a_j) / m ,  max_j t_j(a_j) )

because at any moment before the last-finishing job starts, fewer than its
processor requirement machines are idle.  (The *additive* form
``W/m + T_max`` quoted in some expositions holds for single-processor jobs
but is false for rigid multi-processor jobs — the property-based tests
include a counterexample.)  The factor-2 bound is what the Ludwig–Tiwari
2-approximation and the NP-membership argument of the paper rely on.

The implementation tracks idle machines as *spans*, so it never materialises
per-machine state and works for astronomically large ``m``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from .allotment import Allotment
from .job import MoldableJob
from .schedule import MachineSpan, Schedule

__all__ = ["list_schedule", "list_schedule_bound"]


def list_schedule_bound(allotment: Allotment, m: int) -> float:
    """The list-scheduling guarantee ``2 * max(W/m, T_max)`` for an allotment."""
    return 2.0 * max(allotment.average_load(m), allotment.max_time())


def list_schedule(
    jobs: Sequence[MoldableJob],
    allotment: Allotment,
    m: int,
    *,
    order: Optional[Sequence[MoldableJob]] = None,
) -> Schedule:
    """Greedy (first-fit) list scheduling of ``jobs`` with counts ``allotment``.

    Parameters
    ----------
    jobs:
        Jobs to schedule; each must appear in ``allotment`` with
        ``allotment[job] <= m``.
    order:
        Optional list priority; defaults to the order of ``jobs``.

    Returns
    -------
    Schedule
        A feasible schedule satisfying :func:`list_schedule_bound`.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    sequence = list(order) if order is not None else list(jobs)
    if len(sequence) != len(jobs) or {id(j) for j in sequence} != {id(j) for j in jobs}:
        raise ValueError("order must be a permutation of jobs")
    for job in sequence:
        k = allotment.get(job)
        if k is None:
            raise ValueError(f"job {job.name!r} has no allotment")
        if k > m:
            raise ValueError(f"job {job.name!r} is allotted {k} > m={m} processors")

    schedule = Schedule(m=m, metadata={"algorithm": "list_scheduling"})
    if not sequence:
        return schedule

    pending: List[MoldableJob] = list(sequence)
    idle_spans: List[MachineSpan] = [(0, m)]
    idle_count = m
    #: running jobs: (end_time, seq, spans)
    running: List[Tuple[float, int, Tuple[MachineSpan, ...]]] = []
    seq = 0
    now = 0.0

    def take(need: int) -> List[MachineSpan]:
        nonlocal idle_count
        taken: List[MachineSpan] = []
        while need > 0:
            first, count = idle_spans.pop()
            use = min(count, need)
            taken.append((first, use))
            if use < count:
                idle_spans.append((first + use, count - use))
            idle_count -= use
            need -= use
        return taken

    while pending or running:
        # start every pending job (in list order) that fits right now
        progressed = True
        while progressed:
            progressed = False
            for index, job in enumerate(pending):
                need = allotment[job]
                if need <= idle_count:
                    spans = take(need)
                    entry = schedule.add(job, now, spans)
                    heapq.heappush(running, (entry.end, seq, tuple(spans)))
                    seq += 1
                    pending.pop(index)
                    progressed = True
                    break
        if not running:
            if pending:  # pragma: no cover - cannot happen: every job fits on m >= a_j machines
                raise RuntimeError("deadlock in list scheduling")
            break
        # advance to the next completion and release its machines (plus any
        # other completions at the same instant)
        end, _, spans = heapq.heappop(running)
        now = end
        released = list(spans)
        while running and running[0][0] <= now + 1e-15:
            _, _, more = heapq.heappop(running)
            released.extend(more)
        for first, count in released:
            idle_spans.append((first, count))
            idle_count += count

    return schedule
