"""Makespan bounds and the Ludwig–Tiwari style estimator.

The dual-approximation framework (Hochbaum & Shmoys) needs an interval
``[omega, rho * omega]`` guaranteed to contain the optimal makespan.  The
paper uses the estimator of Ludwig & Tiwari [18] with estimation ratio 2:

* for every allotment ``a``, any schedule needs makespan at least
  ``max( sum_j w_j(a_j) / m , max_j t_j(a_j) )``;
* minimising this quantity over all allotments yields ``omega <= OPT``;
* list scheduling with the minimising allotment produces a schedule of length
  at most ``2 * omega`` (Garey & Graham), hence ``OPT <= 2 * omega``.

For monotone jobs the minimising allotment for a fixed time threshold ``tau``
is the canonical allotment ``gamma_j(tau)`` (fewest processors = least work),
so the optimisation reduces to a one-dimensional search over ``tau`` which we
solve by geometric bisection in ``O(n log m log(1/tol))`` oracle calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .allotment import Allotment, canonical_allotment
from .job import MoldableJob, max_sequential_time, total_minimal_work

__all__ = [
    "trivial_lower_bound",
    "serial_upper_bound",
    "EstimatorResult",
    "ludwig_tiwari_estimator",
    "makespan_lower_bound",
    "release_aware_lower_bound",
]


def trivial_lower_bound(jobs: Sequence[MoldableJob], m: int, *, oracle=None) -> float:
    """``max( max_j t_j(m), sum_j t_j(1) / m )``.

    Valid for monotone jobs: every job needs at least ``t_j(m)`` time, and the
    total work of any schedule is at least ``sum_j w_j(1)`` because the work is
    minimised on one processor.

    ``oracle`` optionally answers both aggregates from the batched ``t_j(1)``
    / ``t_j(m)`` arrays (bit-identical result, no per-job Python calls).
    """
    if not jobs:
        return 0.0
    if oracle is not None:
        return max(float(oracle.tm.max()), oracle.sequential_sum(oracle.t1) / m)
    return max(max_sequential_time(jobs, m), total_minimal_work(jobs) / m)


def serial_upper_bound(jobs: Sequence[MoldableJob]) -> float:
    """``sum_j t_j(1)`` — running every job alone on one machine, one after the
    other, is always feasible."""
    return total_minimal_work(jobs)


@dataclass(frozen=True)
class EstimatorResult:
    """Result of :func:`ludwig_tiwari_estimator`.

    ``omega <= OPT <= ratio * omega`` and ``allotment`` witnesses the upper
    bound (list scheduling it yields makespan at most ``ratio * omega``).
    """

    omega: float
    allotment: Allotment
    ratio: float = 2.0

    @property
    def upper_bound(self) -> float:
        return self.ratio * self.omega


def _phi(jobs: Sequence[MoldableJob], m: int, tau: float, oracle=None) -> Optional[float]:
    """Average-load value ``sum_j w_j(gamma_j(tau)) / m`` or ``None`` if some
    job cannot meet ``tau``."""
    if oracle is not None:
        loads = oracle.canonical_loads(tau)
        if loads is None:
            return None
        # left-to-right sum matches the scalar Allotment.total_work() bit for bit
        return oracle.sequential_sum(loads) / m
    allot = canonical_allotment(jobs, tau, m)
    if allot is None:
        return None
    return allot.average_load(m)


def _canonical_allotment(jobs: Sequence[MoldableJob], tau: float, m: int, oracle=None) -> Optional[Allotment]:
    if oracle is None:
        return canonical_allotment(jobs, tau, m)
    gammas = oracle.gamma_array(tau)
    if len(gammas) and gammas.max() > m:
        return None
    # tolist() hands back Python ints in one pass; the γ-array is already
    # validated (>= 1), so the Allotment re-check loop is skipped.
    return Allotment.from_trusted_counts(dict(zip(jobs, gammas.tolist())))


def ludwig_tiwari_estimator(
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    tol: float = 1e-6,
    max_iter: int = 128,
    oracle=None,
) -> EstimatorResult:
    """2-estimator for the optimal makespan of monotone moldable jobs.

    Finds (approximately) the threshold ``tau`` minimising
    ``g(tau) = max(phi(tau), tau)`` where ``phi(tau)`` is the average machine
    load of the canonical allotment for ``tau``.  Because ``phi`` is
    non-increasing and ``tau`` increasing, the minimiser sits at the crossover
    which we bracket by geometric bisection.

    The returned ``omega`` satisfies ``omega * (1 - tol) <= OPT`` and list
    scheduling the returned allotment yields makespan at most
    ``2 * omega * (1 + tol)``; the small ``tol`` slack is absorbed by the
    callers (they widen their binary-search interval accordingly).

    ``oracle`` optionally supplies a :class:`repro.perf.oracle.BatchedOracle`
    for ``(jobs, m)``: each ``phi`` probe then runs all γ-searches in lockstep
    on arrays instead of ``n`` scalar binary searches (bit-identical result).
    """
    if not jobs:
        empty = Allotment({})
        return EstimatorResult(omega=0.0, allotment=empty)
    if m < 1:
        raise ValueError("m must be >= 1")

    if oracle is not None:
        lo = max(float(oracle.tm.max()), 1e-300)
        hi = max(oracle.sequential_sum(oracle.t1), lo)
    else:
        lo = max(max_sequential_time(jobs, m), 1e-300)
        hi = max(serial_upper_bound(jobs), lo)

    # g(hi) is finite (every job fits on one machine within the serial bound).
    # Invariant we move towards: phi(hi) <= hi  and  (phi(lo) > lo or lo is the
    # global max_j t_j(m) floor).
    phi_lo = _phi(jobs, m, lo, oracle)
    if phi_lo is not None and phi_lo <= lo:
        # the crossover is at or below the floor; the floor itself is optimal
        allot = _canonical_allotment(jobs, lo, m, oracle)
        assert allot is not None
        omega = max(phi_lo, lo)
        return EstimatorResult(omega=omega, allotment=allot)

    for _ in range(max_iter):
        if hi <= lo * (1.0 + tol):
            break
        mid = math.sqrt(lo * hi)
        phi_mid = _phi(jobs, m, mid, oracle)
        if phi_mid is None or phi_mid > mid:
            lo = mid
        else:
            hi = mid

    allot = _canonical_allotment(jobs, hi, m, oracle)
    assert allot is not None, "upper end of the bracket must always be feasible"
    if oracle is not None:
        # batched twins of average_load / max_time (left-to-right work sum and
        # an order-independent max — bit-identical to the scalar loops)
        gammas = oracle.gamma_array(hi)
        omega = max(
            oracle.sequential_sum(oracle.works_at(gammas)) / m,
            float(oracle.times_at(gammas).max()),
        )
    else:
        omega = max(allot.average_load(m), allot.max_time())
    # omega as computed is an achievable value of g, hence >= min g >= ... but
    # we also need a certified lower bound; combine with the trivial bound.
    lower = max(trivial_lower_bound(jobs, m, oracle=oracle), lo)
    omega = max(omega / (1.0 + tol), lower)
    # The bisection slack means the witnessing allotment only guarantees a
    # schedule of length 2 * omega * (1 + 2 tol); record that honestly.
    return EstimatorResult(omega=omega, allotment=allot, ratio=2.0 * (1.0 + 2.0 * tol))


def makespan_lower_bound(jobs: Sequence[MoldableJob], m: int) -> float:
    """Best certified lower bound available: the maximum of the trivial bound
    and the Ludwig–Tiwari ``omega``."""
    if not jobs:
        return 0.0
    est = ludwig_tiwari_estimator(jobs, m)
    return max(trivial_lower_bound(jobs, m), est.omega)


def release_aware_lower_bound(
    jobs: Sequence[MoldableJob],
    releases: Sequence[float],
    m: int,
    *,
    base: Optional[float] = None,
) -> float:
    """Certified makespan lower bound for jobs with release times.

    Three valid bounds are combined (releases only delay work, so each is a
    relaxation of the true online optimum):

    * per job: ``release_j + t_j(m)`` — a job cannot finish before it
      arrives plus its fastest possible execution;
    * per release instant ``r``: ``r + (sum of t_j(1) over release_j >= r) / m``
      — all work released at or after ``r`` must fit into ``m`` machines
      after ``r``, and ``t_j(1)`` minimises each job's work;
    * optionally ``base``, any release-free lower bound of the same instance
      (e.g. :func:`makespan_lower_bound`), which stays valid because
      dropping releases is a relaxation.

    This is what makes ``ratio_vs_lower_bound`` meaningful for online
    schedules: the classic bounds assume everything is available at time 0
    and overstate the gap for late-arriving work.
    """
    if len(releases) != len(jobs):
        raise ValueError(
            f"got {len(releases)} releases for {len(jobs)} jobs"
        )
    if not jobs:
        return 0.0 if base is None else max(0.0, base)
    if m < 1:
        raise ValueError("m must be >= 1")
    bound = max(r + j.processing_time(m) for j, r in zip(jobs, releases))
    # suffix-work sweep over releases in descending order: after adding job j,
    # the accumulator holds the t1-work of every job released at or after r_j
    suffix = 0.0
    for r, t1 in sorted(
        ((r, j.processing_time(1)) for j, r in zip(jobs, releases)),
        key=lambda pair: -pair[0],
    ):
        suffix += t1
        bound = max(bound, r + suffix / m)
    if base is not None:
        bound = max(bound, base)
    return bound
