"""Dual-approximation binary-search driver (Hochbaum & Shmoys framework).

A *c-dual approximate* algorithm takes a target makespan ``d`` and either
returns a feasible schedule of length at most ``c*d`` or rejects, with the
promise that it never rejects a ``d`` for which a schedule of length ``d``
exists.  Combined with a constant-factor estimator bracketing the optimum, a
geometric binary search over ``d`` turns the dual algorithm into a
``c*(1+tolerance)``-approximation using ``O(log(1/tolerance))`` dual calls.

A dual function may also return a zero-argument *thunk* instead of a built
``Schedule``: acceptance is then decided by the non-``None`` return alone and
the search materializes only the final accepted schedule — dual steps whose
feasibility check is separate from schedule construction (the FPTAS) skip
building the intermediate schedules the search would discard anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .bounds import ludwig_tiwari_estimator, trivial_lower_bound
from .job import MoldableJob
from .schedule import Schedule

__all__ = ["DualSearchResult", "dual_binary_search"]

DualFunction = Callable[[float], Optional[Schedule]]


@dataclass
class DualSearchResult:
    """Outcome of :func:`dual_binary_search`."""

    schedule: Schedule
    accepted_d: float
    lower_bound: float
    iterations: int
    dual_calls: int
    #: total γ-probes spent by the batched oracle across the search (the
    #: estimator bracket plus every dual step); ``None`` on the scalar path.
    gamma_probes: Optional[int] = None

    @property
    def makespan(self) -> float:
        return self.schedule.makespan


def dual_binary_search(
    jobs: Sequence[MoldableJob],
    m: int,
    dual_fn: DualFunction,
    *,
    tolerance: float,
    lower: Optional[float] = None,
    upper: Optional[float] = None,
    max_iterations: int = 200,
    oracle=None,
) -> DualSearchResult:
    """Run the dual-approximation binary search.

    Parameters
    ----------
    jobs, m:
        The instance (used only to compute the initial bracket when ``lower``
        / ``upper`` are not supplied).
    dual_fn:
        The dual algorithm: ``dual_fn(d)`` returns a schedule or ``None``.
    tolerance:
        Relative precision of the search; the accepted target satisfies
        ``accepted_d <= (1 + tolerance) * OPT`` provided ``dual_fn`` is a
        correct dual algorithm and the initial bracket contains ``OPT``.
    lower, upper:
        Optional initial bracket.  Defaults to the Ludwig–Tiwari estimator
        interval ``[omega, 2(1+)omega]``.
    oracle:
        Optional :class:`repro.perf.oracle.BatchedOracle` for ``(jobs, m)``;
        passed through to the estimator so the initial bracket is computed
        with lockstep γ-searches.
    """
    jobs = list(jobs)
    if not jobs:
        return DualSearchResult(Schedule(m=m), 0.0, 0.0, 0, 0)
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    if lower is None or upper is None:
        estimate = ludwig_tiwari_estimator(jobs, m, oracle=oracle)
        est_lower = max(estimate.omega, trivial_lower_bound(jobs, m, oracle=oracle))
        est_upper = estimate.upper_bound
        lower = lower if lower is not None else est_lower
        upper = upper if upper is not None else max(est_upper, lower * (1 + tolerance))
    lower = max(lower, 1e-300)
    upper = max(upper, lower)

    dual_calls = 0
    best: Optional[Schedule] = None
    best_d = upper

    # Make sure the upper end of the bracket is accepted; widen defensively if
    # the estimator slack made it marginally too small.
    schedule = dual_fn(upper)
    dual_calls += 1
    widen = 0
    while schedule is None and widen < 64:
        upper *= 2.0
        schedule = dual_fn(upper)
        dual_calls += 1
        widen += 1
    if schedule is None:
        raise RuntimeError("dual algorithm rejected every target makespan; cannot bracket the optimum")
    best = schedule
    best_d = upper

    iterations = 0
    while upper > lower * (1.0 + tolerance) and iterations < max_iterations:
        mid = math.sqrt(lower * upper)
        candidate = dual_fn(mid)
        dual_calls += 1
        iterations += 1
        if candidate is not None:
            best = candidate
            best_d = mid
            upper = mid
        else:
            lower = mid

    assert best is not None
    if callable(best):
        best = best()
    return DualSearchResult(
        schedule=best,
        accepted_d=best_d,
        lower_bound=lower,
        iterations=iterations,
        dual_calls=dual_calls,
        gamma_probes=oracle.gamma_probes if oracle is not None else None,
    )
