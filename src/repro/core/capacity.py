"""Capacity policy: the single owner of every machine-count exactness decision.

The paper's headline is a running time polynomial in ``n`` and ``log m`` —
machine counts are *data*, never loop bounds — so ``m`` can be astronomically
large (``examples/compact_encoding_large_m.py`` runs at ``m = 2**80``).  The
columnar fast paths, however, keep processor counts, machine indices and their
prefix sums in NumPy arrays, and NumPy arithmetic is only exact within a
dtype-dependent range.  This module centralises those ranges and hands out the
matching *capacity ops* so no caller hardcodes an overflow guard again:

``int64`` tier (``capacity_tier`` → ``"int64"``)
    Plain ``np.int64`` columns.  Safe while every value **and every prefix
    sum** the consumer forms stays ``<= MAX_COLUMNAR_M = 2**62`` (one bit of
    headroom under the int64 limit, shared by all historical guards).

``wide`` tier (→ ``"wide"``)
    Split-limb pairs ``value = hi * 2**32 + lo`` with ``lo ∈ [0, 2**32)``,
    both int64 arrays (:class:`WideArray`).  Every operation the event-queue
    scheduler needs — cumulative sums with exact carry propagation,
    lexicographic comparisons, sorted merges, rank queries — vectorises over
    the limbs, so the batch paths run at full NumPy speed for totals up to
    ``MAX_WIDE_TOTAL = 2**93`` (sums of the low limbs stay exact for any
    ``n < 2**31`` elements, sums of the high limbs stay below ``2**62``
    plus at most ``n`` carries).

``object`` tier (→ ``"object"``)
    Object-dtype arrays of Python ints — arbitrary precision, still
    vectorised through NumPy's per-element dispatch.  The escape hatch for
    totals beyond ``2**93``.

Float casts are a separate, stricter boundary: float64 represents integers
exactly only up to ``MAX_EXACT_FLOAT_M = 2**53``.  Any code that funnels a
processor-count column through float64 (sum guards, oracle batch calls) must
check :func:`float_exact` / :func:`total_fits_int64` instead of assuming the
int64 range — trusting the 2**53..2**62 band was the overflow-boundary bug
this module exists to fix.

All three tiers expose the same ops surface (:class:`_DtypeOps` /
:class:`_WideOps`), so consumers write one batch algorithm and select the
ops object once per call via :func:`capacity_ops`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "MAX_EXACT_FLOAT_M",
    "MAX_COLUMNAR_M",
    "MAX_WIDE_TOTAL",
    "LIMB_BITS",
    "LIMB_MASK",
    "capacity_tier",
    "capacity_ops",
    "index_array",
    "float_exact",
    "total_fits_int64",
    "WideArray",
]

#: Largest integer float64 represents exactly (2**53); beyond it, casting a
#: processor count or capacity total to float silently rounds.
MAX_EXACT_FLOAT_M = 1 << 53

#: Largest machine count / capacity prefix sum the int64 columns may hold
#: (one bit of headroom under the int64 limit, as the historical guards had).
MAX_COLUMNAR_M = 1 << 62

#: Limb split of the wide tier: ``value = hi * 2**LIMB_BITS + lo``.
LIMB_BITS = 32
LIMB_MASK = (1 << LIMB_BITS) - 1

#: Largest value/prefix-sum the wide tier sums exactly: the high-limb cumsum
#: must stay under ``2**62`` after adding the low-limb carries (at most one
#: per element, ``n < 2**31``), so ``hi <= 2**61`` i.e. values ``<= 2**93``.
MAX_WIDE_TOTAL = 1 << 93


def capacity_tier(m: int, total_need: int = 0) -> str:
    """The columnar tier for machine count ``m`` and capacity total
    ``total_need`` (the largest prefix sum a consumer will form beyond the
    machine axis itself): ``"int64"``, ``"wide"`` or ``"object"``.

    The int64 boundary is the exact historical guard
    ``total_need <= MAX_COLUMNAR_M - m`` (prefix sums over needs and popped
    span capacities are bounded by ``total_need + m``), applied uniformly to
    every backend rather than just the event-queue pair.
    """
    m = int(m)
    total_need = int(total_need)
    if m <= MAX_COLUMNAR_M and total_need <= MAX_COLUMNAR_M - m:
        return "int64"
    if m <= MAX_WIDE_TOTAL and total_need <= MAX_WIDE_TOTAL - m:
        return "wide"
    return "object"


def float_exact(bound: int) -> bool:
    """Whether every integer in ``[0, bound]`` survives a float64 round-trip
    (i.e. float casts of capacity values bounded by ``bound`` are exact)."""
    return int(bound) <= MAX_EXACT_FLOAT_M


def total_fits_int64(procs: np.ndarray) -> bool:
    """Exact check that prefix sums over ``procs`` stay ``<= MAX_COLUMNAR_M``.

    The historical guard compared ``float(np.sum(procs.astype(float64)))``
    against ``2**62`` — inexact in the 2**53..2**62 band, where the float sum
    can round *below* the cap while the true integer total sits above it.
    Here the float sum is only trusted while it stays within the exact-float
    range; past that, the total is re-summed in Python ints.
    """
    if procs.dtype == object:
        total = sum(procs.tolist(), 0)
        return total <= MAX_COLUMNAR_M
    approx = float(np.sum(procs.astype(np.float64)))
    if approx <= float(MAX_EXACT_FLOAT_M):
        return True  # exact float arithmetic: the true total is under 2**53
    # the float sum is a rounded estimate — decide on the exact integer total
    return sum(procs.tolist(), 0) <= MAX_COLUMNAR_M


def index_array(values: Sequence[int]) -> np.ndarray:
    """Machine-index/processor-count column as int64 when it fits, else as an
    object-dtype array of Python ints (exact at any magnitude)."""
    try:
        return np.asarray(values, dtype=np.int64)
    except (OverflowError, TypeError):
        return np.array([int(v) for v in values], dtype=object)


class WideArray:
    """Split-limb integer vector: ``value[i] = hi[i] * 2**LIMB_BITS + lo[i]``
    with canonical ``lo ∈ [0, 2**LIMB_BITS)``; both limbs int64."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi

    def __len__(self) -> int:
        return len(self.lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WideArray({_WideOps().tolist(self)!r})"


class _DtypeOps:
    """Capacity ops over a plain ndarray tier (int64 or object dtype).

    Object-dtype arrays hold Python ints: comparisons return bool arrays,
    ``np.cumsum``/``np.unique``/``np.searchsorted`` dispatch to the exact
    arbitrary-precision ``int`` operators, so the one batch algorithm written
    against this surface is exact on both tiers.
    """

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype) -> None:
        self.name = name
        self.dtype = dtype

    def asarray(self, values: Sequence[int]):
        return np.array(list(values), dtype=self.dtype)

    def take(self, a, idx: np.ndarray):
        return a[idx]

    def head(self, a, k):
        return a[:k]

    def cumsum(self, a):
        return np.cumsum(a)

    def min_value(self, a, mask: Optional[np.ndarray] = None) -> int:
        return int((a if mask is None else a[mask]).min())

    def le_mask(self, a, bound: int) -> np.ndarray:
        return a <= bound

    def count_le(self, sorted_a, bound: int) -> int:
        return int(np.searchsorted(sorted_a, bound, side="right"))

    def item(self, a, i: int) -> int:
        return int(a[i])

    def tolist(self, a) -> List[int]:
        return a.tolist()

    def merge_bounds(self, a, b):
        """Sorted unique union of two sorted vectors."""
        return np.unique(np.concatenate((a, b)))

    def cut_positions(self, sorted_a, sorted_b) -> np.ndarray:
        """``np.searchsorted(sorted_a, sorted_b, side="right")`` (int64)."""
        return np.searchsorted(sorted_a, sorted_b, side="right")

    def prepend_zero(self, a):
        return np.concatenate((np.zeros(1, dtype=a.dtype), a))

    def add(self, a, b):
        return a + b

    def sub(self, a, b):
        return a - b


class _WideOps:
    """Capacity ops over :class:`WideArray` split-limb vectors.

    Exactness bounds (values/prefix sums ``<= MAX_WIDE_TOTAL``, ``n < 2**31``
    elements): low-limb sums stay under ``n * 2**32 < 2**63``; high-limb sums
    stay under ``2**61`` plus at most ``n`` carries — both inside int64.
    """

    __slots__ = ()
    name = "wide"

    def asarray(self, values: Sequence[int]) -> WideArray:
        vals = values if isinstance(values, list) else list(values)
        n = len(vals)
        lo = np.fromiter((int(v) & LIMB_MASK for v in vals), dtype=np.int64, count=n)
        hi = np.fromiter((int(v) >> LIMB_BITS for v in vals), dtype=np.int64, count=n)
        return WideArray(lo, hi)

    def take(self, a: WideArray, idx) -> WideArray:
        return WideArray(a.lo[idx], a.hi[idx])

    def head(self, a: WideArray, k) -> WideArray:
        return WideArray(a.lo[:k], a.hi[:k])

    def cumsum(self, a: WideArray) -> WideArray:
        cl = np.cumsum(a.lo)
        hi = np.cumsum(a.hi) + (cl >> LIMB_BITS)
        return WideArray(cl & LIMB_MASK, hi)

    def min_value(self, a: WideArray, mask: Optional[np.ndarray] = None) -> int:
        lo, hi = (a.lo, a.hi) if mask is None else (a.lo[mask], a.hi[mask])
        mh = hi.min()
        return (int(mh) << LIMB_BITS) | int(lo[hi == mh].min())

    def le_mask(self, a: WideArray, bound: int) -> np.ndarray:
        blo = bound & LIMB_MASK
        bhi = bound >> LIMB_BITS
        return (a.hi < bhi) | ((a.hi == bhi) & (a.lo <= blo))

    def count_le(self, sorted_a: WideArray, bound: int) -> int:
        # O(n) instead of O(log n), but every sorted vector queried here was
        # just produced by an O(n) cumsum — the mask does not change the
        # asymptotics of any caller.
        return int(np.count_nonzero(self.le_mask(sorted_a, bound)))

    def item(self, a: WideArray, i: int) -> int:
        return (int(a.hi[i]) << LIMB_BITS) | int(a.lo[i])

    def tolist(self, a: WideArray) -> List[int]:
        if not len(a):
            return []
        return (a.hi.astype(object) * (1 << LIMB_BITS) + a.lo.astype(object)).tolist()

    def merge_bounds(self, a: WideArray, b: WideArray) -> WideArray:
        lo = np.concatenate((a.lo, b.lo))
        hi = np.concatenate((a.hi, b.hi))
        order = np.lexsort((lo, hi))
        lo = lo[order]
        hi = hi[order]
        keep = np.empty(len(lo), dtype=bool)
        keep[:1] = True
        keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        return WideArray(lo[keep], hi[keep])

    def cut_positions(self, sorted_a: WideArray, sorted_b: WideArray) -> np.ndarray:
        # merge-rank searchsorted: one stable lexsort of both vectors with the
        # a-elements marked 0 (sorting *before* equal b-elements = side
        # "right"); the running count of a-elements at each b-position is the
        # rank.  b is sorted, so the stable sort keeps its original order and
        # no scatter back is needed.
        na = len(sorted_a)
        lo = np.concatenate((sorted_a.lo, sorted_b.lo))
        hi = np.concatenate((sorted_a.hi, sorted_b.hi))
        mark = np.zeros(len(lo), dtype=np.int64)
        mark[na:] = 1
        order = np.lexsort((mark, lo, hi))
        is_a = mark[order] == 0
        a_before = np.cumsum(is_a)
        return a_before[~is_a]

    def prepend_zero(self, a: WideArray) -> WideArray:
        zero = np.zeros(1, dtype=np.int64)
        return WideArray(np.concatenate((zero, a.lo)), np.concatenate((zero, a.hi)))

    def add(self, a: WideArray, b: WideArray) -> WideArray:
        lo = a.lo + b.lo
        return WideArray(lo & LIMB_MASK, a.hi + b.hi + (lo >> LIMB_BITS))

    def sub(self, a: WideArray, b: WideArray) -> WideArray:
        # elementwise a >= b (the only way the schedulers call it)
        lo = a.lo - b.lo
        borrow = (lo < 0).astype(np.int64)
        return WideArray(lo + (borrow << LIMB_BITS), a.hi - b.hi - borrow)


CapacityOps = Union[_DtypeOps, _WideOps]

INT64_OPS = _DtypeOps("int64", np.int64)
OBJECT_OPS = _DtypeOps("object", object)
WIDE_OPS = _WideOps()

_TIER_OPS = {"int64": INT64_OPS, "wide": WIDE_OPS, "object": OBJECT_OPS}


def capacity_ops(m: int, total_need: int = 0) -> CapacityOps:
    """The capacity-ops object for :func:`capacity_tier`'s choice."""
    return _TIER_OPS[capacity_tier(m, total_need)]
