"""Geometric rounding of jobs into item *types* (Section 4.3).

Algorithm 3 reduces the shelf-selection knapsack to a **bounded** knapsack by
grouping big jobs into `O(poly(1/eps) * polylog(m))` item types:

* processor counts ``gamma_j(d)`` and ``gamma_j(d/2)`` above the wide-job
  threshold ``b`` are rounded **down** onto the geometric grid
  ``geom(b, m, 1+rho)`` (counts below ``b`` are kept exact);
* for jobs that stay *narrow* in shelf S2 the profit ``v_j(d)`` is rounded
  **up** onto ``geom(delta*d/2, b*d/2, 1+delta/b)`` (tiny profits below
  ``delta*d/2`` are dropped to zero);
* for jobs that are *wide* in shelf S2 the processing times are rounded
  **down** onto ``geom(s/2, s, 1+4rho)`` for the shelf heights
  ``s ∈ {d, d/2}`` and the profit is the saved work in rounded terms.

Two jobs with identical rounded data form the same type, so the bounded
knapsack only sees the type multiset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..knapsack.compressible import round_down_geom, round_up_geom
from ..knapsack.items import ItemType
from .allotment import gamma
from .compression import CompressionParams, params_for_delta
from .job import MoldableJob

__all__ = ["RoundedJob", "RoundingScheme", "round_jobs_to_types"]


@dataclass(frozen=True)
class RoundedJob:
    """Rounded knapsack data of one big job."""

    job: MoldableJob
    size: int  # rounded gamma_j(d)
    profit: float  # rounded v_j(d)
    type_key: Hashable
    gamma_full: int  # exact gamma_j(d)
    gamma_half: int  # exact gamma_j(d/2)
    rounded_time_full: float  # \check t_j(d)   (equals the exact time for narrow jobs)
    rounded_time_half: float  # \check t_j(d/2)


@dataclass
class RoundingScheme:
    """Rounding parameters and the resulting job types."""

    d: float
    m: int
    delta: float
    params: CompressionParams
    rounded: List[RoundedJob]
    types: List[ItemType]

    @property
    def num_types(self) -> int:
        return len(self.types)

    def theoretical_type_bound(self) -> float:
        """The paper's bound ``O(1/delta^3 * log m)`` on the number of types
        (Section 4.3.1); returned as the concrete expression for reporting."""
        delta = self.delta
        m = max(self.m, 2)
        return (1.0 / delta ** 3) * (math.log(max(1.0 / delta, 2.0)) + math.log(max(delta * m, 2.0))) + (
            1.0 / delta ** 2
        ) * math.log(max(delta * m, 2.0)) ** 2


def _round_count(count: int, b: float, m: int, rho: float) -> int:
    """Round a processor count down onto ``geom(b, m, 1+rho)`` if it exceeds
    the wide-job threshold ``b`` (Eq. (25))."""
    if count <= b:
        return count
    return int(math.floor(round_down_geom(float(count), b, float(m), 1.0 + rho) + 1e-9))


def round_jobs_to_types(
    big_jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    delta: float,
    *,
    gamma_fn=None,
) -> RoundingScheme:
    """Round the big jobs of a target ``d`` into bounded-knapsack item types.

    Every job must satisfy ``gamma_j(d)`` and ``gamma_j(d/2)`` defined (the
    caller removes forced shelf-1 jobs beforehand).  ``gamma_fn`` optionally
    substitutes a batched γ-oracle (signature of
    :func:`repro.core.allotment.gamma`).
    """
    if gamma_fn is None:
        gamma_fn = gamma
    params = params_for_delta(delta)
    rho = params.rho
    b = params.b
    half = d / 2.0

    rounded_jobs: List[RoundedJob] = []
    for job in big_jobs:
        g_full = gamma_fn(job, d, m)
        g_half = gamma_fn(job, half, m)
        if g_full is None or g_half is None:
            raise ValueError(
                f"job {job.name!r} cannot meet the shelf heights; forced jobs must be removed before rounding"
            )
        size = _round_count(g_full, b, m, rho)
        rounded_half_count = _round_count(g_half, b, m, rho)

        if rounded_half_count < b:
            # narrow in shelf S2: round the original profit v_j(d)
            profit_raw = max(0.0, job.work(g_half) - job.work(g_full))
            if profit_raw < delta / 2.0 * d:
                profit = 0.0
            else:
                profit = round_up_geom(profit_raw, delta / 2.0 * d, b / 2.0 * d, 1.0 + delta / b)
            t_full = job.processing_time(g_full)
            t_half = job.processing_time(g_half)
            type_key = ("narrow", size, round(profit, 12))
        else:
            # wide in shelf S2: round the processing times of both shelves
            t_full = round_down_geom(job.processing_time(g_full), d / 2.0, d, 1.0 + 4.0 * rho)
            t_half = round_down_geom(job.processing_time(g_half), half / 2.0, half, 1.0 + 4.0 * rho)
            profit = max(0.0, t_half * rounded_half_count - t_full * size)
            type_key = ("wide", size, rounded_half_count, round(t_full, 12), round(t_half, 12))

        rounded_jobs.append(
            RoundedJob(
                job=job,
                size=size,
                profit=profit,
                type_key=type_key,
                gamma_full=g_full,
                gamma_half=g_half,
                rounded_time_full=t_full,
                rounded_time_half=t_half,
            )
        )

    # group into types; members sorted by true size so that narrow members are
    # preferred when a type is only partially selected.
    groups: Dict[Hashable, List[RoundedJob]] = {}
    for rj in rounded_jobs:
        groups.setdefault(rj.type_key, []).append(rj)
    types: List[ItemType] = []
    for key, members in groups.items():
        members.sort(key=lambda rj: rj.gamma_full)
        types.append(
            ItemType(
                key=key,
                size=members[0].size,
                profit=members[0].profit,
                count=len(members),
                members=[rj.job for rj in members],
            )
        )
    return RoundingScheme(d=d, m=m, delta=delta, params=params, rounded=rounded_jobs, types=types)
