"""Algorithm 1 (Section 4.2.5): the `(3/2+eps)`-dual algorithm based on the
knapsack problem with compressible items.

The shelf-1 selection knapsack is solved *approximately in the sizes* (never
in the profits): wide jobs — those using at least ``1/rho`` processors in
shelf S1 — are treated as compressible because Lemma 4 lets them give up a
``rho`` fraction of their processors at the cost of a ``(1+4rho)`` slowdown.
The selected jobs are then scheduled with their ``gamma_j(d')`` processor
counts for the slightly larger target ``d' = (1+4rho)d``, which is exactly
what the compression argument pays for (Corollary 10).

Running time of the dual step: ``O(n (log m + n log(eps*m)))`` oracle calls —
polynomial in ``log m``, in contrast to the ``O(n*m)`` MRT baseline.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..knapsack.compressible import solve_compressible_knapsack
from ..knapsack.items import KnapsackItem
from .allotment import gamma
from .backend import resolve_backend
from .dual import DualSearchResult, dual_binary_search
from .fptas import fptas_dual, fptas_machine_threshold
from .job import MoldableJob
from .schedule import Schedule
from .shelves import build_three_shelf_schedule, partition_small_big, shelf_profit
from .validation import assert_valid_schedule

__all__ = ["compressible_dual", "compressible_schedule", "LARGE_M_FACTOR"]

#: Above ``m >= LARGE_M_FACTOR * n`` the dual step delegates to the FPTAS dual
#: with ``eps = 1/2`` (Section 4.2.5: "we only use Algorithm 1 if m < 16n").
LARGE_M_FACTOR = 16


def compressible_dual(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    eps: float,
    *,
    backend: str = "scalar",
    oracle=None,
) -> Optional[Schedule]:
    """One `(3/2+eps)`-dual step of Algorithm 1: schedule with makespan at most
    ``(3/2)(1+4rho)d <= (3/2+eps)d`` (with ``rho = eps/6``) or reject ``d``.

    ``backend="vectorized"`` computes γ-allotments with lockstep batched
    binary searches and runs the compressible knapsack on the NumPy array
    engine (bit-identical results); ``oracle`` lets repeated dual calls share
    one :class:`repro.perf.oracle.BatchedOracle`.
    """
    if d <= 0:
        return None
    jobs = list(jobs)
    n = len(jobs)
    if n == 0:
        return Schedule(m=m)
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    gamma_fn = oracle.gamma if oracle is not None else gamma

    if m >= LARGE_M_FACTOR * n:
        # m >= 16n = 8n/(1/2): the FPTAS dual with eps=1/2 yields makespan <= 3d/2.
        schedule = fptas_dual(jobs, m, d, 0.5, backend=backend, oracle=oracle)
        if schedule is not None:
            schedule.metadata["algorithm"] = "compressible_dual(large_m)"
        return schedule

    rho = eps / 6.0
    d_prime = (1.0 + 4.0 * rho) * d
    _, big = partition_small_big(jobs, d)

    shelf1: List[MoldableJob] = []
    knapsack_jobs: List[MoldableJob] = []
    capacity = m
    for job in big:
        g_full = gamma_fn(job, d, m)
        if g_full is None:
            return None
        if gamma_fn(job, d / 2.0, m) is None:
            shelf1.append(job)
            capacity -= g_full
        else:
            knapsack_jobs.append(job)
    if capacity < 0:
        return None

    items = [
        KnapsackItem(
            key=idx,
            size=gamma_fn(job, d, m),
            profit=shelf_profit(job, d, m, gamma_fn=gamma_fn),
            payload=job,
        )
        for idx, job in enumerate(knapsack_jobs)
    ]
    compressible_keys = {item.key for item in items if item.size >= 1.0 / rho}

    if items:
        n_bar = max(1, int(math.floor(capacity * rho / (1.0 - rho))) + 1)
        solution = solve_compressible_knapsack(
            items,
            compressible_keys,
            capacity,
            rho,
            alpha_min=1.0 / rho,
            beta_max=float(capacity),
            n_bar=n_bar,
            backend=backend,
        )
        shelf1.extend(item.payload for item in solution.items)

    # Corollary 10: schedule the selection for the inflated target d'.
    schedule = build_three_shelf_schedule(
        jobs, m, d_prime, shelf1, gamma_fn=gamma_fn, columnar=backend == "vectorized"
    )
    if schedule is not None:
        schedule.metadata["algorithm"] = "compressible_dual"
        schedule.metadata["d"] = d
        schedule.metadata["d_prime"] = d_prime
    return schedule


def compressible_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float = 0.1,
    *,
    validate: bool = True,
    backend: str = "vectorized",
) -> DualSearchResult:
    """`(3/2+eps)`-approximation via Algorithm 1 and dual binary search.

    The accuracy budget is split between the dual step (``eps/2``) and the
    binary search (``eps/4``): the final makespan is at most
    ``(3/2 + eps/2)(1 + eps/4) <= (3/2 + eps)`` times the optimum for
    ``eps <= 1``.

    ``backend="vectorized"`` (default) shares one batched γ-oracle across the
    whole dual search; ``backend="scalar"`` is the bit-identical reference.
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must lie in (0, 1]")
    jobs = list(jobs)
    backend, oracle = resolve_backend(jobs, m, backend, None)
    dual_eps = eps / 2.0
    tolerance = eps / 4.0
    result = dual_binary_search(
        jobs,
        m,
        lambda d: compressible_dual(jobs, m, d, dual_eps, backend=backend, oracle=oracle),
        tolerance=tolerance,
        oracle=oracle,
    )
    result.schedule.metadata["algorithm"] = "compressible"
    result.schedule.metadata["eps"] = eps
    result.schedule.metadata["guarantee"] = 1.5 + eps
    result.schedule.metadata["backend"] = backend
    if validate and jobs:
        assert_valid_schedule(result.schedule, jobs, oracle=oracle)
    return result
