"""Top-level scheduling facade.

:func:`schedule_moldable` is the single entry point most users need: pick an
algorithm (or let ``"auto"`` pick one), get back a feasible schedule together
with a certified lower bound on the optimum and the implied ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .bounded_algorithm import bounded_schedule
from .bounds import makespan_lower_bound
from .compressible_algorithm import compressible_schedule
from .exact_small import exact_schedule, exact_solver_applicable
from .fptas import fptas_machine_threshold, fptas_schedule, ptas_schedule
from .job import MoldableJob
from .mrt import mrt_schedule
from .schedule import Schedule
from .two_approx import two_approximation
from .validation import assert_valid_schedule

__all__ = ["ALGORITHMS", "SchedulingResult", "schedule_moldable"]

ALGORITHMS = (
    "auto",
    "two_approx",
    "mrt",
    "compressible",
    "bounded",
    "bounded_linear",
    "fptas",
    "ptas",
    "exact",
)


@dataclass
class SchedulingResult:
    """Schedule plus certification data."""

    schedule: Schedule
    algorithm: str
    eps: float
    lower_bound: float
    guarantee: Optional[float]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def certified_ratio(self) -> float:
        """Upper bound on makespan / OPT obtained from the lower bound.

        This is a *pessimistic* figure (the true ratio is usually better); it
        is the quantity reported in the quality experiments.
        """
        if self.lower_bound <= 0:
            return 1.0
        return self.makespan / self.lower_bound


def schedule_moldable(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float = 0.1,
    *,
    algorithm: str = "auto",
    validate: bool = True,
    backend: str = "vectorized",
    oracle=None,
    list_backend: Optional[str] = None,
) -> SchedulingResult:
    """Schedule monotone moldable jobs on ``m`` machines.

    Parameters
    ----------
    jobs:
        The moldable jobs (monotone work functions assumed; use
        :func:`repro.core.validation.check_monotone_job` to verify instances).
    m:
        Number of identical machines.
    eps:
        Accuracy parameter of the chosen algorithm.
    algorithm:
        One of :data:`ALGORITHMS`:

        ``"auto"``
            FPTAS when ``m >= 8n/eps`` (Theorem 2), otherwise the
            bounded-knapsack `(3/2+eps)` algorithm (Theorem 3).
        ``"two_approx"``
            Ludwig–Tiwari estimator + list scheduling (ratio 2).
        ``"mrt"``
            Mounié–Rapine–Trystram with the exact ``O(nm)`` knapsack.
        ``"compressible"``
            Algorithm 1 of Section 4.2.5.
        ``"bounded"`` / ``"bounded_linear"``
            Algorithm 3 of Section 4.3 / its linear variant of Section 4.3.3.
        ``"fptas"`` / ``"ptas"``
            Section 3 algorithms.
        ``"exact"``
            Branch-and-bound optimum (tiny instances only).
    backend:
        ``"vectorized"`` (default) runs γ-allotments and knapsack DPs on the
        NumPy fast path, ``"scalar"`` on the bit-identical pure-Python
        reference (see :mod:`repro.perf`).  Ignored by ``"exact"``.
    oracle:
        Optional pre-built :class:`repro.perf.oracle.BatchedOracle` for
        exactly ``(jobs, m)``.  Threaded to the drivers that accept one
        (``"two_approx"`` and ``"fptas"``) so callers issuing *consecutive*
        solves — the fault-recovery loop re-planning survivors epoch after
        epoch — can carry γ-caches across calls (see
        ``BatchedOracle.prime_from``).  The remaining drivers build their own
        oracles internally and ignore this argument.
    list_backend:
        Optional list-scheduling backend override for ``"two_approx"``
        (``"heap"``, ``"wakeup"``, ``"event_queue"``,
        ``"event_queue_indexed"``); ignored by the other algorithms.
    """
    jobs = list(jobs)
    if m < 1:
        raise ValueError("m must be >= 1")
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}")

    if not jobs:
        return SchedulingResult(Schedule(m=m), algorithm, eps, 0.0, None)

    chosen = algorithm
    if algorithm == "auto":
        chosen = "fptas" if m >= fptas_machine_threshold(len(jobs), eps) else "bounded"

    if chosen == "two_approx":
        res = two_approximation(
            jobs, m, validate=validate, backend=backend, oracle=oracle, list_backend=list_backend
        )
        schedule = res.schedule
        guarantee: Optional[float] = 2.0
    elif chosen == "mrt":
        schedule = mrt_schedule(jobs, m, eps, validate=validate, backend=backend).schedule
        guarantee = 1.5 + eps
    elif chosen == "compressible":
        schedule = compressible_schedule(jobs, m, eps, validate=validate, backend=backend).schedule
        guarantee = 1.5 + eps
    elif chosen == "bounded":
        schedule = bounded_schedule(jobs, m, eps, transform="heap", validate=validate, backend=backend).schedule
        guarantee = 1.5 + eps
    elif chosen == "bounded_linear":
        schedule = bounded_schedule(jobs, m, eps, transform="bucket", validate=validate, backend=backend).schedule
        guarantee = 1.5 + eps
    elif chosen == "fptas":
        schedule = fptas_schedule(
            jobs, m, eps, validate=validate, backend=backend, oracle=oracle
        ).schedule
        guarantee = 1.0 + eps
    elif chosen == "ptas":
        result = ptas_schedule(jobs, m, eps, validate=validate, backend=backend)
        schedule = result.schedule
        guarantee = schedule.metadata.get("guarantee")
    elif chosen == "exact":
        if not exact_solver_applicable(len(jobs), m):
            raise ValueError("the exact algorithm only handles tiny instances (n <= 7, m <= 8)")
        schedule = exact_schedule(jobs, m)
        guarantee = 1.0
        if validate:
            assert_valid_schedule(schedule, jobs)
    else:  # pragma: no cover - exhaustiveness guard
        raise AssertionError(chosen)

    lower = makespan_lower_bound(jobs, m)
    schedule.metadata.setdefault("algorithm", chosen)
    return SchedulingResult(schedule=schedule, algorithm=chosen, eps=eps, lower_bound=lower, guarantee=guarantee)
