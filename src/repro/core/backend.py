"""Backend selection shared by the algorithm drivers.

Every driver accepts ``backend="vectorized" | "scalar"`` (and ``"auto"``,
which currently resolves to vectorized — NumPy is a hard dependency).  The
vectorized backend evaluates γ-allotments through a shared
:class:`repro.perf.oracle.BatchedOracle` and runs the knapsack DPs on the
NumPy array engines; the scalar backend is the pure-Python reference.  Both
produce bit-for-bit identical schedules.
"""

from __future__ import annotations

from .capacity import MAX_COLUMNAR_M

__all__ = ["resolve_backend", "MAX_VECTORIZED_M"]

#: Largest machine count the vectorized backend supports: γ-arrays use the
#: sentinel ``m + 1`` in int64 and the oracle funnels counts through float64,
#: so the boundary is the shared int64-contract limit from
#: :mod:`repro.core.capacity` (2^62), not the raw int64 ceiling — counts in
#: (2^53, 2^63) would round under a lossy ``float(m)`` cast.  Astronomically
#: larger ``m`` (the compact input encoding allows it) silently falls back to
#: the scalar path, which handles arbitrary Python ints — results are
#: bit-identical either way.
MAX_VECTORIZED_M = MAX_COLUMNAR_M


def resolve_backend(jobs, m, backend, oracle):
    """Normalise a driver's ``(backend, oracle)`` pair.

    A supplied :class:`~repro.perf.oracle.BatchedOracle` implies the
    vectorized backend (that is what the oracle exists for).  Otherwise
    ``"vectorized"``/``"auto"`` get a freshly built oracle — unless ``m``
    exceeds the int64 range of the γ-arrays, in which case the scalar path is
    used.  The scalar backend returns ``("scalar", None)``: it must not touch
    batched state.
    """
    if backend not in ("scalar", "vectorized", "auto"):
        raise ValueError(f"unknown backend {backend!r}")
    if oracle is not None:
        if oracle.m != int(m):
            raise ValueError(f"oracle was built for m={oracle.m}, got m={m}")
        return "vectorized", oracle
    if backend == "auto":
        backend = "vectorized"
    if backend == "vectorized":
        if int(m) > MAX_VECTORIZED_M:
            return "scalar", None
        # Imported lazily: repro.perf pulls in repro.core.job, and the driver
        # modules are themselves imported by repro.core's package init.
        from ..perf.oracle import BatchedOracle

        oracle = BatchedOracle(jobs, m)
    return backend, oracle
