"""Core scheduling algorithms and data structures.

The public surface mirrors the paper's structure:

* job models and oracles (:mod:`repro.core.job`);
* the canonical allotment :func:`repro.core.allotment.gamma`;
* schedules with machine spans and feasibility validation;
* the compression lemmas (:mod:`repro.core.compression`);
* bounds / estimator, list scheduling and the 2-approximation baseline;
* the dual-approximation framework, the FPTAS (Theorem 2), the MRT baseline
  and the accelerated `(3/2+eps)` algorithms (Theorem 3);
* the :func:`repro.core.scheduler.schedule_moldable` facade.
"""

from .allotment import Allotment, canonical_allotment, gamma, gamma_batch
from .bounded_algorithm import bounded_dual, bounded_schedule
from .certificates import Certificate, extract_certificate, replay_certificate, verify_certificate
from .heuristics import lpt_moldable, max_parallelism_baseline, sequential_baseline
from .bounds import (
    EstimatorResult,
    ludwig_tiwari_estimator,
    makespan_lower_bound,
    serial_upper_bound,
    trivial_lower_bound,
)
from .compressible_algorithm import compressible_dual, compressible_schedule
from .compression import (
    CompressionParams,
    compressed_count,
    compression_time_bound,
    is_compressible,
    params_for_delta,
    verify_compression_lemma,
)
from .dual import DualSearchResult, dual_binary_search
from .exact_small import exact_makespan, exact_schedule, exact_solver_applicable
from .fptas import fptas_dual, fptas_machine_threshold, fptas_schedule, ptas_schedule
from .job import (
    AmdahlJob,
    CommunicationJob,
    MoldableJob,
    OracleJob,
    PowerLawJob,
    RigidJob,
    TabulatedJob,
    max_sequential_time,
    total_minimal_work,
)
from .list_scheduling import list_schedule, list_schedule_bound
from .mrt import mrt_dual, mrt_schedule
from .replan import (
    EpochPartition,
    PlacedEntry,
    ReplanError,
    ReplanOutcome,
    ReplanState,
    availability_prefix,
    remap_spans,
    segment_algorithm,
)
from .rounding import RoundedJob, RoundingScheme, round_jobs_to_types
from .schedule import MachineSpan, Schedule, ScheduledJob
from .scheduler import ALGORITHMS, SchedulingResult, schedule_moldable
from .shelves import (
    ThreeShelfDiagnostics,
    TwoShelfSchedule,
    build_three_shelf_schedule,
    build_two_shelf_schedule,
    partition_small_big,
    shelf_profit,
    small_jobs_work,
)
from .two_approx import TwoApproxResult, two_approximation
from .validation import (
    ValidationError,
    ValidationReport,
    assert_valid_schedule,
    check_monotone_job,
    is_monotone_work,
    is_nonincreasing_time,
    validate_schedule,
)

__all__ = [
    # jobs
    "MoldableJob",
    "TabulatedJob",
    "OracleJob",
    "AmdahlJob",
    "PowerLawJob",
    "CommunicationJob",
    "RigidJob",
    "total_minimal_work",
    "max_sequential_time",
    # allotment / schedule
    "gamma",
    "gamma_batch",
    "canonical_allotment",
    "Allotment",
    "MachineSpan",
    "ScheduledJob",
    "Schedule",
    # validation
    "ValidationError",
    "ValidationReport",
    "validate_schedule",
    "assert_valid_schedule",
    "is_nonincreasing_time",
    "is_monotone_work",
    "check_monotone_job",
    # compression
    "CompressionParams",
    "compressed_count",
    "compression_time_bound",
    "is_compressible",
    "params_for_delta",
    "verify_compression_lemma",
    # bounds & baselines
    "trivial_lower_bound",
    "serial_upper_bound",
    "EstimatorResult",
    "ludwig_tiwari_estimator",
    "makespan_lower_bound",
    "list_schedule",
    "list_schedule_bound",
    "TwoApproxResult",
    "two_approximation",
    # dual framework & algorithms
    "DualSearchResult",
    "dual_binary_search",
    "fptas_machine_threshold",
    "fptas_dual",
    "fptas_schedule",
    "ptas_schedule",
    "mrt_dual",
    "mrt_schedule",
    "compressible_dual",
    "compressible_schedule",
    "bounded_dual",
    "bounded_schedule",
    "exact_solver_applicable",
    "exact_makespan",
    "exact_schedule",
    # incremental re-planning core
    "ReplanError",
    "ReplanState",
    "ReplanOutcome",
    "EpochPartition",
    "PlacedEntry",
    "availability_prefix",
    "remap_spans",
    "segment_algorithm",
    # shelves & rounding
    "partition_small_big",
    "small_jobs_work",
    "shelf_profit",
    "TwoShelfSchedule",
    "build_two_shelf_schedule",
    "ThreeShelfDiagnostics",
    "build_three_shelf_schedule",
    "RoundedJob",
    "RoundingScheme",
    "round_jobs_to_types",
    # certificates & heuristics
    "Certificate",
    "extract_certificate",
    "replay_certificate",
    "verify_certificate",
    "sequential_baseline",
    "max_parallelism_baseline",
    "lpt_moldable",
    # facade
    "ALGORITHMS",
    "SchedulingResult",
    "schedule_moldable",
]
