"""Schedule and job validation.

Every algorithm in this library validates the schedules it returns; these
helpers implement the checks:

* **Completeness** — every input job is scheduled exactly once.
* **Machine bounds** — all machine spans lie within ``[0, m)``.
* **No conflicts** — no machine executes two jobs at the same time.  The check
  is performed with a sweep over machine-span boundaries so it never iterates
  over the (possibly astronomically many) machines.

The default (``backend="auto"``) validation path is *columnar*: the schedule
is flattened once into NumPy arrays (:class:`repro.perf.schedule_builder.ScheduleColumns`)
and every check runs as an O(n log n) sort/prefix-sum pass — validating a
10^5-job schedule costs about as much as building it.  The vectorized conflict
sweep is an exact over-approximation: whenever it sees a *potential* overlap
(or the span nesting is too pathological to expand) it re-runs the tolerant
scalar sweep, which remains the single source of truth for violation messages.
``backend="scalar"`` forces the pure-Python reference path; both backends
produce identical reports.
* **Duration consistency** — the recorded duration of each placement is at
  least the oracle processing time for the allotted processor count
  (durations may be *over*-stated by shelf constructions but never
  under-stated).

Job-level monotony checks (`non-increasing processing time`, `non-decreasing
work`) are also provided; they are O(k_max) and intended for tests and
instance sanity checks, not for the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .job import MoldableJob
from .schedule import Schedule, ScheduledJob

__all__ = [
    "ValidationError",
    "ValidationReport",
    "Violation",
    "CONFLICT",
    "BAD_SPAN",
    "BAD_PROCS",
    "BAD_DURATION",
    "MISSING_JOB",
    "DUPLICATE_JOB",
    "FOREIGN_JOB",
    "MAKESPAN_EXCEEDED",
    "validate_schedule",
    "assert_valid_schedule",
    "is_nonincreasing_time",
    "is_monotone_work",
    "check_monotone_job",
]

#: Relative tolerance used when comparing floating-point times.
REL_TOL = 1e-9
#: Absolute tolerance used when comparing floating-point times.
ABS_TOL = 1e-9


class ValidationError(AssertionError):
    """Raised by :func:`assert_valid_schedule` when a schedule is infeasible."""


# Machine-readable violation codes (``Violation.code`` values).
CONFLICT = "CONFLICT"
BAD_SPAN = "BAD_SPAN"
BAD_PROCS = "BAD_PROCS"
BAD_DURATION = "BAD_DURATION"
MISSING_JOB = "MISSING_JOB"
DUPLICATE_JOB = "DUPLICATE_JOB"
FOREIGN_JOB = "FOREIGN_JOB"
MAKESPAN_EXCEEDED = "MAKESPAN_EXCEEDED"


class Violation(str):
    """A violation message carrying a machine-readable ``code``.

    A ``str`` subclass: everything that treated violations as plain messages
    (substring checks, ``"; ".join(...)``, equality between the scalar and
    columnar validation backends) keeps working unchanged, while tests can
    assert on ``violation.code`` instead of brittle message substrings.
    """

    __slots__ = ("code",)

    code: str

    def __new__(cls, code: str, message: str) -> "Violation":
        obj = super().__new__(cls, message)
        obj.code = code
        return obj


@dataclass
class ValidationReport:
    """Result of :func:`validate_schedule`."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    makespan: float = 0.0
    peak_processors: int = 0

    def __bool__(self) -> bool:
        return self.ok

    @property
    def codes(self) -> List[str]:
        """Machine-readable codes of the violations, in report order."""
        return [getattr(v, "code", "UNKNOWN") for v in self.violations]

    def has(self, code: str) -> bool:
        """Whether any violation carries the given code."""
        return code in self.codes


def _approx_le(a: float, b: float) -> bool:
    return a <= b + ABS_TOL + REL_TOL * max(abs(a), abs(b))


def _overlap(a_start: float, a_end: float, b_start: float, b_end: float) -> bool:
    """Strict time-interval overlap with tolerance (touching intervals ok)."""
    lo = max(a_start, b_start)
    hi = min(a_end, b_end)
    return hi - lo > ABS_TOL + REL_TOL * max(abs(hi), abs(lo), 1.0)


def _machine_conflicts(entries: Sequence[ScheduledJob]) -> List[str]:
    """Detect conflicts via a sweep over machine-span boundaries.

    Spans are cut at every distinct boundary; within one elementary machine
    interval the covering placements must have pairwise disjoint time
    intervals, which we verify by sorting by start time and checking adjacent
    pairs.
    """
    violations: List[str] = []
    # (machine_first, machine_end, entry)
    pieces: List[Tuple[int, int, ScheduledJob]] = []
    boundaries: set[int] = set()
    for entry in entries:
        for first, count in entry.spans:
            pieces.append((first, first + count, entry))
            boundaries.add(first)
            boundaries.add(first + count)
    if not pieces:
        return violations
    cuts = sorted(boundaries)
    # map each piece to the elementary intervals it covers; to stay near-linear
    # we sweep over cuts with an active list.
    pieces.sort(key=lambda p: p[0])
    import bisect

    active: List[Tuple[int, ScheduledJob]] = []  # (machine_end, entry)
    idx = 0
    reported: set[tuple[int, int]] = set()
    for ci in range(len(cuts) - 1):
        seg_start = cuts[ci]
        # add pieces starting here
        while idx < len(pieces) and pieces[idx][0] <= seg_start:
            active.append((pieces[idx][1], pieces[idx][2]))
            idx += 1
        # drop pieces that ended
        active = [(end, e) for end, e in active if end > seg_start]
        if len(active) > 1:
            # check pairwise time overlap among active entries on this segment
            stacked = sorted(active, key=lambda p: p[1].start)
            for i in range(len(stacked) - 1):
                a = stacked[i][1]
                b = stacked[i + 1][1]
                if a is b:
                    continue
                if _overlap(a.start, a.end, b.start, b.end):
                    key = (id(a), id(b))
                    if key not in reported:
                        reported.add(key)
                        violations.append(
                            Violation(
                                CONFLICT,
                                f"machine conflict on machines [{seg_start}, {cuts[ci + 1]}): "
                                f"job {a.job.name!r} [{a.start:.6g}, {a.end:.6g}) overlaps "
                                f"job {b.job.name!r} [{b.start:.6g}, {b.end:.6g})",
                            )
                        )
    return violations


def _bounds_violations(entries: Sequence[ScheduledJob], m: int) -> List[str]:
    violations: List[str] = []
    for entry in entries:
        for first, count in entry.spans:
            if first + count > m:
                violations.append(
                    Violation(
                        BAD_SPAN,
                        f"job {entry.job.name!r}: span ({first}, {count}) exceeds machine count m={m}",
                    )
                )
        if entry.processors > m:
            violations.append(
                Violation(
                    BAD_PROCS,
                    f"job {entry.job.name!r}: uses {entry.processors} > m={m} processors",
                )
            )
    return violations


def _duration_violation(entry: ScheduledJob, oracle: float) -> Optional[str]:
    if entry.duration_override is not None and entry.duration_override + ABS_TOL < oracle * (1 - REL_TOL):
        return Violation(
            BAD_DURATION,
            f"job {entry.job.name!r}: recorded duration {entry.duration_override:.6g} understates "
            f"oracle time {oracle:.6g} on {entry.processors} processors",
        )
    return None


def _completeness_violations(
    scheduled: Sequence[MoldableJob], jobs: Iterable[MoldableJob]
) -> List[str]:
    violations: List[str] = []
    wanted = list(jobs)
    scheduled_ids: dict = {}
    for job in scheduled:
        scheduled_ids[id(job)] = scheduled_ids.get(id(job), 0) + 1
    for job in wanted:
        cnt = scheduled_ids.get(id(job), 0)
        if cnt == 0:
            violations.append(
                Violation(MISSING_JOB, f"job {job.name!r} is missing from the schedule")
            )
        elif cnt > 1:
            violations.append(
                Violation(DUPLICATE_JOB, f"job {job.name!r} is scheduled {cnt} times")
            )
    wanted_ids = {id(job) for job in wanted}
    for job in scheduled:
        if id(job) not in wanted_ids:
            violations.append(
                Violation(
                    FOREIGN_JOB,
                    f"job {job.name!r} was scheduled but is not part of the instance",
                )
            )
    return violations


def _validate_scalar(
    schedule: Schedule,
    jobs: Optional[Iterable[MoldableJob]],
    max_makespan: Optional[float],
    require_all_jobs: bool,
) -> ValidationReport:
    """The pure-Python reference validation path."""
    violations: List[str] = []
    entries = schedule.entries

    violations.extend(_bounds_violations(entries, schedule.m))

    # duration consistency
    for entry in entries:
        oracle = entry.job.processing_time(entry.processors)
        message = _duration_violation(entry, oracle)
        if message is not None:
            violations.append(message)

    if jobs is not None and require_all_jobs:
        violations.extend(_completeness_violations(schedule.jobs(), jobs))

    violations.extend(_machine_conflicts(entries))

    ms = schedule.makespan
    if max_makespan is not None and not _approx_le(ms, max_makespan):
        violations.append(
            Violation(MAKESPAN_EXCEEDED, f"makespan {ms:.6g} exceeds bound {max_makespan:.6g}")
        )

    return ValidationReport(
        ok=not violations,
        violations=violations,
        makespan=ms,
        peak_processors=schedule.peak_processor_usage(),
    )


#: Expansion budget of the vectorized conflict sweep: schedules whose spans
#: nest so pathologically that cutting them at all boundaries exceeds this
#: many pieces re-run the scalar sweep instead.
_CONFLICT_INCIDENCE_CAP = 1_000_000


def _validate_columnar(
    schedule: Schedule,
    jobs: Optional[Iterable[MoldableJob]],
    max_makespan: Optional[float],
    require_all_jobs: bool,
    oracle=None,
) -> Optional[ValidationReport]:
    """Columnar validation: the schedule's native columns, then
    sort/prefix-sum checks.

    Returns ``None`` when the schedule cannot be safely put into int64
    columns (astronomical machine counts); the caller falls back to the
    scalar path.  Violation *messages* always come from the scalar helpers,
    so reports are identical to :func:`_validate_scalar`.  No per-entry
    Python pass happens on this path: the columns are the schedule's own
    storage, and entry objects are materialised only for the (rare) rows
    that need a violation message.
    """
    import numpy as np

    from .schedule import spans_time_overlap

    m = schedule.m
    cols = schedule.try_columns(oracle=oracle)
    if cols is None:
        return None

    violations: List[str] = []

    # machine index bounds
    if (cols.span_end > m).any() or (cols.processors > m).any():
        violations.extend(_bounds_violations(schedule.entries, m))

    # duration consistency (only overridden entries can violate; the others'
    # durations are the oracle times by construction)
    if cols.has_override.any():
        for i in np.flatnonzero(cols.has_override).tolist():
            entry = schedule.entries[i]
            oracle_time = entry.job.processing_time(entry.processors)
            message = _duration_violation(entry, oracle_time)
            if message is not None:
                violations.append(message)

    if jobs is not None and require_all_jobs:
        violations.extend(_completeness_violations(schedule.jobs(), jobs))

    # machine conflicts: exact vectorized sweep; any *potential* overlap (or
    # an over-budget expansion) re-runs the tolerant scalar sweep for the
    # authoritative verdict and messages.
    suspicious = spans_time_overlap(
        cols.span_first,
        cols.span_end,
        cols.start[cols.span_owner],
        cols.end[cols.span_owner],
        max_incidences=max(_CONFLICT_INCIDENCE_CAP, 8 * len(cols.span_first)),
    )
    if suspicious is None or suspicious:
        violations.extend(_machine_conflicts(schedule.entries))

    ms = float(cols.end.max()) if cols.n else 0.0
    if max_makespan is not None and not _approx_le(ms, max_makespan):
        violations.append(
            Violation(MAKESPAN_EXCEEDED, f"makespan {ms:.6g} exceeds bound {max_makespan:.6g}")
        )

    # peak busy machines: the shared event sort + prefix sum
    if cols.fits_int64_sweep():
        peak = cols.peak_busy()
    else:
        peak = schedule.peak_processor_usage()

    return ValidationReport(
        ok=not violations,
        violations=violations,
        makespan=ms,
        peak_processors=peak,
    )


def validate_schedule(
    schedule: Schedule,
    jobs: Optional[Iterable[MoldableJob]] = None,
    *,
    max_makespan: Optional[float] = None,
    require_all_jobs: bool = True,
    backend: str = "auto",
    oracle=None,
) -> ValidationReport:
    """Check a schedule for feasibility.

    Parameters
    ----------
    schedule:
        The schedule to validate.
    jobs:
        If given and ``require_all_jobs`` is true, every job must appear in the
        schedule exactly once (and no foreign job may appear).
    max_makespan:
        Optional upper bound the makespan must respect.
    backend:
        ``"auto"`` (default) runs the columnar NumPy checks at any machine
        count (span values beyond int64 ride exact object-dtype columns),
        falling back to the scalar sweep only for violation messages;
        ``"scalar"`` forces the pure-Python reference path.  Both produce
        identical reports.
    oracle:
        Optional :class:`repro.perf.oracle.BatchedOracle` covering the
        schedule's jobs; the columnar path then evaluates entry durations in
        one batched kernel pass instead of per-entry oracle calls
        (bit-identical values).
    """
    if backend not in ("auto", "vectorized", "scalar"):
        raise ValueError(f"unknown validation backend {backend!r}")
    if backend != "scalar" and len(schedule):
        # astronomical m included: the columns carry exact object-dtype
        # machine indices beyond int64 (see repro.core.capacity), and every
        # columnar check below is dtype-agnostic
        report = _validate_columnar(schedule, jobs, max_makespan, require_all_jobs, oracle)
        if report is not None:
            return report
    return _validate_scalar(schedule, jobs, max_makespan, require_all_jobs)


def assert_valid_schedule(
    schedule: Schedule,
    jobs: Optional[Iterable[MoldableJob]] = None,
    *,
    max_makespan: Optional[float] = None,
    oracle=None,
) -> ValidationReport:
    """Like :func:`validate_schedule` but raises :class:`ValidationError`."""
    report = validate_schedule(schedule, jobs, max_makespan=max_makespan, oracle=oracle)
    if not report.ok:
        raise ValidationError("; ".join(report.violations))
    return report


# --------------------------------------------------------------------------
# Job-level checks
# --------------------------------------------------------------------------

def is_nonincreasing_time(job: MoldableJob, k_max: int) -> bool:
    """True iff ``t_j(k)`` is non-increasing for ``k = 1..k_max``."""
    prev = job.processing_time(1)
    for k in range(2, k_max + 1):
        cur = job.processing_time(k)
        if cur > prev * (1 + REL_TOL) + ABS_TOL:
            return False
        prev = cur
    return True


def is_monotone_work(job: MoldableJob, k_max: int) -> bool:
    """True iff ``w_j(k) = k * t_j(k)`` is non-decreasing for ``k = 1..k_max``."""
    prev = job.work(1)
    for k in range(2, k_max + 1):
        cur = job.work(k)
        if cur < prev * (1 - REL_TOL) - ABS_TOL:
            return False
        prev = cur
    return True


def check_monotone_job(job: MoldableJob, k_max: int) -> None:
    """Raise :class:`ValueError` if the job violates either monotony property."""
    if not is_nonincreasing_time(job, k_max):
        raise ValueError(f"job {job.name!r}: processing time is not non-increasing up to k={k_max}")
    if not is_monotone_work(job, k_max):
        raise ValueError(f"job {job.name!r}: work is not non-decreasing up to k={k_max}")
