"""The 2-approximation baseline (Ludwig & Tiwari / Turek, Wolf & Yu).

Combines the 2-estimator of :mod:`repro.core.bounds` with Garey–Graham list
scheduling: the estimator's allotment ``a`` minimises
``max(sum_j w_j(a_j)/m, max_j t_j(a_j))`` (approximately), and list scheduling
that allotment gives a schedule of length at most twice the minimum — hence a
2-approximation for the optimal makespan.

Running time: ``O(n log m (log m + log 1/tol))`` oracle calls, i.e. fully
polynomial even with compact input encodings.
"""

from __future__ import annotations

from typing import Sequence

from .backend import resolve_backend
from .bounds import EstimatorResult, ludwig_tiwari_estimator
from .job import MoldableJob
from .list_scheduling import list_schedule
from .schedule import Schedule
from .validation import assert_valid_schedule

__all__ = ["two_approximation", "TwoApproxResult"]


class TwoApproxResult:
    """Schedule plus the estimator evidence that certifies the ratio."""

    __slots__ = ("schedule", "estimate")

    def __init__(self, schedule: Schedule, estimate: EstimatorResult) -> None:
        self.schedule = schedule
        self.estimate = estimate

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def certified_ratio(self) -> float:
        """Upper bound on makespan / OPT implied by the estimator's lower bound."""
        if self.estimate.omega <= 0:
            return 1.0
        return self.makespan / self.estimate.omega


def two_approximation(
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    validate: bool = True,
    backend: str = "vectorized",
) -> TwoApproxResult:
    """Compute a 2-approximate schedule for monotone moldable jobs.

    ``backend="vectorized"`` (default) runs the estimator's γ-searches in
    lockstep on arrays; ``backend="scalar"`` is the bit-identical reference.
    """
    jobs = list(jobs)
    backend, oracle = resolve_backend(jobs, m, backend, None)
    estimate = ludwig_tiwari_estimator(jobs, m, oracle=oracle)
    if not jobs:
        return TwoApproxResult(Schedule(m=m, metadata={"algorithm": "two_approximation"}), estimate)
    # Sort longest-processing-time first: not required for the bound but a
    # standard practical improvement.
    if oracle is not None:
        # columnar: evaluate all allotted processing times in one batched
        # kernel pass; argsort(stable) reproduces the scalar sorted() order.
        # The same times double as the list scheduler's durations.
        import numpy as np

        counts = estimate.allotment.counts
        times = oracle.times_at(np.array([counts[j] for j in jobs], dtype=np.float64))
        order = [jobs[i] for i in np.argsort(-times, kind="stable").tolist()]
        allotted_times = dict(zip(jobs, times.tolist()))
    else:
        order = sorted(jobs, key=lambda j: estimate.allotment[j] * 0 - j.processing_time(estimate.allotment[j]))
        allotted_times = None
    schedule = list_schedule(
        jobs,
        estimate.allotment,
        m,
        order=order,
        columnar=oracle is not None,
        allotted_times=allotted_times,
    )
    schedule.metadata["algorithm"] = "two_approximation"
    schedule.metadata["omega"] = estimate.omega
    if validate:
        assert_valid_schedule(schedule, jobs, oracle=oracle)
    return TwoApproxResult(schedule, estimate)
