"""The 2-approximation baseline (Ludwig & Tiwari / Turek, Wolf & Yu).

Combines the 2-estimator of :mod:`repro.core.bounds` with Garey–Graham list
scheduling: the estimator's allotment ``a`` minimises
``max(sum_j w_j(a_j)/m, max_j t_j(a_j))`` (approximately), and list scheduling
that allotment gives a schedule of length at most twice the minimum — hence a
2-approximation for the optimal makespan.

Running time: ``O(n log m (log m + log 1/tol))`` oracle calls, i.e. fully
polynomial even with compact input encodings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .backend import resolve_backend
from .bounds import EstimatorResult, ludwig_tiwari_estimator
from .job import MoldableJob
from .list_scheduling import list_schedule
from .schedule import Schedule
from .validation import assert_valid_schedule

__all__ = ["two_approximation", "TwoApproxResult"]


class TwoApproxResult:
    """Schedule plus the estimator evidence that certifies the ratio."""

    __slots__ = ("schedule", "estimate", "gamma_probes")

    def __init__(
        self,
        schedule: Schedule,
        estimate: EstimatorResult,
        gamma_probes: Optional[int] = None,
    ) -> None:
        self.schedule = schedule
        self.estimate = estimate
        #: total γ-probes the batched oracle spent (None on the scalar path)
        self.gamma_probes = gamma_probes

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def certified_ratio(self) -> float:
        """Upper bound on makespan / OPT implied by the estimator's lower bound."""
        if self.estimate.omega <= 0:
            return 1.0
        return self.makespan / self.estimate.omega


def two_approximation(
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    validate: bool = True,
    backend: str = "vectorized",
    oracle=None,
    list_backend: Optional[str] = None,
) -> TwoApproxResult:
    """Compute a 2-approximate schedule for monotone moldable jobs.

    ``backend="vectorized"`` (default) runs the estimator's γ-searches in
    lockstep on arrays; ``backend="scalar"`` is the bit-identical reference.
    ``oracle`` optionally supplies a pre-built
    :class:`repro.perf.oracle.BatchedOracle` (implies the vectorized
    backend; lets callers read its probe instrumentation afterwards).
    ``list_backend`` overrides the list-scheduling phase's backend (defaults
    to the batched ``"event_queue"`` on the vectorized path and the scalar
    ``"heap"`` loop otherwise; ``"wakeup"`` selects the columnar per-wake-up
    loop, ``"event_queue_indexed"`` the event-queue variant with the
    incremental need-bucket candidate index, the better fit for no-tie
    deep-queue workloads — all bit-identical).
    """
    jobs = list(jobs)
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    estimate = ludwig_tiwari_estimator(jobs, m, oracle=oracle)
    probes = oracle.gamma_probes if oracle is not None else None
    if not jobs:
        return TwoApproxResult(
            Schedule(m=m, metadata={"algorithm": "two_approximation"}), estimate, probes
        )
    # Sort longest-processing-time first: not required for the bound but a
    # standard practical improvement.
    if oracle is not None:
        # columnar: evaluate all allotted processing times in one batched
        # kernel pass; argsort(stable) reproduces the scalar sorted() order.
        # The same times double as the list scheduler's durations.
        import numpy as np

        counts = estimate.allotment.counts
        times = oracle.times_at(np.array([counts[j] for j in jobs], dtype=np.float64))
        order = [jobs[i] for i in np.argsort(-times, kind="stable").tolist()]
        allotted_times = dict(zip(jobs, times.tolist()))
    else:
        order = sorted(jobs, key=lambda j: estimate.allotment[j] * 0 - j.processing_time(estimate.allotment[j]))
        allotted_times = None
    if list_backend is None:
        list_backend = "event_queue" if oracle is not None else "heap"
    schedule = list_schedule(
        jobs,
        estimate.allotment,
        m,
        order=order,
        backend=list_backend,
        allotted_times=allotted_times,
        oracle=oracle,
    )
    schedule.metadata["algorithm"] = "two_approximation"
    schedule.metadata["omega"] = estimate.omega
    if validate:
        assert_valid_schedule(schedule, jobs, oracle=oracle)
    return TwoApproxResult(
        schedule, estimate, oracle.gamma_probes if oracle is not None else None
    )
