"""Two- and three-shelf schedule constructions (Section 4.1 of the paper).

The `(3/2)`-dual algorithm of Mounié, Rapine & Trystram — and all of the
paper's accelerated variants — share the same schedule *construction*: given a
target makespan ``d`` and a choice of which big jobs go into shelf ``S1``
(height ``d``) versus shelf ``S2`` (height ``d/2``), the construction

1. checks that shelf ``S1`` fits into ``m`` machines and that the total work
   respects the bound ``m*d - W_S(d)`` (Lemma 6);
2. applies the transformation rules (i)–(iii) that move jobs into a third
   shelf ``S0`` running alongside ``S1 + S2`` so that the whole picture fits
   into ``m`` machines (Lemmas 7 and 8, Figure 3);
3. re-inserts the small jobs greedily into the per-machine gaps (Lemma 9);
4. assigns concrete machine spans and returns a feasible :class:`Schedule`
   with makespan at most ``3*d/2``.

Only the *selection* of shelf-1 jobs differs between the algorithms (exact
knapsack for the original MRT algorithm, compressible / bounded knapsack for
the accelerated ones); they all call :func:`build_three_shelf_schedule`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .allotment import gamma
from .job import MoldableJob
from .schedule import MachineSpan, Schedule

__all__ = [
    "partition_small_big",
    "small_jobs_work",
    "shelf_profit",
    "TwoShelfSchedule",
    "build_two_shelf_schedule",
    "ThreeShelfDiagnostics",
    "build_three_shelf_schedule",
]

_REL = 1e-9
_ABS = 1e-9


def _leq(a: float, b: float) -> bool:
    return a <= b + _ABS + _REL * max(abs(a), abs(b))


# --------------------------------------------------------------------------
# Partitioning and knapsack profits
# --------------------------------------------------------------------------

def partition_small_big(jobs: Iterable[MoldableJob], d: float) -> Tuple[List[MoldableJob], List[MoldableJob]]:
    """Split jobs into small (``t_j(1) <= d/2``) and big (the rest)."""
    small: List[MoldableJob] = []
    big: List[MoldableJob] = []
    for job in jobs:
        if _leq(job.processing_time(1), d / 2.0):
            small.append(job)
        else:
            big.append(job)
    return small, big


def small_jobs_work(small: Iterable[MoldableJob]) -> float:
    """``W_S(d) = sum of t_j(1)`` over the small jobs."""
    return sum(job.processing_time(1) for job in small)


def shelf_profit(job: MoldableJob, d: float, m: int, *, gamma_fn=None) -> float:
    """Knapsack profit ``v_j(d) = w_j(gamma_j(d/2)) - w_j(gamma_j(d))``.

    The work saved by promoting a big job from shelf S2 to shelf S1.  Requires
    both gammas to be defined; monotony guarantees non-negativity (we clamp
    tiny negative values caused by floating point).

    ``gamma_fn`` optionally substitutes a γ-oracle with the same signature as
    :func:`repro.core.allotment.gamma` (e.g. a
    :class:`repro.perf.oracle.BatchedOracle` answering from its per-threshold
    γ-array cache).
    """
    if gamma_fn is None:
        gamma_fn = gamma
    g_half = gamma_fn(job, d / 2.0, m)
    g_full = gamma_fn(job, d, m)
    if g_half is None or g_full is None:
        raise ValueError(f"job {job.name!r} cannot meet the threshold with m={m} machines")
    return max(0.0, job.work(g_half) - job.work(g_full))


# --------------------------------------------------------------------------
# Two-shelf schedule (Figure 2) — may be infeasible (S2 wider than m)
# --------------------------------------------------------------------------

@dataclass
class TwoShelfSchedule:
    """The (possibly infeasible) two-shelf picture of Figure 2."""

    d: float
    m: int
    shelf1: Dict[MoldableJob, int]  # job -> processors (gamma_j(d))
    shelf2: Dict[MoldableJob, int]  # job -> processors (gamma_j(d/2))
    small: List[MoldableJob]

    @property
    def shelf1_processors(self) -> int:
        return sum(self.shelf1.values())

    @property
    def shelf2_processors(self) -> int:
        return sum(self.shelf2.values())

    @property
    def total_work(self) -> float:
        w1 = sum(job.work(k) for job, k in self.shelf1.items())
        w2 = sum(job.work(k) for job, k in self.shelf2.items())
        return w1 + w2

    @property
    def is_feasible(self) -> bool:
        """Whether both shelves fit into ``m`` machines simultaneously (the
        final, transformed schedule can be feasible even when this is not)."""
        return self.shelf1_processors <= self.m and self.shelf2_processors <= self.m

    def work_bound(self) -> float:
        """The Lemma 6 threshold ``m*d - W_S(d)``."""
        return self.m * self.d - small_jobs_work(self.small)


def build_two_shelf_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    shelf1_jobs: Iterable[MoldableJob],
    *,
    gamma_fn=None,
) -> Optional[TwoShelfSchedule]:
    """Assemble the two-shelf picture for a given shelf-1 selection.

    Returns ``None`` if some big job cannot meet its shelf's height at all
    (``t_j(m) > d`` for shelf 1 or ``t_j(m) > d/2`` for shelf 2), in which
    case the target ``d`` must be rejected or the job forced into shelf 1 by
    the caller.
    """
    if gamma_fn is None:
        gamma_fn = gamma
    small, big = partition_small_big(jobs, d)
    shelf1_ids = {id(j) for j in shelf1_jobs}
    shelf1: Dict[MoldableJob, int] = {}
    shelf2: Dict[MoldableJob, int] = {}
    for job in big:
        if id(job) in shelf1_ids:
            g = gamma_fn(job, d, m)
            if g is None:
                return None
            shelf1[job] = g
        else:
            g = gamma_fn(job, d / 2.0, m)
            if g is None:
                return None
            shelf2[job] = g
    return TwoShelfSchedule(d=d, m=m, shelf1=shelf1, shelf2=shelf2, small=small)


# --------------------------------------------------------------------------
# Three-shelf construction (Lemmas 7-9, Figure 3)
# --------------------------------------------------------------------------

@dataclass
class _S0Entry:
    """A column of the S0 shelf: `procs` dedicated machines running the listed
    placements (job, processors, start offset) back to back."""

    procs: int
    placements: List[Tuple[MoldableJob, int, float]] = field(default_factory=list)

    def end(self) -> float:
        return max((start + job.processing_time(procs) for job, procs, start in self.placements), default=0.0)


@dataclass
class ThreeShelfDiagnostics:
    """Structural information about a three-shelf construction (used by the
    Figure 2/3 experiments and by tests)."""

    d: float
    m: int
    shelf0_processors: int = 0
    shelf1_processors: int = 0
    shelf2_processors: int = 0
    shelf0_jobs: int = 0
    shelf1_jobs: int = 0
    shelf2_jobs: int = 0
    small_jobs: int = 0
    piggybacked_jobs: int = 0
    moved_from_shelf2: int = 0
    two_shelf_feasible: bool = False
    rejected_reason: Optional[str] = None


class _ScheduleAssembler:
    """Placement collector shared by the object and columnar assembly modes.

    In object mode every :meth:`add` goes straight to ``Schedule.add`` (the
    scalar reference).  In columnar mode the placements accumulate as flat
    rows in an :class:`repro.perf.schedule_builder.ArraySchedule` and the
    ``Schedule`` is materialized once in :meth:`finish` — bit-identical
    entries, one batched span-normalization pass instead of n.

    Either way the assembler records the busy *pieces* ``(machine_first,
    machine_end, start, end)`` that the small-job gap recovery sweeps, so the
    gap index never needs the (possibly not yet materialized) entry objects.
    """

    __slots__ = ("m", "pieces", "_schedule", "_builder")

    def __init__(self, m: int, metadata: dict, columnar: bool) -> None:
        self.m = m
        self.pieces: List[Tuple[int, int, float, float]] = []
        if columnar:
            from ..perf.schedule_builder import ArraySchedule

            self._builder = ArraySchedule(m, metadata=metadata)
            self._schedule = None
        else:
            self._builder = None
            self._schedule = Schedule(m=m, metadata=metadata)

    def add(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration: float,
    ) -> None:
        end = start + duration
        pieces = self.pieces
        for first, count in spans:
            pieces.append((first, first + count, start, end))
        if self._builder is not None:
            self._builder.append(job, start, spans)
        else:
            self._schedule.add(job, start, spans)

    def finish(self) -> Schedule:
        if self._builder is not None:
            return self._builder.build()
        return self._schedule


def build_three_shelf_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    shelf1_jobs: Iterable[MoldableJob],
    *,
    transform: str = "heap",
    bucket_ratio: Optional[float] = None,
    diagnostics: Optional[ThreeShelfDiagnostics] = None,
    gamma_fn=None,
    columnar: bool = False,
) -> Optional[Schedule]:
    """Turn a shelf-1 selection into a feasible schedule of length ``<= 3d/2``.

    Parameters
    ----------
    jobs:
        All jobs of the instance (small jobs are re-inserted at the end).
    m:
        Number of machines.
    d:
        Target makespan of the dual step; shelf heights are ``d`` and ``d/2``
        and the result has makespan at most ``3d/2``.
    shelf1_jobs:
        Big jobs placed in shelf S1 (any small members are ignored, as in
        Corollary 10).
    transform:
        ``"heap"`` (Section 4.3, exact processing times in a heap) or
        ``"bucket"`` (Section 4.3.3, processing times bucketed geometrically —
        the linear-time variant).  The produced schedules are feasible either
        way; the flag only changes the data structure used to find piggyback
        partners.
    bucket_ratio:
        Geometric ratio of the buckets for ``transform="bucket"``; defaults to
        ``1.05``.
    gamma_fn:
        Optional γ-oracle with the signature of
        :func:`repro.core.allotment.gamma`; the vectorized drivers pass a
        :class:`repro.perf.oracle.BatchedOracle` so every γ-lookup of the
        construction is answered from a batched per-threshold cache.
    columnar:
        Collect placements as flat columns and materialize the ``Schedule``
        in one batched pass (the vectorized drivers' fast path; bit-identical
        schedule) instead of per-placement ``Schedule.add`` calls.

    Returns ``None`` when the selection violates the Lemma 6 work bound, shelf
    S1 does not fit, or (defensively) the construction cannot complete — the
    caller should then reject the target ``d``.
    """
    if transform not in ("heap", "bucket"):
        raise ValueError(f"unknown transform {transform!r}")
    if gamma_fn is None:
        gamma_fn = gamma
    diag = diagnostics if diagnostics is not None else ThreeShelfDiagnostics(d=d, m=m)
    diag.d = d
    diag.m = m

    two_shelf = build_two_shelf_schedule(jobs, m, d, shelf1_jobs, gamma_fn=gamma_fn)
    if two_shelf is None:
        diag.rejected_reason = "a big job cannot meet its shelf height on m machines"
        return None
    small = two_shelf.small
    diag.small_jobs = len(small)
    diag.two_shelf_feasible = two_shelf.is_feasible

    if two_shelf.shelf1_processors > m:
        diag.rejected_reason = "shelf S1 needs more than m processors"
        return None
    if not _leq(two_shelf.total_work, two_shelf.work_bound()):
        diag.rejected_reason = "total work exceeds m*d - W_S(d)"
        return None

    half = d / 2.0
    three_half = 1.5 * d
    three_quarter = 0.75 * d

    s1_alloc: Dict[MoldableJob, int] = dict(two_shelf.shelf1)
    s2_alloc: Dict[MoldableJob, int] = dict(two_shelf.shelf2)
    s0_entries: List[_S0Entry] = []
    piggyback: List[Tuple[MoldableJob, MoldableJob]] = []  # (host in S1, rider)
    cat2_pending: Optional[MoldableJob] = None

    def _time_in_s1(job: MoldableJob) -> float:
        return job.processing_time(s1_alloc[job])

    # ---------------------------------------------------------------- rules
    def apply_rules_i_ii(job: MoldableJob, procs: int) -> None:
        """Apply rules (i)/(ii) to a job destined for S1 with `procs` procs.

        Leaves the job either in S0 (entry appended), paired in S0, pending as
        the unpaired 1-processor job, or in S1.
        """
        nonlocal cat2_pending
        t = job.processing_time(procs)
        if _leq(t, three_quarter) and procs > 1:
            # rule (i): give up one processor, run alongside S1+S2
            s0_entries.append(_S0Entry(procs - 1, [(job, procs - 1, 0.0)]))
        elif _leq(t, three_quarter) and procs == 1:
            # rule (ii): pair 1-processor jobs of height <= 3d/4
            if cat2_pending is None:
                cat2_pending = job
                s1_alloc[job] = 1
            else:
                partner = cat2_pending
                cat2_pending = None
                s1_alloc.pop(partner, None)
                t_partner = partner.processing_time(1)
                s0_entries.append(_S0Entry(1, [(partner, 1, 0.0), (job, 1, t_partner)]))
        else:
            s1_alloc[job] = procs

    # Step A: scan shelf S1
    for job in list(s1_alloc.keys()):
        procs = s1_alloc.pop(job)
        apply_rules_i_ii(job, procs)

    # Step B: rule (iii) — pull S2 jobs alongside while processors are free
    def current_p0() -> int:
        return sum(e.procs for e in s0_entries) + len(piggyback)

    def current_p1() -> int:
        return sum(s1_alloc.values()) - len(piggyback)

    move_heap: List[Tuple[int, int, MoldableJob]] = []
    for idx, job in enumerate(s2_alloc.keys()):
        g = gamma_fn(job, three_half, m)
        # S2 jobs satisfy t_j(m) <= d/2 <= 3d/2, so g is always defined.
        assert g is not None
        move_heap.append((g, idx, job))
    heapq.heapify(move_heap)

    while move_heap:
        q = m - current_p0() - current_p1()
        need, _, job = move_heap[0]
        if need > q:
            break
        heapq.heappop(move_heap)
        if job not in s2_alloc:
            continue
        del s2_alloc[job]
        diag.moved_from_shelf2 += 1
        t = job.processing_time(need)
        if t > d:
            # runs alongside both shelves for up to 3d/2
            s0_entries.append(_S0Entry(need, [(job, need, 0.0)]))
        else:
            apply_rules_i_ii(job, need)

    # Resolve the unpaired category-2 job via the special case of rule (ii):
    # pair it on top of a tall 1-shelf job if their heights fit into 3d/2.
    if cat2_pending is not None:
        rider = cat2_pending
        rider_time = rider.processing_time(1)
        hosts = [j for j in s1_alloc if j is not rider and _time_in_s1(j) > three_quarter]
        host: Optional[MoldableJob] = None
        if hosts:
            if transform == "bucket":
                ratio = bucket_ratio if bucket_ratio is not None else 1.05
                # bucket hosts by geometrically rounded height and scan buckets
                # from the shortest upward (Section 4.3.3)
                buckets: Dict[int, List[MoldableJob]] = {}
                for j in hosts:
                    level = int(math.floor(math.log(max(_time_in_s1(j) / (d / 2.0), 1.0)) / math.log(ratio)))
                    buckets.setdefault(level, []).append(j)
                for level in sorted(buckets):
                    candidate = min(buckets[level], key=_time_in_s1)
                    if _leq(rider_time + _time_in_s1(candidate), three_half):
                        host = candidate
                        break
            else:
                candidate = min(hosts, key=_time_in_s1)
                if _leq(rider_time + _time_in_s1(candidate), three_half):
                    host = candidate
        if host is not None:
            piggyback.append((host, rider))
            s1_alloc.pop(rider, None)
            cat2_pending = None
            diag.piggybacked_jobs += 1
        else:
            # stays in S1 on one processor
            cat2_pending = None

    # ------------------------------------------------------- machine layout
    diag.shelf0_processors = current_p0()
    diag.shelf1_processors = sum(s1_alloc.values())
    diag.shelf2_processors = sum(s2_alloc.values())
    diag.shelf0_jobs = sum(len(e.placements) for e in s0_entries) + len(piggyback)
    diag.shelf1_jobs = len(s1_alloc)
    diag.shelf2_jobs = len(s2_alloc)

    if current_p0() + current_p1() > m:
        diag.rejected_reason = "shelves S0+S1 exceed m processors after transformation"
        return None

    assembler = _ScheduleAssembler(m, {"construction": "three_shelf", "d": d}, columnar)
    next_machine = 0

    def take(count: int) -> MachineSpan:
        nonlocal next_machine
        if next_machine + count > m:
            raise _LayoutOverflow()
        span = (next_machine, count)
        next_machine += count
        return span

    class _LayoutOverflow(Exception):
        pass

    riders_by_host: Dict[MoldableJob, MoldableJob] = {host: rider for host, rider in piggyback}

    try:
        # Shelf S0 columns
        for entry in s0_entries:
            span = take(entry.procs)
            for job, procs, start in entry.placements:
                assembler.add(job, start, [(span[0], procs)], job.processing_time(procs))

        # Shelf S1 jobs (including piggyback hosts)
        s1_spans: List[Tuple[MoldableJob, MachineSpan, float]] = []  # (job, span of *reusable* machines, busy_until)
        for job, procs in s1_alloc.items():
            span = take(procs)
            t = job.processing_time(procs)
            assembler.add(job, 0.0, [span], t)
            rider = riders_by_host.get(job)
            if rider is not None:
                # one machine of the host also runs the rider afterwards
                rider_time = rider.processing_time(1)
                assembler.add(rider, t, [(span[0], 1)], rider_time)
                if procs > 1:
                    s1_spans.append((job, (span[0] + 1, procs - 1), t))
            else:
                s1_spans.append((job, span, t))

        # Shelf S2 jobs — placed on machines *not* used by S0/piggyback,
        # finishing exactly at 3d/2.
        free_pool: List[Tuple[MachineSpan, float]] = [(span, busy) for _, span, busy in s1_spans]
        if next_machine < m:
            free_pool.append(((next_machine, m - next_machine), 0.0))
            next_machine = m
        pool_idx = 0
        for job, procs in s2_alloc.items():
            needed = procs
            spans: List[MachineSpan] = []
            while needed > 0:
                if pool_idx >= len(free_pool):
                    raise _LayoutOverflow()
                (first, count), busy = free_pool[pool_idx]
                taken = min(count, needed)
                spans.append((first, taken))
                if taken < count:
                    free_pool[pool_idx] = ((first + taken, count - taken), busy)
                else:
                    pool_idx += 1
                needed -= taken
            t = job.processing_time(procs)
            start = three_half - t
            assembler.add(job, start, spans, t)
    except _LayoutOverflow:
        diag.rejected_reason = "machine layout overflow (construction could not fit all shelves)"
        return None

    # ------------------------------------------------- small-job insertion
    # Next-fit over machine groups (Lemma 9): within a group all machines have
    # the same gap; a machine that cannot take the current job is discarded.
    small_ok = _insert_small_jobs(assembler, small, three_half)
    if not small_ok:
        diag.rejected_reason = "small jobs did not fit (work bound violated)"
        return None

    schedule = assembler.finish()
    schedule.metadata["shelves"] = {
        "s0_processors": diag.shelf0_processors,
        "s1_processors": diag.shelf1_processors,
        "s2_processors": diag.shelf2_processors,
    }
    return schedule


def _insert_small_jobs(
    assembler: _ScheduleAssembler,
    small: Sequence[MoldableJob],
    horizon: float,
) -> bool:
    """Next-fit insertion of the small jobs into per-machine gaps (Lemma 9).

    The gaps are recovered from the assembler's busy pieces with
    :func:`_machine_gap_index`: each maximal range of machines with identical
    occupancy forms a *group* whose machines share the same contiguous free
    gap.  The next-fit rule of the paper is followed literally: the current
    job goes onto the current machine if it still fits, otherwise the machine
    is discarded and the next machine of the group (or the next group) is
    tried; machines are never revisited.
    """
    if not small:
        return True
    # Recover, for every machine that appears in the assembly, its busy
    # intervals; machines not appearing are entirely free.  We avoid iterating
    # over all m machines by working span-wise.
    gaps = _machine_gap_index(assembler.pieces, assembler.m, horizon)
    # next-fit over the recovered gap groups
    idx = 0
    fill: Optional[float] = None
    span_offset = 0
    for job in small:
        t = job.processing_time(1)
        placed = False
        while idx < len(gaps):
            (first, count), gap_start, gap_end = gaps[idx]
            if fill is None:
                fill = gap_start
            if span_offset >= count:
                idx += 1
                span_offset = 0
                fill = None
                continue
            machine = first + span_offset
            if _leq(fill + t, gap_end):
                assembler.add(job, fill, [(machine, 1)], t)
                fill = fill + t
                placed = True
                break
            # discard this machine, move to the next in the group
            span_offset += 1
            fill = None
        if not placed:
            return False
    return True


def _machine_gap_index(
    busy_pieces: Sequence[Tuple[int, int, float, float]],
    m: int,
    horizon: float,
) -> List[Tuple[MachineSpan, float, float]]:
    """Compute contiguous free gaps ``(span, gap_start, gap_end)`` per group of
    identical machines.

    ``busy_pieces`` are ``(machine_first, machine_end, start, finish)``
    rectangles (one per placed span).  The shelf constructions guarantee each
    machine's busy time is a prefix ``[0, x)`` plus possibly a suffix
    ``[horizon - y, horizon)``; the gap is the middle.  We build the index by
    sweeping span boundaries.
    """
    boundaries: set[int] = {0, m}
    for first, end, _, _ in busy_pieces:
        boundaries.add(first)
        boundaries.add(end)
    cuts = sorted(boundaries)
    # For each elementary machine range, compute the union of busy intervals.
    pieces: List[Tuple[int, int, float, float]] = sorted(busy_pieces, key=lambda p: p[0])

    result: List[Tuple[MachineSpan, float, float]] = []
    active: List[Tuple[int, float, float]] = []  # (machine_end, start, finish)
    pi = 0
    for ci in range(len(cuts) - 1):
        seg_start, seg_end = cuts[ci], cuts[ci + 1]
        if seg_end <= seg_start:
            continue
        while pi < len(pieces) and pieces[pi][0] <= seg_start:
            active.append((pieces[pi][1], pieces[pi][2], pieces[pi][3]))
            pi += 1
        active = [a for a in active if a[0] > seg_start]
        busy = sorted((s, f) for _, s, f in active)
        # merge the prefix chain starting at time 0 to find the gap start,
        # then the gap ends at the first busy interval after the prefix.
        gap_start = 0.0
        gap_end = horizon
        for s, f in busy:
            if s <= gap_start + _ABS:
                gap_start = max(gap_start, f)
            else:
                gap_end = min(gap_end, s)
        if gap_end < gap_start:
            gap_end = gap_start
        result.append(((seg_start, seg_end - seg_start), gap_start, gap_end))
    return result
