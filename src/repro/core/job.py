"""Moldable job models.

A *moldable job* can be executed on an arbitrary number ``k`` of processors;
its processing time ``t_j(k)`` is accessed through an oracle (this module).
Throughout the library we follow the conventions of Jansen & Land (2018):

* processing times are non-increasing in ``k`` (more processors never hurt);
* a job is *monotone* if its work ``w_j(k) = k * t_j(k)`` is non-decreasing in
  ``k`` (parallelisation has an overhead).

All job classes in this module expose ``processing_time(k)`` as an O(1) oracle
so that instances with an astronomically large machine count ``m`` (compact
input encoding) can be handled in time polylogarithmic in ``m``.

For batched evaluation the classes additionally expose
:meth:`MoldableJob.times_for`, which maps a whole NumPy array of processor
counts to processing times in one vectorized pass.  The closed-form models
(:class:`AmdahlJob`, :class:`PowerLawJob`, :class:`CommunicationJob`,
:class:`TabulatedJob`, :class:`RigidJob`) implement it without any per-``k``
Python call; arbitrary :class:`OracleJob` callables fall back to a loop.  The
vectorized kernels are written so their float64 arithmetic is bit-for-bit
identical to the scalar ``processing_time`` path (same operations in the same
order — e.g. ``numpy.float_power`` instead of ``numpy.power``, which may
differ from CPython's ``**`` by one ulp).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "MoldableJob",
    "TabulatedJob",
    "OracleJob",
    "AmdahlJob",
    "PowerLawJob",
    "CommunicationJob",
    "RigidJob",
    "total_minimal_work",
    "max_sequential_time",
]


class MoldableJob(ABC):
    """Abstract moldable job.

    Subclasses implement :meth:`_time` returning the processing time on ``k``
    processors for ``k >= 1``.  The public entry point
    :meth:`processing_time` validates and memoises oracle calls; repeated
    evaluation of ``t_j(k)`` for the same ``k`` is O(1).

    Parameters
    ----------
    name:
        Identifier used in schedules, reports and error messages.
    """

    __slots__ = ("name", "_cache", "_cache_evictions")

    #: Maximum number of memoised ``(k, t_j(k))`` pairs per job.  When the
    #: memo is full it behaves as an LRU: hits refresh the entry's recency and
    #: the least-recently-used entry is evicted, so hot anchors like
    #: ``t_j(1)``/``t_j(m)`` survive long sweeps.  (Below capacity, hits skip
    #: the bookkeeping — lookups stay a bare dict get.)  Evictions are counted
    #: in :attr:`memo_stats`.
    MEMO_CAPACITY = 4096

    def __init__(self, name: str) -> None:
        self.name = str(name)
        self._cache: dict[int, float] = {}
        self._cache_evictions: int = 0

    # ------------------------------------------------------------------ API
    @abstractmethod
    def _time(self, k: int) -> float:
        """Return the processing time on ``k >= 1`` processors."""

    def processing_time(self, k: int) -> float:
        """Processing time ``t_j(k)`` on ``k`` processors.

        Raises
        ------
        ValueError
            If ``k`` is not a positive integer or the oracle returns a
            non-positive / non-finite value.
        """
        if k != int(k) or k < 1:
            raise ValueError(f"processor count must be a positive integer, got {k!r}")
        k = int(k)
        cache = self._cache
        cached = cache.get(k)
        if cached is not None:
            if len(cache) >= self.MEMO_CAPACITY:
                # LRU refresh (dicts preserve insertion order, so delete +
                # re-insert moves the entry to the newest position); skipped
                # below capacity where eviction can never bite.
                del cache[k]
                cache[k] = cached
            return cached
        value = float(self._time(k))
        if not math.isfinite(value) or value <= 0.0:
            raise ValueError(
                f"job {self.name!r}: oracle returned invalid processing time {value!r} for k={k}"
            )
        if len(cache) >= self.MEMO_CAPACITY:
            # Evict the least-recently-used entry instead of silently refusing
            # to memoise new counts forever.
            del cache[next(iter(cache))]
            self._cache_evictions += 1
        cache[k] = value
        return value

    def memo_stats(self) -> dict:
        """Instrumentation for the oracle memo: current size, capacity and the
        number of evictions performed so far."""
        return {
            "size": len(self._cache),
            "capacity": self.MEMO_CAPACITY,
            "evictions": self._cache_evictions,
        }

    # ------------------------------------------------------------ batched API
    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        """Vectorized oracle kernel: processing times for a float64 array of
        (already validated) processor counts.  Subclasses with closed-form
        models override this; the fallback loops over the scalar oracle."""
        return np.array([self.processing_time(int(k)) for k in ks], dtype=np.float64)

    def times_for(self, ks) -> np.ndarray:
        """Processing times ``t_j(k)`` for a whole array of processor counts.

        This is the batched counterpart of :meth:`processing_time`: one call
        evaluates the oracle for every entry of ``ks`` (a sequence or ndarray
        of positive integers) and returns a float64 array of the same length.
        Closed-form job models answer without any per-``k`` Python call, and
        the results are bit-for-bit identical to the scalar path.

        Unlike :meth:`processing_time`, values are not memoised (callers batch
        precisely to avoid per-``k`` bookkeeping) and closed-form kernels skip
        the per-value finiteness check — their constructor validation already
        guarantees positive finite times.
        """
        arr = np.asarray(ks)
        if arr.ndim != 1:
            raise ValueError(f"ks must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.all(arr == np.floor(arr)):
                raise ValueError("processor counts must be positive integers")
        if np.any(arr < 1):
            raise ValueError("processor counts must be positive integers")
        return self._times_batch(arr.astype(np.float64))

    def work(self, k: int) -> float:
        """Work ``w_j(k) = k * t_j(k)``."""
        return k * self.processing_time(k)

    def speedup(self, k: int) -> float:
        """Speedup ``s_j(k) = t_j(1) / t_j(k)``."""
        return self.processing_time(1) / self.processing_time(k)

    def efficiency(self, k: int) -> float:
        """Parallel efficiency ``s_j(k) / k`` (equals ``w_j(1)/w_j(k)``)."""
        return self.speedup(k) / k

    # --------------------------------------------------------------- dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class TabulatedJob(MoldableJob):
    """Job defined by an explicit table of processing times.

    ``times[k-1]`` is the processing time on ``k`` processors.  For processor
    counts beyond the table the last entry is used (the job stops speeding
    up), which preserves non-increasing processing times and non-decreasing
    work.

    This is the "classical" (non-compact) encoding used by most prior work,
    where the input explicitly lists ``t_j(1), ..., t_j(m)``.
    """

    __slots__ = ("times",)

    def __init__(self, name: str, times: Sequence[float]) -> None:
        super().__init__(name)
        if len(times) == 0:
            raise ValueError("times table must be non-empty")
        self.times = tuple(float(t) for t in times)
        if any(t <= 0 or not math.isfinite(t) for t in self.times):
            raise ValueError(f"job {name!r}: all tabulated times must be positive and finite")

    def _time(self, k: int) -> float:
        if k <= len(self.times):
            return self.times[k - 1]
        return self.times[-1]

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        table = np.asarray(self.times, dtype=np.float64)
        # clamp in float space *before* the int64 cast: a float64 k >= 2**63
        # (astronomical machine counts round up to exactly 2**63) overflows
        # ``astype(np.int64)`` into a negative index
        idx = np.minimum(ks, float(len(table))).astype(np.int64) - 1
        return table[idx]


class OracleJob(MoldableJob):
    """Job whose processing time is given by an arbitrary callable.

    This is the compact-encoding model of the paper: ``t_j(k)`` is computed on
    demand in O(1), so ``m`` only enters running times through ``log m``.

    Parameters
    ----------
    name:
        Job identifier.
    func:
        The scalar oracle ``k -> t_j(k)``.
    times_vectorized:
        Optional batched oracle: receives a float64 NumPy array of processor
        counts and returns the corresponding processing times as an array of
        the same length.  When supplied, the vectorized layer
        (:meth:`MoldableJob.times_for`, :class:`repro.perf.arrays.JobArrayBundle`
        and therefore every ``backend="vectorized"`` driver) calls it instead
        of looping over ``func`` — the user promises it is *bit-for-bit*
        consistent with ``func`` (same float operations in the same order),
        exactly like the built-in closed-form kernels.
    """

    __slots__ = ("func", "times_vectorized")

    def __init__(
        self,
        name: str,
        func: Callable[[int], float],
        times_vectorized: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        super().__init__(name)
        self.func = func
        self.times_vectorized = times_vectorized

    def _time(self, k: int) -> float:
        return self.func(k)

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        if self.times_vectorized is not None:
            return np.asarray(self.times_vectorized(ks), dtype=np.float64)
        return super()._times_batch(ks)


class AmdahlJob(MoldableJob):
    """Amdahl's-law job: ``t(k) = t1 * (f + (1-f)/k)``.

    ``f`` is the sequential fraction.  The speedup ``1/(f + (1-f)/k)`` is
    concave, hence the job is monotone (concavity implies monotony, see the
    paper's footnote 2).
    """

    __slots__ = ("t1", "serial_fraction")

    def __init__(self, name: str, t1: float, serial_fraction: float) -> None:
        super().__init__(name)
        if t1 <= 0:
            raise ValueError("t1 must be positive")
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError("serial_fraction must lie in [0, 1]")
        self.t1 = float(t1)
        self.serial_fraction = float(serial_fraction)

    def _time(self, k: int) -> float:
        f = self.serial_fraction
        return self.t1 * (f + (1.0 - f) / k)

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        f = self.serial_fraction
        return self.t1 * (f + (1.0 - f) / ks)


class PowerLawJob(MoldableJob):
    """Power-law job: ``t(k) = t1 / k**alpha`` with ``0 <= alpha <= 1``.

    ``alpha = 1`` gives perfect (linear) speedup, ``alpha = 0`` a sequential
    job.  The work ``k**(1-alpha) * t1`` is non-decreasing, so the job is
    monotone.
    """

    __slots__ = ("t1", "alpha")

    def __init__(self, name: str, t1: float, alpha: float) -> None:
        super().__init__(name)
        if t1 <= 0:
            raise ValueError("t1 must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        self.t1 = float(t1)
        self.alpha = float(alpha)

    def _time(self, k: int) -> float:
        return self.t1 / (k ** self.alpha)

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        # float_power, not power: numpy's power may differ from CPython's **
        # by one ulp, which would break scalar/vectorized bit-parity.
        return self.t1 / np.float_power(ks, self.alpha)


class CommunicationJob(MoldableJob):
    """Job with per-processor communication overhead.

    The raw model ``t1/k + c*(k-1)`` eventually slows down when adding
    processors, which would violate the non-increasing-time convention.  We
    therefore cap the useful parallelism at ``k* = argmin_k t1/k + c*(k-1)``
    and keep the processing time constant beyond ``k*``:

    * for ``k <= k*``: ``t(k) = t1/k + c*(k-1)`` (non-increasing by choice of
      ``k*``), work ``t1 + c*k*(k-1)`` (non-decreasing);
    * for ``k > k*``: ``t(k) = t(k*)`` (constant), work grows linearly.

    Both regimes give a monotone moldable job.
    """

    __slots__ = ("t1", "overhead", "k_star")

    def __init__(self, name: str, t1: float, overhead: float) -> None:
        super().__init__(name)
        if t1 <= 0:
            raise ValueError("t1 must be positive")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.t1 = float(t1)
        self.overhead = float(overhead)
        if overhead == 0:
            self.k_star = None  # unbounded perfect scaling of the 1/k term
        else:
            # t(k) decreasing as long as t1/(k(k+1)) >= c  <=>  k(k+1) <= t1/c
            k = int(math.floor((math.sqrt(1.0 + 4.0 * t1 / overhead) - 1.0) / 2.0))
            self.k_star = max(1, k)

    def _raw(self, k: int) -> float:
        return self.t1 / k + self.overhead * (k - 1)

    def _time(self, k: int) -> float:
        if self.k_star is None:
            return self.t1 / k
        k_eff = min(k, self.k_star)
        return self._raw(k_eff)

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        if self.k_star is None:
            return self.t1 / ks
        k_eff = np.minimum(ks, float(self.k_star))
        return self.t1 / k_eff + self.overhead * (k_eff - 1)


class RigidJob(MoldableJob):
    """A "rigid" parallel job disguised as a moldable one.

    The job needs at least ``size`` processors; on fewer processors its
    processing time is a large penalty value (it does not fit).  On ``size``
    or more processors the time is constant.  These jobs are **not** monotone
    (their work jumps down at ``k = size``); they model the reduction from
    scheduling parallel jobs mentioned in the paper's introduction and are
    used to exercise the non-monotone code paths and validation logic.
    """

    __slots__ = ("duration", "size", "penalty")

    def __init__(self, name: str, duration: float, size: int, penalty: float | None = None) -> None:
        super().__init__(name)
        if duration <= 0:
            raise ValueError("duration must be positive")
        if size < 1:
            raise ValueError("size must be >= 1")
        self.duration = float(duration)
        self.size = int(size)
        self.penalty = float(penalty) if penalty is not None else duration * 1e6

    def _time(self, k: int) -> float:
        if k >= self.size:
            return self.duration
        return self.penalty

    def _times_batch(self, ks: np.ndarray) -> np.ndarray:
        return np.where(ks >= self.size, self.duration, self.penalty)


# --------------------------------------------------------------------------
# Aggregate helpers
# --------------------------------------------------------------------------

def total_minimal_work(jobs: Iterable[MoldableJob]) -> float:
    """Sum of the single-processor works ``sum_j w_j(1) = sum_j t_j(1)``.

    For monotone jobs this is the minimum possible total work of any schedule
    and hence ``total_minimal_work(jobs) / m`` is a valid makespan lower
    bound.
    """
    return sum(job.processing_time(1) for job in jobs)


def max_sequential_time(jobs: Iterable[MoldableJob], m: int) -> float:
    """``max_j t_j(m)``: the largest processing time when every job gets all
    ``m`` machines.  A valid makespan lower bound for any schedule."""
    return max((job.processing_time(m) for job in jobs), default=0.0)
