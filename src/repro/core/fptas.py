"""The FPTAS for large machine counts (Section 3, Theorem 2) and the PTAS
dispatcher for the general case (Section 3.2).

The dual step is remarkably simple: allot ``gamma_j((1+eps)*d)`` processors to
every job and start all jobs at time 0.  If that requires more than ``m``
machines, reject.  The analysis (Lemma 4 + Lemma 5 of the paper) shows that
whenever ``m >= 8n/eps`` and a schedule of length ``d`` exists the allotment
fits, so the step is a `(1+eps)`-dual algorithm.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from .allotment import gamma
from .backend import resolve_backend
from .dual import DualSearchResult, dual_binary_search
from .exact_small import exact_schedule, exact_solver_applicable
from .job import MoldableJob
from .schedule import Schedule
from .validation import assert_valid_schedule

__all__ = [
    "fptas_machine_threshold",
    "fptas_dual",
    "fptas_schedule",
    "ptas_schedule",
]


def fptas_machine_threshold(n: int, eps: float) -> float:
    """The paper's condition for the FPTAS: ``m >= 8n/eps``."""
    return 8.0 * n / eps


def fptas_dual(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    eps: float,
    *,
    backend: str = "scalar",
    oracle=None,
    defer_build: bool = False,
) -> Optional[Union[Schedule, Callable[[], Schedule]]]:
    """One `(1+eps)`-dual step (Section 3): all jobs start at 0 with
    ``gamma_j((1+eps)d)`` processors, or reject.

    ``backend="vectorized"`` computes all γ-values in one lockstep batched
    binary search (bit-identical decision and schedule).  With
    ``defer_build=True`` (vectorized path only) an accepted step returns a
    zero-argument thunk instead of a built ``Schedule`` — the acceptance
    decision needs only the γ-sum, so :func:`~repro.core.dual.dual_binary_search`
    can skip materializing the intermediate schedules it would discard."""
    if d <= 0:
        return None
    threshold = (1.0 + eps) * d
    jobs = list(jobs)  # before resolve_backend: the oracle build iterates jobs
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    metadata = {"algorithm": "fptas_dual", "d": d, "eps": eps}
    if oracle is not None:
        # columnar fast path: γ-counts, prefix-sum machine offsets and the
        # final Schedule all stay in arrays (identical schedule to the loop).
        import numpy as np

        from ..perf.schedule_builder import schedule_from_arrays

        gammas = oracle.gamma_array(threshold)
        if len(gammas) and int(gammas.max()) > m:
            return None
        if sum(gammas.tolist()) > m:  # exact (Python int) total
            return None

        def build() -> Schedule:
            n = len(gammas)
            offsets = np.zeros(n, dtype=np.int64)
            if n > 1:
                np.cumsum(gammas[:-1], out=offsets[1:])
            return schedule_from_arrays(
                jobs,
                m,
                np.arange(n, dtype=np.int64),
                np.zeros(n, dtype=np.float64),
                offsets,
                gammas,
                metadata=metadata,
            )

        return build if defer_build else build()
    counts = []
    total = 0
    for job in jobs:
        g = gamma(job, threshold, m)
        if g is None:
            return None
        counts.append(g)
        total += g
        if total > m:
            return None
    schedule = Schedule(m=m, metadata=metadata)
    next_machine = 0
    for job, count in zip(jobs, counts):
        schedule.add(job, 0.0, [(next_machine, count)])
        next_machine += count
    return schedule


def fptas_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float,
    *,
    validate: bool = True,
    enforce_threshold: bool = True,
    backend: str = "vectorized",
    oracle=None,
) -> DualSearchResult:
    """`(1+eps)`-approximation for instances with ``m >= 8n/eps`` (Theorem 2).

    The internal dual accuracy and binary-search tolerance are set to
    ``eps/3`` each so that the overall factor ``(1+eps/3)^2 <= 1+eps`` holds
    for ``eps <= 1``.

    ``backend="vectorized"`` (default) shares one batched γ-oracle across the
    whole dual search; ``backend="scalar"`` is the bit-identical reference.
    ``oracle`` optionally supplies a pre-built
    :class:`repro.perf.oracle.BatchedOracle` (implies the vectorized
    backend; its probe instrumentation lands in the result's
    ``gamma_probes``).
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must lie in (0, 1]")
    jobs = list(jobs)
    n = len(jobs)
    if enforce_threshold and n > 0 and m < fptas_machine_threshold(n, eps):
        raise ValueError(
            f"the FPTAS requires m >= 8n/eps = {fptas_machine_threshold(n, eps):.1f}, got m={m}; "
            "use ptas_schedule() for the general case"
        )
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    inner = eps / 3.0
    result = dual_binary_search(
        jobs,
        m,
        lambda d: fptas_dual(
            jobs, m, d, inner, backend=backend, oracle=oracle, defer_build=True
        ),
        tolerance=inner,
        oracle=oracle,
    )
    result.schedule.metadata["algorithm"] = "fptas"
    result.schedule.metadata["eps"] = eps
    result.schedule.metadata["guarantee"] = 1.0 + eps
    result.schedule.metadata["backend"] = backend
    if validate and jobs:
        assert_valid_schedule(result.schedule, jobs, oracle=oracle)
    return result


def ptas_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float,
    *,
    validate: bool = True,
    exact_limit: int = 6,
    backend: str = "vectorized",
) -> DualSearchResult:
    """PTAS dispatcher for the general case (Section 3.2).

    * ``m >= 8n/eps`` — use the FPTAS (fully faithful to the paper);
    * otherwise, if the instance is tiny, solve it exactly by branch and bound;
    * otherwise fall back to the `(3/2+eps)` bounded-knapsack algorithm.

    The last branch substitutes the Jansen–Thöle PTAS the paper cites (see
    DESIGN.md, "Substitutions"); the returned schedule records the actual
    guarantee in ``schedule.metadata['guarantee']``.
    """
    jobs = list(jobs)
    n = len(jobs)
    if n == 0:
        return DualSearchResult(Schedule(m=m), 0.0, 0.0, 0, 0)
    if m >= fptas_machine_threshold(n, eps):
        return fptas_schedule(jobs, m, eps, validate=validate, backend=backend)
    if exact_solver_applicable(n, m, max_jobs=exact_limit):
        schedule = exact_schedule(jobs, m)
        schedule.metadata["algorithm"] = "ptas_exact"
        schedule.metadata["guarantee"] = 1.0
        if validate:
            assert_valid_schedule(schedule, jobs)
        return DualSearchResult(schedule, schedule.makespan, schedule.makespan, 0, 0)
    # documented substitution: the (3/2+eps) algorithm instead of Jansen-Thöle
    from .bounded_algorithm import bounded_schedule

    result = bounded_schedule(jobs, m, eps, validate=validate, backend=backend)
    result.schedule.metadata["algorithm"] = "ptas_fallback_bounded"
    result.schedule.metadata["guarantee"] = 1.5 + eps
    return result
