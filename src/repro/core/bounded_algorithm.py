"""Algorithm 3 (Section 4.3) and its linear-time variant (Section 4.3.3).

Compared to Algorithm 1 the knapsack gets *much* smaller: the big jobs are
first rounded into ``O(poly(1/eps) polylog(m))`` item **types**
(:mod:`repro.core.rounding`), the resulting *bounded* knapsack is converted to
a 0/1 instance with ``O(log m)`` container items per type, and that instance
is handed to the compressible-items solver (Algorithm 2).  The containers in
the solution are finally mapped back to concrete jobs.

The accuracy bookkeeping follows Lemma 16 / Lemma 19: with ``delta = eps/5``
and ``rho = (sqrt(1+delta)-1)/4`` the selected jobs are scheduled for the
inflated target ``d' = (1+delta)^2 d``, giving makespan at most
``(3/2)(1+delta)^2 d <= (3/2+eps) d``.

The ``transform="bucket"`` flag switches the three-shelf construction to the
bucketed piggyback search of Section 4.3.3, which removes the remaining
``O(n log n)`` term and makes the whole dual step linear in ``n``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..knapsack.bounded import assign_members, expand_bounded_items, selected_counts
from ..knapsack.compressible import solve_compressible_knapsack
from .allotment import gamma
from .backend import resolve_backend
from .dual import DualSearchResult, dual_binary_search
from .fptas import fptas_dual
from .job import MoldableJob
from .rounding import round_jobs_to_types
from .schedule import Schedule
from .shelves import build_three_shelf_schedule, partition_small_big
from .validation import assert_valid_schedule

__all__ = ["bounded_dual", "bounded_schedule"]

#: Same large-m dispatch as Algorithm 1 (Section 4.2.5).
LARGE_M_FACTOR = 16


def bounded_dual(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    eps: float,
    *,
    transform: str = "heap",
    backend: str = "scalar",
    oracle=None,
) -> Optional[Schedule]:
    """One `(3/2+eps)`-dual step of Algorithm 3 (or its linear variant).

    ``backend="vectorized"`` computes γ-allotments with lockstep batched
    binary searches and runs the container knapsack on the NumPy array engine
    (bit-identical results); ``oracle`` lets repeated dual calls share one
    :class:`repro.perf.oracle.BatchedOracle`.
    """
    if d <= 0:
        return None
    jobs = list(jobs)
    n = len(jobs)
    if n == 0:
        return Schedule(m=m)
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    gamma_fn = oracle.gamma if oracle is not None else gamma

    if m >= LARGE_M_FACTOR * n:
        schedule = fptas_dual(jobs, m, d, 0.5, backend=backend, oracle=oracle)
        if schedule is not None:
            schedule.metadata["algorithm"] = "bounded_dual(large_m)"
        return schedule

    delta = eps / 5.0
    _, big = partition_small_big(jobs, d)

    shelf1: List[MoldableJob] = []
    knapsack_jobs: List[MoldableJob] = []
    capacity = m
    for job in big:
        g_full = gamma_fn(job, d, m)
        if g_full is None:
            return None
        if gamma_fn(job, d / 2.0, m) is None:
            shelf1.append(job)
            capacity -= g_full
        else:
            knapsack_jobs.append(job)
    if capacity < 0:
        return None

    rho = None
    if knapsack_jobs:
        scheme = round_jobs_to_types(knapsack_jobs, m, d, delta, gamma_fn=gamma_fn)
        rho = scheme.params.rho
        containers = expand_bounded_items(scheme.types)
        compressible_keys = {c.key for c in containers if c.size >= 1.0 / rho}
        n_bar = max(1, int(math.floor(capacity * rho / (1.0 - rho))) + 1)
        solution = solve_compressible_knapsack(
            containers,
            compressible_keys,
            capacity,
            rho,
            alpha_min=1.0 / rho,
            beta_max=float(capacity),
            n_bar=n_bar,
            backend=backend,
        )
        counts = selected_counts(solution.items)
        shelf1.extend(assign_members(counts, scheme.types))
    else:
        scheme = None

    d_prime = (1.0 + delta) ** 2 * d
    schedule = build_three_shelf_schedule(
        jobs,
        m,
        d_prime,
        shelf1,
        transform=transform,
        bucket_ratio=(1.0 + 4.0 * rho) if rho is not None else None,
        gamma_fn=gamma_fn,
        columnar=backend == "vectorized",
    )
    if schedule is not None:
        schedule.metadata["algorithm"] = f"bounded_dual({transform})"
        schedule.metadata["d"] = d
        schedule.metadata["d_prime"] = d_prime
        if scheme is not None:
            schedule.metadata["num_item_types"] = scheme.num_types
    return schedule


def bounded_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float = 0.1,
    *,
    transform: str = "heap",
    validate: bool = True,
    backend: str = "vectorized",
) -> DualSearchResult:
    """`(3/2+eps)`-approximation via Algorithm 3 (``transform="heap"``) or the
    linear-time variant of Section 4.3.3 (``transform="bucket"``).

    ``backend="vectorized"`` (default) shares one batched γ-oracle across the
    whole dual search; ``backend="scalar"`` is the bit-identical reference.
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must lie in (0, 1]")
    jobs = list(jobs)
    backend, oracle = resolve_backend(jobs, m, backend, None)
    # (3/2)(1+eps/10)^2 (1+eps/4) <= 3/2 + eps for eps <= 1: the dual step gets
    # eps/2 (of which delta = eps/10) and the binary search eps/4.
    dual_eps = eps / 2.0
    tolerance = eps / 4.0
    result = dual_binary_search(
        jobs,
        m,
        lambda d: bounded_dual(jobs, m, d, dual_eps, transform=transform, backend=backend, oracle=oracle),
        tolerance=tolerance,
        oracle=oracle,
    )
    result.schedule.metadata["algorithm"] = "bounded" if transform == "heap" else "bounded_linear"
    result.schedule.metadata["eps"] = eps
    result.schedule.metadata["guarantee"] = 1.5 + eps
    result.schedule.metadata["backend"] = backend
    if validate and jobs:
        assert_valid_schedule(result.schedule, jobs, oracle=oracle)
    return result
