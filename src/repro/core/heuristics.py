"""Simple practical heuristics (baselines not from the paper).

These are the kinds of rules-of-thumb a cluster operator might use without the
paper's machinery.  They carry no worst-case guarantee better than the trivial
ones, but they are useful reference points in the quality studies and in the
examples:

* :func:`sequential_baseline` — every job on one processor, list-scheduled
  (minimises total work, ignores parallelism);
* :func:`max_parallelism_baseline` — every job on as many processors as keep
  its parallel efficiency above a threshold, longest-processing-time first;
* :func:`lpt_moldable` — a moldable LPT heuristic: allot each job the fewest
  processors that bring it under the current area bound, then list-schedule
  longest-first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .allotment import Allotment, gamma
from .bounds import trivial_lower_bound
from .job import MoldableJob
from .list_scheduling import list_schedule
from .schedule import Schedule

__all__ = ["sequential_baseline", "max_parallelism_baseline", "lpt_moldable"]


def sequential_baseline(jobs: Sequence[MoldableJob], m: int) -> Schedule:
    """Every job runs on a single processor; jobs are list-scheduled
    longest-first.  Minimises total work but ignores all parallelism."""
    jobs = list(jobs)
    allot = Allotment({job: 1 for job in jobs})
    order = sorted(jobs, key=lambda j: -j.processing_time(1))
    schedule = list_schedule(jobs, allot, m, order=order) if jobs else Schedule(m=m)
    schedule.metadata["algorithm"] = "sequential_baseline"
    return schedule


def max_parallelism_baseline(
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    efficiency_threshold: float = 0.5,
) -> Schedule:
    """Give each job the largest processor count whose parallel efficiency is
    still at least ``efficiency_threshold`` (capped at ``m``), then
    list-schedule longest-first.

    For monotone jobs the efficiency ``speedup(k)/k`` is non-increasing in
    ``k``, so the largest admissible count is found by binary search.
    """
    if not 0 < efficiency_threshold <= 1:
        raise ValueError("efficiency_threshold must lie in (0, 1]")
    jobs = list(jobs)
    counts = {}
    for job in jobs:
        lo, hi = 1, m  # efficiency(1) = 1 >= threshold always
        while hi - lo > 0:
            mid = (lo + hi + 1) // 2
            if job.efficiency(mid) >= efficiency_threshold:
                lo = mid
            else:
                hi = mid - 1
        counts[job] = lo
    allot = Allotment(counts)
    order = sorted(jobs, key=lambda j: -j.processing_time(allot[j]))
    schedule = list_schedule(jobs, allot, m, order=order) if jobs else Schedule(m=m)
    schedule.metadata["algorithm"] = "max_parallelism_baseline"
    schedule.metadata["efficiency_threshold"] = efficiency_threshold
    return schedule


def lpt_moldable(jobs: Sequence[MoldableJob], m: int, *, target: Optional[float] = None) -> Schedule:
    """A moldable longest-processing-time heuristic.

    Each job is allotted ``gamma_j(target)`` processors — the fewest that bring
    it below the target (defaulting to twice the trivial lower bound, which is
    always achievable) — and jobs are list-scheduled longest-first.
    """
    jobs = list(jobs)
    if not jobs:
        return Schedule(m=m, metadata={"algorithm": "lpt_moldable"})
    if target is None:
        target = 2.0 * trivial_lower_bound(jobs, m)
    counts = {}
    for job in jobs:
        g = gamma(job, target, m)
        counts[job] = g if g is not None else m
    allot = Allotment(counts)
    order = sorted(jobs, key=lambda j: -j.processing_time(allot[j]))
    schedule = list_schedule(jobs, allot, m, order=order)
    schedule.metadata["algorithm"] = "lpt_moldable"
    schedule.metadata["target"] = target
    return schedule
