"""The Mounié–Rapine–Trystram `(3/2)`-dual algorithm (Section 4.1).

This is the paper's starting point and the `O(n*m)` baseline against which the
accelerated algorithms are compared: the shelf-1 selection is an *exact* 0/1
knapsack over the big jobs (size ``gamma_j(d)``, profit ``v_j(d)``, capacity
``m``), solved by dynamic programming in time proportional to ``m``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..knapsack.dp import solve_knapsack, solve_knapsack_dense
from ..knapsack.items import KnapsackItem
from .allotment import gamma
from .backend import resolve_backend
from .dual import DualSearchResult, dual_binary_search
from .job import MoldableJob
from .schedule import Schedule
from .shelves import build_three_shelf_schedule, partition_small_big, shelf_profit
from .validation import assert_valid_schedule

__all__ = ["mrt_dual", "mrt_schedule"]


#: Above this capacity the exact knapsack falls back from the dense O(n*m)
#: table to the dominance-list engine (same optimum, far less memory).
DENSE_KNAPSACK_LIMIT = 1 << 17


def mrt_dual(
    jobs: Sequence[MoldableJob],
    m: int,
    d: float,
    *,
    knapsack: str = "auto",
    backend: str = "scalar",
    oracle=None,
) -> Optional[Schedule]:
    """One dual step of the MRT algorithm: schedule with makespan ``<= 3d/2``
    or reject the target ``d``.

    Rejection is correct in the dual sense: if a schedule with makespan ``d``
    exists, the step never rejects (Lemma 6).

    Parameters
    ----------
    knapsack:
        ``"dense"`` uses the classical ``O(n*m)`` table DP (the running time
        the paper attributes to the original algorithm), ``"pairs"`` the
        dominance-list DP (same optimum), ``"auto"`` picks dense for moderate
        capacities and pairs otherwise.
    backend:
        ``"vectorized"`` evaluates γ-allotments with lockstep batched binary
        searches and sweeps the knapsack DP rows with NumPy;``"scalar"`` is
        the pure-Python reference path.  Results are bit-for-bit identical.
    oracle:
        An existing :class:`repro.perf.oracle.BatchedOracle` for
        ``(jobs, m)``; implies (and is required by) the vectorized backend
        across repeated dual calls.
    """
    if d <= 0:
        return None
    jobs = list(jobs)  # before resolve_backend: the oracle build iterates jobs
    backend, oracle = resolve_backend(jobs, m, backend, oracle)
    gamma_fn = oracle.gamma if oracle is not None else gamma
    _, big = partition_small_big(jobs, d)

    # Jobs that cannot finish within d even on all machines force rejection.
    shelf1: List[MoldableJob] = []
    knapsack_jobs: List[MoldableJob] = []
    capacity = m
    for job in big:
        g_full = gamma_fn(job, d, m)
        if g_full is None:
            return None
        g_half = gamma_fn(job, d / 2.0, m)
        if g_half is None:
            # must run in shelf S1 (cannot fit the d/2 shelf at all)
            shelf1.append(job)
            capacity -= g_full
        else:
            knapsack_jobs.append(job)
    if capacity < 0:
        return None

    items = [
        KnapsackItem(
            key=idx,
            size=gamma_fn(job, d, m),
            profit=shelf_profit(job, d, m, gamma_fn=gamma_fn),
            payload=job,
        )
        for idx, job in enumerate(knapsack_jobs)
    ]
    if knapsack not in ("auto", "dense", "pairs"):
        raise ValueError(f"unknown knapsack engine {knapsack!r}")
    use_dense = knapsack == "dense" or (knapsack == "auto" and capacity <= DENSE_KNAPSACK_LIMIT)
    if use_dense:
        _, chosen = solve_knapsack_dense(items, capacity, backend=backend)
    else:
        _, chosen = solve_knapsack(items, capacity, backend=backend)
    shelf1.extend(item.payload for item in chosen)

    return build_three_shelf_schedule(
        jobs, m, d, shelf1, gamma_fn=gamma_fn, columnar=backend == "vectorized"
    )


def mrt_schedule(
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float = 0.1,
    *,
    validate: bool = True,
    backend: str = "vectorized",
) -> DualSearchResult:
    """`(3/2 + eps)`-approximation via the MRT dual algorithm and binary search.

    The binary-search tolerance is chosen so that the final makespan is at most
    ``(3/2)(1 + 2*eps/3) <= 3/2 + eps`` times the optimum.

    ``backend="vectorized"`` (default) shares one batched γ-oracle across the
    whole dual search, so successive thresholds reuse earlier γ-arrays as
    bisection brackets; ``backend="scalar"`` is the bit-identical reference.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    jobs = list(jobs)
    backend, oracle = resolve_backend(jobs, m, backend, None)
    tolerance = 2.0 * eps / 3.0
    result = dual_binary_search(
        jobs,
        m,
        lambda d: mrt_dual(jobs, m, d, backend=backend, oracle=oracle),
        tolerance=tolerance,
        oracle=oracle,
    )
    result.schedule.metadata["algorithm"] = "mrt"
    result.schedule.metadata["eps"] = eps
    result.schedule.metadata["guarantee"] = 1.5 + eps
    result.schedule.metadata["backend"] = backend
    if validate and jobs:
        assert_valid_schedule(result.schedule, jobs, oracle=oracle)
    return result
