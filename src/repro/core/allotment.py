"""Allotments and the canonical processor count :func:`gamma`.

An *allotment* fixes, for every job, the number of processors it will use.
The paper's algorithms repeatedly need the *canonical* allotment for a time
threshold ``t``::

    gamma_j(t) = min { p in [m] : t_j(p) <= t }

i.e. the least number of processors on which job ``j`` finishes within ``t``.
Because processing times are non-increasing, ``gamma_j(t)`` is found by binary
search in ``O(log m)`` oracle calls (the key to running times polylogarithmic
in ``m``).

:func:`gamma_batch` computes the γ-values of *all* jobs at once by running the
``n`` binary searches in lockstep on NumPy arrays — one vectorized oracle
evaluation per bisection level, ``O(log m)`` array operations total instead of
``n log m`` Python calls (see :mod:`repro.perf.oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence

from .job import MoldableJob

__all__ = ["gamma", "gamma_batch", "Allotment", "canonical_allotment"]


def gamma(job: MoldableJob, threshold: float, m: int) -> Optional[int]:
    """Return ``gamma_j(threshold)`` or ``None`` if even ``m`` processors are
    not enough (``t_j(m) > threshold``).

    Parameters
    ----------
    job:
        The moldable job (non-increasing processing times assumed).
    threshold:
        Target processing time ``t``.
    m:
        Number of available machines.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if threshold <= 0:
        return None
    if job.processing_time(m) > threshold:
        return None
    if job.processing_time(1) <= threshold:
        return 1
    lo, hi = 1, m  # t(lo) > threshold, t(hi) <= threshold
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if job.processing_time(mid) <= threshold:
            hi = mid
        else:
            lo = mid
    return hi


def gamma_batch(jobs: Sequence[MoldableJob], threshold: float, m: int, *, oracle=None):
    """``gamma_j(threshold)`` for every job, computed in lockstep on arrays.

    Returns an int64 NumPy array aligned with ``jobs``; entries equal to
    ``m + 1`` mark jobs for which even ``m`` processors are not enough (where
    :func:`gamma` returns ``None``).  Results are bit-for-bit identical to the
    scalar binary search.

    Parameters
    ----------
    oracle:
        An existing :class:`repro.perf.oracle.BatchedOracle` for ``(jobs, m)``
        to reuse its per-threshold γ-cache; a transient one is built when
        omitted.
    """
    if oracle is None:
        from ..perf.oracle import BatchedOracle

        oracle = BatchedOracle(jobs, m)
    else:
        if oracle.m != int(m):
            raise ValueError(f"oracle was built for m={oracle.m}, got m={m}")
        if len(jobs) != oracle.n or any(a is not b for a, b in zip(jobs, oracle.jobs)):
            raise ValueError("oracle was built for a different job list")
    return oracle.gamma_array(threshold)


def canonical_allotment(jobs: Iterable[MoldableJob], threshold: float, m: int) -> Optional["Allotment"]:
    """Build the canonical allotment ``a_j = gamma_j(threshold)`` for all jobs.

    Returns ``None`` if any job cannot meet the threshold even on all ``m``
    machines.
    """
    counts: Dict[MoldableJob, int] = {}
    for job in jobs:
        g = gamma(job, threshold, m)
        if g is None:
            return None
        counts[job] = g
    return Allotment(counts)


@dataclass
class Allotment:
    """A mapping from jobs to processor counts.

    The class is a thin, validated wrapper around a ``dict`` with convenience
    aggregates used throughout the algorithms (total work, total processors,
    longest processing time).
    """

    counts: Dict[MoldableJob, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for job, k in self.counts.items():
            if k < 1 or k != int(k):
                raise ValueError(f"allotment for job {job.name!r} must be a positive integer, got {k!r}")
            self.counts[job] = int(k)

    # -------------------------------------------------------------- mapping
    def __getitem__(self, job: MoldableJob) -> int:
        return self.counts[job]

    def __setitem__(self, job: MoldableJob, k: int) -> None:
        if k < 1:
            raise ValueError("allotment must be >= 1")
        self.counts[job] = int(k)

    def __contains__(self, job: MoldableJob) -> bool:
        return job in self.counts

    def __iter__(self) -> Iterator[MoldableJob]:
        return iter(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def items(self):
        return self.counts.items()

    def get(self, job: MoldableJob, default: Optional[int] = None) -> Optional[int]:
        return self.counts.get(job, default)

    def copy(self) -> "Allotment":
        return Allotment(dict(self.counts))

    # ----------------------------------------------------------- aggregates
    def total_processors(self) -> int:
        """``sum_j a_j`` — processors needed to run all jobs simultaneously."""
        return sum(self.counts.values())

    def total_work(self) -> float:
        """``sum_j w_j(a_j)``."""
        return sum(job.work(k) for job, k in self.counts.items())

    def max_time(self) -> float:
        """``max_j t_j(a_j)``."""
        return max((job.processing_time(k) for job, k in self.counts.items()), default=0.0)

    def average_load(self, m: int) -> float:
        """``total_work / m`` — the area lower bound induced by this allotment."""
        if m < 1:
            raise ValueError("m must be >= 1")
        return self.total_work() / m

    @classmethod
    def from_mapping(cls, mapping: Mapping[MoldableJob, int]) -> "Allotment":
        return cls(dict(mapping))

    @classmethod
    def from_trusted_counts(cls, counts: Dict[MoldableJob, int]) -> "Allotment":
        """Wrap an already-validated ``{job: processors}`` dict without the
        per-entry re-validation loop (perf hook for the vectorized paths,
        whose γ-arrays are positive integers by construction)."""
        allot = cls.__new__(cls)
        allot.counts = counts
        return allot
