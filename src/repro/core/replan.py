"""Shared incremental re-planning core: commit / drain / re-plan at a barrier.

Two production loops need the same epoch machinery:

* the fault-recovery loop (:func:`repro.resilience.recovery.recover_with_faults`)
  re-plans the surviving pending set whenever the fault state changes;
* the online arrival scheduler (:class:`repro.online.OnlineScheduler`)
  re-plans the waiting set whenever new jobs are released.

Both are the same shape — *commit what ran, keep what's running, re-plan the
rest at a barrier* — so the machinery lives here once:

1. **Partition** (:meth:`ReplanState.commit_epoch`): at epoch time ``tau``,
   entries that already ended are committed (completed work is never redone),
   entries that started before ``tau`` keep *draining* to completion, and
   entries that had not started yet fall back into the pending pool.
2. **Re-plan** (:meth:`ReplanState.replan_pending`): every pending job not
   currently draining is re-solved via
   :func:`~repro.core.scheduler.schedule_moldable` on the machines available
   at the epoch, with the segment anchored at the *barrier* — the latest end
   among the draining entries (or ``tau`` itself when nothing drains).  The
   per-epoch algorithm regime is re-checked (:func:`segment_algorithm`) so a
   caller-pinned ``fptas``/``exact`` falls back deterministically when the
   epoch leaves its applicability window.
3. **Remap** (:func:`remap_spans`): segment schedules are solved on an
   abstract contiguous machine set ``[0, m_avail)`` and remapped
   span-by-span onto the physical available intervals by the order-preserving
   bijection — plain integer arithmetic, exact at astronomically large ``m``.
4. **Stitch** (:meth:`ReplanState.stitch`): committed entries concatenate
   into one :class:`~repro.core.schedule.Schedule`; because every segment
   starts at or after its barrier and all earlier work ends at or before it,
   the stitched schedule is conflict-free by construction and passes the
   unmodified validator.

Consecutive re-plans share γ-search work: each epoch's
:class:`~repro.perf.oracle.BatchedOracle` is built with the caller's
``warm_start`` flag and primed from the previous epoch's oracle
(:meth:`~repro.perf.oracle.BatchedOracle.prime_from`), so the dual search
starts from the cached thresholds of the epoch before it.  The state is
deterministic: identical epoch sequences produce identical stitched schedules
under every backend (the differential ``faulty`` and ``online`` families pin
this bit for bit).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.backend import MAX_VECTORIZED_M
from repro.core.fptas import fptas_machine_threshold
from repro.core.job import MoldableJob
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_moldable
from repro.perf.oracle import BatchedOracle

__all__ = [
    "EPOCH_EPS",
    "ReplanError",
    "PlacedEntry",
    "EpochPartition",
    "ReplanOutcome",
    "ReplanState",
    "availability_prefix",
    "remap_spans",
    "segment_algorithm",
]

Interval = Tuple[int, int]

#: Absolute tolerance for "ends at the epoch" / "starts at the epoch" ties.
EPOCH_EPS = 1e-9


class ReplanError(RuntimeError):
    """Re-planning is impossible (e.g. no machine available) or produced an
    internally inconsistent state."""


@dataclass
class PlacedEntry:
    """An absolutely-placed entry awaiting completion."""

    job: MoldableJob
    start: float
    spans: List[Interval]
    duration: float
    duration_override: Optional[float]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def processors(self) -> int:
        return sum(count for _, count in self.spans)


@dataclass(frozen=True)
class EpochPartition:
    """:meth:`ReplanState.commit_epoch`'s split of the in-flight entries."""

    #: ended at or before the epoch — already committed by ``commit_epoch``
    finished: List[PlacedEntry]
    #: started strictly before the epoch and still running — candidates to drain
    running: List[PlacedEntry]
    #: placed at or after the epoch but not started — returned to the pool
    queued: List[PlacedEntry]


@dataclass(frozen=True)
class ReplanOutcome:
    """What one :meth:`ReplanState.replan_pending` call did."""

    barrier: float
    m_avail: int
    replanned: int
    latency: float
    algorithm: Optional[str]


def availability_prefix(available: Sequence[Interval]) -> List[int]:
    """``prefix[i]`` = number of available machines before interval ``i``
    (one extra trailing entry holding the total)."""
    prefix = [0]
    for first, end in available:
        prefix.append(prefix[-1] + (end - first))
    return prefix


def remap_spans(
    spans: Sequence[Interval],
    available: Sequence[Interval],
    prefix: Sequence[int],
    *,
    error: Type[Exception] = ReplanError,
) -> List[Interval]:
    """Map abstract contiguous-machine spans onto the physical available
    intervals.

    ``available`` is the sorted disjoint interval list of up machines;
    ``prefix[i]`` is the number of available machines before interval ``i``.
    The mapping is the order-preserving bijection from abstract position
    ``p`` to the ``p``-th available physical machine, so disjoint abstract
    spans map to disjoint physical machine sets (possibly split into several
    physical spans each).
    """
    out: List[Interval] = []
    for first, count in spans:
        pos = first
        remaining = count
        i = bisect_right(prefix, pos) - 1
        while remaining > 0:
            if i >= len(available):
                raise error(
                    f"abstract span ({first}, {count}) exceeds the available machines"
                )
            base, end = available[i]
            offset = pos - prefix[i]
            width = (end - base) - offset
            if width <= 0:
                raise error(
                    f"abstract span ({first}, {count}) exceeds the available machines"
                )
            take = min(remaining, width)
            out.append((base + offset, base + offset + take))
            remaining -= take
            pos += take
            i += 1
    # Schedule spans are (first, count) pairs; merge adjacency for stability.
    merged: List[Interval] = []
    for a, b in out:
        if merged and merged[-1][1] == a:
            merged[-1] = (merged[-1][0], b)
        else:
            merged.append((a, b))
    return [(a, b - a) for a, b in merged]


def segment_algorithm(algorithm: str, n: int, m_avail: int, eps: float) -> str:
    """Per-epoch algorithm choice: respect the caller's pick where it stays
    applicable on the epoch's machine set, fall back deterministically
    otherwise (identically across backends, preserving bit-equality)."""
    if algorithm == "auto":
        return "auto"  # schedule_moldable re-derives the regime per segment
    if algorithm == "fptas" and m_avail < fptas_machine_threshold(n, eps):
        return "bounded"
    if algorithm == "exact" and (n > 7 or m_avail > 8):
        return "bounded"
    return algorithm


@dataclass
class ReplanState:
    """Mutable state of one incremental re-planning run.

    The job pool may be seeded up front (recovery: every job exists at t=0)
    or grown over time via :meth:`add_jobs` (online arrivals).  ``jobs``
    preserves insertion order, and re-plans always iterate it in that order —
    segment solves are order-sensitive in tie-breaking, so this is part of
    the bit-identity contract.

    ``error`` is the exception class raised on impossible states, letting
    clients surface their own domain error (recovery raises
    ``RecoveryError``) without wrapping.
    """

    m: int
    eps: float = 0.1
    algorithm: str = "auto"
    backend: str = "vectorized"
    list_backend: Optional[str] = None
    warm_start: bool = True
    error: Type[Exception] = ReplanError

    jobs: List[MoldableJob] = field(default_factory=list)
    pending: Dict[int, MoldableJob] = field(default_factory=dict)
    committed: List[PlacedEntry] = field(default_factory=list)
    current: List[PlacedEntry] = field(default_factory=list)
    replan_latencies: List[float] = field(default_factory=list)
    gamma_probes: Optional[int] = None
    prev_oracle: Optional[BatchedOracle] = None

    def __post_init__(self) -> None:
        self.gamma_probes = 0 if self.backend == "vectorized" else None

    # -- pool management ----------------------------------------------------

    def add_jobs(self, jobs: Sequence[MoldableJob]) -> None:
        """Add newly-arrived jobs to the pending pool (insertion order is the
        re-plan order)."""
        for job in jobs:
            self.jobs.append(job)
            self.pending[id(job)] = job

    def drop_job(self, job: MoldableJob) -> bool:
        """Remove a pending job from the pool (e.g. a kill); returns whether
        it was still pending."""
        return self.pending.pop(id(job), None) is not None

    def place_existing(self, entries: Sequence) -> None:
        """Seed the in-flight set from an existing schedule's entries (the
        recovery loop starts from the complete fault-free plan)."""
        self.current = [
            PlacedEntry(
                job=e.job,
                start=e.start,
                spans=list(e.spans),
                duration=e.duration,
                duration_override=e.duration_override,
            )
            for e in entries
        ]

    # -- the epoch loop -----------------------------------------------------

    def commit_epoch(self, tau: float) -> EpochPartition:
        """Commit every in-flight entry that ended by ``tau`` and partition
        the rest into running (started, still going) and queued (not yet
        started) entries.

        The caller decides which running entries actually *continue* (the
        recovery loop drops casualties and kills first) and passes the
        survivors to :meth:`replan_pending`; queued entries implicitly return
        to the pool because their jobs are still pending.
        """
        finished = [p for p in self.current if p.end <= tau + EPOCH_EPS]
        for p in finished:
            self.committed.append(p)
            self.pending.pop(id(p.job), None)
        live = [p for p in self.current if p.end > tau + EPOCH_EPS]
        running = [p for p in live if p.start < tau - EPOCH_EPS]
        queued = [p for p in live if p.start >= tau - EPOCH_EPS]
        return EpochPartition(finished=finished, running=running, queued=queued)

    def replan_pending(
        self,
        tau: float,
        continuing: Sequence[PlacedEntry],
        available: Sequence[Interval],
    ) -> ReplanOutcome:
        """Re-plan every pending job not draining in ``continuing`` on the
        ``available`` machine intervals, anchored at the drain barrier.

        The segment solve reuses γ-search work when the backend supports it:
        a fresh :class:`~repro.perf.oracle.BatchedOracle` is built with this
        state's ``warm_start`` flag and primed from the previous epoch's
        oracle, and its probe count lands in :attr:`gamma_probes`.  After the
        call, :attr:`current` holds the continuing entries plus the freshly
        placed segment.
        """
        draining = {id(p.job) for p in continuing}
        to_plan = [j for j in self.jobs if id(j) in self.pending and id(j) not in draining]
        m_avail = sum(end - first for first, end in available)
        if not to_plan:
            self.current = list(continuing)
            return ReplanOutcome(
                barrier=tau, m_avail=m_avail, replanned=0, latency=0.0, algorithm=None
            )
        if m_avail < 1:
            raise self.error(
                f"no machines available at epoch {tau} but {len(to_plan)} jobs are pending"
            )
        barrier = max([tau] + [p.end for p in continuing])
        seg_algorithm = segment_algorithm(self.algorithm, len(to_plan), m_avail, self.eps)
        oracle: Optional[BatchedOracle] = None
        # only two_approx / fptas (and auto, which may resolve to fptas)
        # accept an external oracle — don't build one the driver ignores
        if (
            self.backend == "vectorized"
            and m_avail <= MAX_VECTORIZED_M
            and seg_algorithm in ("two_approx", "fptas", "auto")
        ):
            oracle = BatchedOracle(to_plan, m_avail, warm_start=self.warm_start)
            if self.warm_start and self.prev_oracle is not None:
                oracle.prime_from(self.prev_oracle)
        t0 = perf_counter()
        segment = schedule_moldable(
            to_plan,
            m_avail,
            self.eps,
            algorithm=seg_algorithm,
            validate=False,
            backend=self.backend,
            oracle=oracle,
            list_backend=self.list_backend,
        )
        latency = perf_counter() - t0
        self.replan_latencies.append(latency)
        if oracle is not None:
            self.gamma_probes = (self.gamma_probes or 0) + oracle.gamma_probes
            self.prev_oracle = oracle
        prefix = availability_prefix(available)
        placed = [
            PlacedEntry(
                job=e.job,
                start=barrier + e.start,
                spans=remap_spans(e.spans, available, prefix, error=self.error),
                duration=e.duration,
                duration_override=e.duration_override,
            )
            for e in segment.schedule.entries
        ]
        self.current = list(continuing) + placed
        return ReplanOutcome(
            barrier=barrier,
            m_avail=m_avail,
            replanned=len(to_plan),
            latency=latency,
            algorithm=seg_algorithm,
        )

    # -- finalisation -------------------------------------------------------

    def finish(self) -> None:
        """Commit everything still in flight (after the last epoch every
        placed entry runs to completion) and check nothing was dropped."""
        for p in self.current:
            self.committed.append(p)
            self.pending.pop(id(p.job), None)
        self.current = []
        if self.pending:
            raise self.error(
                f"jobs left unplanned after all epochs: "
                f"{sorted(j.name for j in self.pending.values())}"
            )

    def stitch(self, *, metadata: Optional[dict] = None) -> Schedule:
        """Concatenate the committed entries into one schedule."""
        stitched = Schedule(m=self.m, metadata=metadata or {})
        for p in self.committed:
            stitched.add(p.job, p.start, p.spans, duration_override=p.duration_override)
        return stitched
