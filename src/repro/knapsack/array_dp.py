"""Array (NumPy) engines for the dominance-list knapsack DPs.

:class:`ArrayDominanceList` is the vectorized counterpart of
:class:`repro.knapsack.dp.DominanceList`: the undominated ``(profit, size)``
states live in flat float64 arrays and adding an item is a constant number of
whole-array operations (shift, merge via a stable lexicographic sort, prune
via a running maximum) instead of a Python loop over states.  Backtracking
information is kept in an append-only node pool (``item``, ``parent`` per
state), so solutions are recovered exactly like the scalar engine's parent
pointers.

Pruning semantics match the scalar engine: a state is kept only if its profit
exceeds the running maximum of all earlier states (in ``(size, -profit)``
order, earlier-engine-order first) by more than ``1e-15``, and among states
with (near-)identical sizes the most profitable survives.  On exact profit /
size ties — the only ties that occur with real work values — the two engines
keep identical states, so the solvers below are drop-in replacements for
:func:`repro.knapsack.dp.solve_knapsack`,
:func:`repro.knapsack.multi.solve_knapsack_multi` and the compressible
multi-capacity solver.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .items import KnapsackItem

__all__ = [
    "ArrayDominanceList",
    "solve_knapsack_array",
    "solve_knapsack_multi_array",
]

_SIZE_EPS = 1e-12
_PROFIT_EPS = 1e-15
_TIE_EPS = 1e-15


class ArrayDominanceList:
    """Undominated ``(profit, size)`` states in flat arrays.

    Invariant (as in the scalar engine): ``sizes`` strictly increasing and
    ``profits`` strictly increasing; state 0 is the empty root ``(0, 0)``.
    """

    def __init__(self) -> None:
        self.sizes = np.zeros(1, dtype=np.float64)
        self.profits = np.zeros(1, dtype=np.float64)
        self.nodes = np.zeros(1, dtype=np.int64)
        # node pool: node 0 is the root (no item, no parent)
        self._pool_items: List[np.ndarray] = [np.array([-1], dtype=np.int64)]
        self._pool_parents: List[np.ndarray] = [np.array([-1], dtype=np.int64)]
        self._pool_offsets: List[int] = [0, 1]

    def __len__(self) -> int:
        return len(self.sizes)

    # ------------------------------------------------------------------ pool
    def _register_nodes(self, item_index: int, parents: np.ndarray) -> np.ndarray:
        base = self._pool_offsets[-1]
        count = len(parents)
        self._pool_items.append(np.full(count, item_index, dtype=np.int64))
        self._pool_parents.append(parents.astype(np.int64, copy=True))
        self._pool_offsets.append(base + count)
        return np.arange(base, base + count, dtype=np.int64)

    def _node(self, node_id: int) -> Tuple[int, int]:
        chunk = bisect_right(self._pool_offsets, node_id) - 1
        offset = node_id - self._pool_offsets[chunk]
        return int(self._pool_items[chunk][offset]), int(self._pool_parents[chunk][offset])

    def backtrack(self, state_index: int, items: Sequence[KnapsackItem]) -> List[KnapsackItem]:
        """Chosen items of the state at ``state_index`` (engine order)."""
        chosen: List[KnapsackItem] = []
        node = int(self.nodes[state_index])
        while node >= 0:
            item_index, parent = self._node(node)
            if item_index < 0:
                break
            chosen.append(items[item_index])
            node = parent
        chosen.reverse()
        return chosen

    # ------------------------------------------------------------------- add
    def add_item(
        self,
        item: KnapsackItem,
        item_index: int,
        capacity: float,
        *,
        size_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        """Merge in the states obtained by adding ``item`` to every state.

        ``size_transform``, when given, must be the *vectorized* counterpart
        of the scalar engine's transform (it receives the raw new sizes array
        and returns the recorded sizes).
        """
        new_sizes = self.sizes + item.size
        if size_transform is not None:
            new_sizes = size_transform(new_sizes)
        keep = new_sizes <= capacity + _SIZE_EPS
        if not keep.any():
            return
        new_sizes = new_sizes[keep]
        new_profits = self.profits[keep] + item.profit
        new_nodes = self._register_nodes(item_index, self.nodes[keep])

        sizes = np.concatenate((self.sizes, new_sizes))
        profits = np.concatenate((self.profits, new_profits))
        nodes = np.concatenate((self.nodes, new_nodes))
        # stable merge order: by size asc, then profit desc, then engine order
        # (old states before new, original order within each) — exactly the
        # scalar merge's comparison (size, -profit) with old-first ties.
        order = np.lexsort((-profits, sizes))
        sizes = sizes[order]
        profits = profits[order]
        nodes = nodes[order]

        # prune 1: keep only states strictly improving on the running profit
        # maximum of everything before them.
        if len(profits) > 1:
            prev_max = np.maximum.accumulate(profits)
            keep1 = np.empty(len(profits), dtype=bool)
            keep1[0] = True
            keep1[1:] = profits[1:] > prev_max[:-1] + _PROFIT_EPS
            sizes = sizes[keep1]
            profits = profits[keep1]
            nodes = nodes[keep1]

        # prune 2: among runs of (near-)equal sizes keep the last survivor —
        # the scalar engine's same-size "replace" rule.  Profits strictly
        # increase after prune 1, so the last of a run is the best.
        if len(sizes) > 1:
            keep2 = np.empty(len(sizes), dtype=bool)
            keep2[-1] = True
            keep2[:-1] = np.diff(sizes) >= _TIE_EPS
            sizes = sizes[keep2]
            profits = profits[keep2]
            nodes = nodes[keep2]

        self.sizes = sizes
        self.profits = profits
        self.nodes = nodes

    # ---------------------------------------------------------------- queries
    def best_index_for_capacity(self, capacity: float, tol: float = _SIZE_EPS) -> int:
        """Index of the most profitable state with size ``<= capacity + tol``
        (profits strictly increase, so it is the last admissible state)."""
        idx = int(np.searchsorted(self.sizes, capacity + tol, side="right")) - 1
        return max(idx, 0)


def solve_knapsack_array(
    items: Sequence[KnapsackItem],
    capacity: float,
) -> Tuple[float, List[KnapsackItem]]:
    """Array-engine counterpart of :func:`repro.knapsack.dp.solve_knapsack`."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    dom = ArrayDominanceList()
    for index, item in enumerate(items):
        if item.size > capacity + _SIZE_EPS:
            continue
        dom.add_item(item, index, capacity)
    best = int(np.argmax(dom.profits)) if len(dom) else 0
    return float(dom.profits[best]), dom.backtrack(best, items)


def solve_knapsack_multi_array(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
) -> Dict[float, Tuple[float, List[KnapsackItem]]]:
    """Array-engine counterpart of
    :func:`repro.knapsack.multi.solve_knapsack_multi`."""
    if any(c < 0 for c in capacities):
        raise ValueError("capacities must be non-negative")
    if not capacities:
        return {}
    max_cap = max(capacities)
    dom = ArrayDominanceList()
    for index, item in enumerate(items):
        if item.size > max_cap + _SIZE_EPS:
            continue
        dom.add_item(item, index, max_cap)

    results: Dict[float, Tuple[float, List[KnapsackItem]]] = {}
    backtracked: Dict[int, Tuple[float, List[KnapsackItem]]] = {}
    for cap in capacities:
        idx = dom.best_index_for_capacity(cap)
        if idx not in backtracked:
            backtracked[idx] = (float(dom.profits[idx]), dom.backtrack(idx, items))
        results[cap] = backtracked[idx]
    return results
