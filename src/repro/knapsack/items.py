"""Item containers for the knapsack solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List

__all__ = ["KnapsackItem", "ItemType"]


@dataclass(frozen=True)
class KnapsackItem:
    """A single 0/1 knapsack item.

    Attributes
    ----------
    key:
        A hashable identifier (unique within an instance).
    size:
        Non-negative size (weight).  Integer in most scheduling uses
        (processor counts) but float sizes are supported by all solvers.
    profit:
        Non-negative profit.
    payload:
        Arbitrary attached object (e.g. the job the item represents); ignored
        by the solvers.
    """

    key: Hashable
    size: float
    profit: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"item {self.key!r}: size must be non-negative, got {self.size}")
        if self.profit < 0:
            raise ValueError(f"item {self.key!r}: profit must be non-negative, got {self.profit}")


@dataclass
class ItemType:
    """An item type of a *bounded* knapsack instance.

    All members of the type share (rounded) ``size`` and ``profit``; ``count``
    is the number of copies available.  ``members`` optionally records the
    identities of the original objects of this type so that a solution in
    terms of types can be mapped back to concrete objects.
    """

    key: Hashable
    size: float
    profit: float
    count: int
    members: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"item type {self.key!r}: count must be >= 1, got {self.count}")
        if self.size < 0:
            raise ValueError(f"item type {self.key!r}: size must be non-negative")
        if self.profit < 0:
            raise ValueError(f"item type {self.key!r}: profit must be non-negative")
        if self.members and len(self.members) != self.count:
            raise ValueError(
                f"item type {self.key!r}: {len(self.members)} members listed but count is {self.count}"
            )
