"""Exact 0/1 knapsack solvers.

Two engines are provided:

* :func:`solve_knapsack_dense` — the textbook ``O(n * C)`` table dynamic
  program over integer capacities.  Simple and ideal for cross-checking in
  tests, but memory-bound for large capacities.
* :func:`solve_knapsack` — Lawler's dominance-list dynamic program: a list of
  undominated ``(profit, size)`` pairs is maintained; the number of pairs is
  bounded by the number of distinct reachable sizes (≤ C+1 for integer sizes),
  so the worst case matches the dense DP while typical instances are far
  faster and float sizes are supported.  Solutions are recovered through
  parent pointers.

Both return the optimal profit and the list of chosen item keys.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .items import KnapsackItem

__all__ = ["solve_knapsack", "solve_knapsack_dense", "DominanceList", "Pair"]


@dataclass
class Pair:
    """An undominated (profit, size) state with backtracking information."""

    profit: float
    size: float
    item_index: Optional[int]  # index of the item added to reach this state
    parent: Optional["Pair"]

    def backtrack(self, items: Sequence[KnapsackItem]) -> List[KnapsackItem]:
        chosen: List[KnapsackItem] = []
        node: Optional[Pair] = self
        while node is not None and node.item_index is not None:
            chosen.append(items[node.item_index])
            node = node.parent
        chosen.reverse()
        return chosen


class DominanceList:
    """A list of mutually undominated pairs, sorted by size.

    Invariant: sizes strictly increasing and profits strictly increasing.
    (If profits were not increasing, the later pair would be dominated.)
    """

    def __init__(self) -> None:
        root = Pair(0.0, 0.0, None, None)
        self._pairs: List[Pair] = [root]

    @property
    def pairs(self) -> List[Pair]:
        return self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def best_for_capacity(self, capacity: float) -> Pair:
        """Best pair with size <= capacity (always exists: the empty pair)."""
        sizes = [p.size for p in self._pairs]
        idx = bisect_right(sizes, capacity) - 1
        if idx < 0:
            return self._pairs[0]
        return self._pairs[idx]

    def add_item(
        self,
        item: KnapsackItem,
        item_index: int,
        capacity: float,
        *,
        size_transform=None,
    ) -> None:
        """Merge in the states obtained by adding ``item`` to every state.

        ``size_transform`` optionally normalises the new size (used by the
        adaptive-normalisation solver); it receives the raw new size and
        returns the recorded size.
        """
        new_pairs: List[Pair] = []
        for pair in self._pairs:
            new_size = pair.size + item.size
            if size_transform is not None:
                new_size = size_transform(new_size)
            if new_size > capacity + 1e-12:
                continue
            new_pairs.append(Pair(pair.profit + item.profit, new_size, item_index, pair))
        if not new_pairs:
            return
        self._pairs = _merge_and_prune(self._pairs, new_pairs)


def _merge_and_prune(old: List[Pair], new: List[Pair]) -> List[Pair]:
    """Merge two size-sorted pair lists and drop dominated pairs."""
    new.sort(key=lambda p: (p.size, -p.profit))
    merged: List[Pair] = []
    i = j = 0
    while i < len(old) or j < len(new):
        if j >= len(new) or (i < len(old) and (old[i].size, -old[i].profit) <= (new[j].size, -new[j].profit)):
            candidate = old[i]
            i += 1
        else:
            candidate = new[j]
            j += 1
        if merged and candidate.profit <= merged[-1].profit + 1e-15:
            continue  # dominated: not more profitable than a smaller-or-equal state
        if merged and abs(candidate.size - merged[-1].size) < 1e-15:
            # same size, higher profit: replace
            merged[-1] = candidate
            continue
        merged.append(candidate)
    return merged


def solve_knapsack(
    items: Sequence[KnapsackItem],
    capacity: float,
    *,
    backend: str = "scalar",
) -> Tuple[float, List[KnapsackItem]]:
    """Exact 0/1 knapsack via the dominance-list dynamic program.

    Returns ``(optimal_profit, chosen_items)``.  ``backend="vectorized"``
    runs the same DP on the NumPy array engine
    (:func:`repro.knapsack.array_dp.solve_knapsack_array`).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if backend == "vectorized":
        from .array_dp import solve_knapsack_array

        return solve_knapsack_array(items, capacity)
    dom = DominanceList()
    for index, item in enumerate(items):
        if item.size > capacity + 1e-12:
            continue
        dom.add_item(item, index, capacity)
    best = max(dom.pairs, key=lambda p: p.profit)
    return best.profit, best.backtrack(items)


def solve_knapsack_dense(
    items: Sequence[KnapsackItem],
    capacity: int,
    *,
    backend: str = "auto",
) -> Tuple[float, List[KnapsackItem]]:
    """Exact 0/1 knapsack via the classic ``O(n*C)`` table DP.

    Requires integer item sizes and an integer capacity.  Intended for
    moderate capacities (tests, the MRT baseline).

    Parameters
    ----------
    backend:
        ``"vectorized"`` sweeps each item's DP row with one NumPy array
        operation (the fast path), ``"scalar"`` runs the pure-Python reference
        loop, ``"auto"`` picks vectorized when NumPy is available.  Both
        backends produce bit-for-bit identical tables and selections.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if backend not in ("auto", "vectorized", "scalar"):
        raise ValueError(f"unknown backend {backend!r}")
    capacity = int(capacity)
    for item in items:
        if item.size != int(item.size):
            raise ValueError(f"dense DP requires integer sizes, item {item.key!r} has size {item.size}")
    if backend != "scalar":
        try:
            return _solve_knapsack_dense_vectorized(items, capacity)
        except ImportError:  # pragma: no cover - numpy is a hard dependency
            if backend == "vectorized":
                raise
    return _solve_knapsack_dense_scalar(items, capacity)


def _solve_knapsack_dense_scalar(
    items: Sequence[KnapsackItem],
    capacity: int,
) -> Tuple[float, List[KnapsackItem]]:
    """Pure-Python reference row sweep (kept as the parity baseline)."""
    profits = [0.0] * (capacity + 1)
    # choice[i] is a bytearray marking for item i whether it is taken at each capacity
    choices: List[bytearray] = []
    for item in items:
        size = int(item.size)
        taken = bytearray(capacity + 1)
        if size <= capacity and item.profit >= 0:
            for c in range(capacity, size - 1, -1):
                candidate = profits[c - size] + item.profit
                if candidate > profits[c] + 1e-15:
                    profits[c] = candidate
                    taken[c] = 1
        choices.append(taken)
    return _dense_backtrack(items, choices, profits, capacity)


def _solve_knapsack_dense_vectorized(
    items: Sequence[KnapsackItem],
    capacity: int,
) -> Tuple[float, List[KnapsackItem]]:
    """NumPy row-sweep DP: one shifted-add-compare per item.

    Semantically identical to the scalar loop: the descending capacity order
    of the textbook DP reads only *pre-update* values ``profits[c - size]``,
    which is exactly what computing the candidate row from a snapshot does.
    """
    import numpy as np

    profits = np.zeros(capacity + 1, dtype=np.float64)
    choices: List = []
    for item in items:
        size = int(item.size)
        if size <= capacity and item.profit >= 0:
            candidate = profits[: capacity + 1 - size] + item.profit
            better = candidate > profits[size:] + 1e-15
            taken = np.zeros(capacity + 1, dtype=bool)
            if better.any():
                np.copyto(profits[size:], candidate, where=better)
                taken[size:] = better
        else:
            taken = np.zeros(capacity + 1, dtype=bool)
        choices.append(taken)
    return _dense_backtrack(items, choices, profits, capacity)


def _dense_backtrack(items, choices, profits, capacity):
    c = capacity
    chosen: List[KnapsackItem] = []
    for i in range(len(items) - 1, -1, -1):
        if choices[i][c]:
            chosen.append(items[i])
            c -= int(items[i].size)
    chosen.reverse()
    return float(profits[capacity]), chosen
