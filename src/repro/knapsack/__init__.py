"""Knapsack substrate used by the scheduling algorithms.

The `(3/2+ε)`-dual algorithms of the paper reduce shelf selection to (variants
of) the knapsack problem:

* :mod:`repro.knapsack.dp` — exact 0/1 knapsack (dense table and Lawler's
  dominance-list dynamic program);
* :mod:`repro.knapsack.multi` — solving one knapsack for *many* capacities in
  a single pass (Section 4.2.4 of the paper);
* :mod:`repro.knapsack.compressible` — the knapsack problem with compressible
  items: geometric capacity sets, adaptive normalization (Lemma 12) and
  Algorithm 2 (Theorem 15);
* :mod:`repro.knapsack.bounded` — bounded knapsack → 0/1 conversion by binary
  splitting of item counts (Section 4.3).
"""

from .items import KnapsackItem, ItemType
from .dp import solve_knapsack, solve_knapsack_dense
from .multi import solve_knapsack_multi
from .compressible import (
    geom,
    round_down_geom,
    round_up_geom,
    AdaptiveNormalizer,
    solve_compressible_multi,
    CompressibleSolution,
    solve_compressible_knapsack,
)
from .bounded import binary_split, expand_bounded_items, assign_members

__all__ = [
    "KnapsackItem",
    "ItemType",
    "solve_knapsack",
    "solve_knapsack_dense",
    "solve_knapsack_multi",
    "geom",
    "round_down_geom",
    "round_up_geom",
    "AdaptiveNormalizer",
    "solve_compressible_multi",
    "CompressibleSolution",
    "solve_compressible_knapsack",
    "binary_split",
    "expand_bounded_items",
    "assign_members",
]
