"""Knapsack with compressible items (Section 4.2 of the paper).

An instance ``(I, Ic, C, rho)`` consists of items ``I`` with sizes and
profits, a subset ``Ic`` of *compressible* items, a capacity ``C`` and a
compression factor ``rho``.  A feasible solution ``I'`` may exceed the
capacity by the amount that compressing its compressible items recovers::

    sum_{i in I' ∩ Ic} (1 - rho) s(i)  +  sum_{i in I' \\ Ic} s(i)  <=  C

The scheduling application: items are (big) jobs, sizes are processor counts
``gamma_j(d)``, and wide jobs can afford to lose a ``rho`` fraction of their
processors because monotony bounds the resulting slowdown (Lemma 4).

This module implements

* :func:`geom` — geometric value sets (Definition 13) and geometric rounding;
* :class:`AdaptiveNormalizer` — the multi-capacity adaptive size
  normalisation of Lemma 12 (the structure shown in Figure 4 of the paper);
* :func:`solve_compressible_multi` — the normalised dominance DP solving the
  compressible sub-instance for a whole set of capacities in one pass;
* :func:`solve_compressible_knapsack` — **Algorithm 2** (Theorem 15): combine
  the compressible and incompressible sub-instances over a geometric grid of
  capacity splits, returning a solution whose profit is at least the optimum
  of the *uncompressed* instance ``OPT(I, ∅, C, 0)``.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .array_dp import ArrayDominanceList
from .dp import DominanceList
from .items import KnapsackItem
from .multi import solve_knapsack_multi

__all__ = [
    "geom",
    "round_down_geom",
    "round_up_geom",
    "AdaptiveNormalizer",
    "solve_compressible_multi",
    "CompressibleSolution",
    "solve_compressible_knapsack",
]


# --------------------------------------------------------------------------
# Geometric value sets (Definition 13 / Lemma 14)
# --------------------------------------------------------------------------

@lru_cache(maxsize=8)
def _geom_cached(low: float, high: float, ratio: float) -> Tuple[float, ...]:
    """Materialised geometric grid, memoised per ``(low, high, ratio)``.

    Only list-returning :func:`geom` callers materialise grids now (the
    rounding helpers below locate their grid point in O(1) via logarithms);
    the memo covers the repeated within-instance calls while keeping at most
    a handful of the — possibly 10^5-point — grids alive.
    """
    if low <= 0:
        raise ValueError("low must be positive")
    if ratio <= 1.0:
        raise ValueError("ratio must be > 1")
    if high <= low:
        return (low,)
    steps = math.ceil(math.log(high / low) / math.log(ratio))
    return tuple(low * ratio ** i for i in range(steps + 1))


def geom(low: float, high: float, ratio: float) -> List[float]:
    """The geometric set ``{low * ratio**i : i = 0, ..., ceil(log_ratio(high/low))}``.

    For ``high <= low`` the set degenerates to ``[low]``.
    """
    return list(_geom_cached(low, high, ratio))


def _geom_params(low: float, high: float, ratio: float) -> int:
    """Validate grid parameters and return the largest grid index (the grid is
    ``low * ratio**i`` for ``i = 0..steps``) without materialising the grid."""
    if low <= 0:
        raise ValueError("low must be positive")
    if ratio <= 1.0:
        raise ValueError("ratio must be > 1")
    if high <= low:
        return 0
    return math.ceil(math.log(high / low) / math.log(ratio))


def round_down_geom(value: float, low: float, high: float, ratio: float) -> float:
    """``max { a in geom(low, high, ratio) : a <= value }`` (the paper's ǧr).

    Raises ``ValueError`` when ``value`` is below every grid point.

    The grid index is located in O(1) via logarithms (plus a float-safety
    nudge) instead of materialising the — possibly 10^5-point — grid; the
    returned value ``low * ratio**i`` is bit-identical to the grid entry.
    """
    steps = _geom_params(low, high, ratio)
    v = value * (1 + 1e-12)
    if v < low:
        raise ValueError(f"value {value} is below the smallest grid point {low}")
    idx = int(math.floor(math.log(v / low) / math.log(ratio))) if steps else 0
    idx = min(max(idx, 0), steps)
    # the log estimate can be off by one ulp-step; restore the bisect predicate
    while idx > 0 and low * ratio ** idx > v:
        idx -= 1
    while idx < steps and low * ratio ** (idx + 1) <= v:
        idx += 1
    if low * ratio ** idx > v:
        raise ValueError(f"value {value} is below the smallest grid point {low}")
    return low * ratio ** idx


def round_up_geom(value: float, low: float, high: float, ratio: float) -> float:
    """``min { a in geom(low, high, ratio) : a >= value }`` (the paper's ĝr).

    Values above the largest grid point are clamped to it (they can only occur
    through floating-point noise in the intended uses).  O(1) via logarithms,
    bit-identical to bisecting the materialised grid.
    """
    steps = _geom_params(low, high, ratio)
    v = value * (1 - 1e-12)
    if v <= low:
        return low
    idx = int(math.ceil(math.log(v / low) / math.log(ratio))) if steps else 0
    idx = min(max(idx, 0), steps)
    while idx < steps and low * ratio ** idx < v:
        idx += 1
    while idx > 0 and low * ratio ** (idx - 1) >= v:
        idx -= 1
    return low * ratio ** idx


# --------------------------------------------------------------------------
# Adaptive normalisation (Lemma 12, Figure 4)
# --------------------------------------------------------------------------

@dataclass
class IntervalInfo:
    """One capacity interval ``I^(i) = [alpha_{i-1}, alpha_i)`` and its grid."""

    index: int
    lower: float
    upper: float
    unit: float  # U_i
    num_subintervals: int


class AdaptiveNormalizer:
    """The multi-capacity size normalisation of Lemma 12.

    Given capacities ``alpha_1 < ... < alpha_k`` (all at least ``alpha_min``),
    a compression factor ``rho`` and an upper bound ``n_bar`` on the number of
    compressible items in any solution, sizes are rounded down onto a grid
    whose resolution adapts to the capacity range: inside
    ``[alpha_{i-1}, alpha_i)`` the grid unit is ``U_i = rho/((1-rho) n_bar) * alpha_i``.

    Lemma 12 shows each interval has ``O(n_bar)`` grid cells and that the
    total rounding error of a solution for capacity ``alpha_i`` is at most
    ``n_bar * U_i``, which the compression absorbs.
    """

    def __init__(self, capacities: Sequence[float], alpha_min: float, rho: float, n_bar: int) -> None:
        if not 0 < rho < 1:
            raise ValueError("rho must lie in (0, 1)")
        if n_bar < 1:
            raise ValueError("n_bar must be >= 1")
        caps = sorted(set(float(c) for c in capacities))
        if not caps:
            raise ValueError("at least one capacity is required")
        if alpha_min <= 0:
            raise ValueError("alpha_min must be positive")
        self.alpha_min = float(alpha_min)
        self.rho = float(rho)
        self.n_bar = int(n_bar)
        self.capacities = caps
        self.intervals: List[IntervalInfo] = []
        prev = self.alpha_min
        for i, alpha in enumerate(caps, start=1):
            unit = rho / ((1.0 - rho) * n_bar) * alpha
            if alpha <= prev:
                # degenerate interval (capacity below alpha_min); keep a stub
                self.intervals.append(IntervalInfo(i, prev, alpha, unit, 0))
                continue
            l_min = math.floor(prev / unit)
            l_max = math.floor(alpha / unit)
            self.intervals.append(IntervalInfo(i, prev, alpha, unit, l_max - l_min + 1))
            prev = alpha

    # ------------------------------------------------------------------ API
    def normalize(self, size: float) -> float:
        """Round ``size`` down onto the adaptive grid (sizes below
        ``alpha_min`` are returned unchanged)."""
        if size < self.alpha_min:
            return size
        # find the interval containing `size`
        idx = bisect_right(self.capacities, size)
        if idx >= len(self.capacities):
            idx = len(self.capacities) - 1  # clamp to the last interval's grid
        info = self.intervals[idx]
        unit = info.unit
        lower = info.lower
        normalized = math.floor(size / unit) * unit
        return max(normalized, lower)

    def normalize_array(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`normalize`: round a whole array of sizes onto the
        adaptive grid in a handful of array operations (bit-for-bit identical
        to the scalar path)."""
        sizes = np.asarray(sizes, dtype=np.float64)
        caps = getattr(self, "_caps_arr", None)
        if caps is None:
            caps = self._caps_arr = np.asarray(self.capacities, dtype=np.float64)
            self._units_arr = np.array([info.unit for info in self.intervals], dtype=np.float64)
            self._lowers_arr = np.array([info.lower for info in self.intervals], dtype=np.float64)
        idx = np.searchsorted(caps, sizes, side="right")
        np.clip(idx, 0, len(caps) - 1, out=idx)
        unit = self._units_arr[idx]
        lower = self._lowers_arr[idx]
        normalized = np.maximum(np.floor(sizes / unit) * unit, lower)
        return np.where(sizes < self.alpha_min, sizes, normalized)

    def max_underestimate(self, capacity: float) -> float:
        """Upper bound on the total size under-estimation of a solution for
        ``capacity`` (``n_bar * U_i`` for the interval of ``capacity``)."""
        idx = bisect_left(self.capacities, capacity * (1 - 1e-12))
        idx = min(idx, len(self.intervals) - 1)
        return self.n_bar * self.intervals[idx].unit

    def subinterval_counts(self) -> List[int]:
        """Number of grid cells per capacity interval (the quantity bounded by
        Eq. (16) of the paper; reproduced in the Figure 4 experiment)."""
        return [info.num_subintervals for info in self.intervals]


# --------------------------------------------------------------------------
# Compressible multi-capacity solver
# --------------------------------------------------------------------------

def solve_compressible_multi(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
    rho: float,
    n_bar: int,
    alpha_min: float,
    *,
    backend: str = "scalar",
) -> Dict[float, Tuple[float, List[KnapsackItem]]]:
    """Solve the compressible-items sub-instance for every capacity.

    The returned selections may exceed their nominal capacity in *true* size,
    but by no more than the amount recovered by compressing every selected
    item with factor ``2*rho - rho**2`` (this is exactly the slack Lemma 12 /
    Eq. (14) accounts for).  Profits are at least the exact optimum of the
    corresponding uncompressed problems.

    ``backend="vectorized"`` runs the normalised dominance DP on the array
    engine (:mod:`repro.knapsack.array_dp`) with the vectorized normaliser.
    """
    if not capacities:
        return {}
    if backend == "vectorized":
        return _solve_compressible_multi_array(items, capacities, rho, n_bar, alpha_min)
    normalizer = AdaptiveNormalizer(capacities, alpha_min, rho, n_bar)
    max_cap = max(capacities)
    dom = DominanceList()
    for index, item in enumerate(items):
        if item.size > max_cap / (1.0 - rho) + 1e-9:
            continue
        dom.add_item(item, index, max_cap, size_transform=normalizer.normalize)

    pairs = dom.pairs
    sizes = [p.size for p in pairs]
    best_prefix: List[int] = []
    best_idx = 0
    for i, pair in enumerate(pairs):
        if pair.profit > pairs[best_idx].profit:
            best_idx = i
        best_prefix.append(best_idx)

    results: Dict[float, Tuple[float, List[KnapsackItem]]] = {}
    for cap in capacities:
        idx = bisect_right(sizes, cap + 1e-9) - 1
        if idx < 0:
            results[cap] = (0.0, [])
            continue
        pair = pairs[best_prefix[idx]]
        results[cap] = (pair.profit, pair.backtrack(items))
    return results


def _solve_compressible_multi_array(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
    rho: float,
    n_bar: int,
    alpha_min: float,
) -> Dict[float, Tuple[float, List[KnapsackItem]]]:
    """Array-engine variant of :func:`solve_compressible_multi`."""
    normalizer = AdaptiveNormalizer(capacities, alpha_min, rho, n_bar)
    max_cap = max(capacities)
    dom = ArrayDominanceList()
    for index, item in enumerate(items):
        if item.size > max_cap / (1.0 - rho) + 1e-9:
            continue
        dom.add_item(item, index, max_cap, size_transform=normalizer.normalize_array)

    results: Dict[float, Tuple[float, List[KnapsackItem]]] = {}
    cached: Dict[int, Tuple[float, List[KnapsackItem]]] = {}
    for cap in capacities:
        idx = dom.best_index_for_capacity(cap, tol=1e-9)
        if idx not in cached:
            cached[idx] = (float(dom.profits[idx]), dom.backtrack(idx, items))
        results[cap] = cached[idx]
    return results


# --------------------------------------------------------------------------
# Algorithm 2
# --------------------------------------------------------------------------

@dataclass
class CompressibleSolution:
    """Result of :func:`solve_compressible_knapsack`."""

    profit: float
    compressible: List[KnapsackItem]
    incompressible: List[KnapsackItem]
    alpha_tilde: float
    rho_prime: float

    @property
    def items(self) -> List[KnapsackItem]:
        return self.compressible + self.incompressible

    def true_size(self) -> float:
        return sum(i.size for i in self.items)

    def compressed_size(self) -> float:
        """Size after compressing every compressible item with ``rho_prime``."""
        return sum(i.size * (1.0 - self.rho_prime) for i in self.compressible) + sum(
            i.size for i in self.incompressible
        )


def solve_compressible_knapsack(
    items: Sequence[KnapsackItem],
    compressible_keys: Iterable,
    capacity: float,
    rho: float,
    *,
    alpha_min: Optional[float] = None,
    beta_max: Optional[float] = None,
    n_bar: Optional[int] = None,
    backend: str = "scalar",
) -> CompressibleSolution:
    """Algorithm 2: knapsack with compressible items.

    Parameters
    ----------
    items:
        All items ``I``.
    compressible_keys:
        Keys of the compressible items ``Ic``.
    capacity:
        Knapsack capacity ``C``.
    rho:
        Half of the usable compressibility; the returned solution is feasible
        for the compression factor ``rho' = 2*rho - rho**2``.
    alpha_min:
        Lower bound on any non-zero compressible-space value; defaults to the
        smallest compressible item size.
    beta_max:
        Upper bound on the space used by incompressible items; defaults to
        ``min(capacity, total incompressible size)``.
    n_bar:
        Upper bound on the number of compressible items in any solution;
        defaults to ``floor(capacity * rho / (1 - rho)) + 1`` (each
        compressible item has size at least ``1/rho``).
    backend:
        ``"scalar"`` runs both sub-solvers on the Python dominance-list
        engine, ``"vectorized"`` on the NumPy array engine
        (:mod:`repro.knapsack.array_dp`).

    Returns
    -------
    CompressibleSolution
        With ``profit >= OPT(I, ∅, C, 0)`` (the optimum of the *uncompressed*
        instance) and ``compressed_size() <= C``.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if not 0 < rho <= 0.25:
        raise ValueError("rho must lie in (0, 1/4]")
    if backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown backend {backend!r}")
    comp_keys: Set = set(compressible_keys)
    comp_items = [i for i in items if i.key in comp_keys]
    incomp_items = [i for i in items if i.key not in comp_keys]
    rho_prime = 2.0 * rho - rho ** 2

    if alpha_min is None:
        alpha_min = min((i.size for i in comp_items), default=1.0)
    if beta_max is None:
        beta_max = min(capacity, sum(i.size for i in incomp_items))
    if n_bar is None:
        n_bar = int(math.floor(capacity * rho / (1.0 - rho))) + 1
    n_bar = max(1, int(n_bar))

    # line 1 of Algorithm 2
    alpha_min = max(alpha_min, capacity - beta_max)
    alpha_min = max(alpha_min, 1e-12)

    if comp_items and capacity > 0:
        cap_grid = geom(alpha_min / (1.0 - rho), capacity, 1.0 / (1.0 - rho))
        # Feasibility requires (1-rho) * alpha_tilde <= C (Eq. (23)); values
        # beyond C/(1-rho) can only arise in the degenerate case where not even
        # the smallest compressible item fits, and must be dropped.
        cap_grid = [a for a in cap_grid if a <= capacity / (1.0 - rho) * (1.0 + 1e-12)]
    else:
        cap_grid = []

    beta_of: Dict[float, float] = {a: max(0.0, capacity - (1.0 - rho) * a) for a in cap_grid}
    beta_of[0.0] = min(beta_max, capacity)
    betas = sorted(set(beta_of.values()))

    incomp_solutions = solve_knapsack_multi(incomp_items, betas, backend=backend)
    comp_solutions = (
        solve_compressible_multi(comp_items, cap_grid, rho, n_bar, alpha_min, backend=backend)
        if cap_grid
        else {}
    )

    best: Optional[CompressibleSolution] = None
    for alpha in [0.0] + cap_grid:
        beta = beta_of[alpha]
        inc_profit, inc_chosen = incomp_solutions[beta]
        if alpha == 0.0:
            comp_profit, comp_chosen = 0.0, []
        else:
            comp_profit, comp_chosen = comp_solutions[alpha]
        total = inc_profit + comp_profit
        if best is None or total > best.profit:
            best = CompressibleSolution(
                profit=total,
                compressible=list(comp_chosen),
                incompressible=list(inc_chosen),
                alpha_tilde=alpha,
                rho_prime=rho_prime,
            )
    assert best is not None
    return best
