"""Solving one knapsack instance for many capacities in a single pass.

Section 4.2.4 of the paper observes that the dominance-list dynamic program
naturally answers *all* capacities at once: build the list up to the largest
capacity, then, for each requested capacity ``beta``, report the most
profitable pair whose size does not exceed ``beta``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .dp import DominanceList
from .items import KnapsackItem

__all__ = ["solve_knapsack_multi"]


def solve_knapsack_multi(
    items: Sequence[KnapsackItem],
    capacities: Sequence[float],
    *,
    backend: str = "scalar",
) -> Dict[float, Tuple[float, List[KnapsackItem]]]:
    """Solve the 0/1 knapsack for each capacity in ``capacities``.

    Returns a dict mapping each capacity to ``(profit, chosen_items)``.
    The work is a single dominance-list pass up to ``max(capacities)``.
    ``backend="vectorized"`` runs the pass on the NumPy array engine.
    """
    if any(c < 0 for c in capacities):
        raise ValueError("capacities must be non-negative")
    if not capacities:
        return {}
    if backend == "vectorized":
        from .array_dp import solve_knapsack_multi_array

        return solve_knapsack_multi_array(items, capacities)
    max_cap = max(capacities)
    dom = DominanceList()
    for index, item in enumerate(items):
        if item.size > max_cap + 1e-12:
            continue
        dom.add_item(item, index, max_cap)

    # prefix maxima over the size-sorted pair list
    pairs = dom.pairs
    best_prefix: List[int] = []
    best_idx = 0
    for i, pair in enumerate(pairs):
        if pair.profit > pairs[best_idx].profit:
            best_idx = i
        best_prefix.append(best_idx)

    sizes = [p.size for p in pairs]
    from bisect import bisect_right

    results: Dict[float, Tuple[float, List[KnapsackItem]]] = {}
    for cap in capacities:
        idx = bisect_right(sizes, cap + 1e-12) - 1
        if idx < 0:
            results[cap] = (0.0, [])
            continue
        pair = pairs[best_prefix[idx]]
        results[cap] = (pair.profit, pair.backtrack(items))
    return results
