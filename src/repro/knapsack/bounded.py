"""Bounded knapsack → 0/1 knapsack via binary splitting (Section 4.3).

A bounded knapsack instance has item *types* ``t`` with a count ``c_t`` of
identical copies.  Following Kellerer, Pferschy & Pisinger, each type is
replaced by ``O(log c_t)`` *container* items holding 1, 2, 4, ...\\ copies, so
that every copy count ``0..c_t`` is expressible as a subset of containers.
The resulting 0/1 instance is solved by the (compressible) knapsack solver
and the chosen containers are mapped back to concrete member objects.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

from .items import ItemType, KnapsackItem

__all__ = ["binary_split", "expand_bounded_items", "assign_members", "selected_counts"]


def binary_split(count: int) -> List[int]:
    """Split ``count`` into powers of two plus a remainder: 1, 2, 4, ..., rest.

    Every integer in ``[0, count]`` is the sum of a subset of the returned
    multiplicities, and the list has ``O(log count)`` entries.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    parts: List[int] = []
    power = 1
    remaining = count
    while remaining > 0:
        take = min(power, remaining)
        parts.append(take)
        remaining -= take
        power *= 2
    return parts


def expand_bounded_items(types: Sequence[ItemType]) -> List[KnapsackItem]:
    """Expand bounded item types into 0/1 *container* items.

    The container for ``q`` copies of type ``t`` has size ``q * size_t``,
    profit ``q * profit_t`` and payload ``(t.key, q)``.
    """
    containers: List[KnapsackItem] = []
    for t in types:
        for part_index, multiplicity in enumerate(binary_split(t.count)):
            containers.append(
                KnapsackItem(
                    key=(t.key, part_index),
                    size=t.size * multiplicity,
                    profit=t.profit * multiplicity,
                    payload=(t.key, multiplicity),
                )
            )
    return containers


def selected_counts(chosen_containers: Iterable[KnapsackItem]) -> Dict[Hashable, int]:
    """How many copies of each type the chosen containers represent."""
    counts: Dict[Hashable, int] = {}
    for container in chosen_containers:
        type_key, multiplicity = container.payload
        counts[type_key] = counts.get(type_key, 0) + multiplicity
    return counts


def assign_members(
    counts: Dict[Hashable, int],
    types: Sequence[ItemType],
) -> List[Any]:
    """Map per-type copy counts back to concrete member objects.

    Members are taken in the order stored on each type (callers typically sort
    them so that e.g. the narrowest jobs are preferred).
    """
    by_key: Dict[Hashable, ItemType] = {t.key: t for t in types}
    selected: List[Any] = []
    for type_key, count in counts.items():
        t = by_key[type_key]
        if count > t.count:
            raise ValueError(f"type {type_key!r}: {count} copies selected but only {t.count} exist")
        if not t.members:
            raise ValueError(f"type {type_key!r} has no member objects to assign")
        selected.extend(t.members[:count])
    return selected
