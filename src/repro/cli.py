"""Command-line entry point: ``python -m repro <experiment>``.

Runs the experiment drivers that reproduce the paper's table and figures and
the supporting studies (see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    crossover_study,
    fig1_hardness,
    fig2_fig3_shelves,
    fig4_intervals,
    fptas_study,
    quality_study,
    table1,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": lambda: table1.main(),
    "table1-quick": lambda: table1.main(quick=True),
    "fig1": lambda: fig1_hardness.main(),
    "fig2-fig3": lambda: fig2_fig3_shelves.main(),
    "fig4": lambda: fig4_intervals.main(),
    "fptas": lambda: fptas_study.main(),
    "quality": lambda: quality_study.main(),
    "crossover": lambda: crossover_study.main(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation artefacts of 'Scheduling Monotone Moldable Jobs in Linear Time'",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run (see EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("table1", "fig1", "fig2-fig3", "fig4", "fptas", "quality", "crossover"):
            print(f"=== {name} ===")
            EXPERIMENTS[name]()
    else:
        EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
