"""4-Partition instances, generators, solver and verifier.

An instance consists of ``4n`` natural numbers ``a_1, ..., a_4n`` and a bound
``B`` with ``sum a_i = n*B`` and (in the strongly NP-hard restriction used by
the paper) ``B/5 < a_i < B/3`` for every ``i``.  The question is whether the
numbers can be partitioned into ``n`` groups of four, each summing to ``B``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "FourPartitionInstance",
    "random_yes_instance",
    "random_no_instance",
    "solve_four_partition",
    "verify_four_partition_solution",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class FourPartitionInstance:
    """A 4-Partition instance."""

    numbers: Tuple[int, ...]
    bound: int  # B

    def __post_init__(self) -> None:
        if len(self.numbers) % 4 != 0:
            raise ValueError("the number of items must be a multiple of 4")
        if any(a <= 0 for a in self.numbers):
            raise ValueError("all numbers must be positive")

    @property
    def groups(self) -> int:
        """The number ``n`` of groups to form."""
        return len(self.numbers) // 4

    @property
    def is_balanced(self) -> bool:
        """Whether ``sum a_i = n * B`` (a necessary condition for yes)."""
        return sum(self.numbers) == self.groups * self.bound

    @property
    def is_strict(self) -> bool:
        """Whether every number lies strictly between ``B/5`` and ``B/3``
        (the restriction under which 4-Partition stays strongly NP-hard)."""
        return all(5 * a > self.bound and 3 * a < self.bound for a in self.numbers)


def random_yes_instance(groups: int, *, seed: SeedLike = None, scale: int = 1000) -> FourPartitionInstance:
    """Generate a yes-instance with ``groups`` planted quadruples.

    Each quadruple is drawn so that its numbers lie strictly in
    ``(B/5, B/3)`` and sum to ``B = 4*scale``.
    """
    if groups < 1:
        raise ValueError("groups must be >= 1")
    rng = _rng(seed)
    bound = 4 * scale
    lo = bound // 5 + 1
    hi = bound // 3 - 1
    numbers: List[int] = []
    for _ in range(groups):
        # draw three values, fix the fourth; retry until all lie in range
        for _attempt in range(10_000):
            vals = [int(rng.integers(lo, hi + 1)) for _ in range(3)]
            fourth = bound - sum(vals)
            if lo <= fourth <= hi:
                numbers.extend(vals + [fourth])
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("failed to generate a quadruple in range")
    order = rng.permutation(len(numbers))
    numbers = [numbers[i] for i in order]
    return FourPartitionInstance(tuple(numbers), bound)


def random_no_instance(groups: int, *, seed: SeedLike = None, scale: int = 1000) -> FourPartitionInstance:
    """Generate an instance that is certainly a no-instance.

    The numbers are drawn in range but their total is made different from
    ``groups * B`` by perturbing one element, which already rules out any
    perfect partition.
    """
    instance = random_yes_instance(groups, seed=seed, scale=scale)
    numbers = list(instance.numbers)
    numbers[0] += 1  # break the balance, stay within (B/5, B/3) for scale >= 3
    return FourPartitionInstance(tuple(numbers), instance.bound)


def verify_four_partition_solution(
    instance: FourPartitionInstance,
    groups: Sequence[Sequence[int]],
) -> bool:
    """Check that ``groups`` (given as index quadruples) solves the instance."""
    seen: List[int] = []
    for group in groups:
        if len(group) != 4:
            return False
        if sum(instance.numbers[i] for i in group) != instance.bound:
            return False
        seen.extend(group)
    return sorted(seen) == list(range(len(instance.numbers)))


def solve_four_partition(
    instance: FourPartitionInstance,
    *,
    max_items: int = 32,
) -> Optional[List[Tuple[int, int, int, int]]]:
    """Exact solver (backtracking over quadruples) for small instances.

    Returns a list of index quadruples or ``None`` if no solution exists.
    Intended for instances with at most ``max_items`` numbers (8 groups); the
    problem is strongly NP-hard, so do not expect this to scale.
    """
    n_items = len(instance.numbers)
    if n_items > max_items:
        raise ValueError(f"instance too large for the exact solver ({n_items} > {max_items} items)")
    if not instance.is_balanced:
        return None

    numbers = instance.numbers
    bound = instance.bound
    indices = sorted(range(n_items), key=lambda i: -numbers[i])
    used = [False] * n_items
    solution: List[Tuple[int, int, int, int]] = []

    def backtrack() -> bool:
        try:
            first = next(i for i in indices if not used[i])
        except StopIteration:
            return True
        used[first] = True
        remaining = [i for i in indices if not used[i]]
        for trio in itertools.combinations(remaining, 3):
            if numbers[first] + sum(numbers[i] for i in trio) != bound:
                continue
            for i in trio:
                used[i] = True
            solution.append((first, *trio))
            if backtrack():
                return True
            solution.pop()
            for i in trio:
                used[i] = False
        used[first] = False
        return False

    if backtrack():
        return solution
    return None
