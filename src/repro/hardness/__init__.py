"""NP-completeness of monotone moldable job scheduling (Theorem 1, Section 2).

The reduction from 4-Partition maps numbers ``a_i`` to strictly monotone
moldable jobs ``t_{j_i}(k) = m*a_i - k + 1`` on ``m = n`` machines with target
makespan ``d = n*B``; a schedule of length ``d`` exists iff the 4-Partition
instance is a yes-instance.
"""

from .four_partition import (
    FourPartitionInstance,
    random_yes_instance,
    random_no_instance,
    solve_four_partition,
    verify_four_partition_solution,
)
from .reduction import (
    ReductionJob,
    ReducedInstance,
    reduce_to_scheduling,
    schedule_from_partition,
    partition_from_schedule,
    verify_reduction,
)

__all__ = [
    "FourPartitionInstance",
    "random_yes_instance",
    "random_no_instance",
    "solve_four_partition",
    "verify_four_partition_solution",
    "ReductionJob",
    "ReducedInstance",
    "reduce_to_scheduling",
    "schedule_from_partition",
    "partition_from_schedule",
    "verify_reduction",
]
