"""The Theorem 1 reduction: 4-Partition → monotone moldable scheduling.

Given a 4-Partition instance with numbers ``a_1, ..., a_4n`` and bound ``B``
(with ``sum a_i = n*B``), the reduction creates ``m = n`` machines and, for
every number ``a_i``, a job with processing time

    t_{j_i}(k) = m * a_i - k + 1 .

These jobs are strictly monotone (Eq. (1) of the paper), and a schedule with
makespan ``d = n*B`` exists iff the 4-Partition instance is a yes-instance:
the total single-processor work already equals ``m*d``, so any such schedule
must run every job on exactly one processor and fill every machine exactly —
i.e. it *is* a 4-partition (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.job import MoldableJob
from ..core.schedule import Schedule
from ..core.validation import assert_valid_schedule
from .four_partition import FourPartitionInstance, solve_four_partition, verify_four_partition_solution

__all__ = [
    "ReductionJob",
    "ReducedInstance",
    "reduce_to_scheduling",
    "schedule_from_partition",
    "partition_from_schedule",
    "verify_reduction",
]


class ReductionJob(MoldableJob):
    """The job ``t(k) = m*a - k + 1`` used by the reduction.

    Strictly decreasing processing time and strictly increasing work as long
    as ``m*a >= 2*k`` for all relevant ``k`` (guaranteed after the paper's
    scaling ``a_i >= 2``).
    """

    __slots__ = ("a", "m_machines", "index")

    def __init__(self, index: int, a: int, m_machines: int) -> None:
        super().__init__(f"reduction-{index}")
        if a < 1:
            raise ValueError("a must be >= 1")
        self.index = index
        self.a = int(a)
        self.m_machines = int(m_machines)

    def _time(self, k: int) -> float:
        value = self.m_machines * self.a - k + 1
        if value <= 0:
            # beyond the meaningful range; keep the oracle positive
            value = 1e-9
        return float(value)


@dataclass
class ReducedInstance:
    """The scheduling instance produced by the reduction."""

    source: FourPartitionInstance
    jobs: List[ReductionJob]
    m: int
    target_makespan: float
    scaling: int  # factor applied to the numbers so that a_i >= 2

    def job_for_number(self, index: int) -> ReductionJob:
        return self.jobs[index]


def reduce_to_scheduling(instance: FourPartitionInstance) -> ReducedInstance:
    """Apply the Theorem 1 reduction.

    The numbers are scaled by 2 if necessary so that every ``a_i >= 2``
    (exactly as in the paper's proof); the target makespan scales with them.
    If the instance is not balanced, the reduction still produces the
    scheduling instance — it is then a no-instance of the scheduling problem
    as well (the paper simply outputs a trivial no-instance in this case).
    """
    scaling = 1 if min(instance.numbers) >= 2 else 2
    numbers = [a * scaling for a in instance.numbers]
    bound = instance.bound * scaling
    m = instance.groups
    jobs = [ReductionJob(i, a, m) for i, a in enumerate(numbers)]
    return ReducedInstance(
        source=instance,
        jobs=jobs,
        m=m,
        target_makespan=float(m * bound),
        scaling=scaling,
    )


def schedule_from_partition(
    reduced: ReducedInstance,
    groups: Sequence[Sequence[int]],
) -> Schedule:
    """Build the Figure 1 schedule from a 4-Partition solution.

    Each group of four numbers becomes one machine's sequence of four
    single-processor jobs with total length exactly ``n*B``.
    """
    if not verify_four_partition_solution(reduced.source, groups):
        raise ValueError("the provided groups do not solve the 4-Partition instance")
    schedule = Schedule(m=reduced.m, metadata={"construction": "hardness_reduction"})
    for machine, group in enumerate(groups):
        start = 0.0
        for index in group:
            job = reduced.job_for_number(index)
            schedule.add(job, start, [(machine, 1)])
            start += job.processing_time(1)
    return schedule


def partition_from_schedule(reduced: ReducedInstance, schedule: Schedule) -> List[Tuple[int, ...]]:
    """Extract a 4-Partition solution from a schedule of makespan ``n*B``.

    The schedule must allot one processor to every job (this is forced for any
    schedule meeting the target makespan, by the strict monotony argument of
    the paper); jobs are grouped by the machine they run on.
    """
    groups_by_machine: Dict[int, List[int]] = {}
    for entry in schedule.entries:
        if entry.processors != 1:
            raise ValueError(
                f"job {entry.job.name!r} uses {entry.processors} processors; a makespan-(nB) schedule "
                "must be single-processor"
            )
        machine = entry.spans[0][0]
        job = entry.job
        if not isinstance(job, ReductionJob):
            raise TypeError("schedule contains foreign jobs")
        groups_by_machine.setdefault(machine, []).append(job.index)
    return [tuple(sorted(v)) for _, v in sorted(groups_by_machine.items())]


def verify_reduction(instance: FourPartitionInstance, *, solve: bool = True) -> dict:
    """End-to-end check of the reduction on one instance.

    Returns a report dict with the keys ``is_yes`` (4-Partition answer, if
    ``solve``), ``schedulable`` (whether the Figure 1 schedule could be built)
    and ``roundtrip_ok`` (whether mapping the schedule back yields a valid
    4-partition).
    """
    reduced = reduce_to_scheduling(instance)
    report = {
        "groups": instance.groups,
        "target_makespan": reduced.target_makespan,
        "is_yes": None,
        "schedulable": False,
        "roundtrip_ok": False,
    }
    solution: Optional[List[Tuple[int, int, int, int]]] = None
    if solve:
        solution = solve_four_partition(instance)
        report["is_yes"] = solution is not None
    if solution:
        schedule = schedule_from_partition(reduced, solution)
        assert_valid_schedule(schedule, reduced.jobs, max_makespan=reduced.target_makespan)
        report["schedulable"] = True
        back = partition_from_schedule(reduced, schedule)
        report["roundtrip_ok"] = verify_four_partition_solution(instance, back)
    return report
