"""Online arrival-epoch scheduling.

Jobs arrive over time; :class:`OnlineScheduler` groups arrivals into epochs
(immediate / fixed-quantum / count-batched), incrementally re-plans the
pending work at each epoch through the shared
:class:`~repro.core.replan.ReplanState` core (the fault-recovery loop's
other half), and returns an :class:`OnlineResult` whose
:class:`RegretReport` measures the price of not knowing the future against
the clairvoyant offline (3/2+ε) plan and the release-aware lower bound.
"""

from .scheduler import (
    EPOCH_POLICIES,
    Arrival,
    OnlineEpoch,
    OnlineResult,
    OnlineScheduler,
    RegretReport,
)

__all__ = [
    "Arrival",
    "OnlineEpoch",
    "OnlineResult",
    "OnlineScheduler",
    "RegretReport",
    "EPOCH_POLICIES",
]
