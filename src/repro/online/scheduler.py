"""Online arrival-epoch scheduling on the shared incremental-replan core.

:class:`OnlineScheduler` consumes a stream of ``(job, release)`` pairs,
groups the arrivals into epochs by a configurable policy, and at each epoch
re-plans the *pending* work through :class:`~repro.core.replan.ReplanState`
— the same commit / drain / re-plan machinery the fault-recovery loop uses:

* entries that already finished by the epoch are committed;
* entries that started earlier keep *draining* to completion;
* every waiting job (placed-but-unstarted segments plus the new arrivals)
  is re-solved with :func:`~repro.core.scheduler.schedule_moldable` on the
  full machine set, anchored at the drain barrier.

Epoch policies:

``immediate``
    one epoch per distinct release instant — lowest latency, most re-plans;
``quantum``
    arrivals are deferred to the next multiple of ``quantum`` — a dispatch
    tick, bounding re-plan frequency under bursty traffic;
``count``
    arrivals are batched ``batch_size`` at a time; the epoch fires at the
    release of the batch's last job (a partial final batch fires at its own
    last release).

Consecutive re-plans share γ-search work exactly as in recovery: each
epoch's :class:`~repro.perf.oracle.BatchedOracle` is built with the
``warm_start`` flag and primed from the previous epoch's oracle.  Because
every online epoch adds new jobs, cross-epoch priming usually transfers
nothing (:meth:`~repro.perf.oracle.BatchedOracle.prime_from` is exact or
nothing); the measured probe reduction comes from the within-epoch
bracket/interpolation warm start, and the warm/cold toggle never changes
the schedule — warm and cold runs are bit-identical in every placement
(the differential ``online`` family pins this across all backends).

The stitched result is validator-clean and respects every release by
construction: a job's segment starts at or after its epoch's barrier, which
is at or after its release.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import makespan_lower_bound, release_aware_lower_bound
from repro.core.job import MoldableJob
from repro.core.replan import EPOCH_EPS, ReplanError, ReplanState
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulingResult, schedule_moldable
from repro.core.validation import validate_schedule

__all__ = [
    "Arrival",
    "OnlineEpoch",
    "RegretReport",
    "OnlineResult",
    "OnlineScheduler",
    "EPOCH_POLICIES",
]

EPOCH_POLICIES = ("immediate", "quantum", "count")

ArrivalLike = Union["Arrival", Tuple[MoldableJob, float]]


@dataclass(frozen=True)
class Arrival:
    """One job and the instant it becomes known to the scheduler."""

    job: MoldableJob
    release: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.release) or self.release < 0.0:
            raise ValueError(
                f"release of {self.job.name!r} must be finite and >= 0, got {self.release}"
            )


@dataclass(frozen=True)
class OnlineEpoch:
    """What one arrival epoch did to the running plan."""

    time: float
    arrivals: int
    finished: int
    continuing: int
    requeued: int
    replanned: int
    barrier: float
    replan_latency: float
    replan_algorithm: Optional[str]


@dataclass
class RegretReport:
    """How the online schedule compares to clairvoyance.

    ``offline_makespan`` is the clairvoyant plan — the same algorithm solving
    all jobs as if they were known (and available) at time 0 — so ``regret``
    is the full price of not knowing the future, including the idleness
    releases force.  ``lower_bound`` is the release-aware bound, against
    which ``ratio_vs_lower_bound`` certifies the online plan's quality on
    its own terms.
    """

    online_makespan: float
    offline_makespan: float
    lower_bound: float
    replans: int
    replan_latencies: List[float] = field(default_factory=list)
    gamma_probes: Optional[int] = None
    epochs: List[OnlineEpoch] = field(default_factory=list)

    @property
    def regret(self) -> float:
        return self.online_makespan - self.offline_makespan

    @property
    def regret_ratio(self) -> float:
        if self.offline_makespan <= 0:
            return 1.0
        return self.online_makespan / self.offline_makespan

    @property
    def ratio_vs_lower_bound(self) -> float:
        if self.lower_bound <= 0:
            return 1.0
        return self.online_makespan / self.lower_bound

    def summary_lines(self) -> List[str]:
        lines = [
            f"online makespan       {self.online_makespan:.4f}",
            f"clairvoyant makespan  {self.offline_makespan:.4f}"
            f"  (regret {self.regret:+.4f}, x{self.regret_ratio:.3f})",
            f"release-aware LB      {self.lower_bound:.4f}"
            f"  (online at x{self.ratio_vs_lower_bound:.3f})",
            f"re-plans              {self.replans}"
            + (
                f"  (max latency {max(self.replan_latencies) * 1e3:.1f} ms)"
                if self.replan_latencies
                else ""
            ),
        ]
        if self.gamma_probes is not None:
            lines.append(f"gamma probes          {self.gamma_probes}")
        return lines


@dataclass
class OnlineResult:
    """Stitched online schedule plus its regret report."""

    schedule: Schedule
    report: RegretReport
    offline: SchedulingResult
    arrivals: List[Arrival]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def jobs(self) -> List[MoldableJob]:
        return [a.job for a in self.arrivals]

    @property
    def releases(self) -> List[float]:
        return [a.release for a in self.arrivals]


class OnlineScheduler:
    """Incremental (3/2+ε)-quality scheduling of jobs arriving over time.

    Parameters mirror :func:`~repro.core.scheduler.schedule_moldable`;
    ``policy`` / ``quantum`` / ``batch_size`` select the epoch grouping, and
    ``warm_start`` toggles γ-cache reuse across and within the per-epoch
    re-solves (never the schedule itself — warm and cold are bit-identical).
    """

    def __init__(
        self,
        m: int,
        *,
        eps: float = 0.1,
        algorithm: str = "auto",
        backend: str = "vectorized",
        list_backend: Optional[str] = None,
        warm_start: bool = True,
        policy: str = "immediate",
        quantum: Optional[float] = None,
        batch_size: Optional[int] = None,
        validate: bool = True,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if policy not in EPOCH_POLICIES:
            raise ValueError(f"unknown epoch policy {policy!r} (choose from {EPOCH_POLICIES})")
        if policy == "quantum":
            if quantum is None or not math.isfinite(quantum) or quantum <= 0:
                raise ValueError("policy='quantum' needs a finite quantum > 0")
        elif quantum is not None:
            raise ValueError("quantum is only meaningful with policy='quantum'")
        if policy == "count":
            if batch_size is None or batch_size < 1:
                raise ValueError("policy='count' needs batch_size >= 1")
        elif batch_size is not None:
            raise ValueError("batch_size is only meaningful with policy='count'")
        self.m = m
        self.eps = eps
        self.algorithm = algorithm
        self.backend = backend
        self.list_backend = list_backend
        self.warm_start = warm_start
        self.policy = policy
        self.quantum = quantum
        self.batch_size = batch_size
        self.validate = validate

    # -- epoch grouping -----------------------------------------------------

    def _epochs(self, arrivals: Sequence[Arrival]) -> List[Tuple[float, List[Arrival]]]:
        """Group release-sorted arrivals into ``(epoch time, batch)`` pairs,
        epoch times non-decreasing, every batch member released at or before
        its epoch time."""
        epochs: List[Tuple[float, List[Arrival]]] = []
        if self.policy == "count":
            size = int(self.batch_size)  # type: ignore[arg-type]
            for lo in range(0, len(arrivals), size):
                batch = list(arrivals[lo : lo + size])
                epochs.append((batch[-1].release, batch))
            return epochs
        for a in arrivals:
            if self.policy == "immediate":
                t = a.release
            else:  # quantum: defer to the next dispatch tick (t=0 stays 0)
                t = math.ceil(a.release / self.quantum) * self.quantum  # type: ignore[operator]
            if epochs and epochs[-1][0] == t:
                epochs[-1][1].append(a)
            else:
                epochs.append((t, [a]))
        return epochs

    # -- the online loop ----------------------------------------------------

    def run(self, arrivals: Sequence[ArrivalLike]) -> OnlineResult:
        """Schedule the whole arrival stream and return the stitched result.

        ``arrivals`` may hold :class:`Arrival` objects or ``(job, release)``
        pairs, in any order; they are sorted by release (stably, so equal
        releases keep their submission order — part of the determinism
        contract)."""
        normalised = [a if isinstance(a, Arrival) else Arrival(a[0], float(a[1])) for a in arrivals]
        stream = sorted(normalised, key=lambda a: a.release)
        jobs = [a.job for a in stream]
        releases = [a.release for a in stream]
        if len({id(j) for j in jobs}) != len(jobs):
            raise ValueError("the same job object was submitted twice")

        # the clairvoyant baseline: same algorithm, everything known at t=0
        offline = schedule_moldable(
            jobs,
            self.m,
            self.eps,
            algorithm=self.algorithm,
            validate=False,
            backend=self.backend,
            list_backend=self.list_backend,
        )

        state = ReplanState(
            m=self.m,
            eps=self.eps,
            algorithm=self.algorithm,
            backend=self.backend,
            list_backend=self.list_backend,
            warm_start=self.warm_start,
            error=ReplanError,
        )
        records: List[OnlineEpoch] = []
        full_machines = ((0, self.m),)
        for tau, batch in self._epochs(stream):
            state.add_jobs([a.job for a in batch])
            part = state.commit_epoch(tau)
            # no casualties online: every running entry drains
            outcome = state.replan_pending(tau, part.running, full_machines)
            records.append(
                OnlineEpoch(
                    time=tau,
                    arrivals=len(batch),
                    finished=len(part.finished),
                    continuing=len(part.running),
                    requeued=len(part.queued),
                    replanned=outcome.replanned,
                    barrier=outcome.barrier,
                    replan_latency=outcome.latency,
                    replan_algorithm=outcome.algorithm,
                )
            )
        state.finish()
        stitched = state.stitch(
            metadata={
                "algorithm": f"online[{self.algorithm}]",
                "policy": self.policy,
                "epochs": len(records),
                "replans": len(state.replan_latencies),
            }
        )

        if self.validate:
            verdict = validate_schedule(stitched, jobs)
            if not verdict.ok:
                raise ReplanError(
                    "stitched online schedule failed validation: "
                    + "; ".join(verdict.violations[:5])
                )
            release_of: Dict[int, float] = {id(a.job): a.release for a in stream}
            for entry in stitched.entries:
                if entry.start < release_of[id(entry.job)] - EPOCH_EPS:
                    raise ReplanError(
                        f"job {entry.job.name!r} starts at {entry.start} before "
                        f"its release {release_of[id(entry.job)]}"
                    )

        lower = release_aware_lower_bound(
            jobs, releases, self.m, base=makespan_lower_bound(jobs, self.m)
        )
        report = RegretReport(
            online_makespan=stitched.makespan,
            offline_makespan=offline.schedule.makespan,
            lower_bound=lower,
            replans=len(state.replan_latencies),
            replan_latencies=state.replan_latencies,
            gamma_probes=state.gamma_probes,
            epochs=records,
        )
        return OnlineResult(schedule=stitched, report=report, offline=offline, arrivals=stream)
