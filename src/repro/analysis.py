"""Schedule analysis: metrics and algorithm-comparison reports.

Beyond the makespan, a scheduler's users care about utilisation, how much
extra work parallelisation costs, how long individual jobs wait, and how two
algorithms compare on the same workload.  This module computes those metrics
from a :class:`repro.core.schedule.Schedule` without ever iterating over the
(possibly astronomically many) machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .core.bounds import makespan_lower_bound, release_aware_lower_bound, trivial_lower_bound
from .core.job import MoldableJob
from .core.schedule import Schedule

__all__ = ["JobMetrics", "ScheduleMetrics", "analyze_schedule", "compare_schedules", "ComparisonRow"]


@dataclass(frozen=True)
class JobMetrics:
    """Per-job placement metrics."""

    name: str
    processors: int
    start: float
    completion: float
    duration: float
    #: work of the placement divided by the job's sequential work w_j(1)
    work_inflation: float
    #: completion time divided by the fastest possible execution t_j(m)
    stretch: float
    #: parallel efficiency of the chosen allotment: speedup / processors
    efficiency: float


@dataclass
class ScheduleMetrics:
    """Aggregate metrics of one schedule."""

    makespan: float
    total_work: float
    sequential_work: float
    machines: int
    jobs: int
    #: fraction of the m x makespan area that is busy
    utilization: float
    #: total work divided by the minimum possible work (sum of w_j(1))
    work_inflation: float
    #: makespan divided by the certified lower bound (>= 1, upper bound on the true ratio)
    ratio_vs_lower_bound: float
    lower_bound: float
    peak_processors: int
    average_parallelism: float
    max_stretch: float
    mean_stretch: float
    per_job: List[JobMetrics] = field(default_factory=list)


def analyze_schedule(
    schedule: Schedule,
    jobs: Optional[Sequence[MoldableJob]] = None,
    *,
    lower_bound: Optional[float] = None,
) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a schedule.

    Parameters
    ----------
    jobs:
        The instance; defaults to the jobs appearing in the schedule.
    lower_bound:
        A certified makespan lower bound; computed with
        :func:`repro.core.bounds.makespan_lower_bound` if omitted (pass the
        cheap :func:`trivial_lower_bound` result if speed matters).
    """
    scheduled_jobs = schedule.jobs()
    job_list = list(jobs) if jobs is not None else list(scheduled_jobs)
    m = schedule.m

    if lower_bound is None:
        lower_bound = makespan_lower_bound(job_list, m) if job_list else 0.0

    # per-entry scalars straight from the schedule's columns; entry objects
    # are never materialised
    cols = schedule.try_columns()
    if cols is not None:
        starts = cols.start.tolist()
        durations = cols.duration.tolist()
        ends = cols.end.tolist()
        processors = cols.processors.tolist()
        works = (cols.processors * cols.duration).tolist()
    else:  # astronomically wide spans: per-entry fallback
        entries = list(schedule.entries)
        starts = [e.start for e in entries]
        durations = [e.duration for e in entries]
        ends = [e.end for e in entries]
        processors = [e.processors for e in entries]
        works = [e.work for e in entries]

    per_job: List[JobMetrics] = []
    total_work = 0.0
    sequential_work = 0.0
    stretches: List[float] = []
    weighted_parallelism = 0.0
    for i, job in enumerate(scheduled_jobs):
        seq = job.processing_time(1)
        fastest = job.processing_time(m)
        work = works[i]
        total_work += work
        sequential_work += seq
        stretch = ends[i] / fastest if fastest > 0 else 1.0
        stretches.append(stretch)
        weighted_parallelism += processors[i] * durations[i]
        per_job.append(
            JobMetrics(
                name=job.name,
                processors=processors[i],
                start=starts[i],
                completion=ends[i],
                duration=durations[i],
                work_inflation=work / seq if seq > 0 else 1.0,
                stretch=stretch,
                efficiency=job.efficiency(processors[i]),
            )
        )

    makespan = schedule.makespan
    utilization = total_work / (m * makespan) if makespan > 0 else 0.0
    return ScheduleMetrics(
        makespan=makespan,
        total_work=total_work,
        sequential_work=sequential_work,
        machines=m,
        jobs=len(scheduled_jobs),
        utilization=utilization,
        work_inflation=total_work / sequential_work if sequential_work > 0 else 1.0,
        ratio_vs_lower_bound=makespan / lower_bound if lower_bound > 0 else 1.0,
        lower_bound=lower_bound,
        peak_processors=schedule.peak_processor_usage(),
        average_parallelism=weighted_parallelism / makespan if makespan > 0 else 0.0,
        max_stretch=max(stretches, default=1.0),
        mean_stretch=sum(stretches) / len(stretches) if stretches else 1.0,
        per_job=per_job,
    )


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm's entry in :func:`compare_schedules`."""

    label: str
    makespan: float
    ratio_vs_best: float
    ratio_vs_lower_bound: float
    utilization: float
    work_inflation: float


def compare_schedules(
    schedules: Dict[str, Schedule],
    jobs: Sequence[MoldableJob],
    m: int,
    *,
    releases: Optional[Sequence[float]] = None,
) -> List[ComparisonRow]:
    """Compare several schedules of the *same* instance.

    Returns rows sorted by makespan (best first); ``ratio_vs_best`` is each
    schedule's makespan divided by the best one.

    When the instance has release times, pass them as ``releases`` (aligned
    with ``jobs``): the shared lower bound then becomes the release-aware
    :func:`~repro.core.bounds.release_aware_lower_bound`, so
    ``ratio_vs_lower_bound`` is meaningful for online schedules instead of
    overstating their gap against an everything-at-t0 bound.
    """
    if not schedules:
        return []
    lower = makespan_lower_bound(jobs, m) if jobs else trivial_lower_bound(jobs, m)
    if releases is not None:
        lower = release_aware_lower_bound(jobs, releases, m, base=lower)
    metrics = {label: analyze_schedule(s, jobs, lower_bound=lower) for label, s in schedules.items()}
    best = min(met.makespan for met in metrics.values())
    rows = [
        ComparisonRow(
            label=label,
            makespan=met.makespan,
            ratio_vs_best=met.makespan / best if best > 0 else 1.0,
            ratio_vs_lower_bound=met.ratio_vs_lower_bound,
            utilization=met.utilization,
            work_inflation=met.work_inflation,
        )
        for label, met in metrics.items()
    ]
    rows.sort(key=lambda r: r.makespan)
    return rows
