"""Crash-safe append-only journal of per-instance fleet outcomes.

One JSON object per line (JSONL): ``{"record": "repro-fleet-outcome",
"instance": ..., "fingerprint": ..., "outcome": {...}}``.  The writer appends
and flushes one line per *terminal* outcome (solved / degraded /
quarantined), so after a ``kill -9`` of the parent the journal holds every
instance completed so far plus at most one truncated trailing line —
:func:`load_journal` tolerates exactly that: an undecodable *final* line is
dropped, an undecodable line in the middle of the file is an error (that is
corruption, not an interrupted append).

Resume keys on the instance *fingerprint* (a content hash of jobs, machine
count, eps and requested algorithm), not just the name: a journal recorded
for different instance data silently re-solves rather than serving a stale
result.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from ..core.job import MoldableJob
from ..io import job_to_dict

__all__ = [
    "JOURNAL_RECORD",
    "JournalError",
    "instance_fingerprint",
    "JournalWriter",
    "load_journal",
]

JOURNAL_RECORD = "repro-fleet-outcome"

PathLike = Union[str, Path]


class JournalError(ValueError):
    """Raised on a corrupt (not merely truncated) journal."""


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-finite JSON token {token!r} in journal line")


def instance_fingerprint(
    name: str,
    jobs: Sequence[MoldableJob],
    m: int,
    eps: float,
    algorithm: str,
    *,
    ladder: Optional[Sequence[dict]] = None,
    chaos: Optional[dict] = None,
) -> str:
    """Content hash identifying one fleet instance across runs.

    Jobs without a data serialisation (oracle jobs wrapping arbitrary
    callables) contribute only their type and name — the best stable key
    available for them.

    ``ladder`` (the run's degradation ladder as ``LadderStep.to_dict()``
    rungs) and ``chaos`` (the run's ``ChaosPolicy.to_dict()``, ``None`` for a
    clean run) are part of the identity: a journal written under a different
    ladder may have reached its answer through a different final rung (the
    bottom rung changes the algorithm), and different chaos seeds produce
    different attempt histories — resuming either as-if-identical would serve
    a result the current configuration cannot reproduce.
    """
    parts: List[Any] = [int(m), float(eps), str(algorithm), str(name)]
    for job in jobs:
        try:
            parts.append(job_to_dict(job))
        except Exception:
            parts.append({"kind": f"opaque:{type(job).__name__}", "name": job.name})
    parts.append({"ladder": list(ladder) if ladder is not None else None})
    parts.append({"chaos": chaos})
    blob = json.dumps(parts, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


class JournalWriter:
    """Append-only JSONL writer; one flushed line per terminal outcome."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = self.path.open("a")

    def append(self, instance: str, fingerprint: str, outcome: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        # allow_nan=False: a NaN/Infinity makespan must fail loudly at write
        # time instead of producing a line the reader rejects (or, worse,
        # a NaN that flows into wall-clock comparisons on resume)
        line = json.dumps(
            {
                "record": JOURNAL_RECORD,
                "instance": instance,
                "fingerprint": fingerprint,
                "outcome": outcome,
            },
            sort_keys=True,
            allow_nan=False,
        )
        self._fh.write(line + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(path: PathLike) -> Dict[str, Dict[str, Any]]:
    """Read a journal back as ``{instance name: record}``.

    Later records win (a resumed run may legitimately re-journal an instance
    whose fingerprint changed).  A truncated *final* line — the signature of
    a parent killed mid-append — is dropped silently; undecodable content
    anywhere else raises :class:`JournalError`.
    """
    path = Path(path)
    if not path.exists():
        return {}
    records: Dict[str, Dict[str, Any]] = {}
    lines = path.read_text().split("\n")
    # trailing "" after a well-terminated final line
    while lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            # json.loads accepts NaN/Infinity tokens by default; a journal
            # line carrying one is corruption (the writer refuses to emit
            # them), and letting a NaN makespan/seconds through would poison
            # downstream comparisons (NaN != inf is True, NaN <= x is False)
            data = json.loads(line, parse_constant=_reject_constant)
            if not isinstance(data, dict) or data.get("record") != JOURNAL_RECORD:
                raise ValueError("not a fleet outcome record")
        except ValueError as exc:
            if i == len(lines) - 1:
                break  # torn tail of an interrupted append
            raise JournalError(
                f"journal {path} line {i + 1} is corrupt (not merely truncated): {exc}"
            ) from exc
        records[str(data["instance"])] = data
    return records
