"""Fault-isolated fleet batch scheduler.

:func:`schedule_many` / :class:`FleetScheduler` pack many independent
scheduling instances through a pool of subprocess workers and **always**
return a complete :class:`FleetReport`: per-instance failures never surface
as exceptions from the fleet — every instance ends up in exactly one of

* ``solved`` — first ladder rung, makespan bit-identical to a solo
  :func:`repro.core.scheduler.schedule_moldable` run,
* ``degraded`` — solved after at least one retry, one or more rungs down the
  degradation ladder (rungs that only change backend are still bit-identical;
  the bottom rung may change the algorithm and is recorded as such),
* ``quarantined`` — the retry budget is exhausted; the outcome carries the
  final failure kind and captured traceback.

Isolation comes from ``multiprocessing`` worker processes (``spawn``-safe by
default): a segfault, OOM kill or hang of one instance cannot corrupt the
rest.  The parent enforces a per-attempt wall-clock deadline (hung workers
are killed and their slot recycled), retries with exponential backoff plus
deterministic seeded jitter, and journals every terminal outcome to an
append-only JSONL file so an interrupted fleet run resumes without
re-solving completed instances (:mod:`repro.serve.journal`).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.job import MoldableJob
from .deadlines import Deadline
from .journal import JournalWriter, instance_fingerprint, load_journal
from .policy import ChaosPolicy, ServePolicy
from .worker import worker_main

__all__ = [
    "FleetInstance",
    "AttemptRecord",
    "InstanceOutcome",
    "FleetReport",
    "FleetScheduler",
    "schedule_many",
    "STATUSES",
]

#: The three terminal per-instance statuses (a complete report assigns every
#: instance exactly one of them).
STATUSES = ("solved", "degraded", "quarantined")


@dataclass
class FleetInstance:
    """One independent scheduling instance of a fleet run."""

    name: str
    jobs: List[MoldableJob]
    m: int
    eps: float = 0.1
    algorithm: str = "auto"

    def __post_init__(self) -> None:
        self.jobs = list(self.jobs)
        if self.m < 1:
            raise ValueError(f"instance {self.name!r}: m must be >= 1")
        if not self.name:
            raise ValueError("instance name must be non-empty")


@dataclass
class AttemptRecord:
    """What happened on one dispatch of one instance."""

    attempt: int
    step: int
    step_label: str
    outcome: str  # "ok" or one of policy.FAILURE_KINDS
    seconds: float
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "step": self.step,
            "step_label": self.step_label,
            "outcome": self.outcome,
            "seconds": self.seconds,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttemptRecord":
        return cls(
            attempt=int(data["attempt"]),
            step=int(data["step"]),
            step_label=str(data.get("step_label", "")),
            outcome=str(data["outcome"]),
            seconds=float(data.get("seconds", 0.0)),
            error=data.get("error"),
        )


@dataclass
class InstanceOutcome:
    """Terminal result of one instance: schedule + certification for the
    solved/degraded statuses, the captured failure for quarantine."""

    instance: str
    status: str
    makespan: Optional[float] = None
    lower_bound: Optional[float] = None
    guarantee: Optional[float] = None
    algorithm: Optional[str] = None
    eps: Optional[float] = None
    ladder_step: int = 0
    attempts: List[AttemptRecord] = field(default_factory=list)
    error: Optional[str] = None
    schedule_data: Optional[dict] = None
    resumed: bool = False

    @property
    def solved(self) -> bool:
        return self.status in ("solved", "degraded")

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def certified_ratio(self) -> Optional[float]:
        if self.makespan is None or self.lower_bound is None:
            return None
        if self.lower_bound <= 0:
            return 1.0
        return self.makespan / self.lower_bound

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def schedule(self, jobs: Sequence[MoldableJob], *, validate: bool = True):
        """Re-attach the serialised schedule to job objects (see
        :func:`repro.io.schedule_from_dict`)."""
        if self.schedule_data is None:
            raise ValueError(f"instance {self.instance!r} has no schedule ({self.status})")
        from ..io import schedule_from_dict

        return schedule_from_dict(self.schedule_data, jobs, validate=validate)

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "status": self.status,
            "makespan": self.makespan,
            "lower_bound": self.lower_bound,
            "guarantee": self.guarantee,
            "algorithm": self.algorithm,
            "eps": self.eps,
            "ladder_step": self.ladder_step,
            "attempts": [a.to_dict() for a in self.attempts],
            "error": self.error,
            "schedule": self.schedule_data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceOutcome":
        status = str(data["status"])
        if status not in STATUSES:
            raise ValueError(f"unknown outcome status {status!r}")
        return cls(
            instance=str(data["instance"]),
            status=status,
            makespan=data.get("makespan"),
            lower_bound=data.get("lower_bound"),
            guarantee=data.get("guarantee"),
            algorithm=data.get("algorithm"),
            eps=data.get("eps"),
            ladder_step=int(data.get("ladder_step", 0)),
            attempts=[AttemptRecord.from_dict(a) for a in data.get("attempts", ())],
            error=data.get("error"),
            schedule_data=data.get("schedule"),
        )

    def comparable_dict(self) -> dict:
        """The outcome minus timings and resume provenance — two runs that
        took different wall-clock paths to the same result compare equal."""
        data = self.to_dict()
        for attempt in data["attempts"]:
            attempt.pop("seconds", None)
        return data


@dataclass
class FleetReport:
    """Complete account of one fleet run, in input-instance order."""

    instances: List[str]
    outcomes: List[InstanceOutcome]
    wall_seconds: float = 0.0
    workers: int = 1
    mp_context: str = "spawn"
    policy: Optional[dict] = None
    chaos: Optional[dict] = None

    def outcome(self, name: str) -> InstanceOutcome:
        for outcome in self.outcomes:
            if outcome.instance == name:
                return outcome
        raise KeyError(name)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def solved(self) -> List[InstanceOutcome]:
        return [o for o in self.outcomes if o.status == "solved"]

    @property
    def degraded(self) -> List[InstanceOutcome]:
        return [o for o in self.outcomes if o.status == "degraded"]

    @property
    def quarantined(self) -> List[InstanceOutcome]:
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def resumed(self) -> List[InstanceOutcome]:
        return [o for o in self.outcomes if o.resumed]

    @property
    def complete(self) -> bool:
        """Every requested instance has exactly one terminal outcome."""
        names = [o.instance for o in self.outcomes]
        return (
            sorted(names) == sorted(self.instances)
            and len(set(names)) == len(names)
            and all(o.status in STATUSES for o in self.outcomes)
        )

    @property
    def throughput(self) -> float:
        """Instances per second over the whole run (0 for an empty run)."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "instances": list(self.instances),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "mp_context": self.mp_context,
            "policy": self.policy,
            "chaos": self.chaos,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetReport":
        return cls(
            instances=[str(n) for n in data.get("instances", ())],
            outcomes=[InstanceOutcome.from_dict(o) for o in data.get("outcomes", ())],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            workers=int(data.get("workers", 1)),
            mp_context=str(data.get("mp_context", "spawn")),
            policy=data.get("policy"),
            chaos=data.get("chaos"),
        )

    def comparable_dict(self) -> dict:
        """The report minus timings — resume-equality tests compare this."""
        return {
            "instances": list(self.instances),
            "outcomes": [o.comparable_dict() for o in self.outcomes],
        }


# --------------------------------------------------------------------------
# dispatcher internals
# --------------------------------------------------------------------------

@dataclass
class _Task:
    index: int
    attempt: int
    step: int
    not_before: float  # monotonic instant before which it must not dispatch


class _Slot:
    """One worker process + its dedicated pipe."""

    __slots__ = ("proc", "conn", "task", "deadline", "started")

    def __init__(self, ctx, chaos: Optional[ChaosPolicy]) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=worker_main, args=(child_conn, chaos), daemon=True
        )
        self.proc.start()
        child_conn.close()  # parent's copy; the worker holds the live end
        self.conn = parent_conn
        # a single _Task, or a list of them when a mega-batch pack is in flight
        self.task: Optional[Union["_Task", List["_Task"]]] = None
        self.deadline: Optional[Deadline] = None
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()
        self.task = None
        self.deadline = None

    def shutdown(self) -> None:
        """Graceful stop for idle workers, kill for busy/stuck ones."""
        if self.task is None and self.proc.is_alive():
            try:
                self.conn.send(("stop", None))
            except OSError:
                pass
        self.kill()


class FleetScheduler:
    """Reusable fleet front end; see the module docstring for semantics."""

    def __init__(
        self,
        *,
        policy: Optional[ServePolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
        max_workers: Optional[int] = None,
        mp_context: str = "spawn",
        journal: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.policy = policy if policy is not None else ServePolicy()
        self.chaos = chaos
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        # validate eagerly: a typo'd start method must fail at construction
        multiprocessing.get_context(mp_context)
        self.mp_context = mp_context
        self.journal = journal

    # ------------------------------------------------------------ normalize
    def _normalize(
        self, instances: Sequence[Any], m: Optional[int], eps: float, algorithm: str
    ) -> List[FleetInstance]:
        fleet: List[FleetInstance] = []
        for i, item in enumerate(instances):
            if isinstance(item, FleetInstance):
                fleet.append(item)
            elif hasattr(item, "jobs") and hasattr(item, "m"):  # WorkloadInstance
                kind = getattr(getattr(item, "spec", None), "kind", "instance")
                fleet.append(
                    FleetInstance(
                        name=f"{kind}-{i}", jobs=list(item.jobs), m=int(item.m),
                        eps=eps, algorithm=algorithm,
                    )
                )
            else:  # a bare job sequence; needs the shared machine count
                if m is None:
                    raise ValueError(
                        "passing bare job sequences requires the shared machine count m"
                    )
                fleet.append(
                    FleetInstance(
                        name=f"instance-{i}", jobs=list(item), m=int(m),
                        eps=eps, algorithm=algorithm,
                    )
                )
        names = [inst.name for inst in fleet]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate instance names {dupes}: journal/report keys must be unique")
        return fleet

    # ------------------------------------------------------------------ run
    def run(
        self,
        instances: Sequence[Any],
        *,
        m: Optional[int] = None,
        eps: float = 0.1,
        algorithm: str = "auto",
    ) -> FleetReport:
        t0 = time.perf_counter()
        fleet = self._normalize(instances, m, eps, algorithm)
        # the ladder and chaos configuration are part of the resume identity:
        # outcomes journalled under a different ladder (whose bottom rung may
        # change the algorithm) or chaos seed must re-solve, not resume
        ladder_dicts = [step.to_dict() for step in self.policy.ladder]
        chaos_dict = self.chaos.to_dict() if self.chaos is not None else None
        fingerprints = {
            inst.name: instance_fingerprint(
                inst.name, inst.jobs, inst.m, inst.eps, inst.algorithm,
                ladder=ladder_dicts, chaos=chaos_dict,
            )
            for inst in fleet
        }
        outcomes: Dict[str, InstanceOutcome] = {}
        writer: Optional[JournalWriter] = None
        if self.journal is not None:
            journal_records = load_journal(self.journal)
            for inst in fleet:
                record = journal_records.get(inst.name)
                if record is None or record.get("fingerprint") != fingerprints[inst.name]:
                    continue
                try:
                    outcome = InstanceOutcome.from_dict(record["outcome"])
                except (KeyError, ValueError, TypeError):
                    continue  # unreadable outcome: re-solve
                outcome.resumed = True
                outcomes[inst.name] = outcome
            writer = JournalWriter(self.journal)
        pending = [
            _Task(index=i, attempt=0, step=0, not_before=0.0)
            for i, inst in enumerate(fleet)
            if inst.name not in outcomes
        ]
        try:
            if pending:
                _Dispatch(self, fleet, fingerprints, pending, outcomes, writer).run()
        finally:
            if writer is not None:
                writer.close()
        return FleetReport(
            instances=[inst.name for inst in fleet],
            outcomes=[outcomes[inst.name] for inst in fleet if inst.name in outcomes],
            wall_seconds=time.perf_counter() - t0,
            workers=self.max_workers,
            mp_context=self.mp_context,
            policy=self._policy_dict(),
            chaos=self.chaos.to_dict() if self.chaos is not None else None,
        )

    def _policy_dict(self) -> dict:
        p = self.policy
        return {
            "timeout": p.timeout,
            "max_retries": p.max_retries,
            "backoff_base": p.backoff_base,
            "backoff_cap": p.backoff_cap,
            "backoff_jitter": p.backoff_jitter,
            "seed": p.seed,
            "ladder": [step.to_dict() for step in p.ladder],
            "mega_batch_size": p.mega_batch_size,
        }


class _Dispatch:
    """One fleet run's dispatcher state machine."""

    def __init__(
        self,
        scheduler: FleetScheduler,
        fleet: List[FleetInstance],
        fingerprints: Dict[str, str],
        pending: List[_Task],
        outcomes: Dict[str, InstanceOutcome],
        writer: Optional[JournalWriter],
    ) -> None:
        self.policy = scheduler.policy
        self.chaos = scheduler.chaos
        self.fleet = fleet
        self.fingerprints = fingerprints
        self.pending = pending
        self.outcomes = outcomes
        self.writer = writer
        self.attempts: Dict[str, List[AttemptRecord]] = {}
        self.ctx = multiprocessing.get_context(scheduler.mp_context)
        self.n_workers = max(1, min(scheduler.max_workers, len(pending)))

    # --------------------------------------------------------------- loop
    def run(self) -> None:
        slots = [_Slot(self.ctx, self.chaos) for _ in range(self.n_workers)]
        try:
            while self.pending or any(slot.busy for slot in slots):
                self._assign(slots)
                busy = [slot for slot in slots if slot.busy]
                if not busy:
                    # everything runnable is deferred by backoff
                    delay = min(t.not_before for t in self.pending) - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.5))
                    continue
                self._collect(busy)
        finally:
            for slot in slots:
                slot.shutdown()

    def _task_payload(self, task: _Task) -> dict:
        inst = self.fleet[task.index]
        return {
            "name": inst.name,
            "jobs": inst.jobs,
            "m": inst.m,
            "eps": inst.eps,
            "algorithm": inst.algorithm,
            "attempt": task.attempt,
            "step": self.policy.step(task.step).to_dict(),
        }

    def _assign(self, slots: List[_Slot]) -> None:
        now = time.monotonic()
        for slot in slots:
            if slot.busy:
                continue
            task = self._pop_ready(now)
            if task is None:
                return
            # mega-batch packing: fill the slot with further *first-attempt*
            # tasks (all on the same ladder rung, by construction) so the
            # worker solves them in one lockstep mega batch.  Retries stay
            # solo — a pack failure fails all members, and re-batching them
            # would let one poison instance starve the others' retry budget.
            tasks = [task]
            if self.policy.mega_batch_size > 1 and task.attempt == 0:
                while len(tasks) < self.policy.mega_batch_size:
                    extra = self._pop_ready(now, first_attempt_only=True)
                    if extra is None:
                        break
                    tasks.append(extra)
            if len(tasks) == 1:
                payload: dict = self._task_payload(task)
            else:
                payload = {
                    "pack": [self._task_payload(t) for t in tasks],
                    "step": self.policy.step(task.step).to_dict(),
                }
            try:
                slot.conn.send(("task", payload))
            except OSError:
                # the worker died while idle; recycle it and retry the task
                slot.kill()
                self._respawn(slot)
                for t in tasks:
                    self._failure(
                        t, "worker-death", "worker died before accepting the task", 0.0
                    )
                continue
            except Exception:
                # pickling failed before any bytes hit the pipe: the channel
                # is intact, but the instance can never reach a worker.  Solo
                # that is deterministic — quarantine without burning retries.
                # For a pack, any member may be the poison one: fail all of
                # them retryably so the innocent members re-solve solo and
                # only the true culprit reaches quarantine.
                for t in tasks:
                    self._failure(
                        t, "serialization", traceback.format_exc(), 0.0,
                        force_quarantine=len(tasks) == 1,
                    )
                continue
            slot.task = tasks if len(tasks) > 1 else task
            slot.started = time.monotonic()
            slot.deadline = Deadline(self.policy.timeout)

    def _pop_ready(self, now: float, *, first_attempt_only: bool = False) -> Optional[_Task]:
        for i, task in enumerate(self.pending):
            if task.not_before <= now and (not first_attempt_only or task.attempt == 0):
                return self.pending.pop(i)
        return None

    def _collect(self, busy: List[_Slot]) -> None:
        timeout: Optional[float] = None
        remaining = [slot.deadline.remaining() for slot in busy if slot.deadline]
        if remaining:
            candidate = min(remaining)
            # isfinite, not ``!= inf``: a NaN (e.g. arithmetic poisoned by a
            # corrupt journal line) passes the inequality and would become a
            # NaN wait timeout instead of "no deadline"
            if math.isfinite(candidate):
                timeout = candidate
        if self.pending:
            defer = min(t.not_before for t in self.pending) - time.monotonic()
            defer = max(0.0, defer)
            timeout = defer if timeout is None else min(timeout, defer)
        objects: List[Any] = []
        for slot in busy:
            objects.append(slot.conn)
            objects.append(slot.proc.sentinel)
        ready = set(mp_connection.wait(objects, timeout))
        for slot in busy:
            task = slot.task
            if task is None:  # pragma: no cover - defensive
                continue
            # a packed slot carries a list of tasks; any failure of the pack
            # fails every member (each retries individually afterwards)
            tasks = task if isinstance(task, list) else [task]
            elapsed = time.monotonic() - slot.started
            if slot.conn in ready:
                try:
                    kind, payload = slot.conn.recv()
                except (EOFError, OSError):
                    proc = slot.proc
                    slot.kill()
                    exitcode = proc.exitcode
                    self._respawn(slot)
                    for t in tasks:
                        self._failure(
                            t,
                            "worker-death",
                            f"worker died mid-solve (exitcode {exitcode})",
                            elapsed,
                        )
                    continue
                slot.task = None
                slot.deadline = None
                if kind == "ok":
                    if isinstance(task, list):
                        for t, result in zip(task, payload):
                            self._success(t, result, elapsed)
                    else:
                        self._success(task, payload, elapsed)
                else:
                    error = payload.get("traceback") or payload.get("error")
                    for t in tasks:
                        self._failure(t, "raise", error, elapsed)
            elif slot.proc.sentinel in ready:
                proc = slot.proc
                slot.kill()
                exitcode = proc.exitcode
                self._respawn(slot)
                for t in tasks:
                    self._failure(
                        t,
                        "worker-death",
                        f"worker died mid-solve (exitcode {exitcode})",
                        elapsed,
                    )
            elif slot.deadline is not None and slot.deadline.expired:
                slot.kill()
                self._respawn(slot)
                for t in tasks:
                    self._failure(
                        t,
                        "timeout",
                        f"per-attempt deadline of {self.policy.timeout}s exceeded; worker killed",
                        elapsed,
                    )

    def _respawn(self, slot: _Slot) -> None:
        fresh = _Slot(self.ctx, self.chaos)
        slot.proc = fresh.proc
        slot.conn = fresh.conn
        slot.task = None
        slot.deadline = None
        slot.started = 0.0

    # ------------------------------------------------------------ outcomes
    def _record(self, task: _Task, outcome_kind: str, seconds: float, error: Optional[str]) -> AttemptRecord:
        record = AttemptRecord(
            attempt=task.attempt,
            step=task.step,
            step_label=self.policy.step(task.step).label,
            outcome=outcome_kind,
            seconds=seconds,
            error=error,
        )
        name = self.fleet[task.index].name
        self.attempts.setdefault(name, []).append(record)
        return record

    def _finalize(self, outcome: InstanceOutcome) -> None:
        self.outcomes[outcome.instance] = outcome
        if self.writer is not None:
            self.writer.append(
                outcome.instance, self.fingerprints[outcome.instance], outcome.to_dict()
            )

    def _success(self, task: _Task, payload: dict, seconds: float) -> None:
        self._record(task, "ok", seconds, None)
        inst = self.fleet[task.index]
        self._finalize(
            InstanceOutcome(
                instance=inst.name,
                status="degraded" if task.step > 0 else "solved",
                makespan=payload["makespan"],
                lower_bound=payload["lower_bound"],
                guarantee=payload["guarantee"],
                algorithm=payload["algorithm"],
                eps=payload["eps"],
                ladder_step=task.step,
                attempts=self.attempts.pop(inst.name, []),
                schedule_data=payload["schedule"],
            )
        )

    def _failure(
        self,
        task: _Task,
        kind: str,
        error: Optional[str],
        seconds: float,
        *,
        force_quarantine: bool = False,
    ) -> None:
        self._record(task, kind, seconds, error)
        inst = self.fleet[task.index]
        if not force_quarantine and task.attempt < self.policy.max_retries:
            delay = self.policy.backoff(inst.name, task.attempt)
            self.pending.append(
                _Task(
                    index=task.index,
                    attempt=task.attempt + 1,
                    step=min(task.step + 1, len(self.policy.ladder) - 1),
                    not_before=time.monotonic() + delay,
                )
            )
            return
        self._finalize(
            InstanceOutcome(
                instance=inst.name,
                status="quarantined",
                algorithm=inst.algorithm,
                eps=inst.eps,
                ladder_step=task.step,
                attempts=self.attempts.pop(inst.name, []),
                error=error,
            )
        )


def schedule_many(
    instances: Sequence[Any],
    m: Optional[int] = None,
    *,
    eps: float = 0.1,
    algorithm: str = "auto",
    policy: Optional[ServePolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    max_workers: Optional[int] = None,
    mp_context: str = "spawn",
    journal: Optional[Union[str, os.PathLike]] = None,
) -> FleetReport:
    """Solve many independent instances through a fault-isolated worker
    fleet; see :class:`FleetScheduler`.

    ``instances`` may mix :class:`FleetInstance` objects,
    :class:`~repro.workloads.generators.WorkloadInstance` objects (their own
    ``m`` is used) and bare job sequences (which require the shared ``m``).
    Always returns a complete :class:`FleetReport`; per-instance failures are
    reported, never raised.
    """
    scheduler = FleetScheduler(
        policy=policy,
        chaos=chaos,
        max_workers=max_workers,
        mp_context=mp_context,
        journal=journal,
    )
    return scheduler.run(instances, m=m, eps=eps, algorithm=algorithm)
