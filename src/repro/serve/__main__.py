"""Chaos smoke gate: ``python -m repro.serve``.

Runs a seeded fleet under injected kill/hang/raise chaos and verifies the
robustness contract CI depends on:

* the report is **complete** — every instance accounted for in exactly one
  of solved / degraded / quarantined, no exception escapes the fleet;
* every solved/degraded schedule re-validates clean on re-attachment;
* every non-degraded makespan is bit-identical to a solo
  ``schedule_moldable`` run of the same instance.

Exit code 0 iff all three hold.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..core.scheduler import schedule_moldable
from ..workloads.generators import random_mixed_instance
from .fleet import FleetInstance, schedule_many
from .policy import ChaosPolicy, ServePolicy


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="fleet chaos smoke gate")
    parser.add_argument("--instances", type=int, default=20)
    parser.add_argument("--n", type=int, default=24, help="jobs per instance")
    parser.add_argument("--m", type=int, default=48, help="machines per instance")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--chaos", type=float, default=0.2,
        help="total injected failure probability per attempt, split across "
        "kill/hang/raise (0 disables chaos)",
    )
    parser.add_argument("--timeout", type=float, default=15.0, help="per-attempt deadline [s]")
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mp-context", default="spawn", choices=("spawn", "fork", "forkserver"))
    parser.add_argument("--algorithm", default="two_approx")
    parser.add_argument("--journal", default=None, help="JSONL journal path (also enables resume)")
    args = parser.parse_args(argv)

    instances = [
        FleetInstance(
            name=f"smoke-{i}",
            jobs=random_mixed_instance(args.n, args.m, seed=args.seed + i).jobs,
            m=args.m,
            algorithm=args.algorithm,
        )
        for i in range(args.instances)
    ]
    chaos = None
    if args.chaos > 0:
        third = args.chaos / 3.0
        chaos = ChaosPolicy(
            seed=args.seed, kill_prob=third, hang_prob=third, raise_prob=third
        )
    policy = ServePolicy(
        timeout=args.timeout, max_retries=args.max_retries, backoff_base=0.0, seed=args.seed
    )
    report = schedule_many(
        instances,
        policy=policy,
        chaos=chaos,
        max_workers=args.workers,
        mp_context=args.mp_context,
        journal=args.journal,
    )

    print(
        f"fleet of {len(instances)}: {len(report.solved)} solved, "
        f"{len(report.degraded)} degraded, {len(report.quarantined)} quarantined "
        f"({len(report.resumed)} resumed) in {report.wall_seconds:.2f}s "
        f"({report.throughput:.1f} instances/s)"
    )
    failures = []
    if not report.complete:
        accounted = {o.instance for o in report.outcomes}
        missing = sorted(set(report.instances) - accounted)
        failures.append(f"report incomplete: unaccounted instances {missing}")
    by_name = {inst.name: inst for inst in instances}
    for outcome in report.outcomes:
        if not outcome.solved:
            continue
        inst = by_name[outcome.instance]
        try:
            outcome.schedule(inst.jobs, validate=True)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            failures.append(f"{outcome.instance}: schedule failed re-validation: {exc}")
            continue
        if not outcome.degraded:
            solo = schedule_moldable(inst.jobs, inst.m, inst.eps, algorithm=inst.algorithm)
            if solo.makespan != outcome.makespan:
                failures.append(
                    f"{outcome.instance}: fleet makespan {outcome.makespan!r} != "
                    f"solo {solo.makespan!r}"
                )
    for failure in failures:
        print(f"CHAOS SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print("chaos smoke gate passed: report complete, schedules validator-clean, "
              "non-degraded makespans bit-identical to solo runs")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
