"""Wall-clock deadlines on the monotonic clock.

Shared by the fleet dispatcher (per-attempt worker deadlines) and the bench
harness (per-shard pool timeouts, :mod:`repro.perf.bench`): one definition of
"how much time is left", so the two enforcement sites cannot drift apart in
clock source or expiry convention.
"""

from __future__ import annotations

import math
import time
from typing import Optional

__all__ = ["Deadline"]


class Deadline:
    """A deadline ``seconds`` from construction on ``time.monotonic()``.

    ``seconds=None`` means "no deadline": :meth:`remaining` is ``inf`` and
    the deadline never expires.
    """

    __slots__ = ("seconds", "_expiry")

    def __init__(self, seconds: Optional[float]) -> None:
        # ``not (x >= 0)`` instead of ``x < 0``: NaN passes ``< 0`` and would
        # poison the expiry arithmetic (``NaN`` never compares expired)
        if seconds is not None and not (seconds >= 0):
            raise ValueError(f"deadline seconds must be >= 0 or None, got {seconds}")
        self.seconds = seconds
        self._expiry = math.inf if seconds is None else time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds left (``inf`` for no deadline; clamped at 0 once due)."""
        return max(0.0, self._expiry - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expiry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.seconds is None:
            return "Deadline(None)"
        return f"Deadline({self.seconds}, remaining={self.remaining():.3f})"
