"""Worker-process side of the fleet scheduler.

:func:`worker_main` is the spawn-safe subprocess entry point: a plain
module-level function (so the ``spawn`` start method can import it by
qualified name), looping over tasks received on its pipe.  Each task solves
one instance via :func:`repro.core.scheduler.schedule_moldable` at the
ladder rung the dispatcher selected and replies with a fully serialised
result — the parent never unpickles schedules from a worker, it receives
plain dicts (:func:`repro.io.schedule_to_dict` output plus certification
numbers), so a corrupted worker cannot smuggle unpicklable state back.

Chaos injection (:class:`repro.serve.policy.ChaosPolicy`) lives here too:
the drawn action fires either inside the γ-bisection inner loop (a
:class:`BatchedOracle` subclass that kills/hangs/raises after a fixed number
of ``gamma_array`` evaluations — genuinely mid-solve) or, when the attempt's
algorithm never consulted the oracle, immediately after the solve and before
the result is sent, which is indistinguishable from the parent's side.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Optional

from ..core.scheduler import schedule_moldable
from ..io import schedule_to_dict
from ..perf.oracle import BatchedOracle
from .policy import ChaosPolicy, LadderStep

__all__ = ["ChaosError", "worker_main", "solve_task", "solve_pack"]

#: Algorithms whose solve consults a caller-supplied oracle (mid-solve chaos
#: can hook their inner loop); ``"auto"`` may resolve to one of them.
_ORACLE_ALGORITHMS = ("two_approx", "fptas", "auto")


class ChaosError(RuntimeError):
    """The injected failure of a ``raise`` chaos action."""


def _fire(action: str, hang_seconds: float) -> None:
    """Execute a chaos action.  ``kill`` never returns; ``hang`` sleeps far
    past any sane deadline (the parent must reap the process); ``raise``
    raises :class:`ChaosError`."""
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60.0)  # pragma: no cover - SIGKILL is not deliverable twice
    elif action == "hang":
        deadline = time.monotonic() + hang_seconds
        while time.monotonic() < deadline:  # sleep() can be cut short by signals
            time.sleep(min(1.0, max(0.0, deadline - time.monotonic())))
    elif action == "raise":
        raise ChaosError("injected chaos failure")
    else:  # pragma: no cover - exhaustiveness guard
        raise AssertionError(action)


class _ChaosOracle(BatchedOracle):
    """A :class:`BatchedOracle` that fires a chaos action after a fixed
    number of ``gamma_array`` evaluations — i.e. inside the γ-bisection inner
    loop of whatever driver is using it."""

    def __init__(self, jobs, m, *, action: str, hang_seconds: float, fire_after: int) -> None:
        super().__init__(jobs, m)
        self._chaos_action = action
        self._chaos_hang_seconds = hang_seconds
        self._chaos_fire_after = max(1, int(fire_after))
        self._chaos_calls = 0
        self.chaos_fired = False

    def gamma_array(self, threshold: float):
        self._chaos_calls += 1
        if self._chaos_calls == self._chaos_fire_after:
            self.chaos_fired = True
            _fire(self._chaos_action, self._chaos_hang_seconds)
        return super().gamma_array(threshold)


def solve_task(task: dict, chaos: Optional[ChaosPolicy]) -> dict:
    """Solve one task dict (see the dispatcher for the schema) and return the
    serialised result.  Chaos, when drawn for this ``(instance, attempt)``,
    fires mid-solve where possible and post-solve otherwise."""
    name = task["name"]
    attempt = int(task["attempt"])
    step = LadderStep.from_dict(task["step"])
    jobs = task["jobs"]
    m = task["m"]
    eps = float(task["eps"])
    algorithm = step.algorithm or task["algorithm"]

    action = chaos.draw(name, attempt) if chaos is not None else None
    oracle = None
    if (
        action is not None
        and chaos.mid_solve
        and algorithm in _ORACLE_ALGORITHMS
        and step.backend == "vectorized"
    ):
        oracle = _ChaosOracle(
            jobs,
            m,
            action=action,
            hang_seconds=chaos.hang_seconds,
            fire_after=chaos.fire_after_probes,
        )

    result = schedule_moldable(
        jobs,
        m,
        eps,
        algorithm=algorithm,
        backend=step.backend,
        oracle=oracle,
        list_backend=step.list_backend,
    )

    # The solve finished without routing through the chaos oracle (wrong
    # algorithm, scalar rung, or too few γ-batches): fire before reporting,
    # so a drawn action always manifests as a failure the parent observes.
    if action is not None and not (oracle is not None and oracle.chaos_fired):
        _fire(action, chaos.hang_seconds)

    return {
        "makespan": result.makespan,
        "lower_bound": result.lower_bound,
        "guarantee": result.guarantee,
        "algorithm": result.algorithm,
        "eps": result.eps,
        "schedule": schedule_to_dict(result.schedule),
    }


def solve_pack(payload: dict, chaos: Optional[ChaosPolicy]) -> list:
    """Solve a mega-batch pack: ``payload["pack"]`` is a list of task dicts
    (without their per-task ``step``), ``payload["step"]`` the shared ladder
    rung.  On a vectorized rung all members solve in one lockstep mega batch
    (:func:`repro.perf.megabatch.solve_mega` — bit-identical per-instance
    results); otherwise they solve sequentially on the rung's backend.

    Chaos is still drawn per ``(instance, attempt)`` so a member's fate does
    not depend on how it was packed, but a drawn action fires for the whole
    pack (post-solve, before the reply): the parent fails every member, and
    each retries solo where mid-solve chaos hooks apply as usual.
    """
    from types import SimpleNamespace

    from ..perf.megabatch import solve_mega

    members = payload["pack"]
    step = LadderStep.from_dict(payload["step"])
    actions = [
        chaos.draw(mem["name"], int(mem["attempt"])) if chaos is not None else None
        for mem in members
    ]

    if step.backend == "vectorized":
        items = [
            SimpleNamespace(
                jobs=mem["jobs"],
                m=mem["m"],
                eps=float(mem["eps"]),
                algorithm=step.algorithm or mem["algorithm"],
            )
            for mem in members
        ]
        results = solve_mega(items, list_backend=step.list_backend)
    else:
        results = [
            schedule_moldable(
                mem["jobs"],
                mem["m"],
                float(mem["eps"]),
                algorithm=step.algorithm or mem["algorithm"],
                backend=step.backend,
                list_backend=step.list_backend,
            )
            for mem in members
        ]

    for action in actions:
        if action is not None:
            _fire(action, chaos.hang_seconds)
            break

    return [
        {
            "makespan": result.makespan,
            "lower_bound": result.lower_bound,
            "guarantee": result.guarantee,
            "algorithm": result.algorithm,
            "eps": result.eps,
            "schedule": schedule_to_dict(result.schedule),
        }
        for result in results
    ]


def worker_main(conn, chaos: Optional[ChaosPolicy]) -> None:
    """Subprocess entry point: serve tasks from ``conn`` until a ``"stop"``
    message or the parent goes away."""
    # The parent handles Ctrl-C; an interrupted worker must not spray
    # KeyboardInterrupt tracebacks while the dispatcher tears the fleet down.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            return
        if kind == "stop":
            return
        try:
            if "pack" in payload:
                reply = ("ok", solve_pack(payload, chaos))
            else:
                reply = ("ok", solve_task(payload, chaos))
        except BaseException as exc:  # noqa: BLE001 - everything must travel back
            reply = (
                "error",
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                },
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            return
