"""``repro.serve`` — fault-isolated fleet batch scheduling.

The production-serving layer on top of :func:`repro.core.scheduler.schedule_moldable`:
:func:`schedule_many` packs many independent instances through a pool of
subprocess workers with per-attempt deadlines, retry with exponential
backoff + deterministic jitter, a configurable degradation ladder, poison
quarantine and a crash-safe resume journal.  :class:`ChaosPolicy` injects
seeded kills/hangs/raises into workers so every failure path is provable in
tests.  See the README's "Fleet serving & failure semantics" section.
"""

from .deadlines import Deadline
from .fleet import (
    AttemptRecord,
    FleetInstance,
    FleetReport,
    FleetScheduler,
    InstanceOutcome,
    STATUSES,
    schedule_many,
)
from .journal import JournalError, JournalWriter, instance_fingerprint, load_journal
from .policy import DEFAULT_LADDER, ChaosPolicy, LadderStep, ServePolicy
from .worker import ChaosError

__all__ = [
    "schedule_many",
    "FleetScheduler",
    "FleetInstance",
    "FleetReport",
    "InstanceOutcome",
    "AttemptRecord",
    "STATUSES",
    "ServePolicy",
    "ChaosPolicy",
    "LadderStep",
    "DEFAULT_LADDER",
    "Deadline",
    "ChaosError",
    "JournalWriter",
    "JournalError",
    "load_journal",
    "instance_fingerprint",
]
