"""Serving policies: retry/backoff, the degradation ladder and chaos injection.

Everything in this module is *pure data plus deterministic arithmetic* — the
fleet dispatcher (:mod:`repro.serve.fleet`) and the worker entry point
(:mod:`repro.serve.worker`) interpret it.  Determinism is load-bearing: the
backoff jitter and every chaos draw are seeded through a stable CRC-based
hash of ``(seed, instance name, attempt)`` rather than Python's salted
``hash()``, so a fleet run (and therefore the test suite) produces the same
retry schedule and the same injected failures on every machine and in every
worker process, regardless of the multiprocessing start method.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "LadderStep",
    "DEFAULT_LADDER",
    "ServePolicy",
    "ChaosPolicy",
    "FAILURE_KINDS",
]

#: Failure kinds the dispatcher can record for one attempt.  All of them are
#: retryable (a later attempt runs one ladder step further down); an instance
#: whose attempts are exhausted is quarantined with its last failure.
#:
#: * ``"timeout"`` — the per-instance deadline fired; the worker was killed.
#: * ``"worker-death"`` — the worker process died mid-solve (segfault, OOM
#:   kill, injected SIGKILL) without reporting a result.
#: * ``"raise"`` — the solve raised; the traceback travelled back intact.
#: * ``"serialization"`` — the instance could not be shipped to a worker
#:   (unpicklable job objects).  Deterministic, so it skips the retry loop
#:   and quarantines immediately.
FAILURE_KINDS = ("timeout", "worker-death", "raise", "serialization")


def _stable_rng(*parts: object) -> random.Random:
    """A ``random.Random`` seeded from a CRC of the textual parts — stable
    across processes and interpreter runs (``hash(str)`` is salted)."""
    text = ":".join(str(p) for p in parts).encode()
    return random.Random(zlib.crc32(text))


@dataclass(frozen=True)
class LadderStep:
    """One rung of the degradation ladder.

    ``algorithm=None`` keeps the instance's requested algorithm; setting it
    (e.g. ``"two_approx"``) is the *result-changing* degradation reserved for
    the bottom of the ladder.  ``backend``/``list_backend`` only trade speed:
    every backend of this codebase is bit-identical, so an instance solved on
    rungs that differ only in backend still reproduces the solo makespan.
    """

    backend: str = "vectorized"
    list_backend: Optional[str] = None
    algorithm: Optional[str] = None

    @property
    def label(self) -> str:
        parts = [self.backend]
        if self.list_backend:
            parts.append(self.list_backend)
        if self.algorithm:
            parts.append(f"algorithm={self.algorithm}")
        return "+".join(parts)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "list_backend": self.list_backend,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LadderStep":
        return cls(
            backend=str(data.get("backend", "vectorized")),
            list_backend=data.get("list_backend"),
            algorithm=data.get("algorithm"),
        )


#: The default ladder: fastest path first, then progressively more
#: conservative backends (all bit-identical results), finally the guaranteed
#: ratio-2 algorithm for instances whose requested algorithm keeps failing
#: (e.g. an fptas run repeatedly hitting its deadline).
DEFAULT_LADDER: Tuple[LadderStep, ...] = (
    LadderStep(backend="vectorized", list_backend="event_queue_indexed"),
    LadderStep(backend="vectorized"),
    LadderStep(backend="scalar"),
    LadderStep(backend="scalar", algorithm="two_approx"),
)


@dataclass(frozen=True)
class ServePolicy:
    """Deadlines, retry budget and backoff of one fleet run.

    ``timeout`` is the per-*attempt* wall-clock deadline enforced by the
    parent (``None`` disables it — hung workers then stall their slot
    forever, so production runs should always set one).  ``max_retries``
    bounds re-attempts after the first try; each failed attempt advances one
    ladder rung (clamped to the last).  The backoff before attempt ``k+1`` is
    ``min(backoff_base * 2**k, backoff_cap)`` plus a deterministic jitter
    drawn uniformly from ``[0, backoff_jitter]`` times that delay, seeded per
    ``(seed, instance, attempt)``.

    ``mega_batch_size > 1`` enables mega-batch packing: up to that many
    first-attempt instances are dispatched to one worker as a single pack and
    solved in lockstep via :func:`repro.perf.megabatch.solve_mega`
    (bit-identical per-instance results).  A failed pack fails all its
    members, which then retry individually — fault isolation stays
    per-instance, only the happy path is batched.
    """

    timeout: Optional[float] = 60.0
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.5
    seed: int = 0
    ladder: Tuple[LadderStep, ...] = field(default=DEFAULT_LADDER)
    mega_batch_size: int = 1

    def __post_init__(self) -> None:
        # ``not (x > 0)`` instead of ``x <= 0``: a NaN timeout passes the
        # latter and would silently disable deadline enforcement
        if self.timeout is not None and not (self.timeout > 0):
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.mega_batch_size < 1:
            raise ValueError(f"mega_batch_size must be >= 1, got {self.mega_batch_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_jitter < 0:
            raise ValueError("backoff parameters must be non-negative")
        if not self.ladder:
            raise ValueError("the degradation ladder needs at least one step")
        object.__setattr__(self, "ladder", tuple(self.ladder))

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def step(self, index: int) -> LadderStep:
        """The ladder rung used by attempt ``index`` (clamped to the last)."""
        return self.ladder[min(index, len(self.ladder) - 1)]

    def backoff(self, instance: str, attempt: int) -> float:
        """Delay before re-dispatching ``instance`` after failed attempt
        ``attempt`` — exponential with cap plus deterministic seeded jitter."""
        delay = min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)
        if delay <= 0:
            return 0.0
        jitter = _stable_rng(self.seed, instance, attempt).uniform(0.0, self.backoff_jitter)
        return delay * (1.0 + jitter)


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault injection for workers — the test suite's failure lab.

    For every ``(instance, attempt)`` the worker draws once from a stable
    seeded RNG and either runs clean or suffers exactly one of

    * ``kill`` — ``SIGKILL`` of the worker process (simulated segfault/OOM),
    * ``hang`` — an uninterruptible sleep of ``hang_seconds`` (the parent's
      deadline must reap it),
    * ``raise`` — an injected :class:`repro.serve.worker.ChaosError`.

    With ``mid_solve=True`` (default) the action fires *inside* the
    γ-bisection inner loop whenever the attempt's algorithm routes through a
    :class:`~repro.perf.oracle.BatchedOracle` (after ``fire_after_probes``
    γ-array evaluations), i.e. genuinely mid-solve; otherwise — or when the
    solve finishes before the oracle fired — it fires immediately after the
    solve, before the result is reported, which the parent cannot
    distinguish from an in-solve failure.  ``attempts`` limits chaos to the
    first that many attempts of each instance (``None`` = all attempts), so
    tests can prove the retry path deterministically recovers.
    """

    seed: int = 0
    kill_prob: float = 0.0
    hang_prob: float = 0.0
    raise_prob: float = 0.0
    attempts: Optional[int] = None
    mid_solve: bool = True
    hang_seconds: float = 3600.0
    fire_after_probes: int = 2

    def __post_init__(self) -> None:
        for name in ("kill_prob", "hang_prob", "raise_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {p}")
        if self.kill_prob + self.hang_prob + self.raise_prob > 1.0 + 1e-12:
            raise ValueError("kill/hang/raise probabilities must sum to <= 1")
        if self.attempts is not None and self.attempts < 0:
            raise ValueError(f"attempts must be >= 0 or None, got {self.attempts}")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def draw(self, instance: str, attempt: int) -> Optional[str]:
        """The injected action for this attempt: ``"kill"``, ``"hang"``,
        ``"raise"`` or ``None`` (clean).  Deterministic per
        ``(seed, instance, attempt)``."""
        if self.attempts is not None and attempt >= self.attempts:
            return None
        r = _stable_rng("chaos", self.seed, instance, attempt).random()
        if r < self.kill_prob:
            return "kill"
        if r < self.kill_prob + self.hang_prob:
            return "hang"
        if r < self.kill_prob + self.hang_prob + self.raise_prob:
            return "raise"
        return None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kill_prob": self.kill_prob,
            "hang_prob": self.hang_prob,
            "raise_prob": self.raise_prob,
            "attempts": self.attempts,
            "mid_solve": self.mid_solve,
            "hang_seconds": self.hang_seconds,
            "fire_after_probes": self.fire_after_probes,
        }
