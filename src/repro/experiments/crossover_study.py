"""Crossover study: the `O(nm)` baseline vs the polylog-in-m algorithms.

The paper's motivation for compact encodings is that algorithms whose running
time is polynomial in ``m`` (such as the original MRT knapsack) become
impractical once ``m`` is large, whereas the accelerated algorithms only pay
``polylog(m)``.  The study fixes ``n`` and ``eps`` and sweeps ``m`` over
several orders of magnitude, timing one dual step of

* the MRT algorithm with the exact `O(nm)` knapsack,
* Algorithm 1 (Section 4.2.5), and
* Algorithm 3 (Section 4.3.3, the linear variant),

and reports the measured times, the speed-up of the compact-encoding
algorithms over MRT, and the fitted scaling exponents in ``m`` (MRT should be
close to 1, the others close to 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.bounded_algorithm import bounded_dual
from ..core.bounds import ludwig_tiwari_estimator
from ..core.compressible_algorithm import compressible_dual
from ..core.mrt import mrt_dual
from ..workloads.generators import random_mixed_instance
from .common import Table, fit_power_law, timed

__all__ = ["CrossoverRow", "run", "main"]


@dataclass
class CrossoverRow:
    m: int
    n: int
    eps: float
    mrt_seconds: Optional[float]
    compressible_seconds: float
    bounded_linear_seconds: float
    speedup_compressible: Optional[float]
    speedup_bounded: Optional[float]


def run(
    *,
    n: int = 100,
    eps: float = 0.2,
    m_values: Sequence[int] = (64, 256, 1024, 4096, 16384),
    mrt_m_limit: int = 65536,
    seed: int = 17,
    repeat: int = 1,
) -> List[CrossoverRow]:
    rows: List[CrossoverRow] = []
    for m in m_values:
        instance = random_mixed_instance(n, m, seed=seed)
        omega = ludwig_tiwari_estimator(instance.jobs, m).omega
        d = 1.1 * omega
        mrt_seconds: Optional[float] = None
        if m <= mrt_m_limit:
            mrt_seconds, _ = timed(lambda: mrt_dual(instance.jobs, m, d), repeat=repeat)
        comp_seconds, _ = timed(lambda: compressible_dual(instance.jobs, m, d, eps), repeat=repeat)
        bounded_seconds, _ = timed(
            lambda: bounded_dual(instance.jobs, m, d, eps, transform="bucket"), repeat=repeat
        )
        rows.append(
            CrossoverRow(
                m=m,
                n=n,
                eps=eps,
                mrt_seconds=mrt_seconds,
                compressible_seconds=comp_seconds,
                bounded_linear_seconds=bounded_seconds,
                speedup_compressible=(mrt_seconds / comp_seconds) if mrt_seconds else None,
                speedup_bounded=(mrt_seconds / bounded_seconds) if mrt_seconds else None,
            )
        )
    return rows


def scaling_exponents(rows: List[CrossoverRow]) -> Dict[str, float]:
    ms = [r.m for r in rows if r.mrt_seconds is not None]
    out: Dict[str, float] = {}
    if len(ms) >= 2:
        out["mrt"] = fit_power_law(ms, [r.mrt_seconds for r in rows if r.mrt_seconds is not None])
    all_ms = [r.m for r in rows]
    out["compressible"] = fit_power_law(all_ms, [r.compressible_seconds for r in rows])
    out["bounded_linear"] = fit_power_law(all_ms, [r.bounded_linear_seconds for r in rows])
    return out


def main() -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Crossover study — one dual step, n fixed, m swept",
        ["m", "MRT (O(nm)) [s]", "Alg. 1 [s]", "Alg. 3 linear [s]", "speedup Alg.1", "speedup Alg.3"],
        [],
    )
    for r in rows:
        table.add(
            r.m,
            r.mrt_seconds if r.mrt_seconds is not None else "skipped",
            r.compressible_seconds,
            r.bounded_linear_seconds,
            r.speedup_compressible if r.speedup_compressible else "-",
            r.speedup_bounded if r.speedup_bounded else "-",
        )
    table.print()
    exps = scaling_exponents(rows)
    summary = Table("Fitted runtime exponent in m", ["algorithm", "exponent"], [])
    for key, val in exps.items():
        summary.add(key, val)
    summary.print()


if __name__ == "__main__":  # pragma: no cover
    main()
