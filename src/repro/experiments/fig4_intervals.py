"""Figure 4 reproduction: the adaptive-normalisation interval structure.

Figure 4 of the paper illustrates how the capacity range ``[alpha_min, C]`` is
partitioned: the geometric capacities ``alpha_1 < ... < alpha_k`` define
intervals ``I^(1), ..., I^(k)``, and each interval ``I^(i)`` is subdivided
into cells of width ``U_i = rho/((1-rho) n_bar) * alpha_i``.  Equation (16)
shows every interval has at most ``(1-rho) n_bar + 1 = O(n_bar)`` cells, which
is what makes the multi-capacity dynamic program cheap.

The experiment constructs the same structure the Algorithm 2 driver builds
(for several capacities / accuracies), reports the number of capacity
intervals and the min/max/mean number of cells per interval, and checks the
Eq. (16) bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..knapsack.compressible import AdaptiveNormalizer, geom
from .common import Table

__all__ = ["Fig4Row", "run", "main"]


@dataclass
class Fig4Row:
    capacity: float
    rho: float
    n_bar: int
    num_capacity_intervals: int
    max_cells_per_interval: int
    mean_cells_per_interval: float
    eq16_bound: float
    eq16_holds: bool
    lemma14_size_bound: float
    lemma14_holds: bool


def run(
    *,
    capacities=(1_000.0, 100_000.0, 10_000_000.0, 1e9),
    rhos=(0.05, 0.1, 0.2),
    alpha_min: float = 20.0,
) -> List[Fig4Row]:
    rows: List[Fig4Row] = []
    for capacity in capacities:
        for rho in rhos:
            n_bar = max(1, int(math.floor(capacity * rho / (1.0 - rho))) + 1)
            # for the interval-structure check we cap n_bar to keep U_i coarse
            # enough to matter (the algorithm uses the same formula).
            cap_grid = geom(alpha_min / (1.0 - rho), capacity, 1.0 / (1.0 - rho))
            normalizer = AdaptiveNormalizer(cap_grid, alpha_min, rho, min(n_bar, 10_000))
            counts = [c for c in normalizer.subinterval_counts() if c > 0]
            bound = (1.0 - rho) * normalizer.n_bar + 2  # Eq. (16): (1-rho) n_bar + 1 (+1 slack for flooring)
            # Lemma 14 with x = 1/(1-rho): |geom(L, U, x)| <= 2 ln(U/L)/(x-1) + 2
            lemma14_bound = 2.0 * math.log(capacity / alpha_min) / (1.0 / (1.0 - rho) - 1.0) + 2
            rows.append(
                Fig4Row(
                    capacity=capacity,
                    rho=rho,
                    n_bar=normalizer.n_bar,
                    num_capacity_intervals=len(cap_grid),
                    max_cells_per_interval=max(counts) if counts else 0,
                    mean_cells_per_interval=sum(counts) / len(counts) if counts else 0.0,
                    eq16_bound=bound,
                    eq16_holds=all(c <= bound for c in counts),
                    lemma14_size_bound=lemma14_bound,
                    lemma14_holds=len(cap_grid) <= lemma14_bound,
                )
            )
    return rows


def main() -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Figure 4 reproduction — adaptive normalisation interval structure",
        [
            "capacity C",
            "rho",
            "n_bar",
            "# capacity intervals",
            "max cells / interval",
            "mean cells / interval",
            "Eq.(16) bound",
            "Eq.(16) holds",
            "Lemma 14 bound",
            "Lemma 14 holds",
        ],
        [],
    )
    for r in rows:
        table.add(
            r.capacity,
            r.rho,
            r.n_bar,
            r.num_capacity_intervals,
            r.max_cells_per_interval,
            r.mean_cells_per_interval,
            r.eq16_bound,
            r.eq16_holds,
            r.lemma14_size_bound,
            r.lemma14_holds,
        )
    table.print()


if __name__ == "__main__":  # pragma: no cover
    main()
