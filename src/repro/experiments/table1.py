"""Table 1 reproduction: running times of the `(3/2+eps)`-dual algorithms.

The paper's Table 1 lists the asymptotic running times of the three dual
algorithms:

=================  =====================================================
Section 4.2.5      ``O(n (log m + n log(eps m)))``
Section 4.3        ``O(n (1/eps^2 log m (log m / eps + log^3(eps m)) + log n))``
Section 4.3.3      ``O(n 1/eps^2 log m (log m / eps + log^3(eps m)))``
=================  =====================================================

Since those are asymptotic statements, the reproduction measures *wall-clock*
running time of one dual step of each algorithm over sweeps of ``n``, ``m``
and ``eps`` and reports

* the measured times (the table rows), and
* the fitted power-law exponents in ``n`` and ``m`` — the "shape" check: the
  Section 4.3/4.3.3 algorithms should be roughly linear in ``n`` and
  polylogarithmic in ``m`` (small exponent), whereas Section 4.2.5 grows
  super-linearly in ``n``; all three are far below the ``O(n*m)`` MRT baseline
  for large ``m`` (see the crossover study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.bounded_algorithm import bounded_dual
from ..core.bounds import ludwig_tiwari_estimator
from ..core.compressible_algorithm import compressible_dual
from ..workloads.generators import random_mixed_instance
from .common import Table, fit_power_law, timed

__all__ = ["ALGORITHM_LABELS", "run", "main"]

ALGORITHM_LABELS = {
    "sec_4_2_5": "Section 4.2.5 (compressible knapsack)",
    "sec_4_3": "Section 4.3 (bounded knapsack, heap transform)",
    "sec_4_3_3": "Section 4.3.3 (bounded knapsack, bucket transform)",
}


def _dual_runner(key: str) -> Callable:
    if key == "sec_4_2_5":
        return lambda jobs, m, d, eps: compressible_dual(jobs, m, d, eps)
    if key == "sec_4_3":
        return lambda jobs, m, d, eps: bounded_dual(jobs, m, d, eps, transform="heap")
    if key == "sec_4_3_3":
        return lambda jobs, m, d, eps: bounded_dual(jobs, m, d, eps, transform="bucket")
    raise KeyError(key)


@dataclass
class Table1Row:
    algorithm: str
    n: int
    m: int
    eps: float
    seconds: float
    makespan: float
    accepted: bool


def run(
    *,
    n_values: Sequence[int] = (100, 200, 400, 800),
    m_values: Sequence[int] = (512, 1024, 2048, 4096),
    eps_values: Sequence[float] = (0.1, 0.2, 0.4),
    base_n: int = 400,
    base_m: int = 1024,
    base_eps: float = 0.2,
    seed: int = 7,
    repeat: int = 1,
) -> Dict[str, List[Table1Row]]:
    """Measure one dual step of each algorithm over sweeps of n, m and eps.

    Each sweep varies one parameter and pins the others at the ``base_*``
    values; the dual target ``d`` is set to ``1.1 * omega`` (just above the
    estimator lower bound) so the step does real work and typically accepts.

    The defaults keep ``m < 16 n`` so that the knapsack machinery of the
    Section 4 algorithms is actually exercised (for ``m >= 16 n`` all of them
    delegate to the FPTAS dual, exactly as prescribed in Section 4.2.5).
    """
    rows: Dict[str, List[Table1Row]] = {key: [] for key in ALGORITHM_LABELS}

    def measure(key: str, n: int, m: int, eps: float) -> Table1Row:
        instance = random_mixed_instance(n, m, seed=seed)
        omega = ludwig_tiwari_estimator(instance.jobs, m).omega
        d = 1.1 * omega
        runner = _dual_runner(key)
        seconds, schedule = timed(lambda: runner(instance.jobs, m, d, eps), repeat=repeat)
        return Table1Row(
            algorithm=key,
            n=n,
            m=m,
            eps=eps,
            seconds=seconds,
            makespan=schedule.makespan if schedule is not None else float("nan"),
            accepted=schedule is not None,
        )

    for key in ALGORITHM_LABELS:
        for n in n_values:
            rows[key].append(measure(key, n, base_m, base_eps))
        for m in m_values:
            rows[key].append(measure(key, base_n, m, base_eps))
        for eps in eps_values:
            rows[key].append(measure(key, base_n, base_m, eps))
    return rows


def scaling_exponents(rows: Dict[str, List[Table1Row]]) -> Dict[str, Dict[str, float]]:
    """Fitted power-law exponents of runtime vs n and vs m for each algorithm."""
    out: Dict[str, Dict[str, float]] = {}
    for key, entries in rows.items():
        by_n = [(r.n, r.seconds) for r in entries if r.eps == entries[0].eps]
        # group: the first len(n_values) entries vary n at fixed m
        n_points = {}
        m_points = {}
        for r in entries:
            n_points.setdefault((r.m, r.eps), []).append((r.n, r.seconds))
            m_points.setdefault((r.n, r.eps), []).append((r.m, r.seconds))
        best_n = max(n_points.values(), key=len)
        best_m = max(m_points.values(), key=len)
        out[key] = {
            "n_exponent": fit_power_law([p[0] for p in best_n], [p[1] for p in best_n])
            if len(best_n) >= 2
            else float("nan"),
            "m_exponent": fit_power_law([p[0] for p in best_m], [p[1] for p in best_m])
            if len(best_m) >= 2
            else float("nan"),
        }
    return out


def main(quick: bool = False) -> None:  # pragma: no cover - console entry point
    kwargs = {}
    if quick:
        kwargs = dict(
            n_values=(100, 200, 400),
            m_values=(256, 512, 1024),
            eps_values=(0.2, 0.4),
            base_n=200,
            base_m=512,
        )
    rows = run(**kwargs)
    table = Table(
        "Table 1 reproduction — wall-clock time of one (3/2+eps)-dual step",
        ["algorithm", "n", "m", "eps", "seconds", "accepted"],
        [],
    )
    for key, entries in rows.items():
        for r in entries:
            table.add(ALGORITHM_LABELS[key], r.n, r.m, r.eps, r.seconds, r.accepted)
    table.print()

    exponents = scaling_exponents(rows)
    shape = Table(
        "Scaling shape (fitted power-law exponents of runtime)",
        ["algorithm", "exponent in n", "exponent in m"],
        [],
    )
    for key, vals in exponents.items():
        shape.add(ALGORITHM_LABELS[key], vals["n_exponent"], vals["m_exponent"])
    shape.print()


if __name__ == "__main__":  # pragma: no cover
    main()
