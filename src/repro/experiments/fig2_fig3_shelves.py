"""Figures 2 and 3 reproduction: two-shelf and three-shelf schedules.

Figure 2 of the paper shows a *two-shelf* schedule: shelf S1 (height ``d``)
uses at most ``m`` processors, shelf S2 (height ``d/2``) may temporarily use
more than ``m``.  Figure 3 shows the result of the transformation rules
(i)–(iii): a feasible *three-shelf* schedule where a new shelf S0 runs
alongside S1 and S2 and everything fits into ``m`` machines.

The experiment builds both pictures for random monotone instances (using the
exact MRT knapsack to select shelf 1), reports the shelf statistics and checks
the structural claims:

* the two-shelf picture can indeed exceed ``m`` processors in shelf S2;
* after the transformation the schedule is feasible, validated independently
  by the discrete-event simulator;
* the makespan never exceeds ``3d/2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.allotment import gamma
from ..core.bounds import ludwig_tiwari_estimator
from ..core.mrt import mrt_dual
from ..core.shelves import (
    ThreeShelfDiagnostics,
    build_three_shelf_schedule,
    build_two_shelf_schedule,
    partition_small_big,
    shelf_profit,
)
from ..core.validation import validate_schedule
from ..knapsack.dp import solve_knapsack
from ..knapsack.items import KnapsackItem
from ..simulator.engine import simulate_schedule
from ..simulator.gantt import render_shelves
from ..workloads.generators import random_mixed_instance
from .common import Table

__all__ = ["ShelfRow", "run", "main"]


@dataclass
class ShelfRow:
    n: int
    m: int
    d: float
    two_shelf_s1_procs: int
    two_shelf_s2_procs: int
    two_shelf_feasible: bool
    three_shelf_built: bool
    makespan: Optional[float]
    makespan_within_bound: Optional[bool]
    simulator_ok: Optional[bool]
    s0_procs: Optional[int]
    moved_from_s2: Optional[int]


def _shelf1_by_knapsack(jobs, m, d):
    """Select shelf-1 jobs exactly as the MRT algorithm does."""
    _, big = partition_small_big(jobs, d)
    shelf1 = []
    knapsack_jobs = []
    capacity = m
    for job in big:
        g_full = gamma(job, d, m)
        if g_full is None:
            return None
        if gamma(job, d / 2.0, m) is None:
            shelf1.append(job)
            capacity -= g_full
        else:
            knapsack_jobs.append(job)
    if capacity < 0:
        return None
    items = [
        KnapsackItem(key=i, size=gamma(job, d, m), profit=shelf_profit(job, d, m), payload=job)
        for i, job in enumerate(knapsack_jobs)
    ]
    _, chosen = solve_knapsack(items, capacity)
    shelf1.extend(item.payload for item in chosen)
    return shelf1


def run(*, cases=((30, 16), (60, 32), (120, 64), (200, 128)), seed: int = 23, d_factor: float = 1.05) -> List[ShelfRow]:
    rows: List[ShelfRow] = []
    for idx, (n, m) in enumerate(cases):
        instance = random_mixed_instance(n, m, seed=seed + idx)
        omega = ludwig_tiwari_estimator(instance.jobs, m).omega
        d = d_factor * omega
        shelf1 = _shelf1_by_knapsack(instance.jobs, m, d)
        if shelf1 is None:
            # target too tight for this instance; fall back to the 2x upper bound
            d = 2.0 * omega
            shelf1 = _shelf1_by_knapsack(instance.jobs, m, d)
            assert shelf1 is not None
        two_shelf = build_two_shelf_schedule(instance.jobs, m, d, shelf1)
        assert two_shelf is not None
        diag = ThreeShelfDiagnostics(d=d, m=m)
        schedule = build_three_shelf_schedule(instance.jobs, m, d, shelf1, diagnostics=diag)
        row = ShelfRow(
            n=n,
            m=m,
            d=d,
            two_shelf_s1_procs=two_shelf.shelf1_processors,
            two_shelf_s2_procs=two_shelf.shelf2_processors,
            two_shelf_feasible=two_shelf.is_feasible,
            three_shelf_built=schedule is not None,
            makespan=None,
            makespan_within_bound=None,
            simulator_ok=None,
            s0_procs=None,
            moved_from_s2=None,
        )
        if schedule is not None:
            report = validate_schedule(schedule, instance.jobs, max_makespan=1.5 * d)
            trace_ok = True
            try:
                simulate_schedule(schedule)
            except Exception:
                trace_ok = False
            row.makespan = schedule.makespan
            row.makespan_within_bound = report.ok
            row.simulator_ok = trace_ok
            row.s0_procs = diag.shelf0_processors
            row.moved_from_s2 = diag.moved_from_shelf2
        rows.append(row)
    return rows


def main(show_gantt: bool = True) -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Figures 2 & 3 reproduction — shelf constructions (d just above the lower bound)",
        [
            "n",
            "m",
            "d",
            "S1 procs",
            "S2 procs",
            "2-shelf fits m",
            "3-shelf built",
            "makespan",
            "<= 3d/2 & valid",
            "simulator ok",
            "S0 procs",
            "moved S2->S0/S1",
        ],
        [],
    )
    for r in rows:
        table.add(
            r.n,
            r.m,
            r.d,
            r.two_shelf_s1_procs,
            r.two_shelf_s2_procs,
            r.two_shelf_feasible,
            r.three_shelf_built,
            r.makespan if r.makespan is not None else "-",
            r.makespan_within_bound if r.makespan_within_bound is not None else "-",
            r.simulator_ok if r.simulator_ok is not None else "-",
            r.s0_procs if r.s0_procs is not None else "-",
            r.moved_from_s2 if r.moved_from_s2 is not None else "-",
        )
    table.print()

    if show_gantt:
        instance = random_mixed_instance(25, 12, seed=5)
        omega = ludwig_tiwari_estimator(instance.jobs, instance.m).omega
        schedule = mrt_dual(instance.jobs, instance.m, 1.3 * omega)
        if schedule is not None:
            print("Example Figure 3 schedule (three shelves + small jobs):")
            print(render_shelves(schedule, schedule.metadata.get("d", 1.3 * omega)))
            print()


if __name__ == "__main__":  # pragma: no cover
    main()
