"""Reproduction of the paper's table and figures plus supporting studies.

Each submodule exposes a ``run(...)`` function returning structured rows and a
``main()`` that prints them; ``python -m repro <experiment>`` dispatches here.

=====================  ====================================================
module                 reproduces
=====================  ====================================================
``table1``             Table 1 — runtime scaling of the three (3/2+eps)
                       dual algorithms in n, m and eps
``fig1_hardness``      Figure 1 — structure of the 4-Partition reduction
``fig2_fig3_shelves``  Figures 2 & 3 — two-shelf and three-shelf schedules
``fig4_intervals``     Figure 4 — adaptive normalisation interval structure
``fptas_study``        Theorem 2 — FPTAS quality and runtime for large m
``quality_study``      Theorem 3 — measured approximation ratios
``crossover_study``    O(nm) MRT vs polylog-in-m algorithms
=====================  ====================================================
"""

from . import (
    common,
    crossover_study,
    fig1_hardness,
    fig2_fig3_shelves,
    fig4_intervals,
    fptas_study,
    quality_study,
    table1,
)

__all__ = [
    "common",
    "table1",
    "fig1_hardness",
    "fig2_fig3_shelves",
    "fig4_intervals",
    "fptas_study",
    "quality_study",
    "crossover_study",
]
